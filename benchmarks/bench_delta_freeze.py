"""Delta-freeze run-table: the dynamic controller block-loop, full vs
incremental CSR maintenance.

The paper's dynamic setting (Section V-A, Figs. 9-10) runs A-TxAllo
every ``τ₁`` blocks and G-TxAllo every ``τ₂`` blocks while blocks keep
arriving.  Every one of those updates needs the graph's frozen CSR
snapshot; before delta-freeze each snapshot was a from-scratch O(N + E)
lowering even though a block only perturbs a small frontier.

This benchmark replays exactly that loop twice over the same Fig. 9-style
block stream — once with ``TransactionGraph.delta_freeze_enabled = False``
(every refresh re-lowers from scratch) and once with the default
incremental path — asserts the two runs are **byte-identical** (same
mapping, same caches, same update events), and writes
``BENCH_delta.json`` next to this file:

``{"scale", "blocks", "full_loop_seconds", "delta_loop_seconds",
"speedup", "frontier_freeze_ms", "full_freeze_ms", ...}``

``frontier_freeze_ms`` is the steady-state microbench: mean time to
re-freeze after touching a frontier of ``f`` nodes, for growing ``f`` —
the incremental cost tracks the frontier, while the full lowering pays
N + E regardless.

Both loops run with ``adaptive_workspace=False``: the adaptive workspace
(PR 5) skips per-window freezes entirely, which would collapse the very
difference this table measures.  The workspace's own block-loop gain is
gated by ``benchmarks/bench_adaptive.py`` instead; the delta-freeze path
stays the supported fallback (and what global refreshes ride), so this
gate stands.

Scale knob: ``--scale`` / the ``BENCH_SCALE`` env crank the workload
(CI pins 0.5 for runner budget; ``benchmarks/run_table.py
--local-scale 2`` regenerates a non-toy row locally).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

try:  # script mode from a clean checkout: resolve the src layout
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.parallel import pin_blas_threads

# Explicit thread ownership for honest timings: pin the BLAS/OpenMP
# knobs before any repro import can pull numpy in (the multi-core
# layer owns its parallelism -- see repro.core.parallel).
pin_blas_threads()

from repro.core.controller import TxAlloController
from repro.core.csr import CSRGraph
from repro.core.params import TxAlloParams
from repro.data.synthetic import EthereumWorkloadGenerator, WorkloadConfig

BENCH_SCALE = float(os.environ.get("BENCH_SCALE", "0.5"))

#: Fig. 9 cadence: adaptive every block, global refresh every 50 blocks.
TAU1 = 1
TAU2 = 50
#: Ethereum-sized blocks; the update frequency is what stresses freeze.
BLOCK_SIZE = 100
#: Loop timings are best-of-N to shave scheduler noise off the gate.
TIMING_REPEATS = 3

OUT_PATH = Path(__file__).resolve().parent / "BENCH_delta.json"


def _block_stream(scale: float, seed: int = 2022):
    config = WorkloadConfig(
        num_accounts=max(100, int(10_000 * scale)),
        num_transactions=max(1_000, int(60_000 * scale)),
        block_size=BLOCK_SIZE,
        seed=seed,
    )
    gen = EthereumWorkloadGenerator(config)
    return [[tuple(tx.accounts) for tx in block.transactions] for block in gen.blocks()]


def _run_loop(blocks, seed_blocks, delta_enabled: bool):
    """One controller over the stream; returns (loop_seconds, controller)."""
    params = TxAlloParams.with_capacity_for(
        sum(len(b) for b in blocks) + sum(len(b) for b in seed_blocks),
        k=16,
        eta=2.0,
        tau1=TAU1,
        tau2=TAU2,
    )
    controller = TxAlloController(
        params,
        seed_transactions=[tx for block in seed_blocks for tx in block],
        # Workspace off: this table isolates the delta-freeze machinery
        # (see the module docstring); bench_adaptive.py owns the
        # workspace gate.
        adaptive_workspace=False,
    )
    controller.graph.delta_freeze_enabled = delta_enabled
    t0 = time.perf_counter()
    for block in blocks:
        controller.observe_block(block)
    return time.perf_counter() - t0, controller


def _frontier_microbench(graph, repeats: int = 5):
    """Steady-state cost of re-freezing after touching ``f`` nodes."""
    existing = [v for v in graph.nodes()]
    results = {}
    for frontier in (8, 32, 128):
        times = []
        for r in range(repeats):
            # Touch ~frontier existing nodes (pair transactions).
            for i in range(frontier // 2):
                a = existing[(r * 7919 + i * 31) % len(existing)]
                b = existing[(r * 104729 + i * 97 + 1) % len(existing)]
                if a == b:
                    b = existing[(i + 2) % len(existing)]
                graph.add_transaction((a, b))
            t0 = time.perf_counter()
            graph.freeze()
            times.append(time.perf_counter() - t0)
        results[str(frontier)] = sum(times) / len(times) * 1e3
    t0 = time.perf_counter()
    CSRGraph.from_graph(graph)
    full_ms = (time.perf_counter() - t0) * 1e3
    return results, full_ms


def run_bench(scale: float = BENCH_SCALE, out_path: Path = OUT_PATH) -> dict:
    blocks = _block_stream(scale)
    # First half seeds the initial global allocation (history), second
    # half is the live stream the controller loop is timed over.
    split = len(blocks) // 2
    seed_blocks, stream = blocks[:split], blocks[split:]

    full_seconds = delta_seconds = float("inf")
    for _ in range(TIMING_REPEATS):
        seconds, full_ctrl = _run_loop(stream, seed_blocks, delta_enabled=False)
        full_seconds = min(full_seconds, seconds)
        seconds, delta_ctrl = _run_loop(stream, seed_blocks, delta_enabled=True)
        delta_seconds = min(delta_seconds, seconds)

    # Parity: delta-freeze is an optimisation, not a reinterpretation.
    assert full_ctrl.allocation.mapping() == delta_ctrl.allocation.mapping()
    assert full_ctrl.allocation.sigma == delta_ctrl.allocation.sigma
    assert full_ctrl.allocation.lam_hat == delta_ctrl.allocation.lam_hat
    assert [
        (e.kind, e.block_height, e.moves, e.touched) for e in full_ctrl.events
    ] == [(e.kind, e.block_height, e.moves, e.touched) for e in delta_ctrl.events]

    delta_stats = delta_ctrl.freeze_stats
    assert delta_stats["delta"] > 0, "delta-freeze path never ran"

    # Counts first: the microbench ingests extra frontier transactions.
    n_nodes = delta_ctrl.graph.num_nodes
    n_edges = delta_ctrl.graph.num_edges
    frontier_ms, full_freeze_ms = _frontier_microbench(delta_ctrl.graph)

    payload = {
        "scale": scale,
        "n_nodes": n_nodes,
        "n_edges": n_edges,
        "seed_blocks": split,
        "stream_blocks": len(stream),
        "tau1": TAU1,
        "tau2": TAU2,
        "full_loop_seconds": full_seconds,
        "delta_loop_seconds": delta_seconds,
        "speedup": full_seconds / delta_seconds if delta_seconds > 0 else float("inf"),
        "full_freeze_stats": full_ctrl.freeze_stats,
        "delta_freeze_stats": delta_stats,
        "frontier_freeze_ms": frontier_ms,
        "full_freeze_ms": full_freeze_ms,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"== delta-freeze controller loop (scale={scale}) ==")
    for key, value in payload.items():
        print(f"  {key}: {value}")
    return payload


def check_gates(payload: dict) -> list:
    """Return the list of failed gate descriptions (empty = all green)."""
    failures = []
    # Steady-state cost must track the frontier, not N + E: the smallest
    # frontier refresh has to be far below a from-scratch lowering.
    if not payload["frontier_freeze_ms"]["8"] < payload["full_freeze_ms"] / 4:
        failures.append(
            "smallest-frontier re-freeze no longer tracks the frontier: "
            f"{payload['frontier_freeze_ms']['8']:.2f}ms vs full "
            f"{payload['full_freeze_ms']:.2f}ms"
        )
    # The standing gate: >= 2x on the controller block-loop at the
    # default BENCH_SCALE=0.5 (margin for timer noise).
    if payload["speedup"] < 2.0:
        failures.append(
            f"delta-freeze block-loop speedup regressed: {payload['speedup']:.2f}x < 2x"
        )
    return failures


def test_delta_freeze_run_table(bench_scale):
    payload = run_bench(scale=bench_scale)
    failures = check_gates(payload)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=BENCH_SCALE,
        help="workload scale factor (default: BENCH_SCALE env or 0.5)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUT_PATH,
        help=f"output run-table path (default {OUT_PATH.name} next to this file)",
    )
    args = parser.parse_args()
    result = run_bench(scale=args.scale, out_path=args.out)
    problems = check_gates(result)
    for problem in problems:
        print(f"GATE FAILED: {problem}", file=sys.stderr)
    sys.exit(1 if problems else 0)
