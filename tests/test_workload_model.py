"""Tests for the fine-grained workload models (Section III-A extension)."""

import pytest

from repro.chain.types import Transaction
from repro.core.metrics import evaluate_allocation
from repro.core.params import TxAlloParams
from repro.core.workload_model import (
    RoleAwareModel,
    ShardRole,
    UniformEta,
    effective_eta,
    evaluate_with_model,
    shard_roles,
)
from repro.errors import AllocationError, ParameterError

MAPPING = {"a": 0, "b": 0, "c": 1, "d": 2}


class TestShardRoles:
    def test_intra_is_sole(self):
        tx = Transaction(inputs=("a",), outputs=("b",))
        assert shard_roles(tx, MAPPING) == {0: ShardRole.SOLE}

    def test_input_output_split(self):
        tx = Transaction(inputs=("a",), outputs=("c",))
        roles = shard_roles(tx, MAPPING)
        assert roles == {0: ShardRole.INPUT, 1: ShardRole.OUTPUT}

    def test_both_role(self):
        tx = Transaction(inputs=("a",), outputs=("b", "c"))
        roles = shard_roles(tx, MAPPING)
        assert roles[0] == ShardRole.BOTH  # holds input a and output b
        assert roles[1] == ShardRole.OUTPUT

    def test_three_way(self):
        tx = Transaction(inputs=("a",), outputs=("c", "d"))
        roles = shard_roles(tx, MAPPING)
        assert roles == {
            0: ShardRole.INPUT,
            1: ShardRole.OUTPUT,
            2: ShardRole.OUTPUT,
        }

    def test_unknown_account(self):
        tx = Transaction(inputs=("ghost",), outputs=("a",))
        with pytest.raises(AllocationError):
            shard_roles(tx, MAPPING)


class TestModels:
    def test_uniform_eta_costs(self):
        model = UniformEta(3.0)
        assert model.cost(ShardRole.SOLE, 2) == 1.0
        assert model.cost(ShardRole.INPUT, 2) == 3.0
        assert model.cost(ShardRole.BOTH, 5) == 3.0

    def test_uniform_eta_validation(self):
        with pytest.raises(ParameterError):
            UniformEta(0.5)

    def test_role_aware_orders_roles(self):
        model = RoleAwareModel(input_eta=3.0, output_eta=1.5)
        assert model.cost(ShardRole.INPUT, 2) > model.cost(ShardRole.OUTPUT, 2)
        assert model.cost(ShardRole.BOTH, 2) == 3.0

    def test_fanout_surcharge(self):
        model = RoleAwareModel(fanout_surcharge=0.5)
        assert model.cost(ShardRole.SOLE, 4) == pytest.approx(2.0)
        assert model.cost(ShardRole.SOLE, 2) == pytest.approx(1.0)

    def test_role_aware_validation(self):
        with pytest.raises(ParameterError):
            RoleAwareModel(input_eta=0.5)
        with pytest.raises(ParameterError):
            RoleAwareModel(fanout_surcharge=-1.0)

    def test_effective_eta(self):
        model = RoleAwareModel(input_eta=3.0, output_eta=1.0, fanout_surcharge=0.0)
        assert effective_eta(model) == pytest.approx(2.0)


class TestEvaluateWithModel:
    def txs(self):
        return [
            Transaction(inputs=("a",), outputs=("b",)),   # intra shard 0
            Transaction(inputs=("a",), outputs=("c",)),   # cross 0->1
            Transaction(inputs=("c",), outputs=("d",)),   # cross 1->2
            Transaction(inputs=("d",), outputs=("d",)),   # self-loop shard 2
        ]

    def test_uniform_model_matches_plain_evaluator(self):
        params = TxAlloParams(k=3, eta=2.0, lam=10.0)
        with_model = evaluate_with_model(
            self.txs(), MAPPING, params, UniformEta(params.eta)
        )
        plain = evaluate_allocation(
            [tuple(sorted(tx.accounts)) for tx in self.txs()], MAPPING, params
        )
        assert with_model == plain

    def test_role_aware_shifts_workload_not_gamma(self):
        params = TxAlloParams(k=3, eta=2.0, lam=10.0)
        uniform = evaluate_with_model(self.txs(), MAPPING, params, UniformEta(2.0))
        aware = evaluate_with_model(
            self.txs(), MAPPING, params,
            RoleAwareModel(input_eta=4.0, output_eta=1.0, fanout_surcharge=0.0),
        )
        assert aware.cross_shard_ratio == uniform.cross_shard_ratio
        assert aware.shard_workloads != uniform.shard_workloads

    def test_output_shard_cheaper_under_role_model(self):
        params = TxAlloParams(k=3, eta=2.0, lam=10.0)
        txs = [Transaction(inputs=("a",), outputs=("c",))]
        report = evaluate_with_model(
            txs, MAPPING, params,
            RoleAwareModel(input_eta=4.0, output_eta=1.5, fanout_surcharge=0.0),
        )
        assert report.shard_workloads[0] == pytest.approx(4.0)
        assert report.shard_workloads[1] == pytest.approx(1.5)

    def test_throughput_credit_unchanged_by_model(self):
        """The model prices workload, not throughput shares (1/mu)."""
        params = TxAlloParams(k=3, eta=2.0, lam=1e9)
        txs = self.txs()
        uniform = evaluate_with_model(txs, MAPPING, params, UniformEta(2.0))
        aware = evaluate_with_model(txs, MAPPING, params, RoleAwareModel())
        assert uniform.throughput == pytest.approx(aware.throughput)

    def test_empty_stream(self):
        params = TxAlloParams(k=3, eta=2.0, lam=10.0)
        report = evaluate_with_model([], MAPPING, params, UniformEta(2.0))
        assert report.num_transactions == 0
