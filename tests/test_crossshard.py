"""Tests for the two-phase cross-shard commit protocol."""

import pytest

from repro.chain.crossshard import CrossShardCoordinator, estimate_eta
from repro.chain.network import NetworkModel
from repro.errors import ParameterError, SimulationError


def coordinator(protocol="pbft", miners=4):
    return CrossShardCoordinator(
        NetworkModel(jitter_fraction=0.0),
        miners_per_shard=miners,
        protocol=protocol,
    )


class TestSingleShard:
    def test_intra_commit_one_round(self):
        outcome = coordinator().execute([3])
        assert outcome.committed
        assert outcome.consensus_rounds == 1
        assert outcome.involved_shards == (3,)

    def test_intra_abort_on_no_vote(self):
        outcome = coordinator().execute([3], votes=[False])
        assert not outcome.committed


class TestCrossShard:
    def test_all_yes_commits(self):
        outcome = coordinator().execute([0, 1, 2])
        assert outcome.committed
        assert outcome.consensus_rounds == 6  # prepare + finalise per shard

    def test_any_no_aborts(self):
        outcome = coordinator().execute([0, 1], votes=[True, False])
        assert not outcome.committed

    def test_atomicity_is_all_or_nothing(self):
        """No partial commit state is representable: one boolean for all."""
        for votes in ([True, True], [True, False], [False, False]):
            outcome = coordinator().execute([0, 1], votes=votes)
            assert outcome.committed == all(votes)

    def test_duplicate_shards_collapsed(self):
        outcome = coordinator().execute([1, 1, 2])
        assert outcome.involved_shards == (1, 2)

    def test_cross_costs_more_than_intra(self):
        intra = coordinator().execute([0])
        cross = coordinator().execute([0, 1])
        assert cross.latency_seconds > intra.latency_seconds
        assert cross.messages > intra.messages

    def test_more_shards_more_messages(self):
        two = coordinator().execute([0, 1])
        three = coordinator().execute([0, 1, 2])
        assert three.messages > two.messages

    def test_empty_shard_set_rejected(self):
        with pytest.raises(SimulationError):
            coordinator().execute([])

    def test_vote_count_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            coordinator().execute([0, 1], votes=[True])

    def test_invalid_miner_count(self):
        with pytest.raises(ParameterError):
            CrossShardCoordinator(NetworkModel(), miners_per_shard=0)


class TestEtaEstimation:
    def test_eta_above_one(self):
        eta = estimate_eta(NetworkModel(jitter_fraction=0.0), miners_per_shard=4)
        assert eta > 1.0

    def test_eta_in_papers_range_for_defaults(self):
        """The paper sweeps eta in [2, 10]; defaults should land there."""
        eta = estimate_eta(NetworkModel(jitter_fraction=0.0), miners_per_shard=10)
        assert 1.5 <= eta <= 10.0

    def test_hotstuff_eta_differs_from_pbft(self):
        net = NetworkModel(jitter_fraction=0.0)
        assert estimate_eta(net, 10, "pbft") != estimate_eta(net, 10, "hotstuff")
