"""Figure 9 — A-TxAllo throughput evolution under various global gaps.

Paper: with hourly adaptive updates (τ₁ = 300 blocks) and global refreshes
every 20-200 steps, the average throughput differences between gaps are
insignificant — even a 9-day global gap loses little; workload pattern
fluctuation dominates.
"""

import pytest

from repro.eval import experiments


@pytest.fixture(scope="module")
def fig9(workload):
    return experiments.figure9(
        workload, k=20, eta=2.0, gaps=(5, 10, 20), max_steps=20
    )


def test_fig9_report(fig9):
    print()
    print(fig9.render())


def test_all_policies_ran_all_steps(fig9):
    lengths = {len(run.steps) for run in fig9.runs.values()}
    assert len(lengths) == 1


def test_adaptive_close_to_global_average(fig9):
    """Paper Fig. 9b: no significant average-throughput difference."""
    global_avg = fig9.runs["Global Method"].mean_throughput
    for name, run in fig9.runs.items():
        if name == "Global Method":
            continue
        assert run.mean_throughput >= 0.85 * global_avg, (
            f"{name} lost more than 15% vs the global method"
        )


def test_larger_gap_does_not_collapse(fig9):
    """Even the largest gap's worst step stays usable."""
    largest = fig9.runs["Gap=20"]
    global_best = max(s.throughput_x for s in fig9.runs["Global Method"].steps)
    worst = min(s.throughput_x for s in largest.steps)
    assert worst >= 0.5 * global_best


def test_global_steps_marked(fig9):
    run = fig9.runs["Gap=5"]
    kinds = [s.kind for s in run.steps]
    assert kinds[4] == "global" and kinds[0] == "adaptive"


def test_bench_one_adaptive_step(workload, benchmark):
    """pytest-benchmark target: a single A-TxAllo window update."""
    from repro.core.allocation import Allocation
    from repro.core.atxallo import a_txallo
    from repro.core.gtxallo import g_txallo
    from repro.core.params import TxAlloParams

    train, evaluation = workload.blocks.split(0.9)
    params = TxAlloParams.with_capacity_for(train.num_transactions, k=20, eta=2.0)
    from repro.core.graph import TransactionGraph

    graph = TransactionGraph()
    for s in train.account_sets():
        graph.add_transaction(s)
    base = g_txallo(graph, params).allocation.mapping()
    window = list(evaluation.windows(max(1, len(evaluation))))[0]
    window_sets = window.account_sets()

    def one_step():
        g = graph.copy()
        alloc = Allocation.from_partition(g, params, base)
        touched = set()
        for s in window_sets:
            g.add_transaction(s)
            alloc.ingest_transaction(s)
            touched.update(s)
        return a_txallo(alloc, touched)

    benchmark.pedantic(one_step, rounds=2, iterations=1)
