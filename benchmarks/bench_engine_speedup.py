"""Engine speedup run-table: reference vs flat-array ``g_txallo``.

Times the *paper's evaluation pattern* — the Fig. 8 running-time grid,
i.e. ``g_txallo`` end-to-end for every ``(k, eta)`` cell over one shared
workload — on both backends, asserts byte-identical outputs cell by
cell, and writes ``BENCH_engine.json`` next to this file so subsequent
PRs have a perf trajectory to gate against:

``{"scale", "n_nodes", "n_edges", "ref_seconds", "fast_seconds",
"speedup", ...}``

``ref_seconds`` / ``fast_seconds`` are the grid totals (the fast backend
legitimately amortises one freeze + one memoised Louvain partition across
the grid, exactly as ``experiments.sweep`` does); ``single_*`` fields
record one cold/warm ``k=20`` call for the pessimistic view.

Scale knob: ``--scale`` / the ``BENCH_SCALE`` env crank the workload
(CI pins 0.5 for runner budget; ``benchmarks/run_table.py
--local-scale 2`` regenerates a non-toy row locally).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

try:  # script mode from a clean checkout: resolve the src layout
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.gtxallo import g_txallo
from repro.core.params import TxAlloParams
from repro.eval import experiments

BENCH_SCALE = float(os.environ.get("BENCH_SCALE", "0.5"))

#: The Fig. 8 grid as the rest of the benchmark suite runs it
#: (``conftest.BENCH_KS`` x ``conftest.BENCH_ETAS``).
GRID_KS = (2, 10, 20, 40, 60)
GRID_ETAS = (2.0, 6.0, 10.0)

OUT_PATH = Path(__file__).resolve().parent / "BENCH_engine.json"


def _run_grid(workload, backend):
    total = 0.0
    results = {}
    for eta in GRID_ETAS:
        for k in GRID_KS:
            params = TxAlloParams.with_capacity_for(
                workload.num_transactions, k=k, eta=eta, backend=backend
            )
            t0 = time.perf_counter()
            result = g_txallo(workload.graph, params)
            total += time.perf_counter() - t0
            results[(k, eta)] = result
    return total, results


def run_bench(scale: float = BENCH_SCALE, out_path: Path = OUT_PATH) -> dict:
    # Fresh workloads per backend so neither run can warm the other's
    # graph-level caches.
    wl_ref = experiments.build_workload(scale=scale, seed=2022)
    wl_fast = experiments.build_workload(scale=scale, seed=2022)

    ref_seconds, ref_results = _run_grid(wl_ref, "reference")
    fast_seconds, fast_results = _run_grid(wl_fast, "fast")

    # Parity across the whole grid — same mapping, caches and counters.
    for cell, ref in ref_results.items():
        fast = fast_results[cell]
        assert ref.allocation.mapping() == fast.allocation.mapping(), cell
        assert ref.allocation.sigma == fast.allocation.sigma, cell
        assert ref.allocation.lam_hat == fast.allocation.lam_hat, cell
        assert (ref.sweeps, ref.moves, ref.small_nodes_absorbed) == (
            fast.sweeps,
            fast.moves,
            fast.small_nodes_absorbed,
        ), cell

    # One extra cold + warm single call at the paper's headline setting.
    wl_single = experiments.build_workload(scale=scale, seed=2022)
    params = TxAlloParams.with_capacity_for(
        wl_single.num_transactions, k=20, eta=2.0, backend="fast"
    )
    t0 = time.perf_counter()
    g_txallo(wl_single.graph, params)
    single_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    g_txallo(wl_single.graph, params)
    single_warm = time.perf_counter() - t0
    t0 = time.perf_counter()
    g_txallo(wl_ref.graph, params, backend="reference")
    single_ref = time.perf_counter() - t0

    speedup = ref_seconds / fast_seconds if fast_seconds > 0 else float("inf")
    payload = {
        "scale": scale,
        "n_nodes": wl_ref.graph.num_nodes,
        "n_edges": wl_ref.graph.num_edges,
        "n_transactions": wl_ref.num_transactions,
        "grid_ks": list(GRID_KS),
        "grid_etas": list(GRID_ETAS),
        "ref_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "speedup": speedup,
        "single_ref_seconds": single_ref,
        "single_cold_seconds": single_cold,
        "single_warm_seconds": single_warm,
        "single_cold_speedup": single_ref / single_cold if single_cold > 0 else None,
        "single_warm_speedup": single_ref / single_warm if single_warm > 0 else None,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"== engine speedup (scale={scale}) ==")
    for key, value in payload.items():
        print(f"  {key}: {value}")
    return payload


def check_gates(payload: dict) -> list:
    """Return the list of failed gate descriptions (empty = all green)."""
    # The standing ROADMAP gate: >= 3x end-to-end on the evaluation grid
    # at the default BENCH_SCALE=0.5 (small margin for timer noise).
    speedup = payload["speedup"]
    if speedup < 3.0:
        return [f"engine speedup regressed: {speedup:.2f}x < 3x"]
    return []


def test_engine_speedup_run_table(bench_scale):
    payload = run_bench(scale=bench_scale)
    failures = check_gates(payload)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=BENCH_SCALE,
        help="workload scale factor (default: BENCH_SCALE env or 0.5)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUT_PATH,
        help=f"output run-table path (default {OUT_PATH.name} next to this file)",
    )
    args = parser.parse_args()
    result = run_bench(scale=args.scale, out_path=args.out)
    problems = check_gates(result)
    for problem in problems:
        print(f"GATE FAILED: {problem}", file=sys.stderr)
    sys.exit(1 if problems else 0)
