"""Tests for the deterministic Louvain implementation."""

import hashlib
import json

import pytest

from repro.core.graph import TransactionGraph
from repro.core.louvain import louvain_partition, modularity
from tests.conftest import make_random_graph


def two_cliques(size=5, bridge_weight=1):
    g = TransactionGraph()
    left = [f"l{i}" for i in range(size)]
    right = [f"r{i}" for i in range(size)]
    for group in (left, right):
        for i in range(size):
            for j in range(i + 1, size):
                g.add_transaction((group[i], group[j]))
    for _ in range(bridge_weight):
        g.add_transaction((left[0], right[0]))
    return g, left, right


class TestStructureRecovery:
    def test_two_cliques_found(self):
        g, left, right = two_cliques()
        part = louvain_partition(g)
        left_labels = {part[v] for v in left}
        right_labels = {part[v] for v in right}
        assert len(left_labels) == 1
        assert len(right_labels) == 1
        assert left_labels != right_labels

    def test_labels_are_dense_from_zero(self):
        g, _, _ = two_cliques()
        labels = set(louvain_partition(g).values())
        assert labels == set(range(len(labels)))

    def test_single_clique_single_community(self):
        g = TransactionGraph()
        nodes = [f"n{i}" for i in range(6)]
        for i in range(6):
            for j in range(i + 1, 6):
                g.add_transaction((nodes[i], nodes[j]))
        assert len(set(louvain_partition(g).values())) == 1

    def test_empty_graph(self):
        assert louvain_partition(TransactionGraph()) == {}

    def test_isolated_self_loop_node(self):
        g = TransactionGraph()
        g.add_transaction(("solo",))
        g.add_transaction(("a", "b"))
        part = louvain_partition(g)
        assert part["solo"] != part["a"]

    def test_all_nodes_labelled(self, clustered_graph):
        part = louvain_partition(clustered_graph)
        assert set(part) == set(clustered_graph.nodes())

    def test_three_planted_groups_recovered(self):
        g = make_random_graph(num_accounts=60, num_transactions=500, seed=3, groups=3)
        part = louvain_partition(g)
        # Group labels should be few (close to 3) and modularity positive.
        assert len(set(part.values())) <= 8
        assert modularity(g, part) > 0.3


class TestDeterminism:
    def test_same_graph_same_partition(self, clustered_graph):
        p1 = louvain_partition(clustered_graph)
        p2 = louvain_partition(clustered_graph)
        assert p1 == p2

    def test_rebuilt_graph_same_partition(self):
        g1 = make_random_graph(seed=6)
        g2 = make_random_graph(seed=6)
        assert louvain_partition(g1) == louvain_partition(g2)

    def test_copy_same_partition(self, clustered_graph):
        assert louvain_partition(clustered_graph) == louvain_partition(
            clustered_graph.copy()
        )


#: SHA-256 of the canonical (sorted, JSON) partitions produced by the
#: *original* ``_one_level`` — the one that sorted ``nbr_comm`` per node
#: and ratcheted ``best_gain`` by ``_MIN_GAIN`` between candidates —
#: captured by running the seed implementation on these graphs before it
#: was replaced by the min-index scan.  Note the scope of the claim: the
#: new exact (gain, -index) argmax could in principle pick a different
#: destination when two candidate gains sit within ``_MIN_GAIN`` (1e-12)
#: of each other; these pins prove the partitions are unchanged on every
#: covered workload (planted clusters, 9-community synthetic Ethereum
#: traffic, fractional multi-account weights), not on all graphs.
#: The first three ``rand_*`` entries deliberately share a digest — they
#: all recover the same planted 3-group split; the remaining seven have
#: pairwise-distinct partitions.
_PINNED_PARTITIONS = {
    "two_cliques": "dc740711ac6b052494107cfa712f2b4e80eb4c9751ce35baaa054f294341429f",
    "rand_seed3_g3": "a10fc91502faa2366a926a68892f906211a6121737cf49fed55848947e64de42",
    "rand_seed11": "a10fc91502faa2366a926a68892f906211a6121737cf49fed55848947e64de42",
    "rand_seed6": "a10fc91502faa2366a926a68892f906211a6121737cf49fed55848947e64de42",
    "rand_seed7_g4": "a1de9cc0f6f87b5398d59124e63fcced3043a27e27984e63b131f093ba13c401",
    "rand_seed19_g5": "24feb4bc07365eb45f27cc67686b95d1c081d009c3c34ab50b92a21019d06fe5",
    "synthetic_seed5": "b3ae64f00c0dc976cb90ad0c12bf2f3fbef2b907d13d9521bbe4a844dd63ad32",
    "synthetic_seed9": "c5ffd002a8b192b3f4d4498c6eed20d686205b0af52a5cff029fabcf6d8e7c1f",
    "multiacct_seed2": "11fd734954cf7b52e89c18a5c48ab3ac1ef4bf008b49292fa280a2040ae27aa4",
    "multiacct_seed17": "f57c4f37db921d4d5705517c54b2ab8942f8e12a8881f7010d01aa4838f2c009",
}


def _synthetic_graph(seed, num_accounts=300, num_transactions=1800):
    from repro.data.synthetic import (
        EthereumWorkloadGenerator,
        WorkloadConfig,
        account_sets,
    )

    config = WorkloadConfig(
        num_accounts=num_accounts, num_transactions=num_transactions, seed=seed
    )
    graph = TransactionGraph()
    for s in account_sets(EthereumWorkloadGenerator(config).generate()):
        graph.add_transaction(s)
    return graph


def _multiacct_graph(seed):
    """Multi-account transactions -> fractional 1/C(n,2) edge weights."""
    import random

    rng = random.Random(seed)
    accounts = [f"m{i:03d}" for i in range(50)]
    graph = TransactionGraph()
    for _ in range(400):
        n = rng.choice([2, 3, 3, 4, 5])
        graph.add_transaction(rng.sample(accounts, n))
    return graph


def _pin_graphs():
    return {
        "two_cliques": two_cliques()[0],
        "rand_seed3_g3": make_random_graph(
            num_accounts=60, num_transactions=500, seed=3, groups=3
        ),
        "rand_seed11": make_random_graph(),
        "rand_seed6": make_random_graph(seed=6),
        "rand_seed7_g4": make_random_graph(
            num_accounts=80, num_transactions=700, seed=7, groups=4
        ),
        "rand_seed19_g5": make_random_graph(
            num_accounts=90, num_transactions=800, seed=19, groups=5
        ),
        "synthetic_seed5": _synthetic_graph(5),
        "synthetic_seed9": _synthetic_graph(9),
        "multiacct_seed2": _multiacct_graph(2),
        "multiacct_seed17": _multiacct_graph(17),
    }


def _partition_digest(partition):
    canon = json.dumps(sorted(partition.items()), separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


class TestMinIndexScanPreservesPartitions:
    """Satellite of the engine PR: the per-node ``sorted(nbr_comm)`` was
    replaced by an exact (gain, -index) argmax; partitions must match the
    seed implementation's on every pinned workload, for both backends."""

    @pytest.mark.parametrize("name", sorted(_PINNED_PARTITIONS))
    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_partition_unchanged(self, name, backend):
        graph = _pin_graphs()[name]
        digest = _partition_digest(louvain_partition(graph, backend=backend))
        assert digest == _PINNED_PARTITIONS[name]


class TestModularity:
    def test_single_community_modularity_zero(self):
        g, _, _ = two_cliques()
        part = {v: 0 for v in g.nodes()}
        assert modularity(g, part) == pytest.approx(0.0, abs=1e-9)

    def test_good_split_beats_trivial(self):
        g, left, right = two_cliques()
        split = {v: (0 if v.startswith("l") else 1) for v in g.nodes()}
        trivial = {v: 0 for v in g.nodes()}
        assert modularity(g, split) > modularity(g, trivial)

    def test_louvain_partition_is_near_optimal_on_cliques(self):
        g, left, right = two_cliques()
        part = louvain_partition(g)
        split = {v: (0 if v.startswith("l") else 1) for v in g.nodes()}
        assert modularity(g, part) >= modularity(g, split) - 1e-9

    def test_empty_graph_modularity(self):
        assert modularity(TransactionGraph(), {}) == 0.0

    def test_matches_networkx(self, clustered_graph):
        """Cross-check modularity values against networkx."""
        networkx = pytest.importorskip("networkx")
        G = networkx.Graph()
        for u, v, w in clustered_graph.edges():
            if G.has_edge(u, v):
                G[u][v]["weight"] += w
            else:
                G.add_edge(u, v, weight=w)
        part = louvain_partition(clustered_graph)
        groups = {}
        for v, c in part.items():
            groups.setdefault(c, set()).add(v)
        expected = networkx.community.modularity(
            G, list(groups.values()), weight="weight"
        )
        assert modularity(clustered_graph, part) == pytest.approx(expected, abs=1e-6)

    def test_quality_competitive_with_networkx(self, clustered_graph):
        networkx = pytest.importorskip("networkx")
        G = networkx.Graph()
        for u, v, w in clustered_graph.edges():
            if G.has_edge(u, v):
                G[u][v]["weight"] += w
            else:
                G.add_edge(u, v, weight=w)
        ours = modularity(clustered_graph, louvain_partition(clustered_graph))
        comms = networkx.community.louvain_communities(G, weight="weight", seed=7)
        theirs = networkx.community.modularity(G, comms, weight="weight")
        assert ours >= theirs - 0.05
