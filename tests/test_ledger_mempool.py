"""Tests for the ledger and the chronological mempool."""

import pytest

from repro.chain.ledger import Ledger
from repro.chain.mempool import Mempool
from repro.chain.types import Block, Transaction
from repro.errors import LedgerError, SimulationError


def make_block(height, parent="", n=2):
    txs = tuple(
        Transaction.transfer(f"s{height}_{i}", f"r{height}_{i}") for i in range(n)
    )
    return Block(height=height, transactions=txs, parent_hash=parent)


def make_chain(n=4):
    ledger = Ledger()
    parent = ""
    for h in range(n):
        block = make_block(h, parent)
        ledger.append(block)
        parent = block.block_hash
    return ledger


class TestLedger:
    def test_append_and_counters(self):
        ledger = make_chain(3)
        assert ledger.num_blocks == 3
        assert ledger.num_transactions == 6
        assert ledger.num_accounts == 12

    def test_non_contiguous_rejected(self):
        ledger = Ledger()
        with pytest.raises(LedgerError):
            ledger.append(make_block(5))

    def test_bad_parent_rejected(self):
        ledger = Ledger()
        first = make_block(0)
        ledger.append(first)
        with pytest.raises(LedgerError):
            ledger.append(make_block(1, parent="deadbeef"))

    def test_blank_parent_tolerated(self):
        ledger = Ledger()
        ledger.append(make_block(0))
        ledger.append(make_block(1, parent=""))
        assert ledger.num_blocks == 2

    def test_block_at(self):
        ledger = make_chain(3)
        assert ledger.block_at(1).height == 1
        with pytest.raises(LedgerError):
            ledger.block_at(99)

    def test_blocks_in_window(self):
        ledger = make_chain(5)
        heights = [b.height for b in ledger.blocks_in(1, 4)]
        assert heights == [1, 2, 3]

    def test_window_clamped_to_range(self):
        ledger = make_chain(3)
        assert [b.height for b in ledger.blocks_in(-5, 99)] == [0, 1, 2]

    def test_invalid_window(self):
        ledger = make_chain(3)
        with pytest.raises(LedgerError):
            list(ledger.blocks_in(3, 1))

    def test_transactions_in_order(self):
        ledger = make_chain(2)
        senders = [tx.inputs[0] for tx in ledger.transactions()]
        assert senders == ["s0_0", "s0_1", "s1_0", "s1_1"]

    def test_genesis_offset(self):
        ledger = Ledger(genesis_height=100)
        block = Block(height=100, transactions=(Transaction.transfer("a", "b"),))
        ledger.append(block)
        assert ledger.tip.height == 100
        assert ledger.next_height == 101

    def test_accounts_snapshot_is_copy(self):
        ledger = make_chain(1)
        snap = ledger.accounts()
        snap.add("intruder")
        assert "intruder" not in ledger.accounts()


class TestMempool:
    def tx(self, i):
        return Transaction.transfer(f"s{i}", f"r{i}")

    def test_fifo_order(self):
        pool = Mempool()
        pool.add(self.tx(1))
        pool.add(self.tx(2))
        drained = pool.drain(capacity=10.0)
        assert [t.inputs[0] for t, _ in drained] == ["s1", "s2"]

    def test_capacity_respected(self):
        pool = Mempool()
        for i in range(5):
            pool.add(self.tx(i), cost=1.0)
        drained = pool.drain(capacity=3.0)
        assert len(drained) == 3
        assert len(pool) == 2

    def test_head_blocks_the_queue(self):
        """Chronological rule: an expensive head is not skipped."""
        pool = Mempool()
        pool.add(self.tx(0), cost=5.0)
        pool.add(self.tx(1), cost=1.0)
        assert pool.drain(capacity=2.0) == []
        assert len(pool) == 2

    def test_pending_workload_tracked(self):
        pool = Mempool()
        pool.add(self.tx(0), cost=2.0)
        pool.add(self.tx(1), cost=3.0)
        assert pool.pending_workload == pytest.approx(5.0)
        pool.drain(capacity=2.0)
        assert pool.pending_workload == pytest.approx(3.0)

    def test_peek(self):
        pool = Mempool()
        assert pool.peek() is None
        pool.add(self.tx(9))
        assert pool.peek().inputs[0] == "s9"

    def test_invalid_cost(self):
        pool = Mempool()
        with pytest.raises(SimulationError):
            pool.add(self.tx(0), cost=0.0)

    def test_invalid_capacity(self):
        pool = Mempool()
        with pytest.raises(SimulationError):
            pool.drain(capacity=-1.0)

    def test_add_all(self):
        pool = Mempool()
        pool.add_all([self.tx(i) for i in range(4)])
        assert len(pool) == 4

    def test_workload_accumulator_resets_exactly_on_empty(self):
        """Regression: cost 0.1 is not binary-representable, so many
        add/drain cycles used to leave the accumulator at a tiny nonzero
        residue instead of exactly 0.0 — which then leaked into backlog
        reports and capacity checks.  An empty queue must mean exactly
        zero pending workload."""
        pool = Mempool()
        for cycle in range(500):
            for i in range(7):
                pool.add(self.tx(cycle * 7 + i), cost=0.1)
            pool.drain(capacity=1000.0)
            assert len(pool) == 0
            assert pool.pending_workload == 0.0

    def test_negative_workload_accumulator_raises(self):
        """White-box: a negative accumulator means the bookkeeping lost
        track of queued cost; drain must fail loudly, not report a
        nonsense backlog forever."""
        pool = Mempool()
        pool.add(self.tx(0), cost=1.0)
        pool._pending_workload = -1.0
        with pytest.raises(SimulationError):
            pool.drain(capacity=10.0)
