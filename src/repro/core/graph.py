"""The transaction graph of Definition 2 (paper Section III-C).

Accounts are nodes; each transaction ``Tx`` touching the account set
``A_Tx`` contributes a total weight of 1, split uniformly over the
``π(Tx) = C(|A_Tx|, 2)`` unordered account pairs it induces.  A transaction
whose accounts collapse to a single address (e.g. an Ethereum
self-replacement transaction) becomes a *self-loop* of weight 1.

The graph is undirected and weighted, stored as a dict-of-dicts adjacency
structure optimised for *ingest*: accumulating a new transaction's pair
weights is a handful of dict updates.

Ingest/freeze lifecycle
-----------------------
The allocation hot paths (Louvain initialisation, G-TxAllo optimisation
sweeps) do not run on the dict form — scanning string-keyed dicts per node
per sweep pays Python string hashing and per-node dict construction.  They
run on the *frozen* form instead: :meth:`TransactionGraph.freeze` interns
account strings to dense integer ids and lowers the adjacency into flat
CSR arrays (:class:`repro.core.csr.CSRGraph`), which the flat-array sweep
engine (:mod:`repro.core.engine`) consumes.  The two forms are linked by a
version counter: every mutation (``add_node`` / ``add_edge`` /
``add_transaction``) bumps the version, and ``freeze()`` returns a cached
snapshot while the version is unchanged, so repeated allocator runs over a
quiescent graph freeze exactly once.  The frozen snapshot preserves the
dict rows' iteration order, which keeps every float accumulation in the
fast engine bit-identical to the reference dict-based scans.

Determinism
-----------
``nodes()`` and ``neighbours()`` iterate in *insertion order* which, for a
ledger replay, is the chronological account-appearance order — a canonical
order every miner can reproduce (paper Section IV-A).  ``nodes_sorted()``
gives an explicitly sorted order when insertion order is not meaningful;
the frozen form assigns integer ids in that sorted order.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import GraphError, TransactionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.csr import CSRGraph

#: Type alias for account identifiers.  Any hashable, totally-orderable value
#: works; the chain substrate uses hex address strings.
Node = str


def pair_count(num_accounts: int) -> int:
    """``π(Tx)``: number of one-to-one edges induced by a transaction.

    ``π(Tx) = C(|A_Tx|, 2)`` (paper Section III-C).  A single-account
    transaction induces one self-loop, so ``pair_count(1) == 1`` by
    convention (the whole unit weight lands on the loop).
    """
    if num_accounts < 1:
        raise TransactionError(f"a transaction must touch at least one account, got {num_accounts}")
    if num_accounts == 1:
        return 1
    return math.comb(num_accounts, 2)


class TransactionGraph:
    """Undirected weighted multigraph-as-simple-graph with self-loops.

    Weights accumulate: adding the same account pair twice sums the edge
    weight, exactly as Definition 2 sums over all transactions involving
    both endpoints.
    """

    __slots__ = (
        "_adj",
        "_total_weight",
        "_num_edges",
        "_num_transactions",
        "_version",
        "_frozen",
    )

    def __init__(self) -> None:
        self._adj: Dict[Node, Dict[Node, float]] = {}
        # Total edge weight, counting each unordered pair once and each
        # self-loop once.  Equals the number of transactions ingested via
        # add_transaction() because each transaction distributes weight 1.
        self._total_weight: float = 0.0
        self._num_edges: int = 0
        self._num_transactions: int = 0
        # Mutation counter + cached (version, CSRGraph) frozen snapshot.
        self._version: int = 0
        self._frozen: Optional[Tuple[int, "CSRGraph"]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, v: Node) -> None:
        """Ensure ``v`` exists (isolated nodes are permitted)."""
        if v not in self._adj:
            self._adj[v] = {}
            self._version += 1

    def add_edge(self, u: Node, v: Node, weight: float) -> None:
        """Accumulate ``weight`` on the undirected edge ``{u, v}``.

        ``u == v`` creates/updates a self-loop.  Weights must be positive;
        zero-weight edges are a modelling error upstream.
        """
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight!r} for {{{u!r}, {v!r}}}")
        self.add_node(u)
        self.add_node(v)
        row = self._adj[u]
        if v in row:
            row[v] += weight
            if u != v:
                self._adj[v][u] += weight
        else:
            row[v] = weight
            if u != v:
                self._adj[v][u] = weight
            self._num_edges += 1
        self._total_weight += weight
        self._version += 1

    def add_transaction(self, accounts: Iterable[Node]) -> None:
        """Ingest one transaction per Definition 2.

        ``accounts`` is the (possibly repeating) union of the transaction's
        input and output accounts; duplicates are collapsed, as the set
        ``A_Tx`` in the paper is a set.
        """
        unique: List[Node] = sorted(set(accounts))
        if not unique:
            raise TransactionError("a transaction must touch at least one account")
        self._num_transactions += 1
        n = len(unique)
        if n == 1:
            self.add_edge(unique[0], unique[0], 1.0)
            return
        share = 1.0 / pair_count(n)
        for i in range(n):
            for j in range(i + 1, n):
                self.add_edge(unique[i], unique[j], share)

    def add_transactions(self, transactions: Iterable[Iterable[Node]]) -> None:
        """Bulk :meth:`add_transaction`."""
        for accounts in transactions:
            self.add_transaction(accounts)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, v: Node) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    @property
    def num_nodes(self) -> int:
        """Number of accounts seen so far."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of distinct undirected edges (self-loops count once)."""
        return self._num_edges

    @property
    def num_transactions(self) -> int:
        """Number of transactions ingested via :meth:`add_transaction`."""
        return self._num_transactions

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights (pairs once, loops once).

        For a graph built purely with :meth:`add_transaction` this equals
        the transaction count, because every transaction spreads exactly
        one unit of weight.
        """
        return self._total_weight

    def nodes(self) -> Iterator[Node]:
        """Nodes in insertion (chronological-appearance) order."""
        return iter(self._adj)

    def nodes_sorted(self) -> List[Node]:
        """Nodes in ascending identifier order (a canonical order)."""
        return sorted(self._adj)

    def neighbours(self, v: Node) -> Dict[Node, float]:
        """Adjacency row of ``v`` (includes the self-loop if present).

        The returned mapping is *live*; callers must not mutate it.
        """
        try:
            return self._adj[v]
        except KeyError:
            raise GraphError(f"unknown node {v!r}") from None

    def edge_weight(self, u: Node, v: Node) -> float:
        """Weight of ``{u, v}``; 0.0 if absent."""
        row = self._adj.get(u)
        if row is None:
            return 0.0
        return row.get(v, 0.0)

    def self_loop(self, v: Node) -> float:
        """``w{v, v}`` — the self-loop weight of ``v`` (0.0 if none)."""
        return self.edge_weight(v, v)

    def external_strength(self, v: Node) -> float:
        """``w{v, V/v}`` — total weight from ``v`` to *other* nodes.

        Excludes the self-loop; this is the quantity the paper's throughput
        deltas use (Section V-B).
        """
        row = self.neighbours(v)
        loop = row.get(v, 0.0)
        return sum(row.values()) - loop

    def strength(self, v: Node) -> float:
        """Total incident weight of ``v``: external strength + self-loop."""
        return sum(self.neighbours(v).values())

    def degree(self, v: Node) -> int:
        """Number of distinct neighbours of ``v`` (self counts if looped)."""
        return len(self.neighbours(v))

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Yield each undirected edge exactly once as ``(u, v, w)``.

        Self-loops are yielded as ``(v, v, w)``.  Pair edges are oriented
        with the earlier-*inserted* endpoint first: the outer loop walks
        nodes in insertion order and ``seen`` holds exactly the nodes
        already walked, so a pair ``{u, v}`` is emitted at its
        earlier-inserted endpoint (the later one is still missing from
        ``seen``) and skipped at the later one.  A regression test pins
        this orientation; the frozen CSR form relies on it to replay
        edge-ordered passes bit-identically (see ``ins_rank`` in
        :class:`repro.core.csr.CSRGraph`).
        """
        seen: set = set()
        for u, row in self._adj.items():
            for v, w in row.items():
                if u == v:
                    yield u, v, w
                elif v not in seen:
                    yield u, v, w
            seen.add(u)

    # ------------------------------------------------------------------
    # Frozen (compiled) view
    # ------------------------------------------------------------------
    def freeze(self) -> "CSRGraph":
        """Compile the graph into its flat CSR form for the sweep engine.

        Returns a :class:`repro.core.csr.CSRGraph` snapshot: account
        strings interned to dense integer ids (sorted-identifier order)
        and adjacency lowered into flat index/neighbour/weight arrays plus
        per-node self-loop and strength vectors.  The snapshot is cached
        against an internal mutation counter — freezing an unchanged
        graph returns the same object, so back-to-back allocator runs
        (e.g. a (k, eta) parameter sweep) pay the O(N + E) lowering once.

        The snapshot is immutable and detached: mutating the graph
        afterwards does not touch it, it only invalidates the cache.
        """
        from repro.core.csr import CSRGraph

        frozen = self._frozen
        if frozen is not None and frozen[0] == self._version:
            return frozen[1]
        csr = CSRGraph.from_graph(self)
        self._frozen = (self._version, csr)
        return csr

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def subgraph_weight(self, nodes: Iterable[Node]) -> float:
        """Total weight internal to ``nodes`` (pairs once, loops once)."""
        node_set = set(nodes)
        total = 0.0
        for v in node_set:
            if v not in self._adj:
                continue
            for u, w in self._adj[v].items():
                if u == v:
                    total += w
                elif u in node_set and u > v:
                    total += w
        return total

    def copy(self) -> "TransactionGraph":
        """Deep copy preserving insertion order and all counters."""
        clone = TransactionGraph()
        clone._adj = {v: dict(row) for v, row in self._adj.items()}
        clone._total_weight = self._total_weight
        clone._num_edges = self._num_edges
        clone._num_transactions = self._num_transactions
        return clone

    def degree_histogram(self, bins: int = 10) -> List[Tuple[int, int]]:
        """Coarse log-ish histogram of node degrees, for dataset cards.

        Returns ``(upper_bound, count)`` pairs with geometric bin edges.
        """
        if not self._adj:
            return []
        degrees = sorted(len(row) for row in self._adj.values())
        top = degrees[-1]
        edges_: List[int] = []
        bound = 1
        while bound < top and len(edges_) < bins - 1:
            edges_.append(bound)
            bound *= 4
        edges_.append(top)
        result = []
        idx = 0
        for bound in edges_:
            count = 0
            while idx < len(degrees) and degrees[idx] <= bound:
                count += 1
                idx += 1
            result.append((bound, count))
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TransactionGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"transactions={self.num_transactions}, weight={self.total_weight:.2f})"
        )
