#!/usr/bin/env python3
"""Integrating TxAllo into a sharded protocol (paper Sections IV & VII).

This example wires the whole substrate together the way a type-1 sharded
blockchain (fully replicated state, sharded processing) would:

1. derive a *principled* η from the consensus and network cost models —
   the latency ratio of a 2PC cross-shard commit vs. an intra-shard
   commit (Section III-A treats η as application-specific);
2. reshuffle miners deterministically into k shards (Section II-B's
   defence against single-shard take-over, and the reason every shard
   has equal capacity λ);
3. allocate accounts with G-TxAllo — resolved by name through the
   allocator registry (:mod:`repro.allocators`), the same seam every
   harness and the CLI dispatch through — and verify determinism: two
   independent "miners" compute byte-identical mappings, which is what
   lets the protocol skip an extra consensus round (Section IV-A);
4. run the discrete-time shard simulator and check the analytic
   throughput/latency formulas (Eqs. 2-4) against observed behaviour.

Run with::

    python examples/protocol_integration.py --k 8 --miners 64
"""

import argparse

from repro import TransactionGraph, TxAlloParams, allocators, evaluate_allocation
from repro.chain import (
    CrossShardCoordinator,
    MinerPool,
    NetworkModel,
    estimate_eta,
    simulate_allocation,
)
from repro.data import EthereumWorkloadGenerator, WorkloadConfig, account_sets


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--miners", type=int, default=64)
    parser.add_argument("--protocol", choices=["pbft", "hotstuff"], default="pbft")
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--seed", type=int, default=2022)
    args = parser.parse_args()

    # 1. Price the cross-shard overhead to pick eta.
    network = NetworkModel(seed=args.seed)
    miners_per_shard = args.miners // args.k
    eta = estimate_eta(network, miners_per_shard, args.protocol)
    coordinator = CrossShardCoordinator(network, miners_per_shard, args.protocol)
    intra = coordinator.execute([0])
    cross = coordinator.execute([0, 1])
    print(f"consensus: {args.protocol} with {miners_per_shard} miners/shard")
    print(f"  intra-shard commit: {intra.latency_seconds * 1000:.0f} ms, "
          f"{intra.messages} messages")
    print(f"  cross-shard 2PC   : {cross.latency_seconds * 1000:.0f} ms, "
          f"{cross.messages} messages")
    print(f"  derived eta       : {eta:.2f}")

    # 2. Reshuffle miners (epoch 0 and 1) — uniform shard capacity.
    pool = MinerPool(args.miners, args.k, seed=args.seed)
    print(f"\nminer reshuffle: sizes {pool.shard_sizes()} (gap <= 1: "
          f"{pool.max_size_gap() <= 1})")
    pool.reshuffle(epoch=1)
    print(f"epoch 1 reshuffle:  sizes {pool.shard_sizes()}")

    # 3. Allocate with G-TxAllo; verify two miners agree bit-for-bit.
    config = WorkloadConfig(
        num_accounts=int(10_000 * args.scale),
        num_transactions=int(60_000 * args.scale),
        seed=args.seed,
    )
    transactions = EthereumWorkloadGenerator(config).generate()
    sets_ = account_sets(transactions)

    def miner_computes_allocation():
        graph = TransactionGraph()
        for s in sets_:
            graph.add_transaction(s)
        params = TxAlloParams.with_capacity_for(len(sets_), k=args.k, eta=eta)
        # Registry dispatch: the same lookup the eval harness and the
        # CLI use; swapping the method name swaps the whole pipeline.
        allocator = allocators.get("txallo")
        return params, allocator.allocate(graph, params)

    params, mapping_miner_a = miner_computes_allocation()
    _, mapping_miner_b = miner_computes_allocation()
    assert mapping_miner_a == mapping_miner_b
    print(f"\ntwo miners computed identical allocations for "
          f"{len(mapping_miner_a)} accounts — no extra consensus round needed ✔")

    # 4. Cross-validate the analytic model against the event simulator.
    analytic = evaluate_allocation(sets_, mapping_miner_a, params)
    simulated = simulate_allocation(transactions, mapping_miner_a, params)
    print("\nanalytic vs simulated:")
    print(f"  cross-shard ratio : {analytic.cross_shard_ratio:.3f} vs "
          f"{simulated.cross_shard_ratio:.3f}")
    print(f"  throughput        : {analytic.throughput:.0f} vs "
          f"{simulated.first_unit_throughput:.0f} (first block interval)")
    print(f"  worst-case latency: {analytic.worst_case_latency:.0f} vs "
          f"{simulated.worst_case_latency} blocks")
    assert analytic.cross_shard_ratio == simulated.cross_shard_ratio
    assert abs(analytic.worst_case_latency - simulated.worst_case_latency) <= 1
    print("\nEqs. 2-4 agree with the event-level simulation ✔")


if __name__ == "__main__":
    main()
