"""Ablation — G-TxAllo initialisation: Louvain vs. hash vs. single-blob.

DESIGN.md §5.  The paper motivates Louvain initialisation as both a
quality and a speed device; this ablation quantifies it: starting the
optimisation phase from a hash partition (or from everything-in-one-shard)
must not beat the Louvain start on throughput, and typically needs more
sweeps.
"""

import pytest

from repro.baselines.hash_allocation import hash_partition
from repro.core.gtxallo import g_txallo
from repro.core.params import TxAlloParams


@pytest.fixture(scope="module")
def setups(workload):
    params = TxAlloParams.with_capacity_for(workload.num_transactions, k=20, eta=2.0)
    louvain_run = g_txallo(workload.graph, params)
    hash_init = hash_partition(workload.graph.nodes_sorted(), 20)
    hash_run = g_txallo(workload.graph, params, initial_partition=hash_init)
    blob_init = {v: 0 for v in workload.graph.nodes()}
    blob_run = g_txallo(workload.graph, params, initial_partition=blob_init)
    return params, louvain_run, hash_run, blob_run


def test_ablation_report(setups):
    params, louvain_run, hash_run, blob_run = setups
    from repro.eval.reporting import format_table

    rows = []
    for name, run in [
        ("Louvain init", louvain_run),
        ("hash init", hash_run),
        ("single-blob init", blob_run),
    ]:
        rows.append(
            (
                name,
                run.allocation.total_throughput() / params.lam,
                run.sweeps,
                run.moves,
                run.total_seconds,
            )
        )
    print()
    print(format_table(
        ["initialisation", "throughput (x)", "sweeps", "moves", "seconds"], rows
    ))


def test_louvain_init_not_worse(setups):
    params, louvain_run, hash_run, blob_run = setups
    ours = louvain_run.allocation.total_throughput()
    assert ours >= hash_run.allocation.total_throughput() * 0.98
    assert ours >= blob_run.allocation.total_throughput() * 0.98


def test_hash_init_needs_more_moves(setups):
    _, louvain_run, hash_run, _ = setups
    assert hash_run.moves > louvain_run.moves


def test_bench_louvain_initialisation(workload, benchmark):
    from repro.core.louvain import louvain_partition

    benchmark.pedantic(
        louvain_partition, args=(workload.graph,), rounds=2, iterations=1
    )
