"""CI gates on the committed benchmark run tables (ROADMAP's standing bars).

``benchmarks/BENCH_engine.json`` records the Fig. 8 evaluation-grid
speedup of the flat-array CSR engine over the reference implementation
(standing gate >= 3x); ``benchmarks/BENCH_louvain.json`` records the
turbo warm-started τ₂ refresh against the cold fast-backend refresh
(standing gates: >= 2x, objective within the pinned tolerance);
``benchmarks/BENCH_adaptive.json`` records the adaptive-workspace
Fig. 9 block-loop against the snapshot-per-run fast path (standing
gates: >= 1.3x end-to-end, byte-identical, workspace actually extends
across windows); ``benchmarks/BENCH_resilience.json`` records the
supervised TxAllo controller under the standard fault plan against the
fault-free baseline (standing gates: committed TPS retention >= 0.7,
circuit tripped and re-closed, no transaction lost).  These tests load
whichever run table is on disk — in
CI's perf job that is the file *regenerated on this very commit* — and
fail the suite on a regression.  Each skips cleanly when its file is
absent (fresh checkout without bench artifacts); regenerate with the
matching ``benchmarks/bench_*.py`` script.
"""

import json
import pathlib

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_PATH = BENCH_DIR / "BENCH_engine.json"
SCALE2_PATH = BENCH_DIR / "BENCH_engine.scale2.json"
LOUVAIN_PATH = BENCH_DIR / "BENCH_louvain.json"
ADAPTIVE_PATH = BENCH_DIR / "BENCH_adaptive.json"
RESILIENCE_PATH = BENCH_DIR / "BENCH_resilience.json"

GRID_SPEEDUP_GATE = 3.0
VECTOR_GRID_GATE = 3.0
VECTOR_COLD_GATE = 1.0
VECTOR_OBJECTIVE_TOLERANCE = 0.02
WARM_REFRESH_GATE = 2.0
ADAPTIVE_LOOP_GATE = 1.3
TPS_RETENTION_GATE = 0.7


def _load_payload():
    if not BENCH_PATH.exists():
        pytest.skip(
            "benchmarks/BENCH_engine.json absent; run "
            "benchmarks/bench_engine_speedup.py to regenerate"
        )
    return json.loads(BENCH_PATH.read_text())


def _load_louvain():
    if not LOUVAIN_PATH.exists():
        pytest.skip(
            "benchmarks/BENCH_louvain.json absent; run "
            "benchmarks/bench_louvain_warm.py to regenerate"
        )
    return json.loads(LOUVAIN_PATH.read_text())


def test_engine_grid_speedup_gate():
    payload = _load_payload()
    assert payload["speedup"] >= GRID_SPEEDUP_GATE, (
        f"Fig. 8 grid speedup {payload['speedup']:.2f}x fell below the "
        f"{GRID_SPEEDUP_GATE}x ROADMAP gate; rerun "
        "benchmarks/bench_engine_speedup.py and investigate the regression"
    )


def test_engine_run_table_schema():
    payload = _load_payload()
    for key in (
        "scale",
        "grid_ks",
        "grid_etas",
        "ref_seconds",
        "fast_seconds",
        "vector_seconds",
        "vector_speedup",
        "vector_objective_ratio_min",
        "single_vector_cold_seconds",
    ):
        assert key in payload, key
    assert payload["fast_seconds"] > 0.0


def _load_scale2():
    if not SCALE2_PATH.exists():
        pytest.skip(
            "benchmarks/BENCH_engine.scale2.json absent; run "
            "benchmarks/bench_engine_speedup.py --scale 2 "
            "--out benchmarks/BENCH_engine.scale2.json to regenerate"
        )
    return json.loads(SCALE2_PATH.read_text())


def test_vector_scale2_grid_speedup_gate():
    """The numpy tier's reason to exist: >= 3x on the large-N grid."""
    payload = _load_scale2()
    if payload.get("vector_seconds") is None:
        pytest.skip("scale-2 run table was produced without numpy")
    assert payload["vector_speedup"] >= VECTOR_GRID_GATE, (
        f"vector grid speedup {payload['vector_speedup']:.2f}x at scale 2 fell "
        f"below the {VECTOR_GRID_GATE}x gate; rerun "
        "benchmarks/bench_engine_speedup.py --scale 2 and investigate"
    )


def test_vector_scale2_cold_single_gate():
    payload = _load_scale2()
    if payload.get("single_vector_cold_seconds") is None:
        pytest.skip("scale-2 run table was produced without numpy")
    assert payload["single_vector_cold_speedup"] >= VECTOR_COLD_GATE, (
        f"cold single vector g_txallo {payload['single_vector_cold_speedup']:.2f}x "
        f"vs reference fell below {VECTOR_COLD_GATE}x at scale 2"
    )


def test_vector_scale2_objective_within_tolerance():
    payload = _load_scale2()
    if payload.get("vector_objective_ratio_min") is None:
        pytest.skip("scale-2 run table was produced without numpy")
    assert payload["vector_objective_ratio_min"] >= 1.0 - VECTOR_OBJECTIVE_TOLERANCE, (
        f"vector objective ratio {payload['vector_objective_ratio_min']:.4f} "
        f"drifted more than {VECTOR_OBJECTIVE_TOLERANCE} below the fast backend"
    )


def test_warm_refresh_speedup_gate():
    payload = _load_louvain()
    assert payload["refresh_speedup"] >= WARM_REFRESH_GATE, (
        f"warm-started refresh speedup {payload['refresh_speedup']:.2f}x fell "
        f"below the {WARM_REFRESH_GATE}x gate; rerun "
        "benchmarks/bench_louvain_warm.py and investigate the regression"
    )


def test_warm_objective_within_tolerance():
    payload = _load_louvain()
    tolerance = payload["objective_tolerance"]
    assert payload["objective_ratio"] >= 1.0 - tolerance, (
        f"turbo objective ratio {payload['objective_ratio']:.4f} drifted more "
        f"than {tolerance} below the cold fast-backend objective"
    )
    assert payload["warm_stats"]["warm"] > 0, "run table recorded no warm refresh"


def _load_adaptive():
    if not ADAPTIVE_PATH.exists():
        pytest.skip(
            "benchmarks/BENCH_adaptive.json absent; run "
            "benchmarks/bench_adaptive.py to regenerate"
        )
    return json.loads(ADAPTIVE_PATH.read_text())


def test_adaptive_loop_speedup_gate():
    payload = _load_adaptive()
    assert payload["speedup"] >= ADAPTIVE_LOOP_GATE, (
        f"adaptive-workspace block-loop speedup {payload['speedup']:.2f}x fell "
        f"below the {ADAPTIVE_LOOP_GATE}x gate; rerun "
        "benchmarks/bench_adaptive.py and investigate the regression"
    )


def test_adaptive_loop_byte_identical_and_batched():
    payload = _load_adaptive()
    assert payload["byte_identical"] is True
    assert payload["workspace_stats"]["extends"] > 0, (
        "run table recorded no cross-window workspace extend"
    )


def test_adaptive_run_table_schema():
    payload = _load_adaptive()
    for key in (
        "scale",
        "base_loop_seconds",
        "workspace_loop_seconds",
        "speedup",
        "adaptive_base_ms",
        "adaptive_workspace_ms",
        "adaptive_speedup",
        "workspace_stats",
        "byte_identical",
    ):
        assert key in payload, key
    assert payload["workspace_loop_seconds"] > 0.0


def _load_resilience():
    if not RESILIENCE_PATH.exists():
        pytest.skip(
            "benchmarks/BENCH_resilience.json absent; run "
            "benchmarks/bench_resilience.py to regenerate"
        )
    return json.loads(RESILIENCE_PATH.read_text())


def test_resilience_tps_retention_gate():
    payload = _load_resilience()
    assert payload["tps_retention"] >= TPS_RETENTION_GATE, (
        f"committed TPS retention {payload['tps_retention']:.3f} under the "
        f"standard fault plan fell below the {TPS_RETENTION_GATE} gate; rerun "
        "benchmarks/bench_resilience.py and investigate the regression"
    )


def test_resilience_recovered():
    payload = _load_resilience()
    stats = payload["resilience_stats"]
    assert stats["trips"] >= 1, "run table recorded no circuit-breaker trip"
    assert stats["recoveries"] >= 1, "run table recorded no recovery"
    assert payload["circuit_state"] == "closed", (
        f"circuit ended the run {payload['circuit_state']!r}, not re-closed"
    )
    assert payload["faulted_committed"] == payload["baseline_committed"], (
        "faulted run lost transactions relative to the fault-free baseline"
    )


def test_resilience_run_table_schema():
    payload = _load_resilience()
    for key in (
        "scale",
        "baseline_committed",
        "baseline_tps",
        "faulted_committed",
        "faulted_tps",
        "tps_retention",
        "recovery_blocks",
        "degraded_ticks",
        "failovers",
        "circuit_state",
        "resilience_stats",
    ):
        assert key in payload, key
    assert payload["baseline_tps"] > 0.0


def test_louvain_run_table_schema():
    payload = _load_louvain()
    for key in (
        "scale",
        "cold_refresh_seconds",
        "warm_refresh_seconds",
        "refresh_speedup",
        "objective_ratio",
        "objective_tolerance",
        "warm_stats",
        "cross_shard_fast",
        "cross_shard_turbo",
    ):
        assert key in payload, key
    assert payload["warm_refresh_seconds"] > 0.0
