"""Scenario-matrix experiment harness (ROADMAP item 2).

A muBench-style declared-factors replication harness: a
:class:`MatrixSpec` declares factor levels — workload topology (the
registry in :mod:`repro.data.synthetic`), scale, allocator (the registry
in :mod:`repro.allocators`), engine backend tier, τ₁/τ₂ update cadence
and fault plan — and :func:`run_matrix` expands the full cross product
with seeded repetitions, runs every cell through the tick-driven
:class:`~repro.chain.live.LiveShardedNetwork` (the same plumbing as
``experiments.live_compare``), and reports committed TPS, cross-shard
ratio, latency distribution, allocation updates/migrations and allocator
runtime per cell.

Artifacts follow the declared-factors run-table convention::

    out/
      spec.json                  # the spec that produced everything below
      runs/<cell_id>/result.json # one folder per run: flat metrics dict
      runs/<cell_id>/ticks.csv   #   ... plus the per-tick trace
      run_table.csv              # every cell, one row, fixed column order

Determinism contract: every column except the trailing runtime columns
(:data:`RUNTIME_COLUMNS`) is a pure function of the spec — re-running
the same spec produces a byte-identical ``run_table.csv`` modulo those
columns.  ``tests/test_matrix.py`` and ``benchmarks/bench_matrix.py``
gate this.

Cell-level fan-out reuses the fork-pool idiom of
:mod:`repro.core.parallel`: ``workers > 1`` on a ``fork`` platform runs
cells in a process pool (results identical up to the runtime columns);
everywhere else the cells run sequentially.
"""

from __future__ import annotations

import csv
import dataclasses
import itertools
import json
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import allocators
from repro.chain.faults import FaultPlan, resolve_fault_plan
from repro.chain.live import LiveShardedNetwork, TickStats
from repro.core.allocator import OnlineAllocator
from repro.core.graph import TransactionGraph
from repro.core.parallel import effective_workers, fork_available
from repro.core.params import TxAlloParams
from repro.core.resilience import ResilientAllocator
from repro.data.synthetic import get_workload_entry
from repro.errors import ParameterError
from repro.eval.experiments import Workload, build_workload
from repro.eval.reporting import format_table

#: Columns of ``run_table.csv``, in order.  The runtime columns come
#: last so determinism checks can compare whole-row prefixes.
RUN_TABLE_COLUMNS: Tuple[str, ...] = (
    "cell_id",
    "topology",
    "scale",
    "allocator",
    "backend",
    "tau1",
    "tau2",
    "fault",
    "rep",
    "seed",
    "k",
    "eta",
    "lam",
    "ticks",
    "arrived",
    "committed",
    "committed_tps",
    "cross_shard_ratio",
    "mean_latency",
    "p99_latency",
    "global_updates",
    "adaptive_updates",
    "migration_updates",
    "moves",
    "degraded_ticks",
    "failovers",
    "dropped_malformed",
    "allocator_seconds",
    "runtime_seconds",
)

#: Wall-clock measurements — inherently nondeterministic, excluded from
#: every byte-identity comparison.
RUNTIME_COLUMNS: Tuple[str, ...] = ("allocator_seconds", "runtime_seconds")


def _valid_fault_name(name: str) -> bool:
    if name in ("none", "standard"):
        return True
    if name.startswith("seeded:"):
        try:
            int(name.split(":", 1)[1])
        except ValueError:
            return False
        return True
    return False


# ----------------------------------------------------------------------
# Spec
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class MatrixSpec:
    """Declared factors of one experiment matrix.

    Every factor is a tuple of levels; the grid is the full cross
    product times ``reps`` seeded repetitions (repetition ``r`` uses
    workload seed ``base_seed + r``).  ``cadences`` holds ``(tau1,
    tau2)`` pairs where ``0`` means "derive from the live stream length"
    exactly as ``live_compare`` does.  ``faults`` names fault plans:
    ``"none"``, ``"standard"`` or ``"seeded:<int>"`` (see
    :func:`repro.chain.faults.resolve_fault_plan`).
    """

    topologies: Tuple[str, ...] = ("ethereum", "hotspot")
    scales: Tuple[float, ...] = (0.1,)
    allocators: Tuple[str, ...] = ("txallo", "hash")
    backends: Tuple[str, ...] = ("fast",)
    cadences: Tuple[Tuple[int, int], ...] = ((0, 0),)
    faults: Tuple[str, ...] = ("none",)
    reps: int = 2
    base_seed: int = 2022
    k: int = 4
    eta: float = 2.0
    seed_fraction: float = 0.4
    capacity_factor: float = 1.5

    def __post_init__(self) -> None:
        for field in ("topologies", "scales", "allocators", "backends", "cadences", "faults"):
            if not getattr(self, field):
                raise ParameterError(f"spec factor {field!r} must have at least one level")
        for topology in self.topologies:
            get_workload_entry(topology)  # raises with the available names
        for name in self.allocators:
            allocators.get_entry(name)
        for scale in self.scales:
            if scale <= 0:
                raise ParameterError(f"scales must be positive, got {scale!r}")
        for cadence in self.cadences:
            if len(cadence) != 2:
                raise ParameterError(f"cadences must be (tau1, tau2) pairs, got {cadence!r}")
            tau1, tau2 = cadence
            if tau1 < 0 or tau2 < 0:
                raise ParameterError(f"cadence periods must be >= 0 (0 = auto), got {cadence!r}")
            if tau1 > 0 and tau2 > 0 and tau1 > tau2:
                raise ParameterError(f"cadence tau1 must not exceed tau2, got {cadence!r}")
        for fault in self.faults:
            if not _valid_fault_name(fault):
                raise ParameterError(
                    f"unknown fault plan {fault!r}; expected 'none', 'standard' "
                    "or 'seeded:<int>'"
                )
        if self.reps < 1:
            raise ParameterError(f"reps must be >= 1, got {self.reps!r}")
        if self.k < 1:
            raise ParameterError(f"k must be >= 1, got {self.k!r}")
        if not 0.0 < self.seed_fraction < 1.0:
            raise ParameterError(
                f"seed_fraction must be in (0, 1), got {self.seed_fraction!r}"
            )
        if self.capacity_factor <= 0:
            raise ParameterError(
                f"capacity_factor must be positive, got {self.capacity_factor!r}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "MatrixSpec":
        """Build a spec from a parsed JSON object (unknown keys rejected)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ParameterError(
                f"unknown spec keys {unknown}; known keys: {sorted(known)}"
            )
        kwargs = dict(data)
        for name in ("topologies", "allocators", "backends", "faults"):
            if name in kwargs:
                kwargs[name] = tuple(str(v) for v in kwargs[name])
        if "scales" in kwargs:
            kwargs["scales"] = tuple(float(v) for v in kwargs["scales"])
        if "cadences" in kwargs:
            try:
                kwargs["cadences"] = tuple(
                    (int(pair[0]), int(pair[1])) for pair in kwargs["cadences"]
                )
            except (TypeError, IndexError, ValueError):
                raise ParameterError(
                    f"cadences must be [tau1, tau2] pairs, got {kwargs['cadences']!r}"
                ) from None
        return cls(**kwargs)

    def to_dict(self) -> dict:
        """A JSON-serialisable mirror of :meth:`from_dict`."""
        data = dataclasses.asdict(self)
        data["cadences"] = [list(pair) for pair in self.cadences]
        for name in ("topologies", "scales", "allocators", "backends", "faults"):
            data[name] = list(data[name])
        return data

    # ------------------------------------------------------------------
    def cells(self) -> List["MatrixCell"]:
        """The expanded grid: cross product × seeded repetitions."""
        out: List[MatrixCell] = []
        for topology, scale, allocator, backend, cadence, fault in itertools.product(
            self.topologies,
            self.scales,
            self.allocators,
            self.backends,
            self.cadences,
            self.faults,
        ):
            for rep in range(self.reps):
                out.append(
                    MatrixCell(
                        topology=topology,
                        scale=scale,
                        allocator=allocator,
                        backend=backend,
                        tau1=cadence[0],
                        tau2=cadence[1],
                        fault=fault,
                        rep=rep,
                        seed=self.base_seed + rep,
                        k=self.k,
                        eta=self.eta,
                        seed_fraction=self.seed_fraction,
                        capacity_factor=self.capacity_factor,
                    )
                )
        return out


def load_spec(path) -> MatrixSpec:
    """Read a :class:`MatrixSpec` from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ParameterError(f"spec file {path!s} is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ParameterError(f"spec file {path!s} must hold a JSON object")
    return MatrixSpec.from_dict(data)


def smoke_spec() -> MatrixSpec:
    """The small spec behind the CLI default and ``BENCH_matrix.json``.

    2 topologies × 2 allocators × 2 seeded repetitions at scale 0.1 —
    the smallest grid that still exercises the zoo, the registry and the
    determinism contract, and on which ``txallo`` must beat ``hash`` on
    committed TPS for the planted-community (ethereum) topology.
    """
    return MatrixSpec()


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class MatrixCell:
    """One fully-bound run: a point of the grid plus its repetition seed."""

    topology: str
    scale: float
    allocator: str
    backend: str
    tau1: int  # 0 = derive from the live stream (live_compare rule)
    tau2: int  # 0 = 10 x tau1
    fault: str
    rep: int
    seed: int
    k: int
    eta: float
    seed_fraction: float
    capacity_factor: float

    @property
    def cell_id(self) -> str:
        """Stable folder/row identifier (spec-level factors, not resolved)."""
        fault = self.fault.replace(":", "-")
        return (
            f"{self.topology}__s{self.scale:g}__{self.allocator}__{self.backend}"
            f"__c{self.tau1}x{self.tau2}__f{fault}__r{self.rep}"
        )


@dataclasses.dataclass
class CellResult:
    """Everything one cell reports — one ``run_table.csv`` row + tick trace."""

    cell_id: str
    topology: str
    scale: float
    allocator: str
    backend: str
    tau1: int  # resolved (never 0)
    tau2: int  # resolved (never 0)
    fault: str
    rep: int
    seed: int
    k: int
    eta: float
    lam: float
    ticks: int
    arrived: int
    committed: int
    committed_tps: float
    cross_shard_ratio: float
    mean_latency: float
    p99_latency: int
    global_updates: int
    adaptive_updates: int
    migration_updates: int
    moves: int
    degraded_ticks: int
    failovers: int
    dropped_malformed: int
    allocator_seconds: float
    runtime_seconds: float
    #: Per-tick trace (written to ``ticks.csv``, not a table column).
    tick_stats: List[TickStats] = dataclasses.field(default_factory=list, repr=False)

    def row(self) -> Dict[str, object]:
        """This result as a run-table row (fixed column order)."""
        return {column: getattr(self, column) for column in RUN_TABLE_COLUMNS}

    def comparable_row(self) -> Dict[str, object]:
        """The row minus the runtime columns — the determinism contract."""
        return {
            column: getattr(self, column)
            for column in RUN_TABLE_COLUMNS
            if column not in RUNTIME_COLUMNS
        }


class _TimedAllocator(OnlineAllocator):
    """Transparent proxy accounting wall-clock spent inside the allocator.

    Also accumulates the ``moves`` counters of the update events it
    forwards (the run table's migration column).  The supervision
    properties are overridden explicitly: they are class-level defaults
    on :class:`OnlineAllocator`, so ``__getattr__`` alone would shadow
    the wrapped allocator's values.
    """

    def __init__(self, inner: OnlineAllocator) -> None:
        self.inner = inner
        self.params = inner.params
        self.seconds = 0.0
        self.moves = 0

    def observe_block(self, transactions):
        t0 = time.perf_counter()
        try:
            event = self.inner.observe_block(transactions)
        finally:
            self.seconds += time.perf_counter() - t0
        if event is not None:
            self.moves += getattr(event, "moves", 0) or 0
        return event

    def shard_of(self, account) -> int:
        return self.inner.shard_of(account)

    def mapping(self):
        return self.inner.mapping()

    @property
    def freeze_stats(self):
        return self.inner.freeze_stats

    @property
    def degraded(self):
        return self.inner.degraded

    @property
    def resilience_stats(self):
        return self.inner.resilience_stats

    def __getattr__(self, name: str):
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)


# Per-process workload memo: consecutive cells usually share (topology,
# scale, seed), and forked pool workers each keep their own copy.
_WORKLOAD_MEMO: Dict[Tuple[str, float, int], Workload] = {}
_WORKLOAD_MEMO_MAX = 8


def _memo_workload(topology: str, scale: float, seed: int) -> Workload:
    key = (topology, scale, seed)
    workload = _WORKLOAD_MEMO.get(key)
    if workload is None:
        if len(_WORKLOAD_MEMO) >= _WORKLOAD_MEMO_MAX:
            _WORKLOAD_MEMO.clear()
        workload = build_workload(scale, seed=seed, topology=topology)
        _WORKLOAD_MEMO[key] = workload
    return workload


def run_cell(cell: MatrixCell) -> CellResult:
    """Execute one grid cell through the live sharded network.

    Mirrors ``experiments.live_compare``'s derivations (seed/live split,
    λ from the mean live block, τ cadence, ε) so matrix rows and the
    live-comparison report agree wherever they overlap, then layers the
    cell's factors on top: zoo topology, backend tier, explicit cadence,
    fault plan.
    """
    t_start = time.perf_counter()
    workload = _memo_workload(cell.topology, cell.scale, cell.seed)
    seed_stream, live_stream = workload.blocks.split(cell.seed_fraction)
    seed_sets = seed_stream.account_sets()
    live_blocks = [list(block) for block in live_stream]
    if not live_blocks:
        raise ParameterError(f"cell {cell.cell_id} has no live blocks")

    mean_block = live_stream.num_transactions / len(live_blocks)
    lam = max(1.0, cell.capacity_factor * mean_block / cell.k)
    tau1 = cell.tau1 if cell.tau1 > 0 else max(1, len(live_blocks) // 25)
    tau2 = cell.tau2 if cell.tau2 > 0 else 10 * tau1
    tau1 = min(tau1, tau2)
    params = TxAlloParams(
        k=cell.k,
        eta=cell.eta,
        lam=lam,
        epsilon=1e-5 * max(1, workload.num_transactions),
        tau1=tau1,
        tau2=tau2,
        backend=cell.backend,
    )

    seed_graph = TransactionGraph()
    for accounts in seed_sets:
        seed_graph.add_transaction(accounts)

    plan: Optional[FaultPlan] = resolve_fault_plan(
        cell.fault, ticks=len(live_blocks), k=cell.k, tau2=tau2
    )
    allocator = allocators.get_online(
        cell.allocator, params, seed_transactions=seed_sets, seed_graph=seed_graph
    )
    if isinstance(allocator, ResilientAllocator):
        # Supervised method (e.g. txallo_resilient): time *inside* the
        # supervisor, which keeps it outermost for fault handling.
        timer = _TimedAllocator(allocator.inner)
        allocator.inner = timer
    else:
        timer = _TimedAllocator(allocator)
        allocator = timer
        if plan is not None:
            allocator = ResilientAllocator(allocator)

    net = LiveShardedNetwork(params, allocator, fault_plan=plan)
    report = net.run(live_blocks, drain=True)

    kinds = [t.allocation_update for t in report.ticks if t.allocation_update]
    return CellResult(
        cell_id=cell.cell_id,
        topology=cell.topology,
        scale=cell.scale,
        allocator=cell.allocator,
        backend=cell.backend,
        tau1=tau1,
        tau2=tau2,
        fault=cell.fault,
        rep=cell.rep,
        seed=cell.seed,
        k=cell.k,
        eta=cell.eta,
        lam=lam,
        ticks=len(report.ticks),
        arrived=report.arrived,
        committed=report.committed,
        committed_tps=report.committed_per_tick,
        cross_shard_ratio=report.cross_shard_ratio,
        mean_latency=report.mean_latency,
        p99_latency=report.p99_latency,
        global_updates=kinds.count("global"),
        adaptive_updates=kinds.count("adaptive"),
        migration_updates=kinds.count("migration"),
        moves=timer.moves,
        degraded_ticks=report.degraded_ticks,
        failovers=report.failovers,
        dropped_malformed=report.dropped_malformed,
        allocator_seconds=timer.seconds,
        runtime_seconds=time.perf_counter() - t_start,
        tick_stats=list(report.ticks),
    )


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------
@dataclasses.dataclass
class MatrixResult:
    """All cell results of one expanded spec, in grid order."""

    spec: MatrixSpec
    results: List[CellResult]
    out_dir: Optional[str] = None

    def rows(self) -> List[Dict[str, object]]:
        return [res.row() for res in self.results]

    def comparable_rows(self) -> List[Dict[str, object]]:
        """Rows minus runtime columns — equal across re-runs and workers."""
        return [res.comparable_row() for res in self.results]

    def select(self, **factors) -> List[CellResult]:
        """Cell results whose factor columns equal every given value."""
        out = []
        for res in self.results:
            if all(getattr(res, name) == value for name, value in factors.items()):
                out.append(res)
        return out

    def render(self) -> str:
        title = (
            f"== Scenario matrix: {len(self.results)} cells "
            f"({len(self.spec.topologies)} topologies x "
            f"{len(self.spec.allocators)} allocators x "
            f"{len(self.spec.scales)} scales x "
            f"{len(self.spec.backends)} backends x "
            f"{len(self.spec.cadences)} cadences x "
            f"{len(self.spec.faults)} fault plans x "
            f"{self.spec.reps} reps) =="
        )
        headers = [
            "cell",
            "committed TPS",
            "cross-shard",
            "mean latency",
            "p99",
            "moves",
            "alloc s",
        ]
        rows = [
            (
                res.cell_id,
                res.committed_tps,
                res.cross_shard_ratio,
                res.mean_latency,
                res.p99_latency,
                res.moves,
                res.allocator_seconds,
            )
            for res in self.results
        ]
        body = format_table(headers, rows)
        lines = [title, "", body]
        if self.out_dir is not None:
            lines += ["", f"artifacts: {self.out_dir}/run_table.csv"]
        return "\n".join(lines)


def run_matrix(
    spec: MatrixSpec,
    out_dir: Optional[str] = None,
    workers: int = 1,
) -> MatrixResult:
    """Expand ``spec`` and execute every cell; optionally write artifacts.

    ``workers > 1`` fans cells out to a fork-based process pool (the
    :mod:`repro.core.parallel` idiom); rows come back in grid order and
    match a sequential run on every non-runtime column.  Platforms
    without ``fork`` fall back to the sequential path.
    """
    cells = spec.cells()
    workers = effective_workers(workers, len(cells))
    if workers > 1 and fork_available():
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            results = list(pool.map(run_cell, cells))
    else:
        results = [run_cell(cell) for cell in cells]
    result = MatrixResult(spec=spec, results=results, out_dir=out_dir)
    if out_dir is not None:
        write_artifacts(result, out_dir)
    return result


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------
def _format_cell_value(value: object) -> str:
    # repr() for floats so re-runs are byte-identical (no locale, no
    # precision surprises); everything else is already canonical.
    if isinstance(value, float):
        return repr(value)
    return str(value)


def write_artifacts(result: MatrixResult, out_dir) -> Path:
    """Write the declared-factors artifact tree; returns the out dir."""
    out = Path(out_dir)
    runs = out / "runs"
    runs.mkdir(parents=True, exist_ok=True)
    spec_json = json.dumps(result.spec.to_dict(), indent=2, sort_keys=True)
    (out / "spec.json").write_text(spec_json + "\n", encoding="utf-8")

    for res in result.results:
        run_dir = runs / res.cell_id
        run_dir.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(res.row(), indent=2, sort_keys=True)
        (run_dir / "result.json").write_text(payload + "\n", encoding="utf-8")
        with open(run_dir / "ticks.csv", "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                [
                    "tick",
                    "arrived",
                    "committed",
                    "cross_shard_arrived",
                    "backlog_workload",
                    "allocation_update",
                    "degraded",
                    "stalled_shards",
                    "dropped_malformed",
                ]
            )
            for t in res.tick_stats:
                writer.writerow(
                    [
                        t.tick,
                        t.arrived,
                        t.committed,
                        t.cross_shard_arrived,
                        _format_cell_value(t.backlog_workload),
                        t.allocation_update or "",
                        int(t.degraded),
                        t.stalled_shards,
                        t.dropped_malformed,
                    ]
                )

    with open(out / "run_table.csv", "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(RUN_TABLE_COLUMNS)
        for res in result.results:
            row = res.row()
            writer.writerow([_format_cell_value(row[c]) for c in RUN_TABLE_COLUMNS])
    return out


__all__ = [
    "RUN_TABLE_COLUMNS",
    "RUNTIME_COLUMNS",
    "CellResult",
    "MatrixCell",
    "MatrixResult",
    "MatrixSpec",
    "load_spec",
    "run_cell",
    "run_matrix",
    "smoke_spec",
    "write_artifacts",
]
