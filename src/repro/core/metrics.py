"""Performance metrics of Section III-B, at transaction and graph level.

The paper defines its metrics twice: once on the blockchain (per
transaction, Section III-B) and once converted onto the transaction graph
(Section III-C).  The optimisation runs on the graph; the *evaluation*
quantities reported in Figures 2-7 are the blockchain-level ones.  This
module implements both so they can be cross-checked.

Implemented quantities:

* ``μ(Tx)``   — number of shards a transaction touches;
* ``γ``       — cross-shard transaction ratio;
* ``σ_i``     — per-shard workload (intra tx cost 1, cross tx cost ``η``);
* ``ρ``       — workload balance: population standard deviation of ``σ_i``
  normalised by capacity ``λ`` (Eq. 1) — normalisation makes the metric
  scale-free, matching the magnitudes of Fig. 3;
* ``Λ``       — system throughput with per-shard capacity capping
  (Eqs. 2-3), where a cross-shard transaction counts ``1/μ(Tx)`` toward
  each involved shard;
* ``ζ``       — average confirmation latency in block units (Eq. 4).  The
  paper's closed form is the integral ``∫₀^σ̂ ⌈x⌉ dx / σ̂``; we evaluate the
  integral exactly, which also fixes the closed form's edge case at
  integer ``σ̂`` (the printed formula yields ``n²/2`` instead of
  ``n(n+1)/2`` there);
* worst-case latency — ``⌈ max_i σ̂_i ⌉``, the delay of the last
  transaction in the most overloaded shard (Fig. 7).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.allocation import Allocation, capped_throughput
from repro.core.graph import Node, TransactionGraph
from repro.core.params import TxAlloParams
from repro.errors import AllocationError

#: A transaction, for metric purposes, is just its account set.
AccountSet = Sequence[Node]
Mapping = Dict[Node, int]


def _as_mapping(allocation) -> Mapping:
    """Accept either an :class:`Allocation` or a plain dict."""
    if isinstance(allocation, Allocation):
        return allocation.mapping()
    return allocation


# ----------------------------------------------------------------------
# Per-transaction quantities
# ----------------------------------------------------------------------
def involved_shards(accounts: AccountSet, mapping: Mapping) -> Set[int]:
    """The set of shards maintaining at least one account of the tx."""
    try:
        return {mapping[a] for a in accounts}
    except KeyError as exc:
        raise AllocationError(f"account {exc.args[0]!r} is not allocated") from None


def mu(accounts: AccountSet, mapping: Mapping) -> int:
    """``μ(Tx)``: the number of shards processing this transaction."""
    return len(involved_shards(accounts, mapping))


def is_cross_shard(accounts: AccountSet, mapping: Mapping) -> bool:
    """Whether the transaction is cross-shard (``μ(Tx) > 1``)."""
    return mu(accounts, mapping) > 1


# ----------------------------------------------------------------------
# Aggregate report
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class MetricsReport:
    """All Section III-B metrics for one allocation on one workload."""

    num_transactions: int
    num_cross_shard: int
    cross_shard_ratio: float
    shard_workloads: Tuple[float, ...]
    workload_balance: float
    throughput: float
    normalized_throughput: float
    average_latency: float
    worst_case_latency: float

    @property
    def normalized_workloads(self) -> Tuple[float, ...]:
        """``σ_i / λ`` is recoverable from throughput normalisation inputs."""
        raise AttributeError(
            "use evaluate_allocation(...).shard_workloads together with params.lam"
        )


def evaluate_allocation(
    transactions: Iterable[AccountSet],
    allocation,
    params: TxAlloParams,
) -> MetricsReport:
    """Single-pass, transaction-level evaluation of an allocation.

    ``transactions`` yields account collections (the union ``A_Tx``);
    ``allocation`` is an :class:`Allocation` or an account→shard dict.
    """
    mapping = _as_mapping(allocation)
    k, eta, lam = params.k, params.eta, params.lam
    sigma = [0.0] * k
    lam_hat = [0.0] * k
    total = 0
    cross = 0
    for accounts in transactions:
        shards = involved_shards(accounts, mapping)
        total += 1
        m = len(shards)
        if m == 1:
            (i,) = shards
            sigma[i] += 1.0
            lam_hat[i] += 1.0
        else:
            cross += 1
            share = 1.0 / m
            for i in shards:
                sigma[i] += eta
                lam_hat[i] += share
    throughput = sum(
        capped_throughput(s, lh, lam) for s, lh in zip(sigma, lam_hat)
    )
    return MetricsReport(
        num_transactions=total,
        num_cross_shard=cross,
        cross_shard_ratio=(cross / total) if total else 0.0,
        shard_workloads=tuple(sigma),
        workload_balance=workload_balance(sigma, lam),
        throughput=throughput,
        normalized_throughput=throughput / lam if lam not in (0.0, math.inf) else 0.0,
        average_latency=average_latency(sigma, lam),
        worst_case_latency=worst_case_latency(sigma, lam),
    )


# ----------------------------------------------------------------------
# Workload balance (Eq. 1)
# ----------------------------------------------------------------------
def workload_balance(sigmas: Sequence[float], lam: float = 1.0) -> float:
    """``ρ``: population standard deviation of per-shard workloads.

    Normalised by the capacity ``λ`` so the value is comparable across
    shard counts, matching the scale of the paper's Fig. 3 (pass
    ``lam=1.0`` for the raw deviation).
    """
    k = len(sigmas)
    if k == 0:
        return 0.0
    mean = sum(sigmas) / k
    var = sum((s - mean) ** 2 for s in sigmas) / k
    dev = math.sqrt(var)
    if lam in (0.0, math.inf):
        return dev
    return dev / lam


# ----------------------------------------------------------------------
# Latency (Eq. 4)
# ----------------------------------------------------------------------
def shard_latency(sigma: float, lam: float) -> float:
    """``ζ_i``: average confirmation latency of one shard, in blocks.

    Evaluates ``∫₀^σ̂ ⌈x⌉ dx / σ̂`` exactly for ``σ̂ = σ_i / λ``.  An empty
    shard confirms instantly within its block: latency 1.
    """
    if lam <= 0:
        raise AllocationError(f"capacity lam must be positive, got {lam!r}")
    if sigma <= 0:
        return 1.0
    norm = sigma / lam
    if norm <= 1.0:
        return 1.0
    whole = math.floor(norm)
    integral = whole * (whole + 1) / 2.0 + (norm - whole) * math.ceil(norm)
    return integral / norm


def average_latency(sigmas: Sequence[float], lam: float) -> float:
    """``ζ``: mean of the per-shard latencies (paper Section III-B)."""
    if not sigmas:
        return 0.0
    return sum(shard_latency(s, lam) for s in sigmas) / len(sigmas)


def worst_case_latency(sigmas: Sequence[float], lam: float) -> float:
    """Latency of the last transaction in the most overloaded shard.

    ``⌈ max_i σ_i / λ ⌉`` blocks, and at least 1 for a non-empty system.
    """
    if lam <= 0:
        raise AllocationError(f"capacity lam must be positive, got {lam!r}")
    if not sigmas:
        return 0.0
    worst = max(sigmas)
    if worst <= 0:
        return 1.0
    return float(math.ceil(worst / lam))


# ----------------------------------------------------------------------
# Graph-level counterparts (Section III-C)
# ----------------------------------------------------------------------
def graph_shard_workloads(
    graph: TransactionGraph,
    allocation,
    params: TxAlloParams,
) -> List[float]:
    """``σ_i`` on the transaction graph (Eq. 5)."""
    mapping = _as_mapping(allocation)
    k, eta = params.k, params.eta
    sigma = [0.0] * k
    for u, v, w in graph.edges():
        iu = mapping[u]
        if u == v:
            sigma[iu] += w
            continue
        iv = mapping[v]
        if iu == iv:
            sigma[iu] += w
        else:
            sigma[iu] += eta * w
            sigma[iv] += eta * w
    return sigma


def graph_cross_shard_ratio(graph: TransactionGraph, allocation) -> float:
    """``γ`` on the graph: inter-community weight over total weight."""
    mapping = _as_mapping(allocation)
    total = 0.0
    inter = 0.0
    for u, v, w in graph.edges():
        total += w
        if u != v and mapping[u] != mapping[v]:
            inter += w
    return inter / total if total else 0.0


def graph_throughput(
    graph: TransactionGraph,
    allocation,
    params: TxAlloParams,
) -> float:
    """``Λ`` on the graph: intra weight + half of each side's cut, capped."""
    mapping = _as_mapping(allocation)
    k, eta, lam = params.k, params.eta, params.lam
    sigma = [0.0] * k
    lam_hat = [0.0] * k
    for u, v, w in graph.edges():
        iu = mapping[u]
        if u == v:
            sigma[iu] += w
            lam_hat[iu] += w
            continue
        iv = mapping[v]
        if iu == iv:
            sigma[iu] += w
            lam_hat[iu] += w
        else:
            sigma[iu] += eta * w
            sigma[iv] += eta * w
            lam_hat[iu] += w / 2.0
            lam_hat[iv] += w / 2.0
    return sum(capped_throughput(s, lh, lam) for s, lh in zip(sigma, lam_hat))
