"""Loaders for real Ethereum transaction exports.

The paper collects its dataset with ethereum-etl / BigQuery (reference
[37]).  These loaders accept the two common export shapes so users with
access to real data can run every experiment on it:

* **CSV** with (at least) the ethereum-etl ``transactions`` columns
  ``hash, from_address, to_address, block_number``;
* **JSON Lines**, one transaction object per line with the same keys.

Contract creations have a null ``to_address``; like the paper's
self-replacement example, we model them as self-loops on the sender (the
new contract's address is unknown to the allocator at creation time).
Rows missing a sender are rejected — silently dropping data would bias
every downstream metric.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

from repro.chain.types import Block, Transaction
from repro.errors import DataError

REQUIRED_COLUMNS = ("hash", "from_address", "to_address", "block_number")


def _row_to_transaction(row: Dict[str, object], where: str) -> Tuple[int, Transaction]:
    sender = (row.get("from_address") or "")
    sender = str(sender).strip().lower()
    if not sender:
        raise DataError(f"{where}: missing from_address")
    receiver = (row.get("to_address") or "")
    receiver = str(receiver).strip().lower()
    if not receiver:
        receiver = sender  # contract creation -> self-loop
    raw_height = row.get("block_number")
    try:
        height = int(str(raw_height))
    except (TypeError, ValueError):
        raise DataError(f"{where}: invalid block_number {raw_height!r}") from None
    tx_id = str(row.get("hash") or "").strip()
    tx = Transaction(inputs=(sender,), outputs=(receiver,), tx_id=tx_id or "")
    return height, tx


def load_transactions_csv(path) -> Iterator[Tuple[int, Transaction]]:
    """Yield ``(block_number, Transaction)`` from an ethereum-etl CSV."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise DataError(f"{path}: empty CSV")
        missing = [c for c in REQUIRED_COLUMNS if c not in reader.fieldnames]
        if missing:
            raise DataError(f"{path}: missing columns {missing}")
        for lineno, row in enumerate(reader, start=2):
            yield _row_to_transaction(row, f"{path}:{lineno}")


def load_transactions_jsonl(path) -> Iterator[Tuple[int, Transaction]]:
    """Yield ``(block_number, Transaction)`` from a JSON-lines export."""
    path = Path(path)
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DataError(f"{path}:{lineno}: invalid JSON ({exc})") from None
            if not isinstance(row, dict):
                raise DataError(f"{path}:{lineno}: expected an object per line")
            yield _row_to_transaction(row, f"{path}:{lineno}")


def group_into_blocks(
    rows: Iterator[Tuple[int, Transaction]],
) -> List[Block]:
    """Group ``(height, tx)`` rows into linked :class:`Block` objects.

    Heights are re-based to start at 0 and must be non-decreasing (exports
    are block-ordered); gaps are tolerated and collapsed.
    """
    blocks: List[Block] = []
    current_height: int = -1
    batch: List[Transaction] = []
    parent = ""

    def flush() -> None:
        nonlocal parent, batch
        if batch:
            block = Block(height=len(blocks), transactions=tuple(batch), parent_hash=parent)
            blocks.append(block)
            parent = block.block_hash
            batch = []

    last_seen = None
    for height, tx in rows:
        if last_seen is not None and height < last_seen:
            raise DataError(
                f"transactions out of block order: {height} after {last_seen}"
            )
        if height != current_height:
            flush()
            current_height = height
        batch.append(tx)
        last_seen = height
    flush()
    return blocks
