"""Flat-array sweep engine — the ``backend="fast"`` allocation core.

This module reimplements the three allocation hot paths on top of the
compiled CSR kernel (:mod:`repro.core.csr`):

1. :func:`louvain_flat` — Louvain local-moving/aggregation over CSR rows
   with an epoch-stamped scatter buffer instead of a fresh ``nbr_comm``
   dict (and dict sort) per node;
2. :class:`_FlatAllocation` (internal to :func:`g_txallo_flat`) — the
   int-indexed allocation state: ``sigma`` / ``lam_hat`` / membership as
   flat lists, neighbour-shard weights accumulated into a reusable
   per-shard scatter buffer;
3. :func:`g_txallo_flat` / :func:`a_txallo_flat` — Algorithm 1 / 2 sweeps
   consuming that state.

Backend levels
--------------
Dispatch goes through the engine-backend registry
(:mod:`repro.core.backends`); the built-in tiers and their contracts:

===========  ==================  =========================================
tier         parity contract     notes
===========  ==================  =========================================
reference    (anchor)            dict-based executable specification
fast         byte_identical      this module; the default tier
turbo        objective_gated     warm Louvain + work-skipping sweeps,
                                 within ``WARM_OBJECTIVE_TOLERANCE``
vector       objective_gated     numpy segment ops
                                 (:mod:`repro.core.vector`), same
                                 tolerance; optional ``repro[vector]``
                                 extra, falls back to ``fast`` with one
                                 warning when numpy is unavailable
===========  ==================  =========================================

``byte_identical`` tiers must reproduce the reference bit-for-bit (the
contract below); ``objective_gated`` tiers may land on a different
deterministic local optimum, gated on total capped throughput.  The
A-TxAllo kernel of *every* flat tier (fast/turbo/vector) is
:func:`a_txallo_flat` — adaptive sweeps touch O(|V̂|) nodes, where the
flat engine is already optimal — so the adaptive path stays
byte-identical across them.

Parity contract
---------------
The engine is an *optimisation*, not a reinterpretation: for any input it
must produce **byte-identical** allocations to the reference dict-based
path (``backend="reference"``) — same ``mapping()``, same ``sigma`` /
``lam_hat`` floats, same sweep and move counts.  That is achieved by
replaying the reference implementation's float accumulations in the exact
same order:

* CSR rows preserve the adjacency-dict iteration order, so per-node
  neighbourhood accumulations add the same floats in the same sequence;
* CSR ids are insertion-ordered (stable under delta-freeze), so the
  ``TransactionGraph.edges()`` insertion-order edge walk used by
  ``Allocation`` cache rebuilds is an ascending-id walk, and the
  reference's ascending-*identifier* sweep and Louvain orders are
  replayed through the frozen ``sorted_order`` / ``sorted_rank``
  permutation;
* every gain / delta expression is written with the same operand order
  and parenthesisation as :mod:`repro.core.objective` and
  :meth:`repro.core.allocation.Allocation.move`;
* ties break toward the smallest community index via an exact
  ``(gain, -index)`` argmax, matching the reference's
  ascending-candidate strict-improvement scan.

``tests/test_engine_parity.py`` enforces this contract property-style
across randomised workloads, shard counts and eta values.

Turbo backend
-------------
``backend="turbo"`` trades the *partition* parity contract for speed on
the dynamic controller path, where every τ₂ global refresh used to
re-partition N nodes from scratch.  Two documented divergences:

1. **Warm-start Louvain** (:func:`louvain_flat_warm`): level-0 local
   moving is seeded from the previous snapshot's partition, carried
   through :meth:`repro.core.csr.CSRGraph.extend` — untouched nodes keep
   their prior labels, delta-frontier nodes join their neighbour-majority
   community (or start as singletons), and after one full confirmation
   pass only the neighbourhoods of actual movers are re-examined.  It
   runs in insertion-id space (the seed indexes by CSR id, so the
   reference's sorted-space remap is unnecessary).
2. **Work-skipping optimisation** (:func:`_optimise_flat_turbo`): the
   first sweep visits every node in the reference's ascending-identifier
   order, later sweeps revisit only nodes with a moved neighbour.

The sweep *orders* are the reference's own — tiny graphs are several
percent sensitive to visit order, so turbo spends its divergence budget
only on the warm seed and the skipped re-sweeps.  Both changes still
affect *which* local optimum the deterministic search lands on, so turbo
allocations may differ from fast/reference ones.  What is gated instead
of byte-parity: the TxAllo objective (total capped throughput) of a
turbo allocation must stay within :data:`WARM_OBJECTIVE_TOLERANCE` of
the cold fast-backend result on the same graph, and the controller's
live committed-TPS / cross-shard metrics must not regress —
``tests/test_louvain_warm.py`` pins the former property-style and
``benchmarks/bench_louvain_warm.py`` gates both plus the ≥2x refresh
speedup.  Turbo stays fully deterministic (same history, same
allocation, on every miner), and it never contaminates the other
backends: warm results live in separate memos (``louvain_warm_memo`` /
``intra_cut_warm_memo``) on the snapshot.  When no warm seed is
available (first freeze, decay/pruning rebuild, oversized accumulated
frontier) the turbo path falls back to the cold partition and only the
sweep schedule differs.

Adaptive workspace
------------------
:class:`AdaptiveWorkspace` batches consecutive A-TxAllo runs: instead of
re-freezing the graph and re-snapshotting the touched neighbourhoods
from the CSR every τ₁ window, the workspace keeps the flat views alive
*across* runs — id-keyed row maps mirroring the adjacency dicts, the
self-loop vector, and a dense id→shard array — and keeps them current by
replaying the graph's :class:`~repro.core.graph.MutationJournal` (new
nodes, edge weight increments) in O(window delta) instead of
O(frontier degree) re-lowering plus an incremental freeze per window.
The workspace is a **cache, not a backend level**: unlike ``"turbo"`` it
is not allowed to land on a different optimum — a workspace-backed run
must produce byte-identical allocations, caches and sweep/move counts to
the snapshot-per-run fast path (the row maps replay the same float
accumulations in the same order the CSR rows would, and per-run ``w_ext``
is re-summed in row order exactly as a lowering would), which
``tests/test_engine_parity.py`` and ``tests/test_delta_freeze.py`` pin
property-style.  It invalidates and rebuilds from a fresh frozen
snapshot whenever the allocation object is replaced (global refresh),
the journal is poisoned (window decay, pruning, a competing journal), or
the allocation's mutation watermark (``Allocation.mutation_count``)
drifts from what the workspace last saw — i.e. any assign/move applied
behind the workspace's back.
``benchmarks/bench_adaptive.py`` gates the resulting Fig. 9 block-loop
speedup (≥ 1.3x end-to-end at τ₁=1).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.allocation import Allocation
from repro.core.atxallo import MAX_SWEEPS as _ADAPTIVE_MAX_SWEEPS
from repro.core.backends import OBJECTIVE_TOLERANCE as _OBJECTIVE_TOLERANCE
from repro.core.csr import CSRGraph
from repro.core.csr import WARM_SEED_STALE_FRACTION as _WARM_SEED_STALE_FRACTION
from repro.core.graph import Node, TransactionGraph
from repro.core.gtxallo import MAX_SWEEPS as _GLOBAL_MAX_SWEEPS
from repro.core.louvain import _MIN_GAIN
from repro.core.params import TxAlloParams
from repro.errors import AllocationError, GraphError

# The sweep bounds and Louvain gain threshold are imported from the
# reference modules (which import this engine only lazily, so there is
# no cycle) — the backends cannot drift apart on convergence behaviour.

#: Relative tolerance of the objective-gated tiers (turbo, vector): the
#: tier's total capped throughput must satisfy
#: ``tier >= (1 - WARM_OBJECTIVE_TOLERANCE) * fast`` on the same graph
#: and parameters.  The canonical number lives on the backend registry
#: (:data:`repro.core.backends.OBJECTIVE_TOLERANCE`, stamped into each
#: objective-gated ``BackendSpec.tolerance``); this historical alias is
#: what tests, benchmarks and CI gate against.
WARM_OBJECTIVE_TOLERANCE = _OBJECTIVE_TOLERANCE

#: Warm-start falls back to a cold Louvain run when the accumulated
#: frontier (plus nodes added since the seed partition) exceeds this
#: fraction of the graph.  Deliberately permissive: frontier nodes are
#: re-seeded from the surviving labels by neighbour majority and then
#: corrected by the full confirmation pass, so even a majority-stale
#: seed beats a cold run (measured: a ~60%-stale Fig. 9 cadence still
#: warm-starts ≥2.5x faster at equal-or-better objective).  Past ~85%
#: there is almost nothing left to anchor the vote.  The same fraction
#: governs seed propagation in ``CSRGraph.extend`` (defined there to
#: avoid an import cycle), so over-stale seeds are dropped at the source.
WARM_FALLBACK_FRACTION = _WARM_SEED_STALE_FRACTION


# ======================================================================
# Louvain on CSR
# ======================================================================
def louvain_fast(
    graph: TransactionGraph,
    max_levels: int = 32,
    resolution: float = 1.0,
    warm: bool = False,
) -> Dict[Node, int]:
    """Fast/turbo-backend :func:`repro.core.louvain.louvain_partition`."""
    csr = graph.freeze()
    if warm:
        membership = louvain_flat_warm(
            csr, max_levels=max_levels, resolution=resolution
        )
    else:
        membership = louvain_flat(csr, max_levels=max_levels, resolution=resolution)
    return {v: membership[i] for i, v in enumerate(csr.nodes)}


def louvain_flat(
    csr: CSRGraph,
    max_levels: int = 32,
    resolution: float = 1.0,
) -> List[int]:
    """Louvain over a frozen graph; returns per-node community labels.

    Labels are dense ints in order of first appearance over the sorted
    node sequence — identical to the reference implementation.

    Level 0 is built in *sorted-identifier index space* — the space the
    reference implementation works in — so every accumulation, move,
    tie-break and relabel below replays it exactly even though CSR ids
    are insertion-ordered.  One O(E) remap per frozen graph, amortised
    by the memo.

    Results are memoised on the (immutable) ``csr`` — the paper's
    evaluation sweeps run G-TxAllo for many ``(k, eta)`` cells over one
    graph, and the Louvain seed partition depends only on the graph.
    """
    n = csr.num_nodes
    if n == 0:
        return []

    memo_key = (max_levels, resolution)
    cached = csr.louvain_memo.get(memo_key)
    if cached is not None:
        return list(cached)

    identity = csr.sorted_order_is_identity
    if identity:
        # Insertion order already is sorted order: id space == sorted
        # space, no remap needed.
        rows: List[Sequence[Tuple[int, float]]] = csr.pairs
        loops: List[float] = list(csr.loop)
    else:
        sorder = csr.sorted_order
        srank = csr.sorted_rank
        pairs = csr.pairs
        loop = csr.loop
        rows = []
        loops = []
        for i in sorder:
            rows.append([(srank[j], w) for j, w in pairs[i]])
            loops.append(loop[i])
    membership = list(range(n))

    for _level in range(max_levels):
        community, improved = _one_level_flat(rows, loops, resolution)
        relabel: Dict[int, int] = {}
        for i in range(len(loops)):
            c = community[i]
            if c not in relabel:
                relabel[c] = len(relabel)
        community = [relabel[c] for c in community]
        membership = [community[m] for m in membership]
        if not improved or len(relabel) == len(loops):
            break
        rows, loops = _aggregate_flat(rows, loops, community, len(relabel))

    # Back to id space: membership[r] labels the r-th *sorted* node.
    if identity:
        result = membership
    else:
        result = [0] * n
        for r in range(n):
            result[sorder[r]] = membership[r]
    csr.louvain_memo[memo_key] = result
    return list(result)


def _one_level_flat(
    rows: List[Sequence[Tuple[int, float]]],
    loops: List[float],
    resolution: float,
) -> Tuple[List[int], bool]:
    """One local-moving phase on flat rows.  Returns (community, any_move).

    Mirrors ``louvain._one_level`` exactly, but accumulates the per-node
    neighbour-community weights into an epoch-stamped scatter buffer
    (``acc``/``stamp``) instead of a fresh dict, and finds the best
    destination with an exact ``(gain, -index)`` argmax instead of a
    sorted scan.
    """
    n = len(loops)
    k = [0.0] * n
    m = 0.0
    for i in range(n):
        row = rows[i]
        s = 0.0
        m += loops[i]
        # One combined row pass; each running total (s, m) still adds the
        # same floats in the same order as the reference's separate passes.
        for j, w in row:
            s += w
            if j > i:
                m += w
        k[i] = s + 2.0 * loops[i]
    if m <= 0.0:
        return list(range(n)), False

    community = list(range(n))
    comm_tot = k[:]
    two_m = 2.0 * m

    acc = [0.0] * n
    stamp = [0] * n
    epoch = 0
    touched: List[int] = []

    any_move = False
    moved = True
    while moved:
        moved = False
        for i in range(n):
            c_old = community[i]
            epoch += 1
            del touched[:]
            append = touched.append
            for j, w in rows[i]:
                c = community[j]
                if stamp[c] == epoch:
                    acc[c] += w
                else:
                    stamp[c] = epoch
                    acc[c] = w
                    append(c)
            ki = k[i]
            tot = comm_tot[c_old] - ki
            comm_tot[c_old] = tot
            norm = resolution * ki / two_m
            w_old = acc[c_old] if stamp[c_old] == epoch else 0.0
            base = w_old - tot * norm
            cand_c = -1
            cand_gain = 0.0
            for c in touched:
                if c == c_old:
                    continue
                gain = acc[c] - comm_tot[c] * norm
                if cand_c < 0 or gain > cand_gain or (gain == cand_gain and c < cand_c):
                    cand_gain = gain
                    cand_c = c
            if cand_c >= 0 and cand_gain > base + _MIN_GAIN:
                community[i] = cand_c
                comm_tot[cand_c] += ki
                moved = True
                any_move = True
            else:
                comm_tot[c_old] = tot + ki
    return community, any_move


def _aggregate_flat(
    rows: List[Sequence[Tuple[int, float]]],
    loops: List[float],
    community: List[int],
    num_comms: int,
) -> Tuple[List[Sequence[Tuple[int, float]]], List[float]]:
    """Collapse communities into super-nodes (mirrors ``louvain._aggregate``)."""
    new_adj: List[Dict[int, float]] = [{} for _ in range(num_comms)]
    new_loops = [0.0] * num_comms
    for i in range(len(loops)):
        ci = community[i]
        new_loops[ci] += loops[i]
        for j, w in rows[i]:
            if j < i:
                continue  # handle each undirected pair once
            cj = community[j]
            if ci == cj:
                new_loops[ci] += w
            else:
                d = new_adj[ci]
                d[cj] = d.get(cj, 0.0) + w
                d = new_adj[cj]
                d[ci] = d.get(ci, 0.0) + w
    return [list(d.items()) for d in new_adj], new_loops


# ======================================================================
# Warm-start Louvain (backend="turbo")
# ======================================================================
def louvain_flat_warm(
    csr: CSRGraph,
    max_levels: int = 32,
    resolution: float = 1.0,
) -> List[int]:
    """Louvain warm-started from the previous snapshot's partition.

    The prior membership rides the snapshot chain
    (:attr:`repro.core.csr.CSRGraph.warm_seeds`, maintained by
    ``CSRGraph.extend``): untouched nodes keep their prior labels,
    delta-frontier and brand-new nodes are re-seeded to their
    neighbour-majority community (or a fresh singleton), and level-0
    local moving starts from that state — one full confirmation sweep,
    then only neighbourhoods of actual movers are revisited.  Deeper
    levels run the standard cold aggregation loop on the (much smaller)
    coarse graph.

    Runs in insertion-id space: no sorted-space remap, so labels are
    dense ints in order of first appearance over the *insertion* node
    sequence.  The result may differ from :func:`louvain_flat` — that is
    the turbo backend's documented divergence; quality is gated on the
    TxAllo objective downstream, not on partition equality.

    Falls back to a cold :func:`louvain_flat` run (and records the
    fallback in ``csr.louvain_warm_hit``) when no seed is available — a
    from-scratch snapshot, a decay/pruning rebuild — or when the
    accumulated frontier exceeds :data:`WARM_FALLBACK_FRACTION` of the
    graph.  Results are memoised per snapshot in ``louvain_warm_memo``,
    never in the cold memo, so turbo runs cannot leak into the fast
    backend's parity contract.
    """
    n = csr.num_nodes
    if n == 0:
        return []

    memo_key = (max_levels, resolution)
    cached = csr.louvain_warm_memo.get(memo_key)
    if cached is not None:
        return list(cached)

    seed = csr.warm_seeds.get(memo_key)
    if seed is not None:
        labels, frontier = seed
        if len(frontier) + (n - len(labels)) > WARM_FALLBACK_FRACTION * n:
            seed = None
    if seed is None:
        csr.louvain_warm_hit = False
        result = louvain_flat(csr, max_levels=max_levels, resolution=resolution)
        csr.louvain_warm_memo[memo_key] = list(result)
        return result
    csr.louvain_warm_hit = True

    rows: List[Sequence[Tuple[int, float]]] = csr.pairs
    loops: List[float] = list(csr.loop)

    # --- seed the level-0 membership --------------------------------
    community = [-1] * n
    next_label = 0
    num_seeded = len(labels)
    for i in range(num_seeded):
        c = labels[i]
        community[i] = c
        if c >= next_label:
            next_label = c + 1
    # The frontier set is shared along the snapshot chain and mutated by
    # later extends (see CSRGraph.extend), so when this snapshot is not
    # the chain's newest it may contain ids beyond our range (nodes that
    # do not exist here yet) and extra in-range ids touched later — drop
    # the former, re-seed the latter (over-re-seeding is safe).
    stale_set = {i for i in frontier if i < n}
    stale_set.update(range(num_seeded, n))
    stale = sorted(stale_set)
    for i in stale:
        community[i] = -1
    for i in stale:
        votes: Dict[int, float] = {}
        for j, w in rows[i]:
            c = community[j]
            if c >= 0:
                votes[c] = votes.get(c, 0.0) + w
        if votes:
            # Weighted neighbour majority; ties toward the smallest label.
            community[i] = min(votes.items(), key=lambda kv: (-kv[1], kv[0]))[0]
        else:
            community[i] = next_label
            next_label += 1

    # --- seeded level 0, then the standard aggregation recursion ----
    community, improved = _one_level_seeded(
        rows, loops, resolution, community, next_label
    )
    relabel: Dict[int, int] = {}
    for i in range(n):
        c = community[i]
        if c not in relabel:
            relabel[c] = len(relabel)
    community = [relabel[c] for c in community]
    membership = community

    if improved and len(relabel) < n:
        rows, loops = _aggregate_flat(rows, loops, community, len(relabel))
        for _level in range(1, max_levels):
            community, improved = _one_level_flat(rows, loops, resolution)
            relabel = {}
            for i in range(len(loops)):
                c = community[i]
                if c not in relabel:
                    relabel[c] = len(relabel)
            community = [relabel[c] for c in community]
            membership = [community[m] for m in membership]
            if not improved or len(relabel) == len(loops):
                break
            rows, loops = _aggregate_flat(rows, loops, community, len(relabel))

    csr.louvain_warm_memo[memo_key] = membership
    return list(membership)


def _one_level_seeded(
    rows: List[Sequence[Tuple[int, float]]],
    loops: List[float],
    resolution: float,
    community: List[int],
    num_labels: int,
) -> Tuple[List[int], bool]:
    """Level-0 local moving from a seeded partition (turbo only).

    Same per-node move rule as :func:`_one_level_flat`, but ``community``
    arrives pre-seeded and the sweep schedule work-skips: one full pass
    in ascending id order confirms (or corrects) every node, after which
    only the neighbourhoods of nodes that actually moved are revisited
    until quiescence.
    """
    n = len(loops)
    k = [0.0] * n
    m = 0.0
    for i in range(n):
        s = 0.0
        m += loops[i]
        for j, w in rows[i]:
            s += w
            if j > i:
                m += w
        k[i] = s + 2.0 * loops[i]
    if m <= 0.0:
        return list(range(n)), False

    comm_tot = [0.0] * num_labels
    for i in range(n):
        comm_tot[community[i]] += k[i]
    two_m = 2.0 * m

    acc = [0.0] * num_labels
    stamp = [0] * num_labels
    epoch = 0
    touched: List[int] = []
    in_next = bytearray(n)

    any_move = False
    current: Sequence[int] = range(n)
    while True:
        next_ids: List[int] = []
        for i in current:
            c_old = community[i]
            epoch += 1
            del touched[:]
            append = touched.append
            row = rows[i]
            for j, w in row:
                c = community[j]
                if stamp[c] == epoch:
                    acc[c] += w
                else:
                    stamp[c] = epoch
                    acc[c] = w
                    append(c)
            ki = k[i]
            tot = comm_tot[c_old] - ki
            comm_tot[c_old] = tot
            norm = resolution * ki / two_m
            w_old = acc[c_old] if stamp[c_old] == epoch else 0.0
            base = w_old - tot * norm
            cand_c = -1
            cand_gain = 0.0
            for c in touched:
                if c == c_old:
                    continue
                gain = acc[c] - comm_tot[c] * norm
                if cand_c < 0 or gain > cand_gain or (gain == cand_gain and c < cand_c):
                    cand_gain = gain
                    cand_c = c
            if cand_c >= 0 and cand_gain > base + _MIN_GAIN:
                community[i] = cand_c
                comm_tot[cand_c] += ki
                any_move = True
                for j, _w in row:
                    if not in_next[j]:
                        in_next[j] = 1
                        next_ids.append(j)
            else:
                comm_tot[c_old] = tot + ki
        if not next_ids:
            break
        next_ids.sort()
        for j in next_ids:
            in_next[j] = 0
        current = next_ids
    return community, any_move


# ======================================================================
# Int-indexed allocation state
# ======================================================================
class _FlatAllocation:
    """Array-backed allocation state for the G-TxAllo sweeps.

    ``comm[i]`` is the community of CSR node ``i``; ``sigma`` / ``lam_hat``
    and the per-community member counts are plain lists indexed by
    community.  ``acc`` / ``stamp`` form the reusable per-shard scatter
    accumulator behind every neighbour-shard-weight scan.
    """

    __slots__ = ("csr", "params", "comm", "sigma", "lam_hat", "counts",
                 "acc", "stamp", "epoch")

    def __init__(
        self,
        csr: CSRGraph,
        params: TxAlloParams,
        comm: List[int],
        num_comms: int,
        intra_cut: Optional[Tuple[List[float], List[float]]] = None,
    ) -> None:
        self.csr = csr
        self.params = params
        self.comm = comm
        self.counts = [0] * num_comms
        for c in comm:
            self.counts[c] += 1
        if intra_cut is None:
            intra_cut = _intra_cut(csr, comm, num_comms)
        intra, cut = intra_cut
        eta = params.eta
        self.sigma = [intra[i] + eta * cut[i] for i in range(num_comms)]
        self.lam_hat = [intra[i] + cut[i] / 2.0 for i in range(num_comms)]
        self.acc = [0.0] * num_comms
        self.stamp = [0] * num_comms
        self.epoch = 0

    # ------------------------------------------------------------------
    def scan(self, i: int) -> List[int]:
        """Accumulate node ``i``'s weight toward each community.

        Scatter into ``acc`` under a fresh epoch and return the list of
        communities touched, in first-touch (row) order.  ``acc[c]`` is
        valid for exactly the returned communities until the next scan.
        """
        self.epoch += 1
        epoch = self.epoch
        acc = self.acc
        stamp = self.stamp
        comm = self.comm
        touched: List[int] = []
        for j, w in self.csr.pairs[i]:
            c = comm[j]
            if stamp[c] == epoch:
                acc[c] += w
            else:
                stamp[c] = epoch
                acc[c] = w
                touched.append(c)
        return touched

    def weight_to(self, c: int) -> float:
        """``w{v, V_c}`` from the most recent :meth:`scan` (0.0 if none)."""
        return self.acc[c] if self.stamp[c] == self.epoch else 0.0

    # ------------------------------------------------------------------
    def move(self, i: int, p: int, q: int, w_self: float, w_ext: float) -> None:
        """Apply ``Allocation.move``'s deltas for node ``i``: ``p`` → ``q``.

        Caller must have :meth:`scan`-ned ``i`` immediately before.
        """
        eta = self.params.eta
        w_p = self.weight_to(p)
        w_q = self.weight_to(q)
        half = w_self + w_ext / 2.0
        sigma = self.sigma
        lam_hat = self.lam_hat
        sigma[p] += -w_self - eta * (w_ext - w_p) + (eta - 1.0) * w_p
        lam_hat[p] -= half
        sigma[q] += w_self + eta * (w_ext - w_q) + (1.0 - eta) * w_q
        lam_hat[q] += half
        self.comm[i] = q
        self.counts[p] -= 1
        self.counts[q] += 1

    def truncate(self, k: int) -> None:
        """Drop trailing (empty) communities, as ``Allocation.truncate``."""
        for c in range(k, len(self.sigma)):
            if self.counts[c]:
                raise AllocationError(
                    f"cannot truncate: community {c} still holds {self.counts[c]} accounts"
                )
        del self.sigma[k:]
        del self.lam_hat[k:]
        del self.counts[k:]
        # Shrink the scatter buffers to match the community range.
        del self.acc[k:]
        del self.stamp[k:]

    # ------------------------------------------------------------------
    def to_allocation(self, graph: TransactionGraph) -> Allocation:
        """Materialise the final dict-backed :class:`Allocation`."""
        index_of = self.csr.index_of
        comm = self.comm
        mapping = {v: comm[index_of[v]] for v in graph.nodes()}
        return Allocation._from_compiled(
            graph, self.params, mapping, self.sigma, self.lam_hat
        )


def _intra_cut(
    csr: CSRGraph, comm: List[int], num_comms: int
) -> Tuple[List[float], List[float]]:
    """Per-community intra / cut weight for a complete partition.

    Replays ``Allocation._recompute_caches``'s edge walk exactly: the
    reference iterates ``TransactionGraph.edges()`` — insertion order
    outer, row order inner, each pair at its earlier-inserted endpoint.
    CSR ids *are* insertion ranks, so that walk is an ascending-id walk
    that skips the pair at its larger-id endpoint, and the accumulated
    floats are bit-identical.  The result is independent of ``eta`` /
    ``k``: ``sigma``/``lam_hat`` derive from it per parameter cell.
    """
    intra = [0.0] * num_comms
    cut = [0.0] * num_comms
    indptr, indices, weights = csr.indptr, csr.indices, csr.weights
    for u in range(len(comm)):
        cu = comm[u]
        for t in range(indptr[u], indptr[u + 1]):
            j = indices[t]
            if j == u:
                intra[cu] += weights[t]
                continue
            if j < u:
                continue  # already handled at the earlier-inserted endpoint
            cj = comm[j]
            w = weights[t]
            if cu == cj:
                intra[cu] += w
            else:
                cut[cu] += w
                cut[cj] += w
    return intra, cut


# ======================================================================
# G-TxAllo on the flat engine
# ======================================================================
def g_txallo_flat(
    graph: TransactionGraph,
    params: TxAlloParams,
    initial_partition: Optional[Dict[Node, int]] = None,
    node_order: Optional[Sequence[Node]] = None,
    warm: bool = False,
) -> Tuple[Allocation, int, int, int, int, float, float]:
    """Algorithm 1 on the flat engine.

    Returns ``(allocation, louvain_communities, small_nodes_absorbed,
    sweeps, moves, init_seconds, optimise_seconds)`` — the fields
    :class:`repro.core.gtxallo.GTxAlloResult` is built from.

    ``warm=True`` is the turbo backend: Louvain warm-starts from the
    previous snapshot's partition (:func:`louvain_flat_warm`) and the
    optimisation phase work-skips converged nodes
    (:func:`_optimise_flat_turbo`); sweep orders stay the reference's.
    Deterministic, but allowed to land on a different local optimum than
    ``warm=False`` — see the module docstring for the gated contract.
    """
    t0 = time.perf_counter()
    csr = graph.freeze()

    if initial_partition is None:
        memo_key = (32, 1.0)  # the louvain defaults used below
        if warm:
            comm = louvain_flat_warm(csr)
            num_louvain = 1 + max(comm, default=-1)
            intra_cut = csr.intra_cut_warm_memo.get(memo_key)
            if intra_cut is None:
                intra_cut = _intra_cut(csr, comm, num_louvain)
                csr.intra_cut_warm_memo[memo_key] = intra_cut
        else:
            comm = louvain_flat(csr)
            num_louvain = 1 + max(comm, default=-1)
            intra_cut = csr.intra_cut_memo.get(memo_key)
            if intra_cut is None:
                intra_cut = _intra_cut(csr, comm, num_louvain)
                csr.intra_cut_memo[memo_key] = intra_cut
    else:
        # The label count follows the partition dict (which may mention
        # accounts beyond the graph), matching the reference exactly.
        num_louvain = 1 + max(initial_partition.values(), default=-1)
        comm = _lower_partition(csr, initial_partition, num_louvain)
        intra_cut = None

    # Both backends keep the reference's ascending-identifier sweep order
    # (tiny graphs are several percent sensitive to sweep order, so turbo
    # does not spend its divergence budget there — only on the warm seed
    # and the work-skipping schedule).
    flat, num_small = _initialise_flat(csr, params, comm, num_louvain, intra_cut)
    t1 = time.perf_counter()

    if node_order is None:
        # The reference sweeps graph.nodes_sorted(); on insertion-ordered
        # CSR ids that is the sorted_order permutation.
        order: Iterable[int] = csr.sorted_order
    else:
        index_of = csr.index_of
        try:
            order = [index_of[v] for v in node_order]
        except KeyError as exc:
            raise GraphError(f"unknown node {exc.args[0]!r}") from None
    if warm:
        sweeps, moves = _optimise_flat_turbo(flat, order, params.epsilon)
    else:
        sweeps, moves = _optimise_flat(flat, order, params.epsilon)
    t2 = time.perf_counter()

    alloc = flat.to_allocation(graph)
    return alloc, num_louvain, num_small, sweeps, moves, t1 - t0, t2 - t1


def _lower_partition(
    csr: CSRGraph, partition: Dict[Node, int], num_comms: int
) -> List[int]:
    """Lower a node→community dict onto CSR ids, with reference checks."""
    comm: List[int] = []
    for v in csr.nodes:
        try:
            c = partition[v]
        except KeyError:
            raise AllocationError(f"partition misses account {v!r}") from None
        if not 0 <= c < max(num_comms, 1):
            raise AllocationError(
                f"community index {c} of account {v!r} outside [0, {num_comms})"
            )
        comm.append(c)
    return comm


def _initialise_flat(
    csr: CSRGraph,
    params: TxAlloParams,
    comm: List[int],
    num_comms: int,
    intra_cut: Optional[Tuple[List[float], List[float]]] = None,
) -> Tuple[_FlatAllocation, int]:
    """Phase 1 of Algorithm 1 (mirrors ``gtxallo._initialise``)."""
    k = params.k
    if num_comms <= k:
        # Uncommon case l <= k: pad with empty shards.  A cached
        # (intra, cut) covers communities [0, num_comms); the padding
        # shards carry exactly zero weight, as a fresh edge walk over
        # ``k`` slots would produce.
        if intra_cut is not None and k > num_comms:
            pad = [0.0] * (k - num_comms)
            intra_cut = (intra_cut[0] + pad, intra_cut[1] + pad)
        return _FlatAllocation(csr, params, comm, k, intra_cut), 0

    staged = _FlatAllocation(csr, params, comm, num_comms, intra_cut)
    ranked = sorted(range(num_comms), key=lambda c: (-staged.sigma[c], c))
    relabel = {c: i for i, c in enumerate(ranked)}
    # Relabelling permutes the caches; the float sums per community are
    # unchanged (same additions in the same order into a renamed slot).
    flat = staged
    flat.comm = [relabel[c] for c in comm]
    sigma = [0.0] * num_comms
    lam_hat = [0.0] * num_comms
    counts = [0] * num_comms
    for c in range(num_comms):
        r = relabel[c]
        sigma[r] = staged.sigma[c]
        lam_hat[r] = staged.lam_hat[c]
        counts[r] = staged.counts[c]
    flat.sigma, flat.lam_hat, flat.counts = sigma, lam_hat, counts

    lam = params.lam
    eta = params.eta
    comm = flat.comm
    loop = csr.loop
    ext = csr.ext
    num_small = 0
    # Small-community nodes in ascending identifier order, as the
    # reference's sorted() scan visits them.
    for i in csr.sorted_order:
        p = comm[i]
        if p < k:
            continue
        num_small += 1
        touched = flat.scan(i)
        w_self = loop[i]
        w_ext = ext[i]
        candidates: Iterable[int] = sorted(
            c for c in touched if c < k and flat.acc[c] > 0.0
        )
        if not candidates:
            # The node connects to no large community: every shard is a
            # candidate (Algorithm 1, lines 4-6).
            candidates = range(k)
        q = _best_join(flat, candidates, w_self, w_ext, eta, lam)[0]
        flat.move(i, p, q, w_self, w_ext)
    flat.truncate(k)
    return flat, num_small


def _best_join(
    flat: _FlatAllocation,
    candidates: Iterable[int],
    w_self: float,
    w_ext: float,
    eta: float,
    lam: float,
) -> Tuple[Optional[int], float]:
    """Argmax of Eq. (6) over ``candidates`` (ascending; ties → smallest).

    Bit-identical to ``GainComputer.best_join`` /
    ``capped_throughput``: same expressions, same operand order.
    """
    sigma = flat.sigma
    lam_hat = flat.lam_hat
    best_q: Optional[int] = None
    best_gain = -float("inf")
    for q in candidates:
        w_q = flat.weight_to(q)
        sigma_q = sigma[q]
        lam_hat_q = lam_hat[q]
        sigma_new = sigma_q + w_self + eta * (w_ext - w_q) + (1.0 - eta) * w_q
        lam_hat_new = lam_hat_q + w_self + w_ext / 2.0
        if sigma_q <= lam or sigma_q == 0.0:
            before = lam_hat_q
        else:
            before = lam / sigma_q * lam_hat_q
        if sigma_new <= lam or sigma_new == 0.0:
            after = lam_hat_new
        else:
            after = lam / sigma_new * lam_hat_new
        gain = after - before
        if gain > best_gain:
            best_gain = gain
            best_q = q
    if best_q is None:
        return None, 0.0
    return best_q, best_gain


def _optimise_flat(
    flat: _FlatAllocation,
    order: Iterable[int],
    epsilon: float,
) -> Tuple[int, int]:
    """Phase 2 of Algorithm 1 (mirrors ``gtxallo._optimise``).

    This is the hottest loop of the whole system, so the scatter scan and
    the gain evaluations are inlined with every array bound to a local —
    no method calls, no per-node allocations beyond the reused ``touched``
    list.  The arithmetic is the reference's, expression for expression.
    """
    params = flat.params
    eta = params.eta
    lam = params.lam
    one_minus_eta = 1.0 - eta
    eta_minus_one = eta - 1.0
    comm = flat.comm
    pairs = flat.csr.pairs
    loop = flat.csr.loop
    ext = flat.csr.ext
    sigma = flat.sigma
    lam_hat = flat.lam_hat
    acc = flat.acc
    stamp = flat.stamp
    epoch = flat.epoch
    counts = flat.counts
    neg_inf = -float("inf")

    order = list(order)
    touched: List[int] = []
    # Cached capped throughput per community: a pure function of
    # (sigma[c], lam_hat[c], lam), refreshed on the two communities a move
    # touches — reading the cache is bit-identical to recomputing.
    thpt = [0.0] * len(sigma)
    for c in range(len(sigma)):
        sigma_c = sigma[c]
        if sigma_c <= lam or sigma_c == 0.0:
            thpt[c] = lam_hat[c]
        else:
            thpt[c] = lam / sigma_c * lam_hat[c]

    sweeps = 0
    moves = 0
    while sweeps < _GLOBAL_MAX_SWEEPS:
        sweeps += 1
        sweep_gain = 0.0
        for i in order:
            p = comm[i]
            epoch += 1
            del touched[:]
            append = touched.append
            for j, w in pairs[i]:
                c = comm[j]
                if stamp[c] == epoch:
                    acc[c] += w
                else:
                    stamp[c] = epoch
                    acc[c] = w
                    append(c)
            # Candidate communities (Eq. 9): neighbours' communities minus
            # our own.  Accumulated weights are sums of positive edge
            # weights, so the reference's w > 0 filter is always true.
            if not touched or (len(touched) == 1 and touched[0] == p):
                # The node connects only to its own community; it stays.
                continue
            touched.sort()
            w_self = loop[i]
            w_ext = ext[i]
            half_ext = w_ext / 2.0
            # Leave gain (evaluated once; independent of the destination).
            w_p = acc[p] if stamp[p] == epoch else 0.0
            sigma_p = sigma[p]
            lam_hat_p = lam_hat[p]
            sigma_new = sigma_p - w_self - eta * (w_ext - w_p) + eta_minus_one * w_p
            lam_hat_new = lam_hat_p - w_self - half_ext
            if sigma_new <= lam or sigma_new == 0.0:
                after = lam_hat_new
            else:
                after = lam / sigma_new * lam_hat_new
            leave = after - thpt[p]
            best_q = -1
            best_gain = neg_inf
            for q in touched:
                if q == p:
                    continue
                w_q = acc[q]
                sigma_q = sigma[q]
                sigma_new = sigma_q + w_self + eta * (w_ext - w_q) + one_minus_eta * w_q
                # NB: left-associated like GainComputer.join_gain; the
                # move application below uses Allocation.move's
                # ``half``-grouped form instead — they can differ in the
                # last ulp and parity tracks each reference site exactly.
                lam_hat_new = lam_hat[q] + w_self + half_ext
                if sigma_new <= lam or sigma_new == 0.0:
                    join_after = lam_hat_new
                else:
                    join_after = lam / sigma_new * lam_hat_new
                gain = leave + (join_after - thpt[q])
                if gain > best_gain:
                    best_gain = gain
                    best_q = q
            if best_q >= 0 and best_gain > 0.0:
                # Apply Allocation.move's deltas in place (its ``half`` is
                # the grouped ``w_self + w_ext / 2.0``).
                half = w_self + half_ext
                w_q = acc[best_q] if stamp[best_q] == epoch else 0.0
                sigma_p = sigma[p] + (-w_self - eta * (w_ext - w_p) + eta_minus_one * w_p)
                sigma[p] = sigma_p
                lam_hat_p = lam_hat[p] - half
                lam_hat[p] = lam_hat_p
                sigma_q = sigma[best_q] + (w_self + eta * (w_ext - w_q) + one_minus_eta * w_q)
                sigma[best_q] = sigma_q
                lam_hat_q = lam_hat[best_q] + half
                lam_hat[best_q] = lam_hat_q
                if sigma_p <= lam or sigma_p == 0.0:
                    thpt[p] = lam_hat_p
                else:
                    thpt[p] = lam / sigma_p * lam_hat_p
                if sigma_q <= lam or sigma_q == 0.0:
                    thpt[best_q] = lam_hat_q
                else:
                    thpt[best_q] = lam / sigma_q * lam_hat_q
                comm[i] = best_q
                counts[p] -= 1
                counts[best_q] += 1
                sweep_gain += best_gain
                moves += 1
        if sweep_gain < epsilon:
            break
    flat.epoch = epoch
    return sweeps, moves


def _optimise_flat_turbo(
    flat: _FlatAllocation,
    order: Iterable[int],
    epsilon: float,
) -> Tuple[int, int]:
    """Phase 2 with the turbo work-skipping schedule.

    The first sweep visits every node in ``order`` exactly like
    :func:`_optimise_flat`; each later sweep revisits only the nodes
    with a neighbour that moved in the previous sweep (ascending id).
    By Lemma 1 a move changes only the two communities involved, so a
    node with no moved neighbour keeps the same candidate set and very
    nearly the same gains — re-evaluating the whole graph each sweep is
    what made the cold refresh pay O(N k) per sweep after the first.
    The skip can defer marginal moves for nodes a move only affected
    through a community's ``sigma``/``lam_hat`` drift (not through an
    incident edge); on the dynamic path those are exactly the moves the
    next A-TxAllo step or refresh picks up, and the end-state quality is
    part of the turbo divergence contract, gated on the objective (the
    measured objective gap at bench scale is under 1%, usually in
    turbo's favour).  Gain arithmetic is identical to
    :func:`_optimise_flat`, expression for expression.
    """
    params = flat.params
    eta = params.eta
    lam = params.lam
    one_minus_eta = 1.0 - eta
    eta_minus_one = eta - 1.0
    comm = flat.comm
    pairs = flat.csr.pairs
    loop = flat.csr.loop
    ext = flat.csr.ext
    sigma = flat.sigma
    lam_hat = flat.lam_hat
    acc = flat.acc
    stamp = flat.stamp
    epoch = flat.epoch
    counts = flat.counts
    neg_inf = -float("inf")

    n = len(comm)
    touched: List[int] = []
    in_next = bytearray(n)
    thpt = [0.0] * len(sigma)
    for c in range(len(sigma)):
        sigma_c = sigma[c]
        if sigma_c <= lam or sigma_c == 0.0:
            thpt[c] = lam_hat[c]
        else:
            thpt[c] = lam / sigma_c * lam_hat[c]

    sweeps = 0
    moves = 0
    current: Iterable[int] = list(order)
    while sweeps < _GLOBAL_MAX_SWEEPS:
        sweeps += 1
        sweep_gain = 0.0
        next_ids: List[int] = []
        for i in current:
            p = comm[i]
            epoch += 1
            del touched[:]
            append = touched.append
            row = pairs[i]
            for j, w in row:
                c = comm[j]
                if stamp[c] == epoch:
                    acc[c] += w
                else:
                    stamp[c] = epoch
                    acc[c] = w
                    append(c)
            if not touched or (len(touched) == 1 and touched[0] == p):
                continue
            touched.sort()
            w_self = loop[i]
            w_ext = ext[i]
            half_ext = w_ext / 2.0
            w_p = acc[p] if stamp[p] == epoch else 0.0
            sigma_p = sigma[p]
            lam_hat_p = lam_hat[p]
            sigma_new = sigma_p - w_self - eta * (w_ext - w_p) + eta_minus_one * w_p
            lam_hat_new = lam_hat_p - w_self - half_ext
            if sigma_new <= lam or sigma_new == 0.0:
                after = lam_hat_new
            else:
                after = lam / sigma_new * lam_hat_new
            leave = after - thpt[p]
            best_q = -1
            best_gain = neg_inf
            for q in touched:
                if q == p:
                    continue
                w_q = acc[q]
                sigma_q = sigma[q]
                sigma_new = sigma_q + w_self + eta * (w_ext - w_q) + one_minus_eta * w_q
                lam_hat_new = lam_hat[q] + w_self + half_ext
                if sigma_new <= lam or sigma_new == 0.0:
                    join_after = lam_hat_new
                else:
                    join_after = lam / sigma_new * lam_hat_new
                gain = leave + (join_after - thpt[q])
                if gain > best_gain:
                    best_gain = gain
                    best_q = q
            if best_q >= 0 and best_gain > 0.0:
                half = w_self + half_ext
                w_q = acc[best_q] if stamp[best_q] == epoch else 0.0
                sigma_p = sigma[p] + (-w_self - eta * (w_ext - w_p) + eta_minus_one * w_p)
                sigma[p] = sigma_p
                lam_hat_p = lam_hat[p] - half
                lam_hat[p] = lam_hat_p
                sigma_q = sigma[best_q] + (w_self + eta * (w_ext - w_q) + one_minus_eta * w_q)
                sigma[best_q] = sigma_q
                lam_hat_q = lam_hat[best_q] + half
                lam_hat[best_q] = lam_hat_q
                if sigma_p <= lam or sigma_p == 0.0:
                    thpt[p] = lam_hat_p
                else:
                    thpt[p] = lam / sigma_p * lam_hat_p
                if sigma_q <= lam or sigma_q == 0.0:
                    thpt[best_q] = lam_hat_q
                else:
                    thpt[best_q] = lam / sigma_q * lam_hat_q
                comm[i] = best_q
                counts[p] -= 1
                counts[best_q] += 1
                sweep_gain += best_gain
                moves += 1
                for j, _w in row:
                    if not in_next[j]:
                        in_next[j] = 1
                        next_ids.append(j)
        if sweep_gain < epsilon or not next_ids:
            break
        next_ids.sort()
        for j in next_ids:
            in_next[j] = 0
        current = next_ids
    flat.epoch = epoch
    return sweeps, moves


# ======================================================================
# A-TxAllo on a snapshot of the touched neighbourhoods
# ======================================================================
def a_txallo_flat(
    alloc: Allocation,
    touched: Iterable[Node],
    epsilon: float,
    workspace: Optional["AdaptiveWorkspace"] = None,
) -> Tuple[int, int, int, int, bool]:
    """Algorithm 2 on flat snapshots, mutating ``alloc`` in place.

    Returns ``(new_nodes, swept_nodes, sweeps, moves, converged)`` —
    ``converged`` is ``False`` when the run exhausted the sweep cap
    before the per-sweep gain dropped below ``epsilon``.

    ``workspace`` switches to the batched path: the touched
    neighbourhoods are read from the persistent
    :class:`AdaptiveWorkspace` views (kept current via the graph's
    mutation journal) instead of a fresh per-run snapshot of the frozen
    CSR.  Byte-identical results either way — the workspace is a cache,
    not a backend level (see the module docstring).

    The graph does not change during a run, so each touched node's
    neighbourhood is scanned **once** into flat arrays: per-neighbour
    weight plus either the neighbour's fixed community (untouched nodes
    cannot move) or an indirection slot into the touched set (touched
    nodes can).  Sweeps then re-evaluate from the snapshot without ever
    re-hashing an account string.  Assignments and moves are applied
    through :meth:`Allocation.assign` / :meth:`Allocation.move` with the
    accumulated weights, so the cache arithmetic is the reference's own.

    The per-node rows come from the graph's frozen CSR form, which
    :meth:`TransactionGraph.freeze` maintains *incrementally* between
    runs (delta-freeze): on the controller path, where each block only
    perturbs a small frontier, refreshing the snapshot costs work
    proportional to that frontier instead of a from-scratch O(N + E)
    lowering.  CSR rows replay the adjacency-dict iteration order and
    ``loop``/``ext`` are the same accumulated floats, so the run stays
    byte-identical to the reference backend.
    """
    if workspace is not None:
        return _a_txallo_workspace(alloc, touched, epsilon, workspace)
    graph = alloc.graph
    params = alloc.params
    k = params.k
    eta = params.eta
    lam = params.lam
    num_comms = alloc.num_communities
    shard_of = alloc._shard_of

    csr = graph.freeze()
    index_of = csr.index_of
    csr_nodes = csr.nodes
    csr_pairs = csr.pairs

    hat_v: List[Node] = sorted(set(touched))
    nv = len(hat_v)
    ids: List[int] = []
    for v in hat_v:
        try:
            ids.append(index_of[v])
        except KeyError:
            raise GraphError(f"unknown node {v!r}") from None
    local_slot = {i: s for s, i in enumerate(ids)}
    local_shard = [shard_of.get(v, -1) for v in hat_v]

    # --- one-time neighbourhood snapshot --------------------------------
    # Per neighbour entry ``(code, w)``: ``code >= 0`` is the fixed
    # community of an untouched assigned neighbour; ``code < 0`` is
    # ``~slot`` of a touched neighbour (community read through
    # ``local_shard`` at evaluation time).  Untouched *unassigned*
    # neighbours are dropped — they never contribute shard weight and
    # ``w_ext`` comes precomputed from the frozen form (``csr.ext`` sums
    # the same floats in the same row order as a dict scan would).
    snap: List[List[Tuple[int, float]]] = []
    self_w = [0.0] * nv
    ext_w = [0.0] * nv
    for s, i in enumerate(ids):
        entries: List[Tuple[int, float]] = []
        for j, w in csr_pairs[i]:
            slot = local_slot.get(j)
            if slot is not None:
                entries.append((~slot, w))
            else:
                c = shard_of.get(csr_nodes[j])
                if c is not None:
                    entries.append((c, w))
        self_w[s] = csr.loop[i]
        ext_w[s] = csr.ext[i]
        snap.append(entries)

    acc = [0.0] * num_comms
    stamp = [0] * num_comms
    epoch = 0

    def scan(s: int) -> List[int]:
        nonlocal epoch
        epoch += 1
        touched_comms: List[int] = []
        for code, w in snap[s]:
            c = code if code >= 0 else local_shard[~code]
            if c < 0:
                continue  # touched neighbour still unassigned
            if stamp[c] == epoch:
                acc[c] += w
            else:
                stamp[c] = epoch
                acc[c] = w
                touched_comms.append(c)
        return touched_comms

    def weights_triple(s: int, touched_comms: List[int]):
        by_shard = {c: acc[c] for c in touched_comms}
        return by_shard, self_w[s], ext_w[s]

    def join_gain(q: int, w_q: float, w_self: float, w_ext: float) -> float:
        sigma_q = alloc.sigma[q]
        lam_hat_q = alloc.lam_hat[q]
        sigma_new = sigma_q + w_self + eta * (w_ext - w_q) + (1.0 - eta) * w_q
        lam_hat_new = lam_hat_q + w_self + w_ext / 2.0
        if sigma_q <= lam or sigma_q == 0.0:
            before = lam_hat_q
        else:
            before = lam / sigma_q * lam_hat_q
        if sigma_new <= lam or sigma_new == 0.0:
            after = lam_hat_new
        else:
            after = lam / sigma_new * lam_hat_new
        return after - before

    # --- Phase 1: brand-new accounts (Algorithm 2, lines 1-8) -----------
    new_slots = [s for s in range(nv) if local_shard[s] < 0]
    for s in new_slots:
        touched_comms = scan(s)
        w_self = self_w[s]
        w_ext = ext_w[s]
        candidates: Iterable[int] = sorted(
            c for c in touched_comms if c < k and acc[c] > 0.0
        )
        if not candidates:
            candidates = range(k)
        best_q = -1
        best_gain = -float("inf")
        for q in candidates:
            w_q = acc[q] if stamp[q] == epoch else 0.0
            gain = join_gain(q, w_q, w_self, w_ext)
            if gain > best_gain:
                best_gain = gain
                best_q = q
        alloc.assign(hat_v[s], best_q, weights=weights_triple(s, touched_comms))
        local_shard[s] = best_q

    # --- Phase 2: optimise the touched set (lines 9-17) -----------------
    # Inlined like _optimise_flat: arrays in locals, per-community capped
    # throughput cached (a pure function of sigma/lam_hat, refreshed on
    # the communities each assign/move touches — bit-identical reads).
    sigma = alloc.sigma
    lam_hat = alloc.lam_hat
    one_minus_eta = 1.0 - eta
    eta_minus_one = eta - 1.0
    neg_inf = -float("inf")
    thpt = [0.0] * num_comms
    for c in range(num_comms):
        sigma_c = sigma[c]
        if sigma_c <= lam or sigma_c == 0.0:
            thpt[c] = lam_hat[c]
        else:
            thpt[c] = lam / sigma_c * lam_hat[c]

    touched_comms: List[int] = []
    sweeps = 0
    moves = 0
    converged = False
    while sweeps < _ADAPTIVE_MAX_SWEEPS:
        sweeps += 1
        sweep_gain = 0.0
        for s in range(nv):
            p = local_shard[s]
            epoch += 1
            del touched_comms[:]
            append = touched_comms.append
            for code, w in snap[s]:
                c = code if code >= 0 else local_shard[~code]
                if c < 0:
                    continue  # touched neighbour still unassigned
                if stamp[c] == epoch:
                    acc[c] += w
                else:
                    stamp[c] = epoch
                    acc[c] = w
                    append(c)
            if not touched_comms or (
                len(touched_comms) == 1 and touched_comms[0] == p
            ):
                continue
            touched_comms.sort()
            w_self = self_w[s]
            w_ext = ext_w[s]
            half_ext = w_ext / 2.0
            w_p = acc[p] if stamp[p] == epoch else 0.0
            sigma_new = sigma[p] - w_self - eta * (w_ext - w_p) + eta_minus_one * w_p
            lam_hat_new = lam_hat[p] - w_self - half_ext
            if sigma_new <= lam or sigma_new == 0.0:
                after = lam_hat_new
            else:
                after = lam / sigma_new * lam_hat_new
            leave = after - thpt[p]
            best_q = -1
            best_gain = neg_inf
            for q in touched_comms:
                if q == p:
                    continue
                w_q = acc[q]
                sigma_new = sigma[q] + w_self + eta * (w_ext - w_q) + one_minus_eta * w_q
                lam_hat_new = lam_hat[q] + w_self + half_ext
                if sigma_new <= lam or sigma_new == 0.0:
                    join_after = lam_hat_new
                else:
                    join_after = lam / sigma_new * lam_hat_new
                gain = leave + (join_after - thpt[q])
                if gain > best_gain:
                    best_gain = gain
                    best_q = q
            if best_q >= 0 and best_gain > 0.0:
                alloc.move(hat_v[s], best_q, weights=weights_triple(s, touched_comms))
                local_shard[s] = best_q
                sigma_p = sigma[p]
                if sigma_p <= lam or sigma_p == 0.0:
                    thpt[p] = lam_hat[p]
                else:
                    thpt[p] = lam / sigma_p * lam_hat[p]
                sigma_q = sigma[best_q]
                if sigma_q <= lam or sigma_q == 0.0:
                    thpt[best_q] = lam_hat[best_q]
                else:
                    thpt[best_q] = lam / sigma_q * lam_hat[best_q]
                sweep_gain += best_gain
                moves += 1
        if sweep_gain < epsilon:
            converged = True
            break

    return len(new_slots), nv, sweeps, moves, converged


# ======================================================================
# Adaptive workspace — batched A-TxAllo across τ₁ windows
# ======================================================================
class AdaptiveWorkspace:
    """Persistent flat views shared by consecutive A-TxAllo runs.

    Owned by :class:`repro.core.controller.TxAlloController` (one per
    controller); the τ₁ block loop passes it to every adaptive run via
    :func:`repro.core.atxallo.a_txallo`.  State, all in dense-id space:

    * ``rows[i]`` — id-keyed weight map of node ``i``'s loop-free
      neighbourhood, iteration-ordered like the adjacency dict row;
    * ``loop[i]`` — the self-loop weight ``w{v, v}``;
    * ``shard[i]`` — current community of node ``i`` (-1 unassigned),
      updated in lockstep with every ``Allocation.assign``/``move`` the
      runs apply.

    Between runs the views are kept current by replaying the graph's
    :class:`~repro.core.graph.MutationJournal` — O(delta) integer-dict
    work, no freeze, no string hashing beyond interning brand-new
    accounts.  :meth:`sync` falls back to a full rebuild from a fresh
    frozen snapshot when the cache cannot be trusted: different
    allocation object (global refresh replaced it), poisoned journal
    (window decay / pruning / a competing journal), or an allocation
    mutation watermark differing from what the last run left behind
    (:attr:`repro.core.allocation.Allocation.mutation_count` — some
    other code path assigned or moved accounts without the workspace).

    The workspace is a cache, not a backend level — runs through it are
    byte-identical to the snapshot-per-run fast path (module docstring
    has the argument; the parity suites pin it).
    """

    __slots__ = (
        "_alloc",
        "_graph",
        "_journal",
        "_index_of",
        "_nodes",
        "_rows",
        "_loop",
        "_shard",
        "_mutation_mark",
        "_counts",
    )

    def __init__(self) -> None:
        self._alloc: Optional[Allocation] = None
        self._graph = None
        self._journal = None
        self._index_of: Dict[Node, int] = {}
        self._nodes: List[Node] = []
        self._rows: List[Dict[int, float]] = []
        self._loop: List[float] = []
        self._shard: List[int] = []
        self._mutation_mark = -1
        self._counts = {"rebuilds": 0, "extends": 0, "runs": 0}

    # ------------------------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        """Lifecycle counters: ``{"rebuilds", "extends", "runs"}``.

        ``rebuilds`` counts full re-lowerings from a frozen snapshot,
        ``extends`` journal replays that refreshed the cached views, and
        ``runs`` A-TxAllo runs served.  Benchmarks and tests use this to
        prove the batched path actually carried across windows.
        """
        return dict(self._counts)

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        # A discarded workspace must not leave the graph journaling into
        # the void — on a long-lived shared graph that log would grow
        # with every future mutation (the graph-side JOURNAL_EDGE_CAP is
        # the backstop when even this never runs).
        try:
            if self._graph is not None and self._journal is not None:
                self._graph.stop_mutation_journal(self._journal)
        except Exception:
            pass

    def invalidate(self) -> None:
        """Drop all cached state; the next run rebuilds from a freeze.

        The controller calls this on every global refresh — the refresh
        replaces the allocation wholesale, so the id→shard view (and the
        memory behind the row maps) has nothing left to cache.
        """
        if self._graph is not None and self._journal is not None:
            self._graph.stop_mutation_journal(self._journal)
        self._alloc = None
        self._graph = None
        self._journal = None
        self._index_of = {}
        self._nodes = []
        self._rows = []
        self._loop = []
        self._shard = []
        self._mutation_mark = -1

    # ------------------------------------------------------------------
    def sync(self, alloc: Allocation) -> None:
        """Bring the views up to date for a run against ``alloc``."""
        journal = self._journal
        if (
            self._alloc is not alloc
            or self._graph is not alloc.graph
            or journal is None
            or journal.poisoned
            or self._mutation_mark != alloc.mutation_count
        ):
            self._rebuild(alloc)
            return
        if journal.nodes or journal.edges:
            self._apply_journal(alloc, journal)
            self._counts["extends"] += 1

    def _rebuild(self, alloc: Allocation) -> None:
        graph = alloc.graph
        if self._graph is not None and self._journal is not None:
            self._graph.stop_mutation_journal(self._journal)
        # Freeze first, then subscribe: every journal entry is then a
        # mutation the snapshot has not seen.
        csr = graph.freeze()
        self._journal = graph.start_mutation_journal()
        self._rows, self._loop = csr.adjacency_dicts()
        self._nodes = list(csr.nodes)
        self._index_of = dict(csr.index_of)
        shard = [-1] * len(self._nodes)
        index_of = self._index_of
        for v, c in alloc._shard_of.items():
            i = index_of.get(v)
            if i is not None:
                shard[i] = c
        self._shard = shard
        self._alloc = alloc
        self._graph = graph
        self._mutation_mark = alloc.mutation_count
        self._counts["rebuilds"] += 1

    def _apply_journal(self, alloc: Allocation, journal) -> None:
        """Replay the journal onto the cached views (bit-exact).

        New-neighbour entries land as ``0.0 + w`` and repeat increments
        as ``old + w`` — the same float operations, in the same order,
        the adjacency dicts themselves performed, so a row map always
        equals what lowering the live dict row would produce.
        """
        index_of = self._index_of
        nodes = self._nodes
        rows = self._rows
        loop = self._loop
        shard = self._shard
        shard_of_or_none = alloc.shard_of_or_none
        for v in journal.nodes:
            index_of[v] = len(nodes)
            nodes.append(v)
            rows.append({})
            loop.append(0.0)
            c = shard_of_or_none(v)
            shard.append(-1 if c is None else c)
        for u, v, w in journal.edges:
            iu = index_of[u]
            if u == v:
                loop[iu] += w
            else:
                iv = index_of[v]
                row = rows[iu]
                row[iv] = row.get(iv, 0.0) + w
                row = rows[iv]
                row[iu] = row.get(iu, 0.0) + w
        journal.clear()

    def _note_run(self, alloc: Allocation) -> None:
        """Record a completed run (mutation watermark + counter)."""
        self._mutation_mark = alloc.mutation_count
        self._counts["runs"] += 1


def _a_txallo_workspace(
    alloc: Allocation,
    touched: Iterable[Node],
    epsilon: float,
    workspace: AdaptiveWorkspace,
) -> Tuple[int, int, int, int, bool]:
    """Algorithm 2 against the persistent workspace views.

    Structurally the same two phases as the snapshot path in
    :func:`a_txallo_flat`, but the per-run snapshot build (and the freeze
    behind it) is replaced by :meth:`AdaptiveWorkspace.sync`.  Per-node
    ``w_ext`` is re-summed from the row map in row order — the identical
    float sequence a CSR lowering would produce — and neighbour
    communities are read live through the dense ``shard`` array, which
    the applied assigns/moves keep in lockstep with ``alloc``.  Scan
    accumulation order matches the snapshot path entry for entry, so the
    two paths are byte-identical.
    """
    workspace.sync(alloc)
    params = alloc.params
    k = params.k
    eta = params.eta
    lam = params.lam
    num_comms = alloc.num_communities
    index_of = workspace._index_of
    rows = workspace._rows
    loop = workspace._loop
    shard = workspace._shard

    hat_v: List[Node] = sorted(set(touched))
    nv = len(hat_v)
    ids: List[int] = []
    for v in hat_v:
        try:
            ids.append(index_of[v])
        except KeyError:
            raise GraphError(f"unknown node {v!r}") from None

    # Materialise each touched row once (the graph cannot mutate during a
    # run) and re-derive w_self / w_ext: loop is maintained bit-exactly,
    # and sum() over the row map adds the same floats left-to-right in
    # iteration order — exactly the lowering's accumulation of csr.ext.
    row_items: List[List[Tuple[int, float]]] = []
    self_w = [0.0] * nv
    ext_w = [0.0] * nv
    for s, i in enumerate(ids):
        row = rows[i]
        row_items.append(list(row.items()))
        self_w[s] = loop[i]
        ext_w[s] = sum(row.values())

    acc = [0.0] * num_comms
    stamp = [0] * num_comms
    epoch = 0

    def scan(s: int) -> List[int]:
        nonlocal epoch
        epoch += 1
        touched_comms: List[int] = []
        for j, w in row_items[s]:
            c = shard[j]
            if c < 0:
                continue  # unassigned neighbour carries no shard weight
            if stamp[c] == epoch:
                acc[c] += w
            else:
                stamp[c] = epoch
                acc[c] = w
                touched_comms.append(c)
        return touched_comms

    # Assign/move below pass *minimal* weight triples — only the source
    # and destination communities are ever read (``by_shard.get(p)`` /
    # ``.get(q)``), and the values are the same stamped accumulator reads
    # the full per-community dict would carry, so the cache arithmetic is
    # bit-identical to the snapshot path's ``weights_triple``.
    def join_gain(q: int, w_q: float, w_self: float, w_ext: float) -> float:
        sigma_q = alloc.sigma[q]
        lam_hat_q = alloc.lam_hat[q]
        sigma_new = sigma_q + w_self + eta * (w_ext - w_q) + (1.0 - eta) * w_q
        lam_hat_new = lam_hat_q + w_self + w_ext / 2.0
        if sigma_q <= lam or sigma_q == 0.0:
            before = lam_hat_q
        else:
            before = lam / sigma_q * lam_hat_q
        if sigma_new <= lam or sigma_new == 0.0:
            after = lam_hat_new
        else:
            after = lam / sigma_new * lam_hat_new
        return after - before

    # --- Phase 1: brand-new accounts (Algorithm 2, lines 1-8) -----------
    new_slots = [s for s in range(nv) if shard[ids[s]] < 0]
    for s in new_slots:
        touched_comms = scan(s)
        w_self = self_w[s]
        w_ext = ext_w[s]
        candidates: Iterable[int] = sorted(
            c for c in touched_comms if c < k and acc[c] > 0.0
        )
        if not candidates:
            candidates = range(k)
        best_q = -1
        best_gain = -float("inf")
        for q in candidates:
            w_q = acc[q] if stamp[q] == epoch else 0.0
            gain = join_gain(q, w_q, w_self, w_ext)
            if gain > best_gain:
                best_gain = gain
                best_q = q
        w_q = acc[best_q] if stamp[best_q] == epoch else 0.0
        alloc.assign(hat_v[s], best_q, weights=({best_q: w_q}, w_self, w_ext))
        shard[ids[s]] = best_q

    # --- Phase 2: optimise the touched set (lines 9-17) -----------------
    sigma = alloc.sigma
    lam_hat = alloc.lam_hat
    one_minus_eta = 1.0 - eta
    eta_minus_one = eta - 1.0
    neg_inf = -float("inf")
    thpt = [0.0] * num_comms
    for c in range(num_comms):
        sigma_c = sigma[c]
        if sigma_c <= lam or sigma_c == 0.0:
            thpt[c] = lam_hat[c]
        else:
            thpt[c] = lam / sigma_c * lam_hat[c]

    touched_comms: List[int] = []
    sweeps = 0
    moves = 0
    converged = False
    while sweeps < _ADAPTIVE_MAX_SWEEPS:
        sweeps += 1
        sweep_gain = 0.0
        for s in range(nv):
            i = ids[s]
            p = shard[i]
            epoch += 1
            del touched_comms[:]
            append = touched_comms.append
            for j, w in row_items[s]:
                c = shard[j]
                if c < 0:
                    continue  # unassigned neighbour carries no shard weight
                if stamp[c] == epoch:
                    acc[c] += w
                else:
                    stamp[c] = epoch
                    acc[c] = w
                    append(c)
            if not touched_comms or (
                len(touched_comms) == 1 and touched_comms[0] == p
            ):
                continue
            touched_comms.sort()
            w_self = self_w[s]
            w_ext = ext_w[s]
            half_ext = w_ext / 2.0
            w_p = acc[p] if stamp[p] == epoch else 0.0
            sigma_new = sigma[p] - w_self - eta * (w_ext - w_p) + eta_minus_one * w_p
            lam_hat_new = lam_hat[p] - w_self - half_ext
            if sigma_new <= lam or sigma_new == 0.0:
                after = lam_hat_new
            else:
                after = lam / sigma_new * lam_hat_new
            leave = after - thpt[p]
            best_q = -1
            best_gain = neg_inf
            for q in touched_comms:
                if q == p:
                    continue
                w_q = acc[q]
                sigma_new = sigma[q] + w_self + eta * (w_ext - w_q) + one_minus_eta * w_q
                lam_hat_new = lam_hat[q] + w_self + half_ext
                if sigma_new <= lam or sigma_new == 0.0:
                    join_after = lam_hat_new
                else:
                    join_after = lam / sigma_new * lam_hat_new
                gain = leave + (join_after - thpt[q])
                if gain > best_gain:
                    best_gain = gain
                    best_q = q
            if best_q >= 0 and best_gain > 0.0:
                alloc.move(
                    hat_v[s],
                    best_q,
                    weights=({p: w_p, best_q: acc[best_q]}, w_self, w_ext),
                )
                shard[i] = best_q
                sigma_p = sigma[p]
                if sigma_p <= lam or sigma_p == 0.0:
                    thpt[p] = lam_hat[p]
                else:
                    thpt[p] = lam / sigma_p * lam_hat[p]
                sigma_q = sigma[best_q]
                if sigma_q <= lam or sigma_q == 0.0:
                    thpt[best_q] = lam_hat[best_q]
                else:
                    thpt[best_q] = lam / sigma_q * lam_hat[best_q]
                sweep_gain += best_gain
                moves += 1
        if sweep_gain < epsilon:
            converged = True
            break

    workspace._note_run(alloc)
    return len(new_slots), nv, sweeps, moves, converged
