"""Exception hierarchy for the ``repro`` package.

All library errors derive from :class:`ReproError` so that callers can catch
one base class.  Errors are deliberately specific: an invalid hyperparameter
raises :class:`ParameterError`, a malformed transaction raises
:class:`TransactionError`, and so on.  The library never silences an error or
returns a sentinel value where an exception is the clearer signal.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ParameterError(ReproError, ValueError):
    """A hyperparameter is outside its valid domain (e.g. ``k < 1``)."""


class TransactionError(ReproError, ValueError):
    """A transaction violates the model of Section III-A of the paper.

    For example an empty input or output account set.
    """


class AllocationError(ReproError, ValueError):
    """An account-shard mapping violates Definition 1 of the paper.

    Raised on duplicate assignment (uniqueness) or on access to an account
    that is missing from the mapping (completeness).
    """


class GraphError(ReproError, ValueError):
    """An operation on the transaction graph is inconsistent.

    For example requesting the neighbourhood of an unknown node.
    """


class LedgerError(ReproError, ValueError):
    """A ledger operation is invalid, e.g. appending a non-contiguous block."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-time shard simulator reached an inconsistent state."""


class DataError(ReproError, ValueError):
    """An external dataset (CSV/JSONL export) is malformed."""
