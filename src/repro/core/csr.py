"""Compiled CSR view of a :class:`~repro.core.graph.TransactionGraph`.

``TransactionGraph`` stores adjacency as a dict-of-dicts keyed by account
strings — ideal for incremental ingest, terrible for the allocation hot
paths, which pay Python string hashing and per-node dict construction on
every neighbourhood scan.  :class:`CSRGraph` is the *frozen* form the
flat-array sweep engine (:mod:`repro.core.engine`) runs on: account
strings are interned to dense integer ids and the adjacency is lowered
into flat CSR arrays:

* ``indptr``/``indices``/``weights`` — ``array('l')``/``array('d')``
  row-pointer, neighbour-id and weight vectors.  Rows keep the *exact*
  iteration order of the source dict rows (including the self-loop entry
  at its original position), so any float accumulation the engine does
  over a row reproduces the reference implementation bit-for-bit.
* ``loop``/``ext`` — per-node self-loop weight ``w{v,v}`` and external
  strength ``w{v, V/v}`` (summed in row order, hence bit-identical to the
  reference's per-scan accumulation).
* ``pairs`` — a loop-free ``[(neighbour_id, weight), ...]`` list per node,
  the hot-loop view the sweep engine iterates (tuple unpacking is the
  fastest pure-Python idiom for this).
* ``sorted_order``/``sorted_rank`` — the lazily-built permutation between
  dense ids and ascending-identifier order, the canonical sweep order of
  Section IV-A (see below).

Id scheme
---------
Node ``i`` is the ``i``-th account in **insertion** (chronological
appearance) order — for a ledger replay, the order every miner observes.
Insertion order is *stable under growth*: new accounts always take the
next free ids, so an incremental re-freeze (:meth:`CSRGraph.extend`)
never renumbers existing rows.  The allocators' canonical
ascending-identifier sweep order is recovered through the
``sorted_order`` permutation, and ``TransactionGraph.edges()``-ordered
cache walks are simply ascending-id walks (the earlier-inserted endpoint
of every pair has the smaller id).

A ``CSRGraph`` is immutable; mutate the source graph and call
:meth:`TransactionGraph.freeze` again (the graph caches the frozen form
against an internal version counter, so freezing an unchanged graph is
free).

Delta-freeze
------------
Re-lowering the whole graph on every freeze is O(N + E) Python even when
a block only perturbed a handful of rows.  :meth:`CSRGraph.extend` is the
incremental path: given the previous snapshot and the mutation log since
its version (new nodes in insertion order, the set of nodes whose
adjacency rows changed), it copies every untouched span of the base
snapshot wholesale — ids are stable, so untouched rows are byte-reusable
— and re-lowers only the frontier.  The result is **element identical**
to a cold :meth:`CSRGraph.from_graph` of the same graph, which
``tests/test_delta_freeze.py`` pins property-style.
:meth:`TransactionGraph.freeze` drives this automatically; callers never
invoke :meth:`extend` directly.

Warm Louvain state
------------------
The ``"turbo"`` backend warm-starts Louvain from the partition of the
*previous* snapshot (see :func:`repro.core.engine.louvain_flat_warm`).
The prior membership rides the snapshot chain: :meth:`extend` copies the
base snapshot's Louvain results (cold ``louvain_memo`` or warm
``louvain_warm_memo``) into :attr:`warm_seeds`, together with the
accumulated *frontier* — the ids whose adjacency rows changed since that
partition was computed.  Ids are insertion-stable under :meth:`extend`,
so a base label list indexes directly into the extended snapshot.  A
full :meth:`from_graph` rebuild (decay, pruning, oversized delta) starts
with no warm seeds — ids may have been renumbered, so the prior
membership is unusable and the next warm request falls back to a cold
run.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, AbstractSet, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.graph import Node, TransactionGraph

#: A warm seed whose stale share (accumulated frontier plus nodes added
#: since its partition) exceeds this fraction of the graph is dropped at
#: :meth:`CSRGraph.extend` time: the turbo Louvain would fall back to a
#: cold run anyway (:data:`repro.core.engine.WARM_FALLBACK_FRACTION` is
#: this same number), so propagating it would only grow the frontier set
#: per freeze for nothing.  Deliberately permissive — see the engine-side
#: constant for the measured rationale.
WARM_SEED_STALE_FRACTION = 0.85


class CSRGraph:
    """Frozen, integer-indexed CSR snapshot of a transaction graph."""

    __slots__ = (
        "nodes",
        "index_of",
        "indptr",
        "indices",
        "weights",
        "loop",
        "ext",
        "pairs",
        "num_edges",
        "total_weight",
        "louvain_memo",
        "intra_cut_memo",
        "louvain_warm_memo",
        "intra_cut_warm_memo",
        "warm_seeds",
        "vector_cache",
        "louvain_warm_hit",
        "_sorted_order",
        "_sorted_rank",
        "_sorted_identity",
    )

    def __init__(
        self,
        nodes: List["Node"],
        index_of: Dict["Node", int],
        indptr: array,
        indices: array,
        weights: array,
        loop: array,
        ext: array,
        pairs: List[List[Tuple[int, float]]],
        num_edges: int,
        total_weight: float,
    ) -> None:
        self.nodes = nodes
        self.index_of = index_of
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.loop = loop
        self.ext = ext
        self.pairs = pairs
        self.num_edges = num_edges
        self.total_weight = total_weight
        # (max_levels, resolution) -> Louvain membership list.  Sound
        # because a CSRGraph is immutable: the same frozen graph always
        # yields the same deterministic partition (engine.louvain_flat
        # populates this and hands out copies).
        self.louvain_memo: Dict[Tuple[int, float], List[int]] = {}
        # Same key -> (intra, cut) per-community weights of the Louvain
        # partition; eta/k independent, so G-TxAllo parameter sweeps over
        # one frozen graph derive sigma/lam_hat per cell in O(l).
        self.intra_cut_memo: Dict[
            Tuple[int, float], Tuple[List[float], List[float]]
        ] = {}
        # Warm-start (backend="turbo") state.  louvain_warm_memo /
        # intra_cut_warm_memo mirror the cold memos but for the
        # warm-started partition, which may legitimately differ — keeping
        # them separate guarantees a turbo run can never poison the
        # byte-parity contract of the "fast" backend on the same
        # snapshot.  warm_seeds maps the same (max_levels, resolution)
        # key to ``(labels, frontier)``: the previous snapshot's
        # membership (id space, covering a prefix of this snapshot's
        # nodes) plus the set of ids whose rows changed since it was
        # computed.  Populated by :meth:`extend` only; a from_graph
        # rebuild has no usable prior membership.
        self.louvain_warm_memo: Dict[Tuple[int, float], List[int]] = {}
        self.intra_cut_warm_memo: Dict[
            Tuple[int, float], Tuple[List[float], List[float]]
        ] = {}
        self.warm_seeds: Dict[
            Tuple[int, float], Tuple[List[int], set]
        ] = {}
        # Scratch space of the numpy backend (repro.core.vector):
        # zero-copy ndarray views over the stdlib arrays above plus the
        # vector tier's own memos (symmetric edge list, Louvain
        # membership).  Keyed and populated exclusively by that module;
        # kept opaque here so this module stays numpy-free.  Like every
        # memo it is per-snapshot — an extend() starts empty.
        self.vector_cache: Dict[object, object] = {}
        # Set by the last warm Louvain request on this snapshot: True if
        # it ran from a seed, False if it fell back to a cold run, None
        # if none ran.  The controller's warm_stats counters read this.
        self.louvain_warm_hit: Optional[bool] = None
        # Lazy ascending-identifier permutation; only the global sweeps
        # need it, so the adaptive path never pays the O(N log N) sort.
        self._sorted_order: Optional[array] = None
        self._sorted_rank: Optional[array] = None
        self._sorted_identity: Optional[bool] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: "TransactionGraph") -> "CSRGraph":
        """Lower ``graph`` into CSR arrays (one O(N + E) pass).

        Node ``i`` is the ``i``-th account in insertion order; row
        contents preserve the adjacency-dict iteration order so float
        accumulations stay bit-identical to the reference dict-based
        scans.
        """
        nodes = list(graph.nodes())
        n = len(nodes)
        index_of = {v: i for i, v in enumerate(nodes)}

        lsize = array("l").itemsize
        indptr = array("l", bytes(lsize * (n + 1)))  # zero-initialised
        indices = array("l")
        weights = array("d")
        loop = array("d", bytes(8 * n))
        ext = array("d", bytes(8 * n))
        pairs: List[List[Tuple[int, float]]] = []

        pos = 0
        for i, v in enumerate(nodes):
            row = graph.neighbours(v)
            prs: List[Tuple[int, float]] = []
            e = 0.0
            for u, w in row.items():
                j = index_of[u]
                indices.append(j)
                weights.append(w)
                if j == i:
                    loop[i] = w
                else:
                    e += w
                    prs.append((j, w))
            ext[i] = e
            pairs.append(prs)
            pos += len(row)
            indptr[i + 1] = pos

        return cls(
            nodes=nodes,
            index_of=index_of,
            indptr=indptr,
            indices=indices,
            weights=weights,
            loop=loop,
            ext=ext,
            pairs=pairs,
            num_edges=graph.num_edges,
            total_weight=graph.total_weight,
        )

    # ------------------------------------------------------------------
    @classmethod
    def extend(
        cls,
        graph: "TransactionGraph",
        base: "CSRGraph",
        new_nodes: Sequence["Node"],
        touched: AbstractSet["Node"],
    ) -> "CSRGraph":
        """Incrementally lower ``graph`` on top of the snapshot ``base``.

        ``base`` is a frozen snapshot of an earlier version of ``graph``;
        ``new_nodes`` are the accounts added since, in insertion order,
        and ``touched`` the accounts whose adjacency rows changed (both
        endpoints of every added/updated edge).  The log must describe
        *monotone* growth only — decay or pruning rewrites rows out of
        band and requires a full :meth:`from_graph` rebuild (the graph's
        delta tracking enforces this).

        Ids are insertion-stable, so new nodes append at the tail and the
        untouched rows between consecutive frontier rows are copied from
        ``base`` as whole array/list slices (their ``pairs`` lists shared
        — both snapshots are immutable).  Python-level work is therefore
        proportional to the frontier (touched rows and their degrees),
        with the O(E) balance reduced to C-level ``memcpy``.
        """
        old_n = len(base.nodes)
        lsize = base.indptr.itemsize

        if new_nodes:
            nodes = base.nodes + list(new_nodes)
            index_of = dict(base.index_of)
            for idx, v in enumerate(new_nodes, old_n):
                index_of[v] = idx
        else:
            nodes = base.nodes
            index_of = base.index_of
        n = len(nodes)

        rebuild = set(touched)
        rebuild.update(new_nodes)

        indptr = array("l", bytes(lsize * (n + 1)))
        indices = array("l")
        weights = array("d")
        loop = array("d", bytes(8 * n))
        ext = array("d", bytes(8 * n))
        pairs: List[List[Tuple[int, float]]] = []

        base_indptr = base.indptr
        base_indices = base.indices
        base_weights = base.weights
        base_loop = base.loop
        base_ext = base.ext
        base_pairs = base.pairs

        def lower_row(i: int, v: "Node") -> None:
            # Frontier row: re-lower from the live adjacency dict,
            # identically to the from_graph inner loop.
            row = graph.neighbours(v)
            prs: List[Tuple[int, float]] = []
            e = 0.0
            for u, w in row.items():
                j = index_of[u]
                indices.append(j)
                weights.append(w)
                if j == i:
                    loop[i] = w
                else:
                    e += w
                    prs.append((j, w))
            ext[i] = e
            pairs.append(prs)
            indptr[i + 1] = len(indices)

        # Untouched rows sit in contiguous spans between consecutive
        # frontier rows (every id >= old_n is frontier, so spans never
        # reach past the base).  Copy each span wholesale.
        frontier = sorted(index_of[v] for v in rebuild)
        prev = 0
        for i in frontier + [n]:
            if prev < i:
                start, end = base_indptr[prev], base_indptr[i]
                seg_offset = len(indices) - start
                indices.extend(base_indices[start:end])
                weights.extend(base_weights[start:end])
                loop[prev:i] = base_loop[prev:i]
                ext[prev:i] = base_ext[prev:i]
                pairs.extend(base_pairs[prev:i])
                if seg_offset == 0:
                    indptr[prev + 1 : i + 1] = base_indptr[prev + 1 : i + 1]
                else:
                    for t in range(prev + 1, i + 1):
                        indptr[t] = base_indptr[t] + seg_offset
            if i < n:
                lower_row(i, nodes[i])
                prev = i + 1

        csr = cls(
            nodes=nodes,
            index_of=index_of,
            indptr=indptr,
            indices=indices,
            weights=weights,
            loop=loop,
            ext=ext,
            pairs=pairs,
            num_edges=graph.num_edges,
            total_weight=graph.total_weight,
        )

        carry_warm_seeds(base, csr, [index_of[v] for v in rebuild])
        return csr

    # ------------------------------------------------------------------
    def adjacency_dicts(self) -> Tuple[List[Dict[int, float]], List[float]]:
        """Mutable id-keyed copies of the pair rows plus the loop vector.

        This is the lowering the adaptive workspace
        (:class:`repro.core.engine.AdaptiveWorkspace`) rebuilds its
        evolving row maps from: one int-keyed dict per node whose
        iteration order matches the CSR row (and hence the source
        adjacency dict, self-loop entry excluded), and a fresh list of
        self-loop weights.  The caller owns both copies — mutating them
        never touches this immutable snapshot.
        """
        return [dict(prs) for prs in self.pairs], list(self.loop)

    # ------------------------------------------------------------------
    @property
    def sorted_order(self) -> array:
        """Dense ids in ascending node-identifier order (lazy).

        ``sorted_order[r]`` is the id of the ``r``-th account in sorted
        order — the canonical deterministic sweep order of Section IV-A.
        Built on first use (the adaptive path never needs it) and cached
        on this immutable snapshot.
        """
        order = self._sorted_order
        if order is None:
            order = array("l", sorted(range(len(self.nodes)), key=self.nodes.__getitem__))
            self._sorted_order = order
            self._sorted_identity = all(o == i for i, o in enumerate(order))
        return order

    @property
    def sorted_order_is_identity(self) -> bool:
        """True when insertion order already is ascending-identifier
        order, letting sorted-space consumers skip their remaps."""
        if self._sorted_identity is None:
            self.sorted_order  # builds and classifies the permutation
        return self._sorted_identity

    @property
    def sorted_rank(self) -> array:
        """Inverse of :attr:`sorted_order`: id -> ascending-order rank."""
        rank = self._sorted_rank
        if rank is None:
            order = self.sorted_order
            rank = array("l", bytes(order.itemsize * len(order)))
            for r, i in enumerate(order):
                rank[i] = r
            self._sorted_rank = rank
        return rank

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CSRGraph(nodes={len(self.nodes)}, edges={self.num_edges}, "
            f"weight={self.total_weight:.2f})"
        )


def carry_warm_seeds(
    base: "CSRGraph", csr: "CSRGraph", delta_ids: Sequence[int]
) -> None:
    """Carry ``base``'s Louvain memberships onto ``csr`` as warm seeds.

    ``delta_ids`` are the (``csr``-numbered) ids whose rows changed since
    ``base``; ids must be insertion-stable between the two snapshots, so
    this is valid for incremental extends *and* for full rebuilds whose
    delta log stayed intact (monotone growth only — a poisoned log means
    rows were renumbered or rewritten and the prior membership is
    unusable).

    Preference order per key: the base's own warm result (the partition
    actually in use on a turbo chain), then its cold result, then an
    inherited seed from an earlier snapshot (the base never ran Louvain —
    e.g. adaptive-only freezes between two global refreshes), whose
    frontier keeps accumulating.  An inherited frontier set is *shared
    along the chain* and updated in place, so each carry pays O(delta),
    not O(total frontier) — the fast backend never consumes these seeds
    and must not pay for them.  This is a deliberate exception to
    snapshot immutability: an older snapshot in the chain may see its
    frontier grow, including ids beyond its own node range;
    ``louvain_flat_warm`` clamps those out and over-re-seeds the rest,
    which is safe and deterministic for any fixed call sequence.  Seeds
    whose stale share went past the warm fallback fraction are dropped
    rather than carried dead weight; the formula matches
    ``louvain_flat_warm``'s fallback check (frontier + nodes added since
    the seed partition, conservatively double-counting new nodes present
    in both terms), so a seed kept here is exactly a seed the warm start
    will accept.
    """
    n = len(csr.nodes)
    max_stale = WARM_SEED_STALE_FRACTION * n
    seeds = csr.warm_seeds
    for memo in (base.louvain_warm_memo, base.louvain_memo):
        for key, labels in memo.items():
            if key not in seeds and len(delta_ids) + (n - len(labels)) <= max_stale:
                seeds[key] = (labels, set(delta_ids))
    for key, (labels, frontier) in base.warm_seeds.items():
        if key not in seeds:
            frontier.update(delta_ids)
            if len(frontier) + (n - len(labels)) <= max_stale:
                seeds[key] = (labels, frontier)
