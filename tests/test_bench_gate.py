"""CI gate on the committed engine benchmark (ROADMAP's standing bar).

``benchmarks/BENCH_engine.json`` records the Fig. 8 evaluation-grid
speedup of the flat-array CSR engine over the reference implementation.
The ROADMAP keeps a standing >= 3x gate on that grid; this smoke loads
the committed run table and fails the suite if a PR regresses below it.
Skips cleanly when the file is absent (fresh checkout without bench
artifacts) — regenerate with ``benchmarks/bench_engine_speedup.py``.
"""

import json
import pathlib

import pytest

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "BENCH_engine.json"
)

GRID_SPEEDUP_GATE = 3.0


def _load_payload():
    if not BENCH_PATH.exists():
        pytest.skip(
            "benchmarks/BENCH_engine.json absent; run "
            "benchmarks/bench_engine_speedup.py to regenerate"
        )
    return json.loads(BENCH_PATH.read_text())


def test_engine_grid_speedup_gate():
    payload = _load_payload()
    assert payload["speedup"] >= GRID_SPEEDUP_GATE, (
        f"Fig. 8 grid speedup {payload['speedup']:.2f}x fell below the "
        f"{GRID_SPEEDUP_GATE}x ROADMAP gate; rerun "
        "benchmarks/bench_engine_speedup.py and investigate the regression"
    )


def test_engine_run_table_schema():
    payload = _load_payload()
    for key in ("scale", "grid_ks", "grid_etas", "ref_seconds", "fast_seconds"):
        assert key in payload, key
    assert payload["fast_seconds"] > 0.0
