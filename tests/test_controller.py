"""Tests for the τ₁/τ₂ dynamic controller."""


import pytest

from repro.core.controller import TxAlloController
from repro.core.params import TxAlloParams
from repro.data.synthetic import EthereumWorkloadGenerator, WorkloadConfig


def block_stream(num_blocks=12, block_size=30, seed=9):
    config = WorkloadConfig(
        num_accounts=400,
        num_transactions=num_blocks * block_size,
        block_size=block_size,
        seed=seed,
    )
    gen = EthereumWorkloadGenerator(config)
    return [[tuple(tx.accounts) for tx in block] for block in gen.blocks()]


class TestScheduling:
    def test_initial_global_run_recorded(self):
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=2, tau2=6)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        assert controller.events[0].kind == "global"

    def test_adaptive_fires_every_tau1(self):
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=2, tau2=100)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        events = [controller.observe_block(block) for block in block_stream(8)]
        fired = [e for e in events if e is not None]
        assert len(fired) == 4
        assert all(e.kind == "adaptive" for e in fired)

    def test_global_fires_every_tau2_and_wins_ties(self):
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=2, tau2=4)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        events = [controller.observe_block(block) for block in block_stream(8)]
        fired = [e for e in events if e is not None]
        kinds = [e.kind for e in fired]
        # Blocks 2,6 -> adaptive; blocks 4,8 -> global (tau2 divides them).
        assert kinds == ["adaptive", "global", "adaptive", "global"]

    def test_no_update_between_periods(self):
        params = TxAlloParams(k=2, eta=2.0, lam=1000.0, tau1=5, tau2=10)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        assert controller.observe_block([("a", "c")]) is None

    def test_event_views(self):
        params = TxAlloParams(k=2, eta=2.0, lam=1000.0, tau1=1, tau2=3)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        for block in block_stream(6):
            controller.observe_block(block)
        assert len(controller.global_events) >= 2  # initial + scheduled
        assert len(controller.adaptive_events) >= 3


class TestStateIntegrity:
    def test_allocation_complete_after_stream(self):
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=2, tau2=6)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        for block in block_stream(12):
            controller.observe_block(block)
        controller.force_adaptive()  # flush the touched set
        controller.allocation.validate()

    def test_force_global_resets_touched(self):
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=100, tau2=1000)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        for block in block_stream(3):
            controller.observe_block(block)
        event = controller.force_global()
        assert event.kind == "global"
        controller.allocation.validate()

    def test_block_height_advances(self):
        params = TxAlloParams(k=2, eta=2.0, lam=1000.0, tau1=5, tau2=10)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        blocks = block_stream(4)
        for block in blocks:
            controller.observe_block(block)
        assert controller.block_height == 4

    def test_deterministic_across_controllers(self):
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=2, tau2=6)
        mappings = []
        for _ in range(2):
            controller = TxAlloController(params, seed_transactions=[("a", "b")])
            for block in block_stream(10):
                controller.observe_block(block)
            controller.force_adaptive()
            mappings.append(controller.allocation.mapping())
        assert mappings[0] == mappings[1]

    def test_hash_order_independent_ingest(self):
        """Two controllers fed permuted, duplicate-laden account lists
        must produce identical caches *float for float*: observe_block
        ingests in sorted deduplicated order, so the allocation's
        accumulations never depend on set iteration order."""
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=2, tau2=6)
        blocks = block_stream(10)
        import random

        rng = random.Random(42)
        controllers = []
        for permute in (False, True):
            controller = TxAlloController(params, seed_transactions=[("a", "b")])
            for block in blocks:
                if permute:
                    block = [
                        tuple(rng.sample(list(accs) + [accs[0]], len(accs) + 1))
                        for accs in block
                    ]
                controller.observe_block(block)
            controller.force_adaptive()
            controllers.append(controller)
        first, second = controllers
        assert first.allocation.mapping() == second.allocation.mapping()
        assert first.allocation.sigma == second.allocation.sigma      # exact
        assert first.allocation.lam_hat == second.allocation.lam_hat  # exact

    def test_incremental_freezes_on_the_block_loop(self):
        """The non-workspace controller path must ride the delta-freeze:
        after the seeded global run, scheduled updates extend the
        snapshot.  (With the adaptive workspace — the default — the τ₁
        loop does not freeze at all; see TestAdaptiveWorkspace.)"""
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=1, tau2=50)
        controller = TxAlloController(
            params,
            seed_transactions=[b for blk in block_stream(12) for b in blk],
            adaptive_workspace=False,
        )
        for block in block_stream(8, block_size=10, seed=10):
            controller.observe_block(block)
        stats = controller.freeze_stats
        assert stats["delta"] > 0
        assert stats["delta"] >= stats["full"]

    def test_seed_event_times_like_scheduled_globals(self):
        """Satellite pin: the seed UpdateEvent carries wall-clock seconds
        around the g_txallo call, same semantics as _run_global."""
        params = TxAlloParams(k=2, eta=2.0, lam=1000.0, tau1=5, tau2=10)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        seed_event = controller.events[0]
        assert seed_event.kind == "global"
        assert seed_event.seconds > 0.0

    def test_adaptive_disabled(self):
        params = TxAlloParams(k=2, eta=2.0, lam=1000.0, tau1=1, tau2=100)
        controller = TxAlloController(
            params, seed_transactions=[("a", "b")], adaptive_enabled=False
        )
        events = [controller.observe_block(b) for b in block_stream(4)]
        assert all(e is None for e in events)


class TestScheduleEdgeCases:
    def test_tau1_equals_tau2_global_subsumes_adaptive(self):
        """When both periods hit the same block the global runs, the
        adaptive is subsumed, and the touched-set is cleared exactly
        once (by the global)."""
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=3, tau2=3)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        fired = []
        for block in block_stream(6):
            event = controller.observe_block(block)
            if event is not None:
                fired.append(event)
                # The global must have consumed the window's touched-set.
                assert controller._touched == set()
        assert [e.kind for e in fired] == ["global", "global"]
        assert controller.adaptive_events == []
        controller.allocation.validate()

    def test_epsilon_zero_terminates_via_sweep_cap(self):
        """ε=0 can never satisfy `sweep_gain < ε` (gains are >= 0), so the
        run must stop at MAX_SWEEPS and flag the truncation."""
        params = TxAlloParams(k=2, eta=2.0, lam=1000.0, epsilon=0.0, tau1=100, tau2=1000)
        controller = TxAlloController(params, seed_transactions=[("a", "b"), ("b", "c")])
        controller.observe_block([("a", "c"), ("c", "d")])
        event = controller.force_adaptive()
        assert event.kind == "adaptive"
        assert event.converged is False
        adaptive = controller.adaptive_events[-1]
        assert adaptive is event
        controller.allocation.validate()

    def test_force_adaptive_right_after_global_is_cheap_noop(self):
        """A global refresh clears the touched-set; an immediate
        force_adaptive must be a no-op event, not an error."""
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=100, tau2=1000)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        for block in block_stream(3):
            controller.observe_block(block)
        controller.force_global()
        mapping_before = controller.allocation.mapping()
        event = controller.force_adaptive()
        assert event.kind == "adaptive"
        assert event.touched == 0
        assert event.moves == 0
        assert event.converged is True
        assert controller.allocation.mapping() == mapping_before

    def test_converged_true_on_normal_runs_and_default(self):
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=1, tau2=100)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        events = [controller.observe_block(b) for b in block_stream(4)]
        assert all(e.converged for e in events if e is not None)
        # The seed global event carries the default.
        assert controller.events[0].converged is True


class TestAdaptiveExceptionSafety:
    def test_touched_set_survives_a_raising_adaptive_run(self, monkeypatch):
        """Regression: _run_adaptive used to clear the touched-set before
        calling a_txallo, so a raising run silently lost the accumulated
        accounts and the next run swept nothing."""
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=2, tau2=1000)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        blocks = block_stream(2)
        controller.observe_block(blocks[0])
        accumulated = set(controller._touched)
        assert accumulated, "first block must leave accounts pending"

        def boom(*args, **kwargs):
            raise RuntimeError("injected a_txallo failure")

        monkeypatch.setattr("repro.core.controller.a_txallo", boom)
        with pytest.raises(RuntimeError):
            controller.observe_block(blocks[1])  # block 2 -> adaptive due
        # Both blocks' accounts are still pending.
        assert controller._touched >= accumulated
        monkeypatch.undo()

        event = controller.force_adaptive()
        assert event.touched >= len(accumulated)
        assert controller._touched == set()
        controller.allocation.validate()

    def test_failed_run_does_not_append_an_event(self, monkeypatch):
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=1, tau2=1000)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        num_events = len(controller.events)

        def boom(*args, **kwargs):
            raise RuntimeError("injected a_txallo failure")

        monkeypatch.setattr("repro.core.controller.a_txallo", boom)
        with pytest.raises(RuntimeError):
            controller.observe_block([("a", "c")])
        assert len(controller.events) == num_events


class TestAdaptiveWorkspace:
    def test_block_loop_stops_freezing_between_globals(self):
        """With the workspace (the default) the τ₁ loop must not freeze
        the graph between global refreshes — the whole point of the
        batched path."""
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=1, tau2=50)
        controller = TxAlloController(
            params, seed_transactions=[b for blk in block_stream(12) for b in blk]
        )
        freezes_after_seed = sum(controller.freeze_stats.values())
        for block in block_stream(8, block_size=10, seed=10):
            controller.observe_block(block)
        stats = controller.workspace_stats
        assert stats["runs"] == 8
        assert stats["rebuilds"] == 1  # the first adaptive run only
        assert stats["extends"] == 7  # every later window rode the journal
        # Exactly one freeze happened after the seed: the rebuild's.
        assert sum(controller.freeze_stats.values()) == freezes_after_seed + 1

    def test_workspace_invalidated_by_global_refresh(self):
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=1, tau2=4)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        for block in block_stream(8):
            controller.observe_block(block)
        stats = controller.workspace_stats
        # Two scheduled globals (blocks 4, 8) -> the next adaptive after
        # each rebuilds; runs in between extend.
        assert stats["rebuilds"] >= 2
        assert stats["extends"] >= 1
        controller.force_adaptive()
        controller.allocation.validate()

    def test_workspace_disabled_for_reference_backend(self):
        params = TxAlloParams(
            k=4, eta=2.0, lam=1000.0, tau1=2, tau2=6, backend="reference"
        )
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        for block in block_stream(4):
            controller.observe_block(block)
        assert controller.workspace_stats == {"rebuilds": 0, "extends": 0, "runs": 0}
        controller.allocation.validate()

    def test_workspace_off_matches_workspace_on_exactly(self):
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=1, tau2=5)
        controllers = []
        for workspace in (False, True):
            controller = TxAlloController(
                params,
                seed_transactions=[("a", "b")],
                adaptive_workspace=workspace,
            )
            for block in block_stream(10):
                controller.observe_block(block)
            controller.force_adaptive()
            controllers.append(controller)
        off, on = controllers
        assert off.allocation.mapping() == on.allocation.mapping()
        assert off.allocation.sigma == on.allocation.sigma      # exact floats
        assert off.allocation.lam_hat == on.allocation.lam_hat  # exact floats
        assert [
            (e.kind, e.block_height, e.moves, e.touched, e.converged)
            for e in off.events
        ] == [
            (e.kind, e.block_height, e.moves, e.touched, e.converged)
            for e in on.events
        ]
        assert on.workspace_stats["extends"] > 0
        assert off.workspace_stats == {"rebuilds": 0, "extends": 0, "runs": 0}
