"""Ablation — candidate-community restriction (Eq. 9) vs. full search.

DESIGN.md §5.  TxAllo restricts each node's destination search to the
communities it actually connects to.  This ablation runs the optimisation
with the restriction disabled (every node considers all k communities)
and verifies the restriction loses (almost) no quality while the sweep
touches far fewer candidates.
"""

import pytest

from repro.core.gtxallo import g_txallo
from repro.core.louvain import louvain_partition
from repro.core.objective import GainComputer
from repro.core.params import TxAlloParams


def full_search_sweep(alloc, order, epsilon, max_sweeps=100):
    """The optimisation phase with C_v forced to all communities."""
    gains = GainComputer(alloc)
    k = alloc.params.k
    candidates_evaluated = 0
    sweeps = 0
    while sweeps < max_sweeps:
        sweeps += 1
        sweep_gain = 0.0
        for v in order:
            by_shard, w_self, w_ext = alloc.neighbour_shard_weights(v)
            p = alloc.shard_of(v)
            all_candidates = [q for q in range(k) if q != p]
            candidates_evaluated += len(all_candidates)
            q, gain = gains.best_move(v, all_candidates, by_shard, w_self, w_ext, p)
            if q is not None and gain > 0.0:
                alloc.move(v, q, weights=(by_shard, w_self, w_ext))
                sweep_gain += gain
        if sweep_gain < epsilon:
            break
    return sweeps, candidates_evaluated


@pytest.fixture(scope="module")
def comparison(workload):
    params = TxAlloParams.with_capacity_for(workload.num_transactions, k=20, eta=2.0)
    restricted = g_txallo(workload.graph, params)

    # Re-run the optimisation phase from the same Louvain start, but with
    # the full candidate search.
    partition = louvain_partition(workload.graph)
    full_run = g_txallo(workload.graph, params, initial_partition=partition)
    full_alloc = full_run.allocation.copy()
    sweeps, evaluated = full_search_sweep(
        full_alloc, workload.graph.nodes_sorted(), params.epsilon
    )
    return params, restricted, full_alloc, evaluated


def test_ablation_report(comparison):
    params, restricted, full_alloc, evaluated = comparison
    from repro.eval.reporting import format_table

    print()
    print(format_table(
        ["variant", "throughput (x)"],
        [
            ("Eq. 9 candidates", restricted.allocation.total_throughput() / params.lam),
            ("full search", full_alloc.total_throughput() / params.lam),
        ],
    ))
    print(f"extra candidates evaluated by full search: {evaluated}")


def test_restriction_loses_little_quality(comparison):
    params, restricted, full_alloc, _ = comparison
    restricted_thpt = restricted.allocation.total_throughput()
    full_thpt = full_alloc.total_throughput()
    assert restricted_thpt >= full_thpt * 0.97


def test_restriction_searches_far_less(comparison, workload):
    """With Eq. 9, per-node candidates ~ node's community degree << k."""
    params, restricted, _, full_evaluated = comparison
    nodes = workload.graph.num_nodes
    # Full search evaluates (k-1) per node per sweep.
    assert full_evaluated >= nodes * (params.k - 1)


def test_bench_restricted_sweep(workload, benchmark):
    params = TxAlloParams.with_capacity_for(workload.num_transactions, k=20, eta=2.0)
    benchmark.pedantic(
        g_txallo, args=(workload.graph, params), rounds=1, iterations=1
    )
