"""A METIS-style multilevel k-way graph partitioner (baseline).

The graph-based prior works the paper compares against ([17]-[19],
including BrokerChain) all delegate to METIS.  METIS is a native-code
package; this module re-implements its three classic phases from scratch
so the baseline is self-contained:

1. **Coarsening** — repeated heavy-edge matching collapses the graph until
   it is small (Karypis & Kumar, 1997);
2. **Initial partitioning** — greedy balanced assignment of the coarsest
   nodes, heaviest first, to the currently lightest part;
3. **Refinement** — during uncoarsening, boundary Kernighan-Lin/FM passes
   move nodes to reduce the edge cut subject to a *node-weight* balance
   constraint.

That last point is the paper's central criticism (Section II-C): METIS
balances **vertex weight** (account activity), not shard **workload**
(which depends on η and on which edges end up cut).  We keep that
objective faithfully, so the reproduction shows the same qualitative gap
to TxAllo.

Node weights default to each account's weighted degree — its share of
transaction activity — matching how prior work weights the allocation
graph.  The implementation is deterministic: all scans are in sorted or
index order, all ties break toward smaller identifiers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.graph import Node, TransactionGraph
from repro.errors import ParameterError

#: Stop coarsening once the graph has at most ``_COARSEN_TARGET_FACTOR * k``
#: nodes, or when a round shrinks the graph by less than 10 %.
_COARSEN_TARGET_FACTOR = 30
_MIN_SHRINK = 0.9


@dataclasses.dataclass
class MetisResult:
    """Partition plus diagnostics (cut weight, balance, level count)."""

    mapping: Dict[Node, int]
    edge_cut: float
    node_weight_imbalance: float
    levels: int


def metis_partition(
    graph: TransactionGraph,
    k: int,
    *,
    imbalance: float = 1.05,
    refinement_passes: int = 4,
    node_weights: Optional[Dict[Node, float]] = None,
) -> MetisResult:
    """Partition ``graph`` into ``k`` parts minimising edge cut.

    ``imbalance`` is METIS's load-imbalance tolerance: every part's node
    weight must stay below ``imbalance * total_weight / k``.
    """
    if k < 1:
        raise ParameterError(f"number of parts k must be positive, got {k!r}")
    nodes = graph.nodes_sorted()
    n = len(nodes)
    if n == 0:
        return MetisResult({}, 0.0, 0.0, 0)
    if k == 1:
        return MetisResult({v: 0 for v in nodes}, 0.0, 0.0, 0)

    index_of = {v: i for i, v in enumerate(nodes)}
    adj: List[Dict[int, float]] = [dict() for _ in range(n)]
    for i, v in enumerate(nodes):
        for u, w in graph.neighbours(v).items():
            if u != v:
                adj[i][index_of[u]] = w
    if node_weights is None:
        weights = [graph.strength(v) for v in nodes]
    else:
        weights = [float(node_weights[v]) for v in nodes]
    # Isolated zero-weight nodes still need a home; give them unit weight
    # so the balance constraint treats them sensibly.
    weights = [w if w > 0 else 1.0 for w in weights]

    levels = _Hierarchy(adj, weights)
    target = max(_COARSEN_TARGET_FACTOR * k, 100)
    while levels.current_size() > target:
        if not levels.coarsen_once():
            break

    part = _initial_partition(levels.top_adj(), levels.top_weights(), k)
    max_part_weight = imbalance * sum(weights) / k
    part = _refine(levels.top_adj(), levels.top_weights(), part, k,
                   max_part_weight, refinement_passes)

    while levels.has_finer():
        part = levels.project(part)
        part = _refine(levels.top_adj(), levels.top_weights(), part, k,
                       max_part_weight, refinement_passes)

    mapping = {v: part[index_of[v]] for v in nodes}
    cut = _edge_cut(adj, part)
    imbal = _imbalance(weights, part, k)
    return MetisResult(mapping, cut, imbal, levels.num_levels())


# ----------------------------------------------------------------------
# Multilevel hierarchy
# ----------------------------------------------------------------------
class _Hierarchy:
    """Stack of coarsened graphs plus the projection maps between them."""

    def __init__(self, adj: List[Dict[int, float]], weights: List[float]) -> None:
        self._adjs = [adj]
        self._weights = [weights]
        self._maps: List[List[int]] = []  # fine index -> coarse index

    def current_size(self) -> int:
        return len(self._weights[-1])

    def num_levels(self) -> int:
        return len(self._adjs)

    def top_adj(self) -> List[Dict[int, float]]:
        return self._adjs[-1]

    def top_weights(self) -> List[float]:
        return self._weights[-1]

    def has_finer(self) -> bool:
        return bool(self._maps)

    def coarsen_once(self) -> bool:
        """One heavy-edge-matching round.  Returns False when stuck."""
        adj = self._adjs[-1]
        n = len(adj)
        match = [-1] * n
        # Visit nodes in index order; match to the unmatched neighbour with
        # the heaviest connecting edge (ties -> smaller index).
        for i in range(n):
            if match[i] != -1:
                continue
            best_j = -1
            best_w = -1.0
            for j in sorted(adj[i]):
                if match[j] == -1 and j != i:
                    w = adj[i][j]
                    if w > best_w:
                        best_w = w
                        best_j = j
            if best_j != -1:
                match[i] = best_j
                match[best_j] = i
            else:
                match[i] = i  # stays single
        # Build coarse ids in order of first appearance.
        coarse_of = [-1] * n
        next_id = 0
        for i in range(n):
            if coarse_of[i] != -1:
                continue
            coarse_of[i] = next_id
            j = match[i]
            if j != i and coarse_of[j] == -1:
                coarse_of[j] = next_id
            next_id += 1
        if next_id > n * _MIN_SHRINK:
            return False
        weights = self._weights[-1]
        new_weights = [0.0] * next_id
        new_adj: List[Dict[int, float]] = [dict() for _ in range(next_id)]
        for i in range(n):
            ci = coarse_of[i]
            new_weights[ci] += weights[i]
            row = new_adj[ci]
            for j, w in adj[i].items():
                cj = coarse_of[j]
                if ci != cj:
                    row[cj] = row.get(cj, 0.0) + w
        self._adjs.append(new_adj)
        self._weights.append(new_weights)
        self._maps.append(coarse_of)
        return True

    def project(self, part: List[int]) -> List[int]:
        """Project a partition one level down (coarse -> finer)."""
        coarse_of = self._maps.pop()
        self._adjs.pop()
        self._weights.pop()
        return [part[coarse_of[i]] for i in range(len(coarse_of))]


# ----------------------------------------------------------------------
# Initial partition + refinement
# ----------------------------------------------------------------------
def _initial_partition(
    adj: List[Dict[int, float]],
    weights: List[float],
    k: int,
) -> List[int]:
    """Greedy balanced assignment: heaviest node to the lightest part."""
    n = len(weights)
    order = sorted(range(n), key=lambda i: (-weights[i], i))
    part = [0] * n
    loads = [0.0] * k
    for i in order:
        # Prefer the part with most connectivity among the lightest few —
        # plain lightest-first is METIS-like and deterministic.
        target = min(range(k), key=lambda p: (loads[p], p))
        part[i] = target
        loads[target] += weights[i]
    return part


def _refine(
    adj: List[Dict[int, float]],
    weights: List[float],
    part: List[int],
    k: int,
    max_part_weight: float,
    passes: int,
) -> List[int]:
    """Boundary FM passes: move nodes to cut-reducing parts under balance."""
    n = len(weights)
    loads = [0.0] * k
    for i in range(n):
        loads[part[i]] += weights[i]
    for _ in range(passes):
        moved = 0
        for i in range(n):
            p = part[i]
            # Connectivity of i to each part.
            conn: Dict[int, float] = {}
            for j, w in adj[i].items():
                q = part[j]
                conn[q] = conn.get(q, 0.0) + w
            internal = conn.get(p, 0.0)
            best_q = p
            best_gain = 0.0
            for q in sorted(conn):
                if q == p:
                    continue
                if loads[q] + weights[i] > max_part_weight:
                    continue
                gain = conn[q] - internal
                if gain > best_gain:
                    best_gain = gain
                    best_q = q
            if best_q != p:
                part[i] = best_q
                loads[p] -= weights[i]
                loads[best_q] += weights[i]
                moved += 1
        if moved == 0:
            break
    return part


def _edge_cut(adj: List[Dict[int, float]], part: List[int]) -> float:
    cut = 0.0
    for i, row in enumerate(adj):
        for j, w in row.items():
            if j > i and part[i] != part[j]:
                cut += w
    return cut


def _imbalance(weights: List[float], part: List[int], k: int) -> float:
    loads = [0.0] * k
    for i, w in enumerate(weights):
        loads[part[i]] += w
    avg = sum(loads) / k
    if avg == 0:
        return 0.0
    return max(loads) / avg
