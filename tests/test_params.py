"""Unit tests for the hyperparameter bundle."""

import math

import pytest

from repro.core.params import EPSILON_RATIO, TxAlloParams
from repro.errors import ParameterError


class TestValidation:
    def test_valid_params(self):
        p = TxAlloParams(k=4, eta=2.0, lam=50.0)
        assert p.k == 4

    def test_k_must_be_positive(self):
        with pytest.raises(ParameterError):
            TxAlloParams(k=0)

    def test_k_must_be_int(self):
        with pytest.raises(ParameterError):
            TxAlloParams(k=2.5)  # type: ignore[arg-type]

    def test_eta_below_one_rejected(self):
        with pytest.raises(ParameterError):
            TxAlloParams(k=2, eta=0.5)

    def test_eta_of_exactly_one_allowed(self):
        assert TxAlloParams(k=2, eta=1.0).eta == 1.0

    def test_lam_must_be_positive(self):
        with pytest.raises(ParameterError):
            TxAlloParams(k=2, lam=0.0)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ParameterError):
            TxAlloParams(k=2, epsilon=-1.0)

    def test_tau1_not_exceeding_tau2(self):
        with pytest.raises(ParameterError):
            TxAlloParams(k=2, tau1=100, tau2=50)

    def test_tau_must_be_positive(self):
        with pytest.raises(ParameterError):
            TxAlloParams(k=2, tau1=0)


class TestConveniences:
    def test_with_capacity_for_applies_paper_conventions(self):
        p = TxAlloParams.with_capacity_for(10_000, k=10, eta=4.0)
        assert p.lam == pytest.approx(1000.0)
        assert p.epsilon == pytest.approx(EPSILON_RATIO * 10_000)
        assert p.eta == 4.0

    def test_with_capacity_rejects_empty_history(self):
        with pytest.raises(ParameterError):
            TxAlloParams.with_capacity_for(0, k=4)

    def test_replace_revalidates(self):
        p = TxAlloParams(k=4)
        with pytest.raises(ParameterError):
            p.replace(k=-1)

    def test_replace_changes_field(self):
        p = TxAlloParams(k=4).replace(eta=6.0)
        assert p.eta == 6.0 and p.k == 4

    def test_shard_ids(self):
        assert list(TxAlloParams(k=3).shard_ids) == [0, 1, 2]

    def test_frozen(self):
        p = TxAlloParams(k=2)
        with pytest.raises(Exception):
            p.k = 5  # type: ignore[misc]

    def test_default_capacity_is_infinite(self):
        assert TxAlloParams(k=2).lam == math.inf
