"""Delta-freeze property tests: incremental CSR == cold CSR, element-wise.

``TransactionGraph.freeze`` may extend the previous snapshot via
``CSRGraph.extend`` instead of re-lowering the whole graph.  That path is
only allowed to exist because its output is **element-identical** to a
cold ``CSRGraph.from_graph`` of the same graph — same node interning,
same row contents in the same order, bit-identical ``weights`` / ``loop``
/ ``ext`` (compared via ``tobytes``), same insertion permutation.  These
tests pin that contract across randomized ingest / decay / allocate
interleavings, plus the cache/delta bookkeeping around it.
"""

import random

import pytest

from repro.core.atxallo import a_txallo
from repro.core.csr import CSRGraph
from repro.core.forecast import DecayingTransactionGraph
from repro.core.graph import DELTA_REBUILD_FRACTION, TransactionGraph
from repro.core.gtxallo import g_txallo
from repro.core.params import TxAlloParams
from repro.errors import GraphError

SEEDS = (1, 2, 3, 4, 5)


def assert_csr_identical(got: CSRGraph, want: CSRGraph) -> None:
    """Field-by-field equality; float arrays compared bit-for-bit."""
    assert got.nodes == want.nodes
    assert got.index_of == want.index_of
    assert got.indptr == want.indptr
    assert got.indices == want.indices
    assert got.weights.tobytes() == want.weights.tobytes()
    assert got.loop.tobytes() == want.loop.tobytes()
    assert got.ext.tobytes() == want.ext.tobytes()
    assert got.pairs == want.pairs
    assert got.sorted_order == want.sorted_order
    assert got.sorted_rank == want.sorted_rank
    assert got.num_edges == want.num_edges
    assert got.total_weight == want.total_weight


def seed_graph(rng, graph, accounts, num_transactions):
    for _ in range(num_transactions):
        graph.add_transaction(rng.sample(accounts, rng.choice([1, 2, 2, 2, 3])))


class TestExtendElementIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_randomized_ingest_interleavings(self, seed):
        """Mutate-freeze-compare loops over weight updates, new edges,
        new connected accounts and new isolated accounts."""
        rng = random.Random(seed)
        accounts = [f"acc{i:03d}" for i in range(300)]
        g = TransactionGraph()
        seed_graph(rng, g, accounts, 1500)
        g.freeze()
        for step in range(25):
            for _ in range(rng.randrange(1, 10)):
                roll = rng.random()
                if roll < 0.5:
                    g.add_transaction(rng.sample(accounts, 2))
                elif roll < 0.65:
                    g.add_transaction([rng.choice(accounts)])  # self-loop
                elif roll < 0.9:
                    g.add_transaction(
                        [f"new{seed}_{step}_{rng.randrange(3)}", rng.choice(accounts)]
                    )
                else:
                    g.add_node(f"iso{seed}_{step}")
            assert_csr_identical(g.freeze(), CSRGraph.from_graph(g))
        assert g.freeze_stats["delta"] > 0, "delta path never exercised"

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_ingest_decay_allocate_interleavings(self, seed):
        """The controller-shaped lifecycle: ingest blocks, run the
        allocators (which freeze), decay windows in between."""
        rng = random.Random(seed)
        accounts = [f"acc{i:03d}" for i in range(200)]
        g = DecayingTransactionGraph(decay=0.8, prune_threshold=1e-3)
        seed_graph(rng, g, accounts, 1200)
        params = TxAlloParams.with_capacity_for(1200, k=4, eta=2.0)
        alloc = g_txallo(g, params).allocation
        for step in range(8):
            if rng.random() < 0.4:
                g.advance_window()
                # Decay rewrites rows out of band: the next freeze must
                # fall back to a full rebuild, not extend a stale base.
                full_before = g.freeze_stats["full"]
                assert_csr_identical(g.freeze(), CSRGraph.from_graph(g))
                assert g.freeze_stats["full"] == full_before + 1
                alloc = g_txallo(g, params).allocation
            touched = set()
            for _ in range(rng.randrange(3, 12)):
                accs = rng.sample(accounts, 2)
                if rng.random() < 0.2:
                    accs.append(f"fresh{seed}_{step}")
                g.add_transaction(accs)
                alloc.ingest_transaction(accs)
                touched.update(accs)
            a_txallo(alloc, touched)
            assert_csr_identical(g.freeze(), CSRGraph.from_graph(g))
        assert g.freeze_stats["delta"] > 0

    def test_extend_from_empty_base(self):
        g = TransactionGraph()
        g.freeze()  # snapshot of the empty graph
        g.add_transaction(("b", "a"))
        g.add_transaction(("c",))
        assert_csr_identical(g.freeze(), CSRGraph.from_graph(g))

    def test_new_nodes_append_ids_sorted_order_tracks(self):
        g = TransactionGraph()
        g.add_transaction(("m", "z"))
        g.freeze()
        g.add_transaction(("a", "m"))  # sorts first, but ids are stable
        csr = g.freeze()
        assert_csr_identical(csr, CSRGraph.from_graph(g))
        assert csr.index_of == {"m": 0, "z": 1, "a": 2}
        assert [csr.nodes[i] for i in csr.sorted_order] == ["a", "m", "z"]


class TestDeltaBookkeeping:
    def big_graph(self, n=200, txs=800, seed=7):
        rng = random.Random(seed)
        accounts = [f"acc{i:03d}" for i in range(n)]
        g = TransactionGraph()
        seed_graph(rng, g, accounts, txs)
        return g, accounts

    def test_small_delta_extends_large_delta_rebuilds(self):
        g, accounts = self.big_graph()
        g.freeze()
        g.add_transaction((accounts[0], accounts[1]))
        g.freeze()
        assert g.freeze_stats == {"full": 1, "delta": 1, "cached": 0}
        # Touch (far) more than DELTA_REBUILD_FRACTION of the nodes:
        # the incremental path must step aside for a full rebuild.
        n = g.num_nodes
        frontier = accounts[: int(n * DELTA_REBUILD_FRACTION) + 2]
        for a in frontier:
            g.add_transaction((a, accounts[-1]))
        assert_csr_identical(g.freeze(), CSRGraph.from_graph(g))
        assert g.freeze_stats["full"] == 2

    def test_unchanged_graph_returns_cached_snapshot(self):
        g, _ = self.big_graph()
        first = g.freeze()
        assert g.freeze() is first
        assert g.freeze_stats["cached"] == 1

    def test_extended_snapshot_is_detached_from_base(self):
        g, accounts = self.big_graph()
        base = g.freeze()
        g.add_transaction(("zzz_new", accounts[0]))
        extended = g.freeze()
        assert extended is not base
        assert "zzz_new" in extended.index_of
        assert "zzz_new" not in base.index_of
        assert base.num_edges == g.num_edges - 1

    def test_delta_freeze_can_be_disabled(self):
        g, accounts = self.big_graph()
        g.delta_freeze_enabled = False
        assert not g.delta_freeze_enabled
        g.freeze()
        g.add_transaction((accounts[0], accounts[1]))
        assert_csr_identical(g.freeze(), CSRGraph.from_graph(g))
        assert g.freeze_stats["delta"] == 0
        assert g.freeze_stats["full"] == 2

    def test_reenabling_delta_freeze_never_serves_stale_snapshots(self):
        """Regression: mutations made while delta-freeze is disabled are
        unlogged, so re-enabling must poison the log — extending the old
        base with an empty delta would cache a snapshot missing them."""
        g, accounts = self.big_graph()
        g.freeze()
        g.delta_freeze_enabled = False
        g.add_transaction(("zz_disabled_era", accounts[0]))
        g.delta_freeze_enabled = True
        csr = g.freeze()
        assert "zz_disabled_era" in csr.index_of
        assert_csr_identical(csr, CSRGraph.from_graph(g))

    def test_copy_starts_with_cold_cache_and_fresh_counters(self):
        g, accounts = self.big_graph()
        g.freeze()
        g.add_transaction((accounts[0], accounts[1]))
        g.freeze()
        clone = g.copy()
        assert clone.freeze_stats == {"full": 0, "delta": 0, "cached": 0}
        assert_csr_identical(clone.freeze(), CSRGraph.from_graph(g))

    def test_a_txallo_fast_rejects_nodes_missing_from_graph(self):
        g, accounts = self.big_graph()
        params = TxAlloParams.with_capacity_for(800, k=3, backend="fast")
        alloc = g_txallo(g, params).allocation
        with pytest.raises(GraphError):
            a_txallo(alloc, ["never-ingested"])


class TestDecayFreezeInterplay:
    def test_decay_invalidates_snapshot_and_rebuilds_fully(self):
        g = DecayingTransactionGraph(decay=0.5)
        g.add_transactions([("a", "b"), ("b", "c")])
        stale = g.freeze()
        g.advance_window()
        fresh = g.freeze()
        assert fresh is not stale
        assert g.freeze_stats["full"] == 2 and g.freeze_stats["delta"] == 0
        assert fresh.total_weight == pytest.approx(1.0)

    def test_pruned_isolated_nodes_round_trip_through_freeze(self):
        g = DecayingTransactionGraph(decay=0.1, prune_threshold=0.05)
        g.add_transaction(("a", "b"))
        g.add_transaction(("keep1", "keep2"))
        g.freeze()
        g.advance_window()           # everything survives at 0.1
        g.add_transaction(("keep1", "keep2"))  # refresh one edge
        g.advance_window()           # a-b fades below threshold, pruned
        assert "a" not in g and "b" not in g
        csr = g.freeze()
        assert_csr_identical(csr, CSRGraph.from_graph(g))
        assert sorted(csr.nodes) == ["keep1", "keep2"]
        # ...and the delta machinery recovers once growth is monotone again.
        g.add_transaction(("keep1", "keep3"))
        assert_csr_identical(g.freeze(), CSRGraph.from_graph(g))

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_a_txallo_on_decayed_graph_matches_reference(self, seed):
        """A-TxAllo sweeps after window decay: fast == reference, exactly."""
        results = {}
        for backend in ("reference", "fast"):
            rng = random.Random(seed)
            accounts = [f"acc{i:03d}" for i in range(120)]
            g = DecayingTransactionGraph(decay=0.6, prune_threshold=1e-3)
            seed_graph(rng, g, accounts, 700)
            params = TxAlloParams.with_capacity_for(700, k=4, eta=2.0, backend=backend)
            alloc = g_txallo(g, params).allocation
            stats = []
            for step in range(3):
                g.advance_window()
                alloc = g_txallo(g, params).allocation
                touched = set()
                for _ in range(25):
                    accs = rng.sample(accounts, 2)
                    g.add_transaction(accs)
                    alloc.ingest_transaction(accs)
                    touched.update(accs)
                res = a_txallo(alloc, touched)
                stats.append((res.new_nodes, res.swept_nodes, res.sweeps, res.moves))
            results[backend] = (alloc.mapping(), alloc.sigma, alloc.lam_hat, stats)
        ref, fast = results["reference"], results["fast"]
        assert ref[0] == fast[0]
        assert ref[1] == fast[1]   # exact floats
        assert ref[2] == fast[2]   # exact floats
        assert ref[3] == fast[3]


class TestAdaptiveWorkspaceInterleavings:
    """Workspace-vs-snapshot byte-parity across the full controller
    lifecycle: block ingest, scheduled adaptive runs, scheduled and
    forced global refreshes, forced adaptives and window decay (which
    poisons the workspace's journal and must force a rebuild)."""

    def _drive(self, seed, workspace_enabled, decaying):
        from repro.core.controller import TxAlloController

        rng = random.Random(seed)
        accounts = [f"acc{i:03d}" for i in range(180)]
        if decaying:
            graph = DecayingTransactionGraph(decay=0.8, prune_threshold=1e-4)
        else:
            graph = TransactionGraph()
        seed_graph(rng, graph, accounts, 900)
        params = TxAlloParams.with_capacity_for(
            900, k=4, eta=2.0, tau1=1, tau2=7
        )
        controller = TxAlloController(
            params, graph=graph, adaptive_workspace=workspace_enabled
        )
        for step in range(20):
            block = []
            for _ in range(rng.randrange(2, 8)):
                accs = rng.sample(accounts, 2)
                if rng.random() < 0.25:
                    accs.append(f"fresh{seed}_{step}_{rng.randrange(2)}")
                block.append(tuple(accs))
            controller.observe_block(block)
            roll = rng.random()
            if decaying and roll < 0.15:
                graph.advance_window()
            elif roll < 0.25:
                controller.force_adaptive()
            elif roll < 0.3:
                controller.force_global()
        controller.force_adaptive()
        return controller

    @pytest.mark.parametrize("seed", SEEDS[:3])
    @pytest.mark.parametrize("decaying", (False, True))
    def test_workspace_byte_identical_across_lifecycle(self, seed, decaying):
        base = self._drive(seed, workspace_enabled=False, decaying=decaying)
        batched = self._drive(seed, workspace_enabled=True, decaying=decaying)
        assert base.allocation.mapping() == batched.allocation.mapping()
        assert base.allocation.sigma == batched.allocation.sigma        # exact
        assert base.allocation.lam_hat == batched.allocation.lam_hat    # exact
        assert [
            (e.kind, e.block_height, e.moves, e.touched, e.converged)
            for e in base.events
        ] == [
            (e.kind, e.block_height, e.moves, e.touched, e.converged)
            for e in batched.events
        ]
        stats = batched.workspace_stats
        assert stats["runs"] > 0
        assert stats["extends"] > 0, "workspace never carried across a window"
        if decaying:
            # Decay poisons the journal: at least one rebuild beyond the
            # first adaptive run and any global-refresh invalidations.
            assert stats["rebuilds"] >= 2

    def test_decay_between_runs_forces_rebuild_not_staleness(self):
        """Directly pin the poisoned-journal path: decay between two
        workspace runs must rebuild from a fresh freeze (the decayed
        weights), not replay stale rows."""
        from repro.core.engine import AdaptiveWorkspace

        rng = random.Random(13)
        accounts = [f"acc{i:03d}" for i in range(100)]
        results = {}
        for label in ("snapshot", "workspace"):
            rng = random.Random(13)
            g = DecayingTransactionGraph(decay=0.5, prune_threshold=1e-4)
            seed_graph(rng, g, accounts, 600)
            params = TxAlloParams.with_capacity_for(600, k=4, eta=2.0)
            alloc = g_txallo(g, params).allocation
            workspace = AdaptiveWorkspace() if label == "workspace" else None
            stats = []
            for step in range(4):
                touched = set()
                for _ in range(15):
                    accs = rng.sample(accounts, 2)
                    g.add_transaction(accs)
                    alloc.ingest_transaction(accs)
                    touched.update(accs)
                res = a_txallo(alloc, touched, workspace=workspace)
                stats.append((res.new_nodes, res.swept_nodes, res.sweeps, res.moves))
                if step == 1:
                    g.advance_window()  # poisons the journal mid-sequence
            results[label] = (alloc.mapping(), alloc.sigma, alloc.lam_hat, stats)
            if workspace is not None:
                assert workspace.stats["rebuilds"] >= 2
        assert results["snapshot"] == results["workspace"]
