"""Tests for the evaluation harness (figure runners, reporting, timing)."""

import pytest

from repro.core.params import TxAlloParams
from repro.errors import ParameterError
from repro.eval import experiments
from repro.eval.reporting import ascii_bar_chart, ascii_line_chart, format_table
from repro.eval.timing import Timer, time_call


@pytest.fixture(scope="module")
def tiny_workload():
    return experiments.build_workload(scale=0.05, seed=4)


@pytest.fixture(scope="module")
def tiny_records(tiny_workload):
    return experiments.sweep(tiny_workload, ks=(2, 8), etas=(2.0, 6.0))


class TestBuildWorkload:
    def test_scale_controls_size(self):
        small = experiments.build_workload(scale=0.05)
        assert small.num_transactions == 3000
        assert small.graph.num_transactions == 3000

    def test_invalid_scale(self):
        with pytest.raises(ParameterError):
            experiments.build_workload(scale=0.0)

    def test_overrides_forwarded(self):
        w = experiments.build_workload(scale=0.05, block_size=10)
        assert w.config.block_size == 10

    def test_card_computed(self, tiny_workload):
        assert tiny_workload.card.num_transactions == tiny_workload.num_transactions


class TestRunMethod:
    def test_unknown_method_rejected(self, tiny_workload):
        params = TxAlloParams.with_capacity_for(tiny_workload.num_transactions, k=2)
        with pytest.raises(ParameterError):
            experiments.run_method("quantum", tiny_workload, params)

    @pytest.mark.parametrize("method", experiments.METHODS)
    def test_all_methods_produce_metrics(self, tiny_workload, method):
        params = TxAlloParams.with_capacity_for(tiny_workload.num_transactions, k=4)
        rec = experiments.run_method(method, tiny_workload, params)
        assert 0.0 <= rec.cross_shard_ratio <= 1.0
        assert rec.throughput_x > 0.0
        assert rec.avg_latency >= 1.0
        assert len(rec.normalized_workloads) == 4
        assert rec.runtime_seconds >= 0.0


class TestSweepAndFigures:
    def test_grid_size(self, tiny_records):
        assert len(tiny_records) == 2 * 2 * len(experiments.METHODS)

    def test_figure2_series_structure(self, tiny_records):
        fig = experiments.figure2(tiny_records)
        assert set(fig.panels) == {2.0, 6.0}
        panel = fig.panel(2.0)
        expected = {experiments.method_label(m) for m in experiments.METHODS}
        assert set(panel) == expected
        for pts in panel.values():
            assert [x for x, _ in pts] == sorted(x for x, _ in pts)

    def test_value_lookup(self, tiny_records):
        fig = experiments.figure2(tiny_records)
        v = fig.value(2.0, "txallo", 8)
        assert 0.0 <= v <= 1.0
        with pytest.raises(KeyError):
            fig.value(2.0, "txallo", 999)

    def test_all_sweep_figures_render(self, tiny_records):
        for builder in (
            experiments.figure2,
            experiments.figure3,
            experiments.figure5,
            experiments.figure6,
            experiments.figure7,
            experiments.figure8,
        ):
            text = builder(tiny_records).render()
            assert "eta = 2" in text
            assert "Our Method" in text

    def test_figure1_renders(self, tiny_workload):
        text = experiments.figure1(tiny_workload).render()
        assert "top account share" in text

    def test_figure4_distributions(self, tiny_workload):
        report = experiments.figure4(tiny_workload, k=4, eta=2.0)
        expected = {experiments.method_label(m) for m in experiments.METHODS}
        assert set(report.distributions) == expected
        for dist in report.distributions.values():
            assert len(dist) == 4
        assert "capacity line" in report.render()

    def test_paper_shape_txallo_beats_random_on_gamma(self, tiny_records):
        fig = experiments.figure2(tiny_records)
        for eta in (2.0, 6.0):
            assert fig.value(eta, "txallo", 8) < fig.value(eta, "random", 8)

    def test_paper_shape_txallo_best_throughput_of_graph_methods(self, tiny_records):
        fig = experiments.figure5(tiny_records)
        for eta in (2.0, 6.0):
            assert fig.value(eta, "txallo", 8) >= fig.value(eta, "metis", 8) - 0.3
            assert fig.value(eta, "txallo", 8) > fig.value(eta, "random", 8)


class TestAdaptiveFigures:
    def test_figure9_runs(self, tiny_workload):
        report = experiments.figure9(
            tiny_workload, k=4, eta=2.0, gaps=(3,), max_steps=6, split_ratio=0.5
        )
        assert "Global Method" in report.runs
        assert "Gap=3" in report.runs
        run = report.runs["Gap=3"]
        assert len(run.steps) == 6
        kinds = [s.kind for s in run.steps]
        assert kinds[2] == "global"  # every 3rd step
        assert kinds[0] == "adaptive"
        assert report.render()

    def test_figure9_throughput_reasonable(self, tiny_workload):
        report = experiments.figure9(
            tiny_workload, k=4, eta=2.0, gaps=(4,), max_steps=4, split_ratio=0.5
        )
        for run in report.runs.values():
            assert 0.5 <= run.mean_throughput <= 4.0 + 1e-6

    def test_figure10_runs(self, tiny_workload):
        report = experiments.figure10(
            tiny_workload, k=4, max_steps=5, global_gap=2, split_ratio=0.5
        )
        assert len(report.pure.steps) == 5
        assert len(report.hybrid.steps) == 5
        assert all(s.kind == "global" for s in report.pure.steps)
        assert report.render()

    def test_adaptive_steps_faster_than_global(self, tiny_workload):
        report = experiments.figure10(
            tiny_workload, k=4, max_steps=6, global_gap=6, split_ratio=0.5
        )
        pure_mean = sum(s.runtime_seconds for s in report.pure.steps) / 6
        assert report.hybrid.mean_adaptive_runtime < pure_mean


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "x"], [["a", 1.0], ["bb", 2.5]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "2.500" in lines[3]

    def test_line_chart_contains_markers_and_legend(self):
        chart = ascii_line_chart(
            {"one": [(0, 0.0), (1, 1.0)], "two": [(0, 1.0), (1, 0.0)]},
            title="t",
        )
        assert "o=one" in chart and "x=two" in chart
        assert chart.startswith("t")

    def test_line_chart_empty(self):
        assert "(no data)" in ascii_line_chart({}, title="t")

    def test_bar_chart_reference_line(self):
        chart = ascii_bar_chart([0.5, 2.0], labels=["a", "b"], reference=1.0)
        assert "|" in chart
        assert "2.00" in chart

    def test_bar_chart_empty(self):
        assert "(no data)" in ascii_bar_chart([], title="t")


class TestTiming:
    def test_timer_context(self):
        with Timer() as t:
            sum(range(100))
        assert t.seconds >= 0.0

    def test_time_call(self):
        result, seconds = time_call(lambda a, b: a + b, 2, b=3)
        assert result == 5
        assert seconds >= 0.0
