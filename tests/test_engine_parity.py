"""Parity property tests: flat-array engine vs reference, byte for byte.

The ``backend="fast"`` engine (:mod:`repro.core.engine`) is only allowed
to exist because it is *indistinguishable* from the dict-based reference
path: same mapping, same ``sigma`` / ``lam_hat`` floats (exact ``==``, no
tolerance), same sweep/move counters.  These tests pin that contract
across randomised synthetic workloads, shard counts and eta values, for
all three hot paths — Louvain, G-TxAllo and A-TxAllo — plus cache
integrity after long ingest + move sequences on the engine-produced
allocation.
"""

import random

import pytest

from repro.core.atxallo import a_txallo
from repro.core.graph import TransactionGraph
from repro.core.gtxallo import g_txallo
from repro.core.louvain import louvain_partition
from repro.core.params import TxAlloParams
from repro.data.synthetic import EthereumWorkloadGenerator, WorkloadConfig, account_sets
from tests.conftest import make_random_graph

SEEDS = (1, 2, 3)
KS = (2, 5, 8)
ETAS = (1.0, 2.0, 6.0)


def synthetic_graph(seed, num_accounts=400, num_transactions=2500):
    config = WorkloadConfig(
        num_accounts=num_accounts, num_transactions=num_transactions, seed=seed
    )
    sets_ = account_sets(EthereumWorkloadGenerator(config).generate())
    graph = TransactionGraph()
    for s in sets_:
        graph.add_transaction(s)
    return graph, sets_


def assert_gtxallo_identical(ref, fast):
    assert ref.allocation.mapping() == fast.allocation.mapping()
    assert ref.allocation.sigma == fast.allocation.sigma          # exact floats
    assert ref.allocation.lam_hat == fast.allocation.lam_hat      # exact floats
    assert ref.sweeps == fast.sweeps
    assert ref.moves == fast.moves
    assert ref.small_nodes_absorbed == fast.small_nodes_absorbed
    assert ref.louvain_communities == fast.louvain_communities


class TestLouvainParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_graphs(self, seed):
        g = make_random_graph(num_accounts=70, num_transactions=600, seed=seed, groups=4)
        assert louvain_partition(g, backend="reference") == louvain_partition(
            g, backend="fast"
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_synthetic_workloads(self, seed):
        g, _ = synthetic_graph(seed)
        assert louvain_partition(g, backend="reference") == louvain_partition(
            g, backend="fast"
        )

    def test_edge_cases(self):
        empty = TransactionGraph()
        assert louvain_partition(empty, backend="fast") == {}

        solo = TransactionGraph()
        solo.add_transaction(("only",))
        assert louvain_partition(solo, backend="fast") == louvain_partition(
            solo, backend="reference"
        )

        isolated = TransactionGraph()
        isolated.add_transaction(("a", "b"))
        isolated.add_node("island")
        assert louvain_partition(isolated, backend="fast") == louvain_partition(
            isolated, backend="reference"
        )

    def test_memoised_partition_is_a_fresh_copy(self):
        g = make_random_graph(seed=5)
        p1 = louvain_partition(g, backend="fast")
        p2 = louvain_partition(g, backend="fast")
        assert p1 == p2
        # Mutating a served copy must not poison the memo.
        p1[next(iter(p1))] = 10**6
        assert louvain_partition(g, backend="fast") == p2


class TestGTxAlloParity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("k", KS)
    @pytest.mark.parametrize("eta", ETAS)
    def test_random_graph_grid(self, seed, k, eta):
        g = make_random_graph(num_accounts=70, num_transactions=600, seed=seed, groups=4)
        params = TxAlloParams.with_capacity_for(600, k=k, eta=eta)
        ref = g_txallo(g, params, backend="reference")
        fast = g_txallo(g, params, backend="fast")
        assert_gtxallo_identical(ref, fast)

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_synthetic_workload(self, seed):
        g, sets_ = synthetic_graph(seed)
        params = TxAlloParams.with_capacity_for(len(sets_), k=6, eta=2.0)
        assert_gtxallo_identical(
            g_txallo(g, params, backend="reference"),
            g_txallo(g, params, backend="fast"),
        )

    def test_explicit_initial_partition(self):
        g = make_random_graph(seed=9)
        params = TxAlloParams.with_capacity_for(400, k=4, eta=2.0)
        rng = random.Random(0)
        init = {v: rng.randrange(7) for v in g.nodes()}
        assert_gtxallo_identical(
            g_txallo(g, params, initial_partition=init, backend="reference"),
            g_txallo(g, params, initial_partition=init, backend="fast"),
        )

    def test_custom_node_order(self):
        g = make_random_graph(seed=10)
        params = TxAlloParams.with_capacity_for(400, k=4, eta=2.0)
        order = list(reversed(g.nodes_sorted()))
        assert_gtxallo_identical(
            g_txallo(g, params, node_order=order, backend="reference"),
            g_txallo(g, params, node_order=order, backend="fast"),
        )

    def test_more_shards_than_communities(self):
        g = TransactionGraph()
        for pair in [("a", "b"), ("b", "c"), ("a", "c")]:
            g.add_transaction(pair)
        params = TxAlloParams.with_capacity_for(3, k=5, eta=2.0)
        assert_gtxallo_identical(
            g_txallo(g, params, backend="reference"),
            g_txallo(g, params, backend="fast"),
        )

    def test_empty_graph(self):
        params = TxAlloParams.with_capacity_for(1, k=3, eta=2.0)
        assert_gtxallo_identical(
            g_txallo(TransactionGraph(), params, backend="reference"),
            g_txallo(TransactionGraph(), params, backend="fast"),
        )

    def test_infinite_capacity(self):
        g = make_random_graph(seed=4)
        params = TxAlloParams(k=4, eta=2.0)  # lam = inf
        assert_gtxallo_identical(
            g_txallo(g, params, backend="reference"),
            g_txallo(g, params, backend="fast"),
        )


def _ingest(graph, alloc, txs):
    touched = set()
    for accounts in txs:
        unique = set(accounts)
        graph.add_transaction(unique)
        alloc.ingest_transaction(unique)
        touched.update(unique)
    return touched


def _atxallo_state(seed, k, backend, rounds=3):
    """Prepare + evolve one allocation under the given backend."""
    g = make_random_graph(num_accounts=80, num_transactions=500, seed=seed, groups=4)
    params = TxAlloParams.with_capacity_for(500, k=k, eta=2.0, backend=backend)
    alloc = g_txallo(g, params).allocation
    rng = random.Random(seed)
    stats = []
    for round_ in range(rounds):
        nodes = list(g.nodes())
        txs = [tuple(rng.sample(nodes, 2)) for _ in range(40)]
        txs += [(f"new{round_}_{i}", rng.choice(nodes)) for i in range(5)]
        txs.append((f"lonely{round_}",))
        touched = _ingest(g, alloc, txs)
        result = a_txallo(alloc, touched)
        stats.append(
            (result.new_nodes, result.swept_nodes, result.sweeps, result.moves)
        )
    return alloc, stats


class TestATxAlloParity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("k", (2, 6))
    def test_evolving_allocation(self, seed, k):
        ref_alloc, ref_stats = _atxallo_state(seed, k, "reference")
        fast_alloc, fast_stats = _atxallo_state(seed, k, "fast")
        assert ref_stats == fast_stats
        assert ref_alloc.mapping() == fast_alloc.mapping()
        assert ref_alloc.sigma == fast_alloc.sigma
        assert ref_alloc.lam_hat == fast_alloc.lam_hat

    def test_caches_exact_after_long_ingest_move_sequences(self):
        """validate(check_caches=True) on the engine-driven allocation."""
        alloc, _ = _atxallo_state(7, 4, "fast", rounds=6)
        alloc.validate(check_caches=True)

    def test_empty_touched_set(self):
        g = make_random_graph(seed=3)
        params = TxAlloParams.with_capacity_for(400, k=4, backend="fast")
        alloc = g_txallo(g, params).allocation
        before = alloc.mapping()
        result = a_txallo(alloc, [])
        assert result.moves == 0 and result.sweeps >= 1
        assert alloc.mapping() == before


class TestBackendPlumbing:
    def test_params_validate_backend(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            TxAlloParams(k=2, backend="warp-drive")

    def test_params_default_fast(self):
        assert TxAlloParams(k=2).backend == "fast"

    def test_backend_override_beats_params(self):
        g = make_random_graph(seed=8)
        params = TxAlloParams.with_capacity_for(400, k=3, backend="reference")
        # Explicit kwarg wins over the params field; outputs identical.
        ref = g_txallo(g, params)
        fast = g_txallo(g, params, backend="fast")
        assert_gtxallo_identical(ref, fast)

    def test_unknown_backend_rejected(self):
        from repro.errors import ParameterError

        g = make_random_graph(seed=8)
        params = TxAlloParams.with_capacity_for(400, k=3)
        with pytest.raises(ParameterError):
            g_txallo(g, params, backend="nope")
        with pytest.raises(ValueError):
            louvain_partition(g, backend="nope")


def _atxallo_workspace_state(seed, k, rounds=3):
    """Like _atxallo_state("fast") but batched through one workspace."""
    from repro.core.engine import AdaptiveWorkspace

    g = make_random_graph(num_accounts=80, num_transactions=500, seed=seed, groups=4)
    params = TxAlloParams.with_capacity_for(500, k=k, eta=2.0, backend="fast")
    alloc = g_txallo(g, params).allocation
    workspace = AdaptiveWorkspace()
    rng = random.Random(seed)
    stats = []
    for round_ in range(rounds):
        nodes = list(g.nodes())
        txs = [tuple(rng.sample(nodes, 2)) for _ in range(40)]
        txs += [(f"new{round_}_{i}", rng.choice(nodes)) for i in range(5)]
        txs.append((f"lonely{round_}",))
        touched = _ingest(g, alloc, txs)
        result = a_txallo(alloc, touched, workspace=workspace)
        stats.append(
            (result.new_nodes, result.swept_nodes, result.sweeps, result.moves)
        )
    return alloc, stats, workspace


class TestAdaptiveWorkspaceParity:
    """The workspace is a cache, not a backend level: batched runs must be
    byte-identical to snapshot-per-run fast (and hence reference) runs."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("k", (2, 6))
    def test_evolving_allocation_matches_snapshot_path(self, seed, k):
        snap_alloc, snap_stats = _atxallo_state(seed, k, "fast")
        ws_alloc, ws_stats, workspace = _atxallo_workspace_state(seed, k)
        assert snap_stats == ws_stats
        assert snap_alloc.mapping() == ws_alloc.mapping()
        assert snap_alloc.sigma == ws_alloc.sigma          # exact floats
        assert snap_alloc.lam_hat == ws_alloc.lam_hat      # exact floats
        counters = workspace.stats
        assert counters["rebuilds"] == 1
        assert counters["extends"] == 2  # rounds 2 and 3 rode the journal

    def test_caches_exact_after_batched_runs(self):
        alloc, _, _ = _atxallo_workspace_state(7, 4, rounds=6)
        alloc.validate(check_caches=True)

    def test_unknown_node_rejected_through_workspace(self):
        from repro.core.engine import AdaptiveWorkspace
        from repro.errors import GraphError

        g = make_random_graph(seed=3)
        params = TxAlloParams.with_capacity_for(400, k=4, backend="fast")
        alloc = g_txallo(g, params).allocation
        with pytest.raises(GraphError):
            a_txallo(alloc, ["never-ingested"], workspace=AdaptiveWorkspace())

    def test_workspace_rebuilds_when_allocation_is_replaced(self):
        """Reusing a workspace against a brand-new allocation (what a
        global refresh produces) must transparently rebuild, not serve
        the old id→shard view."""
        from repro.core.engine import AdaptiveWorkspace

        g = make_random_graph(seed=6)
        params = TxAlloParams.with_capacity_for(400, k=4, eta=2.0, backend="fast")
        workspace = AdaptiveWorkspace()
        alloc = g_txallo(g, params).allocation
        rng = random.Random(6)
        nodes = list(g.nodes())
        touched = _ingest(g, alloc, [tuple(rng.sample(nodes, 2)) for _ in range(20)])
        a_txallo(alloc, touched, workspace=workspace)

        refreshed = g_txallo(g, params).allocation  # "global refresh"
        twin = refreshed.copy()
        # One graph ingest, mirrored into both allocations' caches.
        touched = set()
        for _ in range(20):
            accounts = tuple(rng.sample(nodes, 2))
            g.add_transaction(accounts)
            refreshed.ingest_transaction(accounts)
            twin.ingest_transaction(accounts)
            touched.update(accounts)
        result_ws = a_txallo(refreshed, touched, workspace=workspace)
        result_snap = a_txallo(twin, touched)
        assert result_ws.moves == result_snap.moves
        assert result_ws.sweeps == result_snap.sweeps
        assert refreshed.mapping() == twin.mapping()
        assert refreshed.sigma == twin.sigma
        assert refreshed.lam_hat == twin.lam_hat
        assert workspace.stats["rebuilds"] == 2

    def test_empty_touched_set_through_workspace(self):
        from repro.core.engine import AdaptiveWorkspace

        g = make_random_graph(seed=3)
        params = TxAlloParams.with_capacity_for(400, k=4, backend="fast")
        alloc = g_txallo(g, params).allocation
        before = alloc.mapping()
        result = a_txallo(alloc, [], workspace=AdaptiveWorkspace())
        assert result.moves == 0 and result.sweeps >= 1
        assert alloc.mapping() == before

    def test_foreign_move_between_runs_forces_rebuild(self):
        """A move applied behind the workspace's back (same allocation
        object, same length) must be detected via the mutation watermark
        and trigger a rebuild — never a stale id→shard view."""
        from repro.core.engine import AdaptiveWorkspace

        g = make_random_graph(seed=15)
        params = TxAlloParams.with_capacity_for(400, k=4, eta=2.0, backend="fast")
        workspace = AdaptiveWorkspace()
        alloc = g_txallo(g, params).allocation
        twin = alloc.copy()
        rng = random.Random(15)
        nodes = list(g.nodes())

        def shared_ingest(count):
            touched = set()
            for _ in range(count):
                accounts = tuple(rng.sample(nodes, 2))
                g.add_transaction(accounts)
                alloc.ingest_transaction(accounts)
                twin.ingest_transaction(accounts)
                touched.update(accounts)
            return touched

        touched = shared_ingest(20)
        a_txallo(alloc, touched, workspace=workspace)
        a_txallo(twin, touched)

        # Foreign mutation: move one account directly on both copies.
        victim = nodes[0]
        target = (alloc.shard_of(victim) + 1) % params.k
        alloc.move(victim, target)
        twin.move(victim, target)

        touched = shared_ingest(20)
        a_txallo(alloc, touched, workspace=workspace)
        a_txallo(twin, touched)
        assert workspace.stats["rebuilds"] == 2  # drift detected
        assert alloc.mapping() == twin.mapping()
        assert alloc.sigma == twin.sigma
        assert alloc.lam_hat == twin.lam_hat
