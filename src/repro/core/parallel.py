"""Multi-core execution layer: process-parallel grids, shard-parallel sweeps.

Everything upstream of this module is single-threaded; ROADMAP item 5
names the two independent wins this module delivers:

Process-parallel evaluation grid
--------------------------------
The Fig. 8 evaluation grid — every ``(method, k, eta)`` cell of
:func:`repro.eval.experiments.sweep` / ``figure4`` — is embarrassingly
parallel once the shared state exists.  :func:`run_grid` computes that
state **once in the parent** (the frozen CSR snapshot, the memoised
Louvain partition, and every eta-independent static mapping — see
:func:`warm_grid_state`), then fans the cells out to a
``ProcessPoolExecutor`` using the ``fork`` start method, so workers
inherit the warmed workload copy-on-write instead of re-deriving or
unpickling it.  Task descriptors are tiny ``(method, k, eta)`` tuples
and results come back in canonical cell order, so ``workers=N`` produces
records identical to ``workers=1`` up to wall-clock fields
(:func:`canonical_records` strips those; ``tests/test_parallel.py`` pins
the parity).  Platforms without ``fork`` (and ``workers=1``) run the
same warmed path inline — the fallback is a slower spelling of the same
computation, not a different one.

Shard-parallel A-TxAllo
-----------------------
:func:`a_txallo_parallel` is the A-TxAllo kernel of the ``"parallel"``
backend tier (registered in :mod:`repro.core.backends`, objective-gated
within the registry's 2% tolerance like turbo/vector, available only
with numpy and falling back to ``"vector"``).  A τ₁ window's touched
accounts are partitioned into mostly-disjoint shard neighbourhoods
(grouped by current community, packed into ``params.workers`` batches).
Like the other flat tiers the kernel consumes the controller's
:class:`~repro.core.engine.AdaptiveWorkspace` when one is supplied
(``uses_workspace=True`` in the registry), so consecutive τ₁ windows
never re-freeze the graph; per-slot community-weight matrices ``W``/``N``
are built once per window and kept current with one vectorised flush of
each sweep's applied moves.  Each sweep runs in three phases:

1. **frozen proposal phase** — every batch scores all of its nodes
   against the *pre-sweep* caches with vectorised numpy ops over
   ``W``/``N`` (which release the GIL, so batches genuinely overlap in
   worker threads); a node proposes iff some move has positive gain;
2. **sequential apply pass** — proposers are re-evaluated
   best-frozen-gain-first against the *live* caches with the flat
   engine's exact scalar arithmetic and applied through
   :meth:`Allocation.move`, so a stale proposal is re-checked, never
   trusted;
3. **sequential conflict pass** — the overlap set (touched nodes
   adjacent to an applied mover, plus the movers) is swept once more
   exactly, catching adjacent gains the frozen phase could not see.

Convergence gates on the *frozen-phase* positive-gain sum: at sweep
start the frozen state equals the live state, so that sum bounds the
gain any full exact Gauss-Seidel sweep could still collect — including
sigma-mediated gains at non-adjacent nodes that the conflict pass is
blind to — and the loop reaches the flat kernel's fixed point.

Because the frozen phase is a *filter* whose candidate set (and each
candidate's gain key) is a union of elementwise per-batch results, and
phases 2-3 are sequential in a deterministic order, the result is
**identical for any ``workers`` value** — parallelism changes
wall-clock only.  Windows below :data:`MIN_PARALLEL_TOUCHED` delegate
wholesale to the byte-identical flat kernel (a size-only, therefore
workers-independent, decision).

BLAS/OpenMP pinning
-------------------
:func:`pin_blas_threads` pins the BLAS/OpenMP thread-count environment
knobs (``OMP_NUM_THREADS`` etc.) so process-pool workers and numpy's
own threading do not oversubscribe cores under the benches; every
``benchmarks/bench_*.py`` calls it before numpy can load, and
``benchmarks/conftest.py`` asserts the pin.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Environment knobs that cap BLAS/OpenMP threading.  ``setdefault``
#: semantics: an explicit user setting wins over the pin.
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)

#: Below this many touched accounts the shard-parallel A-TxAllo kernel
#: delegates to the byte-identical flat kernel: the numpy proposal
#: machinery only pays for itself once per-sweep work amortises its
#: fixed overheads.  Size-dependent only, so the delegation decision —
#: hence the result — is independent of ``params.workers``.
MIN_PARALLEL_TOUCHED = 64

#: Diagnostics of the most recent :func:`a_txallo_parallel` batched run
#: in this process (batches, proposal/conflict counts per sweep...).
#: Tests introspect it; nothing downstream reads it.
LAST_RUN_STATS: Dict[str, object] = {}


def pin_blas_threads(count: int = 1) -> Dict[str, str]:
    """Pin BLAS/OpenMP thread counts via the standard environment knobs.

    Must run before numpy first loads to be fully effective (the benches
    call it at the top of the module, ahead of any ``repro`` import that
    could pull the vector tier in).  Uses ``setdefault``, so explicit
    user settings survive.  Returns the resulting pin map.
    """
    value = str(int(count))
    for var in BLAS_ENV_VARS:
        os.environ.setdefault(var, value)
    return {var: os.environ[var] for var in BLAS_ENV_VARS}


def blas_threads_pinned() -> bool:
    """True when every BLAS/OpenMP knob carries an explicit value."""
    return all(os.environ.get(var) for var in BLAS_ENV_VARS)


def fork_available() -> bool:
    """True when the ``fork`` start method exists (POSIX).

    Process-parallel grids require it: the warmed workload travels to
    workers by copy-on-write inheritance, not pickling.  Without it
    :func:`run_grid` runs the cells inline (``workers=1`` semantics).
    """
    return "fork" in multiprocessing.get_all_start_methods()


def effective_workers(workers: int, tasks: int) -> int:
    """Clamp a ``workers`` request to something the task list can use."""
    return max(1, min(int(workers), max(1, tasks)))


# ======================================================================
# Process-parallel evaluation grid
# ======================================================================
#: Per-worker-process grid state installed by :func:`_grid_worker_init`
#: (fork-inherited workload + backend + preloaded mapping cache).
_GRID_STATE: Optional[tuple] = None


def canonical_records(records: Sequence) -> List:
    """Strip wall-clock fields from grid records for parity comparison.

    ``runtime_seconds`` is a timing measurement, inherently
    nondeterministic; every other :class:`~repro.eval.experiments.
    MethodMetrics` field is a pure function of (workload, params, method)
    and must be byte-identical across worker counts.
    """
    return [dataclasses.replace(r, runtime_seconds=0.0) for r in records]


def warm_grid_state(workload, cells: Sequence[Tuple[str, int, float]], backend: str, cache):
    """Compute the grid's shared state once, in the calling process.

    * freezes the transaction graph (the CSR snapshot every cell reads);
    * memoises the Louvain partition on that snapshot when any cell runs
      TxAllo (``g_txallo`` consults ``csr.louvain_memo`` under its
      default ``(32, 1.0)`` key — one parent-side run serves the whole
      grid);
    * computes every eta-independent static mapping (hash, prefix,
      METIS) exactly once per ``(method, k)`` into ``cache`` — the
      satellite fix for the parallel grid, where per-process
      memoisation would otherwise recompute them in every worker.
    """
    from repro import allocators
    from repro.core.louvain import louvain_partition
    from repro.core.params import TxAlloParams

    workload.graph.freeze()
    methods = {method for method, _, _ in cells}
    if methods & {"txallo", "txallo_online"}:
        louvain_partition(workload.graph, backend=backend)
    for method, k, eta in cells:
        entry = allocators.get_entry(method)
        if entry.kind == "static" and entry.eta_independent:
            params = TxAlloParams.with_capacity_for(
                workload.num_transactions, k=k, eta=eta, backend=backend
            )
            cache.mapping_for(entry, workload, params)


def _grid_worker_init(workload, backend: str, preloaded: dict) -> None:
    """Pool initializer: adopt the fork-inherited shared grid state."""
    global _GRID_STATE
    from repro.eval.experiments import _MappingCache

    _GRID_STATE = (workload, backend, _MappingCache(preloaded=preloaded))


def _grid_cell(task: Tuple[str, int, float]):
    """Run one (method, k, eta) cell against the worker's grid state."""
    method, k, eta = task
    workload, backend, cache = _GRID_STATE
    from repro.core.params import TxAlloParams
    from repro.eval.experiments import run_method

    params = TxAlloParams.with_capacity_for(
        workload.num_transactions, k=k, eta=eta, backend=backend
    )
    return run_method(method, workload, params, cache)


def run_grid(
    workload,
    cells: Sequence[Tuple[str, int, float]],
    backend: str = "fast",
    workers: int = 1,
) -> List:
    """Evaluate ``cells`` (canonical order preserved) with ``workers``.

    The shared freeze + Louvain memo + eta-independent mappings are
    computed once in the parent (:func:`warm_grid_state`); with
    ``workers > 1`` on a ``fork`` platform the cells fan out to a
    process pool that inherits that state copy-on-write, otherwise they
    run inline over the same warmed state.  Either way the returned
    records are identical up to ``runtime_seconds`` (compare through
    :func:`canonical_records`).
    """
    from repro.eval.experiments import _MappingCache

    cache = _MappingCache()
    warm_grid_state(workload, cells, backend, cache)
    workers = effective_workers(workers, len(cells))
    if workers <= 1 or not fork_available():
        global _GRID_STATE
        saved = _GRID_STATE
        _GRID_STATE = (workload, backend, cache)
        try:
            return [_grid_cell(task) for task in cells]
        finally:
            _GRID_STATE = saved
    ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=ctx,
        initializer=_grid_worker_init,
        initargs=(workload, backend, cache.export()),
    ) as pool:
        return list(pool.map(_grid_cell, cells))


# ======================================================================
# Shard-parallel A-TxAllo (the "parallel" backend's adaptive kernel)
# ======================================================================
def a_txallo_parallel(
    alloc,
    touched: Iterable,
    epsilon: float,
    workspace=None,
) -> Tuple[int, int, int, int, bool]:
    """Algorithm 2 with shard-parallel batched sweeps (see module doc).

    Registry kernel signature: mutates ``alloc`` in place and returns
    ``(new_nodes, swept_nodes, sweeps, moves, converged)``.  Reads the
    thread count from ``alloc.params.workers``; the result is identical
    for every ``workers`` value (parallelism is wall-clock only), and
    the TxAllo objective is gated within the registry tolerance of the
    byte-identical flat kernel by ``tests/test_parallel.py`` and
    ``benchmarks/bench_parallel.py``.
    """
    from repro.core.engine import a_txallo_flat

    hat_v = sorted(set(touched))
    if len(hat_v) < MIN_PARALLEL_TOUCHED:
        # Small window: the flat kernel is already optimal there, and a
        # size-only delegation keeps the workers-independence contract.
        LAST_RUN_STATS.clear()
        LAST_RUN_STATS.update({"batched": False, "window": len(hat_v)})
        return a_txallo_flat(alloc, hat_v, epsilon, workspace=workspace)

    import numpy as np  # the registry gates this tier on numpy_available

    from repro.core.engine import _ADAPTIVE_MAX_SWEEPS
    from repro.errors import GraphError

    params = alloc.params
    k = params.k
    eta = params.eta
    lam = params.lam
    workers = max(1, int(getattr(params, "workers", 1)))
    num_comms = alloc.num_communities
    shard_of = alloc._shard_of
    nv = len(hat_v)

    # One-time neighbourhood snapshot, exactly the flat kernel's layout:
    # ``code >= 0`` is the fixed community of an untouched assigned
    # neighbour, ``code < 0`` is ``~slot`` of a touched neighbour.  With
    # a workspace the rows come from its persistent journal-maintained
    # views (no freeze, the τ₁ loop's batched path); otherwise from the
    # graph's frozen CSR form.
    ids: List[int] = []
    snap: List[List[Tuple[int, float]]] = []
    self_w = [0.0] * nv
    ext_w = [0.0] * nv
    wshard = None  # workspace's dense id->community view (lockstep below)
    # ``ent_*`` flat edge-entry lists are built alongside the snapshot
    # (one pass) for the vectorised machinery below.
    ent_code_l: List[int] = []
    ent_w_l: List[float] = []
    row_len: List[int] = []
    if workspace is not None:
        workspace.sync(alloc)
        index_of = workspace._index_of
        rows = workspace._rows
        loop_w = workspace._loop
        wshard = workspace._shard
        for v in hat_v:
            try:
                ids.append(index_of[v])
            except KeyError:
                raise GraphError(f"unknown node {v!r}") from None
        local_slot = {i: s for s, i in enumerate(ids)}
        local_shard = [wshard[i] for i in ids]
        for s, i in enumerate(ids):
            row = rows[i]
            entries: List[Tuple[int, float]] = []
            for j, w in row.items():
                slot = local_slot.get(j)
                if slot is not None:
                    code = ~slot
                else:
                    code = wshard[j]
                    if code < 0:
                        continue
                entries.append((code, w))
                ent_code_l.append(code)
                ent_w_l.append(w)
            row_len.append(len(entries))
            self_w[s] = loop_w[i]
            ext_w[s] = sum(row.values())
            snap.append(entries)
    else:
        csr = alloc.graph.freeze()
        index_of = csr.index_of
        csr_nodes = csr.nodes
        csr_pairs = csr.pairs
        for v in hat_v:
            try:
                ids.append(index_of[v])
            except KeyError:
                raise GraphError(f"unknown node {v!r}") from None
        local_slot = {i: s for s, i in enumerate(ids)}
        local_shard = [shard_of.get(v, -1) for v in hat_v]
        for s, i in enumerate(ids):
            entries = []
            for j, w in csr_pairs[i]:
                slot = local_slot.get(j)
                if slot is not None:
                    code = ~slot
                else:
                    c = shard_of.get(csr_nodes[j])
                    if c is None:
                        continue
                    code = c
                entries.append((code, w))
                ent_code_l.append(code)
                ent_w_l.append(w)
            row_len.append(len(entries))
            self_w[s] = csr.loop[i]
            ext_w[s] = csr.ext[i]
            snap.append(entries)

    acc = [0.0] * num_comms
    stamp = [0] * num_comms
    epoch = 0

    def scan(s: int) -> List[int]:
        nonlocal epoch
        epoch += 1
        touched_comms: List[int] = []
        for code, w in snap[s]:
            c = code if code >= 0 else local_shard[~code]
            if c < 0:
                continue
            if stamp[c] == epoch:
                acc[c] += w
            else:
                stamp[c] = epoch
                acc[c] = w
                touched_comms.append(c)
        return touched_comms

    def weights_triple(s: int, touched_comms: List[int]):
        return {c: acc[c] for c in touched_comms}, self_w[s], ext_w[s]

    # --- Phase 1: brand-new accounts — sequential, the flat arithmetic.
    new_slots = [s for s in range(nv) if local_shard[s] < 0]
    for s in new_slots:
        touched_comms = scan(s)
        w_self = self_w[s]
        w_ext = ext_w[s]
        candidates: Iterable[int] = sorted(
            c for c in touched_comms if c < k and acc[c] > 0.0
        )
        if not candidates:
            candidates = range(k)
        best_q = -1
        best_gain = -float("inf")
        for q in candidates:
            w_q = acc[q] if stamp[q] == epoch else 0.0
            sigma_q = alloc.sigma[q]
            lam_hat_q = alloc.lam_hat[q]
            sigma_new = sigma_q + w_self + eta * (w_ext - w_q) + (1.0 - eta) * w_q
            lam_hat_new = lam_hat_q + w_self + w_ext / 2.0
            before = lam_hat_q if (sigma_q <= lam or sigma_q == 0.0) else lam / sigma_q * lam_hat_q
            after = (
                lam_hat_new
                if (sigma_new <= lam or sigma_new == 0.0)
                else lam / sigma_new * lam_hat_new
            )
            gain = after - before
            if gain > best_gain:
                best_gain = gain
                best_q = q
        alloc.assign(hat_v[s], best_q, weights=weights_triple(s, touched_comms))
        local_shard[s] = best_q
        if wshard is not None:
            wshard[ids[s]] = best_q

    # --- Live per-slot community-weight matrix ------------------------
    # ``W[s, c]`` = total weight from slot ``s``'s snapshot entries into
    # community ``c``; ``N[s, c]`` the exact integer entry count (the
    # candidate mask — integer arithmetic, so incremental updates cannot
    # drift it).  Built once after phase 1 (every touched node is then
    # assigned, so touched-neighbour codes always resolve), then kept
    # current with one vectorised flush of the sweep's applied moves —
    # the proposal phase never rescans the edge entries.  ``W`` itself
    # can pick up float dust from a -=/+= round trip, but proposals are
    # only a filter: the exact apply pass rescores every candidate from
    # the snapshot.
    ent_slot = np.repeat(
        np.arange(nv, dtype=np.int64), np.asarray(row_len, dtype=np.int64)
    )
    ent_code = np.asarray(ent_code_l, dtype=np.int64)
    ent_w = np.asarray(ent_w_l, dtype=np.float64)
    ent_is_touched = ent_code < 0
    ent_fixed = np.where(ent_is_touched, 0, ent_code)
    ent_ref = np.where(ent_is_touched, -ent_code - 1, 0)
    row_start = np.zeros(nv + 1, dtype=np.int64)
    np.cumsum(row_len, out=row_start[1:])
    self_arr = np.asarray(self_w, dtype=np.float64)
    ext_arr = np.asarray(ext_w, dtype=np.float64)
    C = num_comms
    comm0 = np.where(ent_is_touched, np.asarray(local_shard)[ent_ref], ent_fixed)
    flat_idx = ent_slot * C + comm0
    W = np.bincount(flat_idx, weights=ent_w, minlength=nv * C).reshape(nv, C)
    N = np.bincount(flat_idx, minlength=nv * C).reshape(nv, C)

    # Mostly-disjoint shard neighbourhoods: group slots by their current
    # community (post-phase-1), pack the groups into ``workers`` batches
    # round-robin.  Batching only splits the read-only proposal work —
    # the candidate set is the union over batches, so the partition (and
    # therefore ``workers``) never changes the result.
    groups: Dict[int, List[int]] = {}
    for s in range(nv):
        groups.setdefault(local_shard[s], []).append(s)
    n_batches = max(1, min(workers, len(groups)))
    batch_lists: List[List[int]] = [[] for _ in range(n_batches)]
    for g, shard in enumerate(sorted(groups)):
        batch_lists[g % n_batches].extend(groups[shard])
    batch_slots = [np.asarray(sorted(b), dtype=np.int64) for b in batch_lists if b]

    sigma = alloc.sigma
    lam_hat = alloc.lam_hat
    one_minus_eta = 1.0 - eta
    eta_minus_one = eta - 1.0
    neg_inf = -float("inf")
    thpt = [0.0] * num_comms
    for c in range(num_comms):
        sigma_c = sigma[c]
        thpt[c] = lam_hat[c] if (sigma_c <= lam or sigma_c == 0.0) else lam / sigma_c * lam_hat[c]

    moves = 0
    # Applied moves accumulate here and are flushed into ``W``/``N`` in
    # one vectorised pass per sweep (after the conflict pass) — the only
    # reader of the matrices is the *next* sweep's proposal phase, and
    # the +/- updates compose additively even when a slot moves twice.
    pending_moves: List[Tuple[int, int, int]] = []

    def flush_pending() -> None:
        """Apply the sweep's ``(slot, from, to)`` moves to ``W``/``N``."""
        if not pending_moves:
            return
        m_slots = np.asarray([m[0] for m in pending_moves], dtype=np.int64)
        m_p = np.asarray([m[1] for m in pending_moves], dtype=np.int64)
        m_q = np.asarray([m[2] for m in pending_moves], dtype=np.int64)
        pending_moves.clear()
        lens = row_start[m_slots + 1] - row_start[m_slots]
        total = int(lens.sum())
        if total == 0:
            return
        starts = row_start[m_slots]
        offsets = np.repeat(
            starts - np.concatenate(([0], np.cumsum(lens)[:-1])), lens
        )
        idx = np.arange(total, dtype=np.int64) + offsets
        tmask = ent_is_touched[idx]
        if not tmask.any():
            return
        t = ent_ref[idx][tmask]
        w = ent_w[idx][tmask]
        p_t = np.repeat(m_p, lens)[tmask]
        q_t = np.repeat(m_q, lens)[tmask]
        np.subtract.at(W, (t, p_t), w)
        np.add.at(W, (t, q_t), w)
        np.subtract.at(N, (t, p_t), 1)
        np.add.at(N, (t, q_t), 1)

    def exact_sweep(slots: Iterable[int]) -> Tuple[float, List[int]]:
        """Gauss-Seidel over ``slots`` with the flat kernel's arithmetic."""
        nonlocal epoch, moves
        gain_total = 0.0
        moved: List[int] = []
        touched_comms: List[int] = []
        for s in slots:
            p = local_shard[s]
            epoch += 1
            del touched_comms[:]
            append = touched_comms.append
            for code, w in snap[s]:
                c = code if code >= 0 else local_shard[~code]
                if stamp[c] == epoch:
                    acc[c] += w
                else:
                    stamp[c] = epoch
                    acc[c] = w
                    append(c)
            if not touched_comms or (
                len(touched_comms) == 1 and touched_comms[0] == p
            ):
                continue
            touched_comms.sort()
            w_self = self_w[s]
            w_ext = ext_w[s]
            half_ext = w_ext / 2.0
            w_p = acc[p] if stamp[p] == epoch else 0.0
            sigma_new = sigma[p] - w_self - eta * (w_ext - w_p) + eta_minus_one * w_p
            lam_hat_new = lam_hat[p] - w_self - half_ext
            if sigma_new <= lam or sigma_new == 0.0:
                after = lam_hat_new
            else:
                after = lam / sigma_new * lam_hat_new
            leave = after - thpt[p]
            best_q = -1
            best_gain = neg_inf
            for q in touched_comms:
                if q == p:
                    continue
                w_q = acc[q]
                sigma_new = sigma[q] + w_self + eta * (w_ext - w_q) + one_minus_eta * w_q
                lam_hat_new = lam_hat[q] + w_self + half_ext
                if sigma_new <= lam or sigma_new == 0.0:
                    join_after = lam_hat_new
                else:
                    join_after = lam / sigma_new * lam_hat_new
                gain = leave + (join_after - thpt[q])
                if gain > best_gain:
                    best_gain = gain
                    best_q = q
            if best_q >= 0 and best_gain > 0.0:
                alloc.move(hat_v[s], best_q, weights=weights_triple(s, touched_comms))
                local_shard[s] = best_q
                if wshard is not None:
                    wshard[ids[s]] = best_q
                pending_moves.append((s, p, best_q))
                sigma_p = sigma[p]
                thpt[p] = (
                    lam_hat[p] if (sigma_p <= lam or sigma_p == 0.0) else lam / sigma_p * lam_hat[p]
                )
                sigma_q = sigma[best_q]
                thpt[best_q] = (
                    lam_hat[best_q]
                    if (sigma_q <= lam or sigma_q == 0.0)
                    else lam / sigma_q * lam_hat[best_q]
                )
                gain_total += best_gain
                moves += 1
                moved.append(s)
        return gain_total, moved

    def batch_proposals(b: int, shard0, sigma0, lam0, thpt0):
        """Batch ``b``'s slots with a positive frozen-state move gain.

        Returns ``(slots, gains)`` — the proposing slots plus each one's
        best frozen gain.  At sweep start the frozen state *is* the live
        state, so the summed positive gains bound what a full exact
        Gauss-Seidel sweep could collect; the main loop uses that bound
        as its convergence criterion (same fixed point as the flat
        kernel's full-sweep ``< epsilon`` check).
        """
        slots_b = batch_slots[b]
        nb = len(slots_b)
        Wb = W[slots_b]
        live = N[slots_b] > 0
        rows_b = np.arange(nb)
        p = shard0[slots_b]
        sw = self_arr[slots_b]
        ew = ext_arr[slots_b]
        half = ew / 2.0
        w_p = Wb[rows_b, p]
        # ``np.where`` evaluates both branches; with an unbounded lam the
        # dead uncapped branch hits inf*0 — silence it, the capped branch
        # is what gets selected there.
        with np.errstate(invalid="ignore", divide="ignore"):
            sigma_new_p = sigma0[p] - sw - eta * (ew - w_p) + eta_minus_one * w_p
            lam_new_p = lam0[p] - sw - half
            cap_p = (sigma_new_p <= lam) | (sigma_new_p == 0.0)
            denom_p = np.where(cap_p, 1.0, sigma_new_p)
            after_p = np.where(cap_p, lam_new_p, lam / denom_p * lam_new_p)
            leave = after_p - thpt0[p]
            sigma_new_q = (
                sigma0[None, :] + sw[:, None] + eta * (ew[:, None] - Wb) + one_minus_eta * Wb
            )
            lam_new_q = lam0[None, :] + sw[:, None] + half[:, None]
            cap_q = (sigma_new_q <= lam) | (sigma_new_q == 0.0)
            denom_q = np.where(cap_q, 1.0, sigma_new_q)
            join_after = np.where(cap_q, lam_new_q, lam / denom_q * lam_new_q)
            gains = leave[:, None] + (join_after - thpt0[None, :])
        gains[~live] = neg_inf
        gains[rows_b, p] = neg_inf
        best = gains[rows_b, np.argmax(gains, axis=1)]
        mask = best > 0.0
        return slots_b[mask], best[mask]

    # --- Phase 2: frozen proposals -> exact apply -> conflict pass ------
    sweeps = 0
    converged = False
    pool = ThreadPoolExecutor(max_workers=workers) if (
        workers > 1 and len(batch_slots) > 1
    ) else None
    stats = {
        "batched": True,
        "batches": len(batch_slots),
        "workers": workers,
        "proposals": 0,
        "applied": 0,
        "conflict_slots": 0,
        "conflict_moves": 0,
    }
    try:
        while sweeps < _ADAPTIVE_MAX_SWEEPS:
            sweeps += 1
            shard0 = np.asarray(local_shard, dtype=np.int64)
            sigma0 = np.asarray(sigma, dtype=np.float64)
            lam0 = np.asarray(lam_hat, dtype=np.float64)
            cap0 = (sigma0 <= lam) | (sigma0 == 0.0)
            denom0 = np.where(cap0, 1.0, sigma0)
            with np.errstate(invalid="ignore", divide="ignore"):
                thpt0 = np.where(cap0, lam0, lam / denom0 * lam0)
            if pool is not None:
                parts = list(
                    pool.map(
                        lambda b: batch_proposals(b, shard0, sigma0, lam0, thpt0),
                        range(len(batch_slots)),
                    )
                )
            else:
                parts = [
                    batch_proposals(b, shard0, sigma0, lam0, thpt0)
                    for b in range(len(batch_slots))
                ]
            # The frozen state equals the live state here, so the summed
            # positive frozen gains bound the gain any full exact sweep
            # could still collect — converging on that bound reaches the
            # flat kernel's fixed point (a move's sigma shift can open
            # gains at *non-adjacent* nodes; only this global check, not
            # the conflict pass, is guaranteed to see those).
            frozen_gain = float(sum(float(g.sum()) for _, g in parts))
            if frozen_gain < epsilon:
                converged = True
                break
            # Best-frozen-gain-first apply order: the biggest wins land
            # before their neighbourhoods shift under them, which tracks
            # the flat kernel's trajectory much more closely than slot
            # order.  Per-batch gains are elementwise, so the order (and
            # hence the result) is independent of the batch partition.
            scored = sorted(
                ((float(g), int(s)) for part, gains in parts
                 for s, g in zip(part, gains)),
                key=lambda t: (-t[0], t[1]),
            )
            candidates = [s for _, s in scored]
            stats["proposals"] += len(candidates)
            _, movers = exact_sweep(candidates)
            stats["applied"] += len(movers)
            overlap = set(movers)
            for m in movers:
                overlap.update(~code for code, _ in snap[m] if code < 0)
            conflict_slots = sorted(overlap)
            stats["conflict_slots"] += len(conflict_slots)
            _, conflict_movers = exact_sweep(conflict_slots)
            stats["conflict_moves"] += len(conflict_movers)
            flush_pending()
    finally:
        if pool is not None:
            pool.shutdown()
    stats["sweeps"] = sweeps
    LAST_RUN_STATS.clear()
    LAST_RUN_STATS.update(stats)

    if workspace is not None:
        workspace._note_run(alloc)
    return len(new_slots), nv, sweeps, moves, converged
