"""Figure 4 — per-shard workload distribution case study (k=20, eta=2).

Paper: the most active account's shard visibly overloads Random, METIS and
TxAllo (Figs. 4a/4b/4d); Shard Scheduler smears it (Fig. 4c); METIS leaves
some shards under the capacity line; TxAllo keeps the bulk of shards at
~1.0 with a bounded hub shard.
"""

import pytest

from repro.eval import experiments


@pytest.fixture(scope="module")
def fig4(workload):
    return experiments.figure4(workload, k=20, eta=2.0)


def test_fig4_report(fig4):
    print()
    print(fig4.render())


def hub_peak(dist):
    return max(dist)


def test_hub_shard_stands_out_for_graph_methods(fig4):
    for method in ("Random", "Metis", "Our Method"):
        dist = fig4.distributions[method]
        ordered = sorted(dist, reverse=True)
        assert ordered[0] > 1.8 * ordered[len(ordered) // 2], (
            f"{method}: the hub shard should dominate the median shard"
        )


def test_shard_scheduler_flat(fig4):
    dist = fig4.distributions["Shard Scheduler"]
    assert max(dist) - min(dist) < 0.3


def test_txallo_bulk_near_capacity(fig4):
    dist = sorted(fig4.distributions["Our Method"], reverse=True)
    bulk = dist[len(dist) // 4:]
    for value in bulk:
        assert 0.5 <= value <= 2.0


def test_random_total_workload_highest(fig4):
    """Random has the most cross-shard txs, hence the most total work."""
    total = {m: sum(d) for m, d in fig4.distributions.items()}
    assert total["Random"] == max(total.values())


def test_bench_figure4(workload, benchmark):
    benchmark.pedantic(
        experiments.figure4, args=(workload,), kwargs={"k": 20, "eta": 2.0},
        rounds=1, iterations=1,
    )
