"""Epoch-based miner reshuffling (paper Section II-B).

Permissionless sharding protocols periodically reassign miners to shards to
prevent single-shard take-over attacks (Elastico's reconfiguration phase).
Two consequences matter to TxAllo:

* computing resources are *uniformly* distributed, justifying the equal
  per-shard capacity ``λ`` (Section III-A);
* the shuffle must be deterministic given public randomness, or the shards
  would need yet another consensus — we derive it from a seeded hash, so
  every miner computes the same assignment.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.errors import ParameterError


class MinerPool:
    """A set of miners reshuffled across ``k`` shards every epoch."""

    def __init__(self, num_miners: int, k: int, seed: int = 0) -> None:
        if num_miners < k:
            raise ParameterError(
                f"need at least one miner per shard: {num_miners} miners for {k} shards"
            )
        if k < 1:
            raise ParameterError(f"number of shards must be positive, got {k!r}")
        self.num_miners = num_miners
        self.k = k
        self.seed = seed
        self.epoch = 0
        self.assignment: Dict[int, int] = {}
        self.reshuffle(epoch=0)

    # ------------------------------------------------------------------
    def _rank(self, miner: int, epoch: int) -> int:
        data = f"{self.seed}:{epoch}:{miner}".encode()
        return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")

    def reshuffle(self, epoch: int) -> Dict[int, int]:
        """Deterministically reassign miners for ``epoch``.

        Miners are ordered by a seeded hash and dealt round-robin, so shard
        sizes differ by at most one — the uniform-capacity assumption.
        """
        order = sorted(range(self.num_miners), key=lambda m: (self._rank(m, epoch), m))
        self.assignment = {miner: i % self.k for i, miner in enumerate(order)}
        self.epoch = epoch
        return dict(self.assignment)

    def shard_of(self, miner: int) -> int:
        try:
            return self.assignment[miner]
        except KeyError:
            raise ParameterError(f"unknown miner {miner!r}") from None

    def members(self, shard: int) -> List[int]:
        """Miners currently assigned to ``shard``, ascending."""
        if not 0 <= shard < self.k:
            raise ParameterError(f"shard {shard!r} out of range")
        return sorted(m for m, s in self.assignment.items() if s == shard)

    def shard_sizes(self) -> List[int]:
        sizes = [0] * self.k
        for shard in self.assignment.values():
            sizes[shard] += 1
        return sizes

    def max_size_gap(self) -> int:
        """Difference between the largest and smallest shard (<= 1)."""
        sizes = self.shard_sizes()
        return max(sizes) - min(sizes)
