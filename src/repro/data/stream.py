"""Block-stream utilities for the dynamic (τ-periodic) pipeline.

The A-TxAllo evaluation (paper Section VI-C) splits the ledger 9:1 —
G-TxAllo trains on the first part, A-TxAllo runs over the rest in
τ₁-block windows (300 blocks ≈ one Ethereum hour).  :class:`BlockStream`
packages those patterns: ratio splits, fixed-size windows, and projection
to the account-set views the metrics consume.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.chain.types import Address, Block, Transaction
from repro.errors import DataError


class BlockStream:
    """An ordered, indexable sequence of blocks with windowing helpers."""

    def __init__(self, blocks: Sequence[Block]) -> None:
        self._blocks: List[Block] = list(blocks)
        for i in range(1, len(self._blocks)):
            if self._blocks[i].height <= self._blocks[i - 1].height:
                raise DataError(
                    f"blocks out of order at position {i}: "
                    f"{self._blocks[i].height} after {self._blocks[i - 1].height}"
                )

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __getitem__(self, index):
        picked = self._blocks[index]
        if isinstance(index, slice):
            return BlockStream(picked)
        return picked

    @property
    def num_transactions(self) -> int:
        return sum(len(b) for b in self._blocks)

    def transactions(self) -> Iterator[Transaction]:
        for block in self._blocks:
            yield from block

    def account_sets(self) -> List[Tuple[Address, ...]]:
        """Sorted account tuples of every transaction, in chain order."""
        return [tuple(sorted(tx.accounts)) for tx in self.transactions()]

    # ------------------------------------------------------------------
    def split(self, ratio: float) -> Tuple["BlockStream", "BlockStream"]:
        """Split the stream by block count (paper uses ``ratio = 0.9``)."""
        if not 0.0 < ratio < 1.0:
            raise DataError(f"split ratio must be in (0, 1), got {ratio!r}")
        cut = int(len(self._blocks) * ratio)
        cut = max(1, min(cut, len(self._blocks) - 1))
        return BlockStream(self._blocks[:cut]), BlockStream(self._blocks[cut:])

    def windows(self, size: int) -> Iterator["BlockStream"]:
        """Consecutive windows of ``size`` blocks (last one may be short)."""
        if size < 1:
            raise DataError(f"window size must be positive, got {size!r}")
        for start in range(0, len(self._blocks), size):
            yield BlockStream(self._blocks[start:start + size])
