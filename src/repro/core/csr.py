"""Compiled CSR view of a :class:`~repro.core.graph.TransactionGraph`.

``TransactionGraph`` stores adjacency as a dict-of-dicts keyed by account
strings — ideal for incremental ingest, terrible for the allocation hot
paths, which pay Python string hashing and per-node dict construction on
every neighbourhood scan.  :class:`CSRGraph` is the *frozen* form the
flat-array sweep engine (:mod:`repro.core.engine`) runs on: account
strings are interned to dense integer ids (sorted-identifier order, the
canonical sweep order of Section IV-A) and the adjacency is lowered into
flat CSR arrays:

* ``indptr``/``indices``/``weights`` — ``array('l')``/``array('d')``
  row-pointer, neighbour-id and weight vectors.  Rows keep the *exact*
  iteration order of the source dict rows (including the self-loop entry
  at its original position), so any float accumulation the engine does
  over a row reproduces the reference implementation bit-for-bit.
* ``loop``/``ext`` — per-node self-loop weight ``w{v,v}`` and external
  strength ``w{v, V/v}`` (summed in row order, hence bit-identical to the
  reference's per-scan accumulation).
* ``pairs`` — a loop-free ``[(neighbour_id, weight), ...]`` list per node,
  the hot-loop view the sweep engine iterates (tuple unpacking is the
  fastest pure-Python idiom for this).
* ``ins_rank``/``ins_order`` — the permutation between the dense sorted
  ids and the graph's insertion (chronological-appearance) order, used to
  replay ``TransactionGraph.edges()``-ordered passes on the frozen form.

A ``CSRGraph`` is immutable; mutate the source graph and call
:meth:`TransactionGraph.freeze` again (the graph caches the frozen form
against an internal version counter, so freezing an unchanged graph is
free).
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.graph import Node, TransactionGraph


class CSRGraph:
    """Frozen, integer-indexed CSR snapshot of a transaction graph."""

    __slots__ = (
        "nodes",
        "index_of",
        "indptr",
        "indices",
        "weights",
        "loop",
        "ext",
        "pairs",
        "ins_rank",
        "ins_order",
        "num_edges",
        "total_weight",
        "louvain_memo",
        "intra_cut_memo",
    )

    def __init__(
        self,
        nodes: List["Node"],
        index_of: Dict["Node", int],
        indptr: array,
        indices: array,
        weights: array,
        loop: array,
        ext: array,
        pairs: List[List[Tuple[int, float]]],
        ins_rank: array,
        ins_order: array,
        num_edges: int,
        total_weight: float,
    ) -> None:
        self.nodes = nodes
        self.index_of = index_of
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.loop = loop
        self.ext = ext
        self.pairs = pairs
        self.ins_rank = ins_rank
        self.ins_order = ins_order
        self.num_edges = num_edges
        self.total_weight = total_weight
        # (max_levels, resolution) -> Louvain membership list.  Sound
        # because a CSRGraph is immutable: the same frozen graph always
        # yields the same deterministic partition (engine.louvain_flat
        # populates this and hands out copies).
        self.louvain_memo: Dict[Tuple[int, float], List[int]] = {}
        # Same key -> (intra, cut) per-community weights of the Louvain
        # partition; eta/k independent, so G-TxAllo parameter sweeps over
        # one frozen graph derive sigma/lam_hat per cell in O(l).
        self.intra_cut_memo: Dict[
            Tuple[int, float], Tuple[List[float], List[float]]
        ] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: "TransactionGraph") -> "CSRGraph":
        """Lower ``graph`` into CSR arrays (one O(N + E) pass).

        Node ``i`` is the ``i``-th account in ascending identifier order,
        so ascending integer order *is* the deterministic sweep order the
        allocators use.  Row contents preserve the adjacency-dict
        iteration order so float accumulations stay bit-identical to the
        reference dict-based scans.
        """
        nodes = graph.nodes_sorted()
        n = len(nodes)
        index_of = {v: i for i, v in enumerate(nodes)}

        lsize = array("l").itemsize
        indptr = array("l", bytes(lsize * (n + 1)))  # zero-initialised
        indices = array("l")
        weights = array("d")
        loop = array("d", bytes(8 * n))
        ext = array("d", bytes(8 * n))
        pairs: List[List[Tuple[int, float]]] = []
        ins_rank = array("l", bytes(lsize * n))
        ins_order = array("l", bytes(lsize * n))

        for rank, v in enumerate(graph.nodes()):
            i = index_of[v]
            ins_rank[i] = rank
            ins_order[rank] = i

        pos = 0
        for i, v in enumerate(nodes):
            row = graph.neighbours(v)
            prs: List[Tuple[int, float]] = []
            e = 0.0
            for u, w in row.items():
                j = index_of[u]
                indices.append(j)
                weights.append(w)
                if j == i:
                    loop[i] = w
                else:
                    e += w
                    prs.append((j, w))
            ext[i] = e
            pairs.append(prs)
            pos += len(row)
            indptr[i + 1] = pos

        return cls(
            nodes=nodes,
            index_of=index_of,
            indptr=indptr,
            indices=indices,
            weights=weights,
            loop=loop,
            ext=ext,
            pairs=pairs,
            ins_rank=ins_rank,
            ins_order=ins_order,
            num_edges=graph.num_edges,
            total_weight=graph.total_weight,
        )

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CSRGraph(nodes={len(self.nodes)}, edges={self.num_edges}, "
            f"weight={self.total_weight:.2f})"
        )
