"""Tests for deterministic fault injection (repro.chain.faults).

Plan construction (validation, seeded determinism), each fault family's
network-level effect, and the seeded chaos property test: under random
fault plans a supervised network must preserve the conservation
invariants — nothing lost, nothing leaked, nothing raised.
"""

import pytest

from repro.chain.faults import (
    AllocatorFault,
    DeliveryFault,
    FaultPlan,
    FaultyAllocator,
    MalformedDelivery,
    ShardStall,
    with_faults,
)
from repro.chain.live import LiveShardedNetwork
from repro.chain.types import Transaction
from repro.core.allocator import OnlineAllocator
from repro.core.controller import TxAlloController
from repro.core.params import TxAlloParams
from repro.core.resilience import ResilientAllocator
from repro.data.synthetic import EthereumWorkloadGenerator, WorkloadConfig
from repro.errors import AllocatorError, ParameterError


def tx(a, b):
    return Transaction.transfer(a, b)


def make_params(**overrides):
    defaults = dict(k=4, eta=2.0, lam=50.0, epsilon=0.01, tau1=2, tau2=10)
    defaults.update(overrides)
    return TxAlloParams(**defaults)


class RecordingAllocator(OnlineAllocator):
    """Static routing that records every block it is shown."""

    name = "recording"

    def __init__(self, params):
        self.params = params
        self.observed = []

    def observe_block(self, transactions):
        block = tuple(tuple(accounts) for accounts in transactions)
        self.observed.append(block)
        return None

    def shard_of(self, account):
        return 0

    def mapping(self):
        return {}


class TestPlanConstruction:
    def test_validation(self):
        with pytest.raises(ParameterError):
            AllocatorFault(at_block=0)
        with pytest.raises(ParameterError):
            AllocatorFault(at_block=1, kind="explode")
        with pytest.raises(ParameterError):
            ShardStall(shard=-1, start_tick=0, ticks=1)
        with pytest.raises(ParameterError):
            ShardStall(shard=0, start_tick=0, ticks=0)
        with pytest.raises(ParameterError):
            DeliveryFault(tick=-1)
        with pytest.raises(ParameterError):
            DeliveryFault(tick=0, kind="weird")
        with pytest.raises(ParameterError):
            FaultPlan.standard(tau2=0)
        with pytest.raises(ParameterError):
            FaultPlan.seeded(1, ticks=0, k=4)

    def test_seeded_plans_are_deterministic(self):
        a = FaultPlan.seeded(42, ticks=50, k=8)
        b = FaultPlan.seeded(42, ticks=50, k=8)
        assert a == b  # frozen dataclass value equality, field by field
        assert a.seed == 42
        # Distinct call indices: no fault shadows another.
        indices = [f.at_block for f in a.allocator_faults]
        assert len(indices) == len(set(indices))
        # And a different seed eventually differs (not a constant plan).
        assert any(
            FaultPlan.seeded(s, ticks=50, k=8) != a for s in range(43, 53)
        )

    def test_standard_plan_shape(self):
        plan = FaultPlan.standard(10)
        assert [f.at_block for f in plan.allocator_faults] == [10, 11, 12]
        assert all(f.kind == "raise" for f in plan.allocator_faults)
        assert len(plan.stalls) == 1
        assert not plan.empty
        assert FaultPlan().empty

    def test_with_faults_layering(self):
        params = make_params()
        plan = FaultPlan.standard(10)
        bare = RecordingAllocator(params)
        wrapped = with_faults(bare, plan)
        assert isinstance(wrapped, FaultyAllocator)  # faults propagate

        supervised = ResilientAllocator(RecordingAllocator(params))
        out = with_faults(supervised, plan)
        assert out is supervised  # faults installed *inside* the wrapper
        assert isinstance(supervised.inner, FaultyAllocator)

        # A plan without allocator faults installs nothing.
        stall_only = FaultPlan(stalls=(ShardStall(0, 0, 1),))
        assert with_faults(bare, stall_only) is bare

    def test_faulty_proxy_raises_before_delegating(self):
        params = make_params()
        inner = RecordingAllocator(params)
        proxy = FaultyAllocator(
            inner, FaultPlan(allocator_faults=(AllocatorFault(at_block=1),))
        )
        with pytest.raises(AllocatorError):
            proxy.observe_block([("a", "b")])
        # The inner allocator never saw the failed block — replay-exact.
        assert inner.observed == []
        proxy.observe_block([("a", "b")])
        assert inner.observed == [(("a", "b"),)]


class TestNetworkFaultFamilies:
    def test_duplicate_delivery_adds_load_without_breaking_invariants(self):
        params = make_params(k=2)
        plan = FaultPlan(
            delivery_faults=(DeliveryFault(tick=0, kind="duplicate", count=2),)
        )
        net = LiveShardedNetwork(params, {"a": 0, "b": 1}, fault_plan=plan)
        report = net.run([[tx("a", "b")]], drain=True)
        # The duplicate arrivals are re-stamped and processed like any
        # other transaction: extra load, full conservation.
        assert report.arrived == 3
        assert report.committed == 3
        assert report.dropped_malformed == 0

    def test_malformed_delivery_is_dropped_and_counted(self):
        params = make_params(k=2)
        plan = FaultPlan(
            delivery_faults=(DeliveryFault(tick=0, kind="malformed", count=3),)
        )
        allocator = RecordingAllocator(params)
        net = LiveShardedNetwork(params, allocator, fault_plan=plan)
        report = net.run([[tx("a", "b")]], drain=True)
        assert report.dropped_malformed == 3
        assert report.arrived == 1
        assert report.committed == 1
        assert report.ticks[0].dropped_malformed == 3
        # The allocator was never shown the garbage.
        for block in allocator.observed:
            for accounts in block:
                assert accounts and all(isinstance(a, str) for a in accounts)

    def test_malformed_delivery_object_is_not_a_transaction(self):
        assert not isinstance(MalformedDelivery(), Transaction)
        assert MalformedDelivery().accounts == frozenset()

    def test_shard_stall_accrues_backlog_then_drains(self):
        params = make_params(k=2, lam=10.0)
        plan = FaultPlan(stalls=(ShardStall(shard=0, start_tick=0, ticks=3),))
        net = LiveShardedNetwork(params, {"a": 0, "b": 0}, fault_plan=plan)
        first = net.tick([tx("a", "b")] * 5)
        assert first.committed == 0
        assert first.stalled_shards == 1
        assert first.backlog_workload == pytest.approx(5.0)
        report = net.run([], drain=True)
        # Once the window ends the shard drains at normal capacity.
        assert report.committed == 5
        assert report.arrived == 5


class TestSeededChaos:
    """Property test: random fault plans, supervised network, invariants."""

    @pytest.mark.parametrize("seed", [1, 7, 13, 99, 2023])
    def test_conservation_under_random_faults(self, seed):
        config = WorkloadConfig(
            num_accounts=200, num_transactions=1200, block_size=40, seed=seed
        )
        blocks = [
            list(blk) for blk in EthereumWorkloadGenerator(config).blocks()
        ]
        seed_sets = [tuple(t.accounts) for blk in blocks[:5] for t in blk]
        live = blocks[5:]
        params = make_params(lam=20.0)
        plan = FaultPlan.seeded(seed, ticks=len(live), k=params.k)
        supervised = ResilientAllocator(
            TxAlloController(params, seed_transactions=seed_sets),
            deadline_seconds=1.0,  # seeded "slow" faults overrun this
        )
        net = LiveShardedNetwork(params, supervised, fault_plan=plan)
        report = net.run(live, drain=True)  # must never raise

        # No transaction lost: everything that arrived committed, and
        # the completion/latency books are empty after the drain.
        assert report.committed == report.arrived
        assert net._pending_completions == {}
        assert net._tx_enqueued_at == {}
        # Degradation is reported, never silently swallowed.
        stats = supervised.resilience_stats
        if stats["failures"]:
            assert report.degraded_ticks >= 1
            assert report.failovers >= 1
