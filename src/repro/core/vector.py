"""numpy-vectorized allocation kernels — the ``backend="vector"`` tier.

The pure-Python flat engine (:mod:`repro.core.engine`) wins by constant
factors: it replaces dict scans with list indexing but still executes
O(E) interpreter bytecodes per sweep, so its advantage over the
reference decays as the graph grows (the scale-2 regression in
``benchmarks/BENCH_engine.scale2.json`` motivated this module).  This
tier replaces the per-node loops with whole-graph numpy segment
operations over the frozen CSR arrays:

* the CSR ``indptr``/``indices``/``weights``/``loop``/``ext`` stdlib
  arrays are exposed zero-copy as ndarrays (``np.frombuffer``) and
  expanded once per snapshot into a symmetric loop-free edge list
  ``(src, dst, w)`` cached on :attr:`repro.core.csr.CSRGraph.vector_cache`;
* Louvain neighbour scans become sort/``reduceat`` segment sums with a
  per-node ``lexsort`` argmax (synchronous rounds, see below);
* per-community intra/cut vectors — and hence ``sigma``/``lam_hat`` —
  are ``np.bincount`` segment sums;
* G-TxAllo optimisation sweeps compute the full ``(node, community)``
  weight matrix with one ``bincount`` and evaluate every leave/join
  gain (Eqs. 6-8) as array expressions, applying the best moves in an
  objective-checked batch.

Contract
--------
**Objective-gated, like turbo** (:data:`repro.core.backends.OBJECTIVE_TOLERANCE`):
float summation order differs from the reference by construction, and
the batched (Jacobi-style) sweeps visit no node order at all, so the
tier may land on a different — still fully deterministic — local
optimum.  The registry gates its total capped throughput within the
shared tolerance of the cold fast result; ``benchmarks/
bench_engine_speedup.py`` measures and gates the ratio, and
``tests/test_backends.py`` pins it property-style.  The A-TxAllo kernel
is *not* in this module: adaptive sweeps touch O(|V̂|) nodes, where the
flat engine is already optimal, so the registry wires the vector tier's
adaptive path to :func:`repro.core.engine.a_txallo_flat` (byte-identical,
AdaptiveWorkspace batching included).

Batched sweeps
--------------
The reference optimisation phase is Gauss-Seidel: each move updates the
caches before the next node is examined.  A faithful vectorisation of
that is impossible without serialising, so the sweep here is Jacobi
with a safety valve: score every node against the *pre-sweep* caches,
take the positive-gain movers in descending-gain order, apply them as
one batch, then recompute ``sigma``/``lam_hat`` exactly and check the
realised objective.  If the optimistic batch regressed (moves that
individually help can overload a destination together), the batch is
halved — the single best move is always exact, so progress is
guaranteed — and the sweep loop stops when the realised per-sweep gain
falls below ``epsilon`` exactly like the reference's criterion.

``node_order`` has no meaning for a batched sweep and is ignored;
``initial_partition`` is honoured (the ablation harness uses it).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.core.csr import CSRGraph
from repro.core.graph import Node, TransactionGraph
from repro.core.gtxallo import MAX_SWEEPS as _GLOBAL_MAX_SWEEPS
from repro.core.louvain import _MIN_GAIN
from repro.core.params import TxAlloParams

#: Hard cap on synchronous local-moving rounds per Louvain level; real
#: workloads converge in well under 30 (the restricted/unrestricted
#: alternation plus the period-2 check below terminate the oscillations
#: a synchronous update is prone to).
_LOUVAIN_MAX_ROUNDS = 128

#: Below this many nodes :func:`g_txallo_vector` delegates wholesale to
#: the byte-identical flat engine: the numpy batch machinery only pays
#: for itself once the per-sweep work amortises its fixed call
#: overheads, and under the crossover the flat engine is as fast while
#: its sequential (Gauss-Seidel) sweeps squeeze out slightly better
#: local optima on the tight small-graph cells.  Tests monkeypatch this
#: to 0 to force the vector path on toy graphs.
MIN_VECTOR_NODES = 10_000


# ======================================================================
# CSR -> ndarray lowering (cached per snapshot)
# ======================================================================
def _edge_views(csr: CSRGraph) -> dict:
    """Zero-copy ndarray views of ``csr`` plus the symmetric edge list.

    Returns a dict with ``loop``/``ext`` (per-node, zero-copy) and the
    loop-free symmetric half-edge arrays ``src``/``dst``/``w`` (each
    undirected edge appears in both directions, mirroring the CSR rows)
    plus ``once`` (the ``src < dst`` mask selecting each undirected pair
    exactly once).  Cached on ``csr.vector_cache`` — snapshots are
    immutable, so the lowering happens once per freeze.
    """
    views = csr.vector_cache.get("edges")
    if views is None:
        n = csr.num_nodes
        idx_dtype = np.dtype(f"i{csr.indptr.itemsize}")
        if n:
            indptr = np.frombuffer(csr.indptr, dtype=idx_dtype).astype(
                np.int64, copy=False
            )
            loop = np.frombuffer(csr.loop, dtype=np.float64)
            ext = np.frombuffer(csr.ext, dtype=np.float64)
        else:
            indptr = np.zeros(1, np.int64)
            loop = np.empty(0, np.float64)
            ext = np.empty(0, np.float64)
        if len(csr.indices):
            indices = np.frombuffer(csr.indices, dtype=idx_dtype).astype(
                np.int64, copy=False
            )
            weights = np.frombuffer(csr.weights, dtype=np.float64)
        else:
            indices = np.empty(0, np.int64)
            weights = np.empty(0, np.float64)
        src_all = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        nonloop = indices != src_all
        src = src_all[nonloop]
        dst = indices[nonloop]
        w = weights[nonloop]
        views = {
            "loop": loop,
            "ext": ext,
            "src": src,
            "dst": dst,
            "w": w,
            "once": src < dst,
        }
        csr.vector_cache["edges"] = views
    return views


def _capped(sigma: np.ndarray, lam_hat: np.ndarray, lam: float) -> np.ndarray:
    """Vectorised Eq. (3): ``Λ = Λ̂`` below capacity, ``λ/σ · Λ̂`` above.

    ``min(1, λ/σ)`` collapses the capped/uncapped branch into three array
    passes: ``λ/σ ≥ 1`` exactly when ``σ ≤ λ``, and ``σ = 0`` divides to
    ``+inf`` which the minimum also clamps to the uncapped scale of 1.
    """
    with np.errstate(divide="ignore"):
        return lam_hat * np.minimum(1.0, lam / sigma)


def _comm_caches(
    comm: np.ndarray,
    k: int,
    src: np.ndarray,
    dst: np.ndarray,
    w: np.ndarray,
    loop: np.ndarray,
    once: np.ndarray,
    eta: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact ``(sigma, lam_hat)`` of a complete partition, as segment sums.

    ``sigma_i = intra_i + eta * cut_i`` and ``lam_hat_i = intra_i +
    cut_i / 2`` where ``intra`` counts loops plus each internal edge
    once and ``cut`` each boundary edge at both of its communities —
    the same quantities ``Allocation._recompute_caches`` accumulates.
    """
    intra = np.bincount(comm, weights=loop, minlength=k)
    cu = comm[src]
    same = cu == comm[dst]
    im = once & same
    if im.any():
        intra = intra + np.bincount(cu[im], weights=w[im], minlength=k)
    cross = ~same
    if cross.any():
        cut = np.bincount(cu[cross], weights=w[cross], minlength=k)
    else:
        cut = np.zeros(k)
    return intra + eta * cut, intra + 0.5 * cut


def _weight_matrix(views: dict, comm: np.ndarray, n: int, k: int) -> np.ndarray:
    """Dense ``(n, k)`` node-to-community weights via one bincount.

    The ``src * k`` key vector is loop-invariant for a given ``k``, so it
    is memoised on the views dict — the sweeps rebuild ``W`` every
    round and the O(E) multiply would otherwise dominate the keying.
    """
    src, dst, w = views["src"], views["dst"], views["w"]
    if not src.size:
        return np.zeros((n, k))
    srck = views.get("srck")
    if srck is None or srck[0] != k:
        srck = (k, src * k)
        views["srck"] = srck
    return np.bincount(srck[1] + comm[dst], weights=w, minlength=n * k).reshape(n, k)


# ======================================================================
# Louvain (synchronous rounds)
# ======================================================================
def _one_level_vector(
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    w: np.ndarray,
    k_deg: np.ndarray,
    m: float,
    resolution: float,
) -> Tuple[np.ndarray, bool]:
    """One synchronous local-moving phase; returns ``(community, any_move)``.

    Every node evaluates the modularity gain toward each neighbouring
    community against the *round-start* state, and the improving nodes
    move as a batch.  Simultaneous moves that are each positive alone
    can jointly wreck modularity (on a coarse graph "everyone joins the
    hub at once" collapses the partition — observed, not hypothetical),
    and synchronous updates also oscillate where sequential ones
    converge (two singletons happily swapping labels forever).  One
    guard handles both, the same safety valve the G-TxAllo sweeps use:
    each round's batch is applied best-gain-first and *halved* until the
    realised modularity score actually improves.  The single best move
    is scored against exact round-start state, so it always improves —
    the score is strictly increasing, which rules out every cycle, and
    the phase stops at a genuine local optimum (no single move helps).
    Deterministic throughout — ties break toward the smallest community
    label exactly like the reference.
    """
    community = np.arange(n, dtype=np.int64)
    if m <= 0.0 or src.size == 0:
        return community, False
    comm_tot = k_deg.copy()
    norm = resolution * k_deg / (2.0 * m)
    inv2m = resolution / (2.0 * m)

    def score(comm: np.ndarray) -> float:
        # Affine image of modularity (2m·Q minus a constant): internal
        # half-edge weight minus the degree-penalty quadratic.  Single
        # moves change it by exactly twice their per-node gain, so the
        # batch guard and the move rule agree on "improves".
        same = comm[src] == comm[dst]
        tot = np.bincount(comm, weights=k_deg, minlength=n)
        return float(w[same].sum()) - inv2m * float((tot * tot).sum())

    current = score(community)
    any_move = False
    for _rnd in range(_LOUVAIN_MAX_ROUNDS):
        key = src * n + community[dst]
        order = np.argsort(key, kind="stable")
        ks = key[order]
        ws = w[order]
        starts = np.flatnonzero(np.concatenate(([True], ks[1:] != ks[:-1])))
        w_ic = np.add.reduceat(ws, starts)
        pk = ks[starts]
        pi = pk // n
        pc = pk % n
        own = pc == community[pi]
        w_own = np.zeros(n)
        w_own[pi[own]] = w_ic[own]
        # Gain of *staying*: weight to own community minus the usual
        # degree penalty with the node itself removed.
        base = w_own - (comm_tot[community] - k_deg) * norm
        ci = pi[~own]
        if ci.size == 0:
            break
        cc = pc[~own]
        gain = w_ic[~own] - comm_tot[cc] * norm[ci]
        # Per-node argmax with min-label ties: sort by (node, -gain,
        # label) and keep the first row per node.
        sel = np.lexsort((cc, -gain, ci))
        ci_s = ci[sel]
        first = np.concatenate(([True], ci_s[1:] != ci_s[:-1]))
        rows = ci_s[first]
        best_c = cc[sel][first]
        best_w = w_ic[~own][sel][first]
        improvement = gain[sel][first] - base[rows]
        move = improvement > _MIN_GAIN
        if not move.any():
            break
        mrows = rows[move]
        mdest = best_c[move]
        mgain = improvement[move]
        mw = best_w[move]
        order = np.lexsort((mrows, -mgain))
        cand_r = mrows[order]
        cand_c = mdest[order]
        cand_g = mgain[order]
        cand_w = mw[order]
        # Sequential-within-community re-evaluation (best gain first,
        # the order the batch lands in): earlier movers' degrees shift
        # the totals their batch-mates are scored against, and only
        # moves whose gain survives the shift stay in.  Kills the
        # "everyone joins the hub at once" collapse without the cost of
        # halving-loop rescoring; the top mover shifts nothing, so
        # every round still progresses.
        t_src = community[cand_r]
        kd = k_deg[cand_r]
        oq = np.lexsort((-cand_g, cand_c))
        tot_c = comm_tot[cand_c[oq]] + _seg_excl_cumsum(cand_c[oq], kd[oq])
        join_re = np.empty(cand_r.size)
        join_re[oq] = cand_w[oq] - tot_c * norm[cand_r[oq]]
        op = np.lexsort((-cand_g, t_src))
        tot_p = comm_tot[t_src[op]] - _seg_excl_cumsum(t_src[op], kd[op])
        base_re = np.empty(cand_r.size)
        base_re[op] = w_own[cand_r[op]] - (tot_p - kd[op]) * norm[cand_r[op]]
        keep = join_re - base_re > _MIN_GAIN
        if not keep.any():
            keep[0] = True
        cand_r = cand_r[keep]
        cand_c = cand_c[keep]
        # Exact-score safety valve for the residual cross terms the
        # per-community simulation cannot see (mover-mover edges).
        take = int(cand_r.size)
        while True:
            trial = community.copy()
            trial[cand_r[:take]] = cand_c[:take]
            trial_score = score(trial)
            if trial_score > current or take == 1:
                break
            take = max(1, take // 2)
        if trial_score <= current:
            break  # numerical guard: even the single best move stalled
        community = trial
        current = trial_score
        any_move = True
        comm_tot = np.bincount(community, weights=k_deg, minlength=n)
    return community, any_move


def _louvain_membership(
    csr: CSRGraph, max_levels: int, resolution: float
) -> np.ndarray:
    """Vectorised Louvain membership per CSR id (memoised per snapshot).

    Same phase structure as the reference — local moving, dense
    relabel, aggregation, recurse — with every phase a segment op.
    Labels are dense but *not* the reference's first-appearance order
    (this tier is objective-gated, not partition-identical); the
    partition is deterministic for a given snapshot.
    """
    key = ("louvain", max_levels, resolution)
    cached = csr.vector_cache.get(key)
    if cached is not None:
        return cached

    n = csr.num_nodes
    views = _edge_views(csr)
    membership = np.arange(n, dtype=np.int64)
    m = float(csr.total_weight)
    if n == 0 or m <= 0.0:
        csr.vector_cache[key] = membership
        return membership

    src, dst, w = views["src"], views["dst"], views["w"]
    loop = views["loop"]
    k_deg = views["ext"] + 2.0 * loop
    level_n = n
    for _level in range(max_levels):
        community, improved = _one_level_vector(
            level_n, src, dst, w, k_deg, m, resolution
        )
        uniq, community = np.unique(community, return_inverse=True)
        membership = community[membership]
        nc = int(uniq.size)
        if not improved or nc == level_n:
            break
        # Aggregate communities into super-nodes.
        cu = community[src]
        cv = community[dst]
        intra = cu == cv
        loop = np.bincount(community, weights=loop, minlength=nc)
        if intra.any():
            # Symmetric half-edges count every internal pair twice.
            loop = loop + 0.5 * np.bincount(
                cu[intra], weights=w[intra], minlength=nc
            )
        keep = ~intra
        pair_key = cu[keep] * nc + cv[keep]
        order = np.argsort(pair_key, kind="stable")
        pks = pair_key[order]
        pws = w[keep][order]
        if pks.size:
            starts = np.flatnonzero(np.concatenate(([True], pks[1:] != pks[:-1])))
            w = np.add.reduceat(pws, starts)
            heads = pks[starts]
            src = heads // nc
            dst = heads % nc
        else:
            src = np.empty(0, np.int64)
            dst = np.empty(0, np.int64)
            w = np.empty(0, np.float64)
        k_deg = np.bincount(src, weights=w, minlength=nc) + 2.0 * loop
        level_n = nc

    csr.vector_cache[key] = membership
    return membership


def louvain_vector(
    graph: TransactionGraph,
    max_levels: int = 32,
    resolution: float = 1.0,
) -> Dict[Node, int]:
    """Vector-backend :func:`repro.core.louvain.louvain_partition`."""
    csr = graph.freeze()
    membership = _louvain_membership(csr, max_levels, resolution)
    return {v: int(membership[i]) for i, v in enumerate(csr.nodes)}


# ======================================================================
# G-TxAllo
# ======================================================================
def _initialise_vector(
    params: TxAlloParams,
    comm: np.ndarray,
    num_louvain: int,
    views: dict,
    n: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Phase 1 (Algorithm 1, lines 1-9) as segment ops.

    Ranks communities by ``sigma``, keeps the top ``k`` as shards and
    absorbs every small-community node into its best join-gain shard
    (Eq. 6) among the shards it connects to — or all shards when it
    connects to none.  Unlike the sequential reference the join gains
    of all small nodes are scored against the *pre-absorption* caches
    in one batch (objective-gated divergence); the returned caches are
    an exact recomputation of the final partition.
    """
    k = params.k
    eta = params.eta
    lam = params.lam
    src, dst, w = views["src"], views["dst"], views["w"]
    loop, ext, once = views["loop"], views["ext"], views["once"]
    num_small = 0
    if num_louvain > k:
        sigma, lam_hat = _comm_caches(comm, num_louvain, src, dst, w, loop, once, eta)
        ranked = np.lexsort((np.arange(num_louvain), -sigma))
        relabel = np.empty(num_louvain, np.int64)
        relabel[ranked] = np.arange(num_louvain)
        comm = relabel[comm]
        sigma = sigma[ranked]
        lam_hat = lam_hat[ranked]
        num_small = int(np.count_nonzero(comm >= k))
        # Absorb in waves, not one stale batch: score all unassigned
        # nodes against *exact* current caches, then keep only the
        # assignments that survive a sequential-within-destination
        # re-evaluation (the same shifted-state simulation the sweeps
        # use in _filter_movers) — a node whose chosen shard fills up
        # under the earlier, higher-gain arrivals of the same wave is
        # deferred and re-scored next wave against the updated caches.
        # One big stale batch instead dumps thousands of nodes onto
        # whichever shard *looked* underloaded, and the sweeps then
        # polish their way into a far worse local optimum (observed:
        # up to -18 percent objective at k=2).  The top-gain node is
        # always kept (nothing shifts its destination), so every wave
        # makes progress; the cap only guards degenerate inputs.
        #
        # Waves are also *anchor-then-follow*: a small community with
        # no member placed yet may only place its top-gain member per
        # wave.  Fellow members are scored with their community-mates
        # invisible (unassigned nodes are not in W), so a flat batch
        # splits tight communities across shards — at high eta a basin
        # the single-move sweeps can never climb out of.  Once the
        # anchor lands, its mates see it and follow next wave, exactly
        # like the reference's sequential absorption.
        orig_size = np.bincount(comm, minlength=num_louvain)
        waves = 0
        while (comm >= k).any():
            waves += 1
            nc = int(comm.max()) + 1  # unabsorbed labels still >= k
            sig_full, lh_full = _comm_caches(comm, nc, src, dst, w, loop, once, eta)
            sig_k = sig_full[:k][None, :]
            lh_k = lh_full[:k][None, :]
            un_mask = comm >= k
            un = np.flatnonzero(un_mask)
            to_big = un_mask[src] & (comm[dst] < k)
            if to_big.any():
                W = np.bincount(
                    src[to_big] * k + comm[dst][to_big],
                    weights=w[to_big],
                    minlength=n * k,
                ).reshape(n, k)[un]
            else:
                W = np.zeros((un.size, k))
            w_self = loop[un][:, None]
            w_ext = ext[un][:, None]
            sig_new = sig_k + w_self + eta * (w_ext - W) + (1.0 - eta) * W
            lh_new = lh_k + w_self + w_ext / 2.0
            gain = _capped(sig_new, lh_new, lam) - _capped(sig_k, lh_k, lam)
            connected = W > 0.0
            masked = np.where(connected, gain, -np.inf)
            # Nodes touching no shard consider all of them (Alg. 1 l. 4-6).
            gain = np.where(connected.any(axis=1)[:, None], masked, gain)
            best = np.argmax(gain, axis=1)  # first max = min label
            rows = np.arange(un.size)
            g1 = gain[rows, best]
            if k > 1:
                runner = gain.copy()
                runner[rows, best] = -np.inf
                g2 = runner.max(axis=1)
            else:
                g2 = np.full(un.size, -np.inf)
            if waves > 64:
                comm[un] = best  # degenerate input: settle the tail
                break
            labels = comm[un]
            remaining = np.bincount(labels, minlength=nc)
            anchored = remaining[labels] < orig_size[labels]
            og = np.lexsort((un, -g1, labels))
            lab_s = labels[og]
            top = np.concatenate(([True], lab_s[1:] != lab_s[:-1]))
            is_top = np.zeros(un.size, dtype=bool)
            is_top[og[top]] = True
            active = np.flatnonzero(anchored | is_top)
            una = un[active]
            g1a = g1[active]
            g2a = g2[active]
            besta = best[active]
            # Shifted-state join gains, highest stale gain first.
            order = np.lexsort((una, -g1a))
            q = besta[order]
            lv = loop[una][order]
            ev = ext[una][order]
            w_q = W[active][order, q]
            d_sig = lv + eta * (ev - w_q) + (1.0 - eta) * w_q
            d_lh = lv + ev / 2.0
            re_eval = np.empty(una.size)
            oq = np.lexsort((-g1a[order], q))
            sq = sig_full[q[oq]] + _seg_excl_cumsum(q[oq], d_sig[oq])
            lq = lh_full[q[oq]] + _seg_excl_cumsum(q[oq], d_lh[oq])
            re_eval[oq] = _capped(sq + d_sig[oq], lq + d_lh[oq], lam) - _capped(
                sq, lq, lam
            )
            # Keep a node while its shard, as loaded by the wave's
            # earlier arrivals, still beats its runner-up shard.
            keep = re_eval >= g2a[order]
            if not keep.any():
                keep[0] = True
            sel = order[keep]
            comm[una[sel]] = besta[sel]
    sigma, lam_hat = _comm_caches(comm, k, src, dst, w, loop, once, eta)
    return comm, sigma, lam_hat, num_small


def _seg_excl_cumsum(gid: np.ndarray, vals: np.ndarray) -> np.ndarray:
    """Exclusive cumulative sum of ``vals`` within runs of equal ``gid``.

    ``gid`` must be sorted; element ``i`` gets the sum of the earlier
    elements of its own run (0 at each run start).
    """
    cs = np.cumsum(vals) - vals
    first = np.concatenate(([True], gid[1:] != gid[:-1]))
    seg = np.cumsum(first) - 1
    return cs - cs[first][seg]


def _filter_movers(
    cand: np.ndarray,
    best_q: np.ndarray,
    best_gain: np.ndarray,
    comm: np.ndarray,
    sigma: np.ndarray,
    lam_hat: np.ndarray,
    W: np.ndarray,
    loop: np.ndarray,
    ext: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    eta: float,
    lam: float,
) -> np.ndarray:
    """Drop movers whose gain evaporates once their batch-mates land.

    The sweep scores every node against the pre-sweep caches, so in a
    capacity-tight regime thousands of movers independently pick the
    same under-loaded shard and jointly overload it — each individually
    positive, the batch barely (or not at all) an improvement, and the
    sweep loop stalls an epsilon-exit away from a much better optimum.
    This re-evaluates each candidate *as if applied sequentially within
    its destination and its source* (descending gain, the order the
    batch is applied in): an exclusive running sum of the earlier
    movers' ``sigma``/``lam_hat`` deltas shifts the community state each
    candidate is scored against, Eq. 8 is re-evaluated at the shifted
    state, and only candidates whose join-plus-leave gain survives stay
    in the batch.

    Mover-mover edges get the same treatment: when two *connected*
    nodes both want to move, only the higher-gain endpoint moves this
    sweep — the other is re-scored next sweep with its neighbour's new
    home known.  The kept batch is therefore edge-disjoint, which makes
    every ``W`` row in it exact under the batch, and the shifted-state
    gains exactly the gains a sequential application in the same order
    would see (up to cross-coupling between one mover's source and
    another's destination).  The exact objective check in the caller
    remains the safety net.  Falls back to the single best mover (whose
    gain is exact) when it would drop everything.
    """
    rank = np.full(comm.size, -1, dtype=np.int64)
    rank[cand] = np.arange(cand.size)
    rs = rank[src]
    rd = rank[dst]
    both = (rs >= 0) & (rd >= 0)
    if both.any():
        losers = np.where(rs[both] > rd[both], src[both], dst[both])
        dropped = np.zeros(comm.size, dtype=bool)
        dropped[losers] = True
        cand = cand[~dropped[cand]]

    g = best_gain[cand]
    q = best_q[cand]
    p = comm[cand]
    lv = loop[cand]
    ev = ext[cand]
    w_q = W[cand, q]
    w_p = W[cand, p]
    d_sig_q = lv + eta * (ev - w_q) + (1.0 - eta) * w_q
    d_lh_q = lv + ev / 2.0
    d_sig_p = -lv - eta * (ev - w_p) + (eta - 1.0) * w_p
    d_lh_p = -lv - ev / 2.0

    join_re = np.empty(cand.size)
    oq = np.lexsort((-g, q))
    sq = sigma[q[oq]] + _seg_excl_cumsum(q[oq], d_sig_q[oq])
    lq = lam_hat[q[oq]] + _seg_excl_cumsum(q[oq], d_lh_q[oq])
    join_re[oq] = _capped(sq + d_sig_q[oq], lq + d_lh_q[oq], lam) - _capped(
        sq, lq, lam
    )

    leave_re = np.empty(cand.size)
    op = np.lexsort((-g, p))
    sp = sigma[p[op]] + _seg_excl_cumsum(p[op], d_sig_p[op])
    lp = lam_hat[p[op]] + _seg_excl_cumsum(p[op], d_lh_p[op])
    leave_re[op] = _capped(sp + d_sig_p[op], lp + d_lh_p[op], lam) - _capped(
        sp, lp, lam
    )

    keep = join_re + leave_re > 0.0
    if not keep.any():
        return cand[:1]
    return cand[keep]


def _optimise_vector(
    params: TxAlloParams,
    comm: np.ndarray,
    sigma: np.ndarray,
    lam_hat: np.ndarray,
    views: dict,
    n: int,
    epsilon: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Phase 2 (Algorithm 1, lines 10-19) as objective-checked batches."""
    k = params.k
    eta = params.eta
    lam = params.lam
    src, dst, w = views["src"], views["dst"], views["w"]
    loop, ext, once = views["loop"], views["ext"], views["once"]
    node_ids = np.arange(n)
    # Loop-invariant per-node terms of the closed-form cache deltas:
    # leaving p changes ``sigma_p`` by ``-(loop + eta*ext) + (2eta-1)*W[v,p]``
    # and joining q by the mirror image, so the (n, k) matrices below
    # reduce to rank-one updates of the weight matrix.
    a = loop + eta * ext
    b = loop + 0.5 * ext
    c1 = 2.0 * eta - 1.0
    sweeps = 0
    moves = 0
    obj = float(_capped(sigma, lam_hat, lam).sum())
    while sweeps < _GLOBAL_MAX_SWEEPS:
        sweeps += 1
        W = _weight_matrix(views, comm, n, k)
        thr = _capped(sigma, lam_hat, lam)  # per-community, reused below
        w_to_p = W[node_ids, comm]
        sig_p_new = sigma[comm] - a + c1 * w_to_p
        lh_p_new = lam_hat[comm] - b
        leave = _capped(sig_p_new, lh_p_new, lam) - thr[comm]
        sig_q_new = W * (-c1)
        sig_q_new += a[:, None]
        sig_q_new += sigma
        lh_q_new = b[:, None] + lam_hat
        gain = _capped(sig_q_new, lh_q_new, lam)
        gain += leave[:, None]
        gain -= thr
        # Eq. 9 candidates: communities the node connects to, minus its own.
        invalid = W <= 0.0
        invalid[node_ids, comm] = True
        gain[invalid] = -np.inf
        best_q = np.argmax(gain, axis=1)
        best_gain = gain[node_ids, best_q]
        movers = np.flatnonzero(best_gain > 0.0)
        if movers.size == 0:
            break
        # Candidates in descending-gain order (ties: smaller node id).
        order = np.lexsort((movers, -best_gain[movers]))
        cand = movers[order]
        cand = _filter_movers(
            cand, best_q, best_gain, comm, sigma, lam_hat, W, loop, ext, src, dst,
            eta, lam,
        )
        # Apply the batch; halve while the realised objective regresses
        # (the single top move is scored against the exact current
        # caches, so take=1 always improves).  The kept movers are
        # pairwise non-adjacent (_filter_movers drops one endpoint of
        # every mover-mover edge), so the closed-form per-move cache
        # deltas are exactly additive and each halving trial costs
        # O(batch + k) instead of a full O(E) recompute.
        d_sig_p = c1 * w_to_p - a
        d_lh_p = -b
        d_sig_q = a - c1 * W[node_ids, best_q]
        d_lh_q = b
        take = int(cand.size)
        while True:
            sel = cand[:take]
            sig2 = (
                sigma
                + np.bincount(comm[sel], weights=d_sig_p[sel], minlength=k)
                + np.bincount(best_q[sel], weights=d_sig_q[sel], minlength=k)
            )
            lh2 = (
                lam_hat
                + np.bincount(comm[sel], weights=d_lh_p[sel], minlength=k)
                + np.bincount(best_q[sel], weights=d_lh_q[sel], minlength=k)
            )
            obj2 = float(_capped(sig2, lh2, lam).sum())
            if obj2 > obj or take == 1:
                break
            take = max(1, take // 2)
        comm = comm.copy()
        comm[cand[:take]] = best_q[cand[:take]]
        sigma, lam_hat = sig2, lh2
        moves += take
        realised = obj2 - obj
        obj = obj2
        if realised < epsilon:
            break
    # Re-anchor the incrementally-maintained caches on one exact
    # recompute before handing them back (bounds float drift across
    # sweeps; same invariant the flat engine's final recompute keeps).
    sigma, lam_hat = _comm_caches(comm, k, src, dst, w, loop, once, eta)
    return comm, sigma, lam_hat, sweeps, moves


def _drain_capped(
    params: TxAlloParams,
    comm: np.ndarray,
    sigma: np.ndarray,
    lam_hat: np.ndarray,
    views: dict,
    n: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, bool]:
    """Large-neighbourhood move: pull an over-capacity shard back under.

    The sweeps hill-climb on single-node moves, and Eq. 3's capacity
    cliff hides the best configurations from them: once ``sigma_s``
    exceeds ``lam`` the shard's throughput degrades to the ratio term,
    and *no individual* eviction gets it back under — the gain of a
    collective drain only materialises on its last step, so every
    intermediate state scores negative and sequential search never goes
    there (observed: the fast backend keeps a clean under-capacity
    shard worth several percent of objective that the batched sweeps
    always cap).  For each capped shard this tries the collective move
    directly: eject the members whose departure *lowers* ``sigma_s``
    most per step — the weakly-attached, high-``ext`` nodes; removing a
    strongly-internal node raises ``sigma`` since its intra edges
    become cut — in one batch, just enough of them to cross back under
    ``lam``, each rehomed to its best-connected other shard, and keeps
    the batch only when the exactly recomputed objective improves.
    """
    k = params.k
    eta = params.eta
    lam = params.lam
    src, dst, w = views["src"], views["dst"], views["w"]
    loop, ext, once = views["loop"], views["ext"], views["once"]
    obj = float(_capped(sigma, lam_hat, lam).sum())
    moves = 0
    improved = False
    capped_ids = np.flatnonzero(sigma > lam)
    if capped_ids.size == 0 or k < 2:
        return comm, sigma, lam_hat, moves, improved
    W = _weight_matrix(views, comm, n, k)
    # Heaviest shards first, and at most a handful per call: the drain
    # is a rescue move, not a sweep — bounding the exact-recompute
    # trials keeps the no-op case cheap.
    for s in capped_ids[np.argsort(-sigma[capped_ids], kind="stable")][:8]:
        members = np.flatnonzero(comm == s)
        if members.size <= 1 or k < 2:
            continue
        w_to_s = W[members, s]
        d_sig = -loop[members] - eta * (ext[members] - w_to_s) + (eta - 1.0) * w_to_s
        draining = d_sig < 0.0
        if not draining.any():
            continue
        cand = members[draining]
        dd = d_sig[draining]
        order = np.argsort(dd, kind="stable")  # most draining first
        csum = np.cumsum(dd[order])
        need = np.searchsorted(-csum, sigma[s] - lam)
        if need >= cand.size:
            continue  # shard cannot be drained under capacity
        eject = cand[order][: need + 1]
        w_other = W[eject].copy()
        w_other[:, s] = -1.0
        dest = np.argmax(w_other, axis=1)
        # Disconnected ejects would land on shard 0 by argmax; send
        # them to the lightest shard instead.
        unconnected = w_other[np.arange(eject.size), dest] <= 0.0
        if unconnected.any():
            others = np.flatnonzero(np.arange(k) != s)
            dest[unconnected] = others[np.argmin(sigma[others])]
        trial = comm.copy()
        trial[eject] = dest
        sig2, lh2 = _comm_caches(trial, k, src, dst, w, loop, once, eta)
        obj2 = float(_capped(sig2, lh2, lam).sum())
        if obj2 > obj:
            comm, sigma, lam_hat, obj = trial, sig2, lh2, obj2
            moves += int(eject.size)
            improved = True
            W = _weight_matrix(views, comm, n, k)
    return comm, sigma, lam_hat, moves, improved


def _carve_capped(
    params: TxAlloParams,
    comm: np.ndarray,
    sigma: np.ndarray,
    lam_hat: np.ndarray,
    views: dict,
    n: int,
    cores: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, bool]:
    """Large-neighbourhood move: keep one tight core, spill the rest.

    The complement of :func:`_drain_capped`.  Draining fails when an
    over-capacity shard has no weakly-attached members to shed — every
    eviction *raises* ``sigma`` because internal edges become cut.  The
    configurations the sequential backends find in those cells have the
    opposite shape: one small, tightly-knit community sits alone in the
    shard, safely under ``lam`` and contributing its full ``lam_hat``,
    while everything else concentrates in the neighbouring shards whose
    ``lam_hat/sigma`` ratio stays high.  Reaching that state from a
    balanced capped split is a collective move no single-node step
    scores positively, so for each capped shard this tries it directly:
    pick a candidate core among the Louvain communities represented in
    the shard (ranked by internal weight), move *all other members* to
    their best-connected other shard in one batch, and keep the carve
    only when the exactly recomputed objective improves.

    Both sides of the cliff are tried: carving the capped shard itself
    (keep the core under ``lam``, dump the rest elsewhere) and carving
    its *under-capacity* neighbours (tighten them, pushing their
    periphery into the capped shard, whose ratio term improves as cut
    edges become internal).  The exact-objective acceptance decides
    which — sequential search can't, because every intermediate state
    scores negative.
    """
    k = params.k
    eta = params.eta
    lam = params.lam
    src, dst, w = views["src"], views["dst"], views["w"]
    loop, once = views["loop"], views["once"]
    if k < 2 or cores.size == 0:
        return comm, sigma, lam_hat, 0, False
    num_cores = int(cores.max()) + 1
    obj = float(_capped(sigma, lam_hat, lam).sum())
    moves = 0
    improved = False
    W = None
    shard_ids = np.arange(k)
    trials_left = 16  # bound the exact-recompute budget per call
    # The heaviest few capped shards first, then the heaviest few
    # under-capacity ones while anything stays capped — the carve is a
    # rescue move for the deep-cliff cells, so a narrow scan keeps the
    # common no-op case cheap.
    capped_ids = np.flatnonzero(sigma > lam)
    under_ids = np.flatnonzero(sigma <= lam)
    scan = np.concatenate([
        capped_ids[np.argsort(-sigma[capped_ids], kind="stable")][:3],
        under_ids[np.argsort(-sigma[under_ids], kind="stable")][:3],
    ])
    for s in scan:
        if trials_left <= 0 or not (sigma > lam).any():
            break
        mem_mask = comm == s
        members = np.flatnonzero(mem_mask)
        if members.size <= 1:
            continue
        # Internal weight of each Louvain core restricted to this shard:
        # loops plus the edges with both endpoints in the shard and the
        # same core label (counted once).
        internal = np.bincount(
            cores[members], weights=loop[members], minlength=num_cores
        )
        if src.size:
            em = mem_mask[src] & mem_mask[dst] & (cores[src] == cores[dst]) & once
            internal += np.bincount(
                cores[src[em]], weights=w[em], minlength=num_cores
            )
        present = np.flatnonzero(np.bincount(cores[members], minlength=num_cores))
        cand_labels = present[np.argsort(-internal[present], kind="stable")][:4]
        if W is None:
            W = _weight_matrix(views, comm, n, k)
        others = shard_ids[shard_ids != s]
        lightest = others[np.argmin(sigma[others])]

        def _rehome(spill):
            # Each spilled node goes to its best-connected *other*
            # shard; disconnected ones to the lightest.
            w_other = W[spill].copy()
            w_other[:, s] = -1.0
            dest = np.argmax(w_other, axis=1)
            unconnected = w_other[np.arange(spill.size), dest] <= 0.0
            if unconnected.any():
                dest[unconnected] = lightest
            return dest

        # Trial batch moves, cheapest structural fix first: dissolve
        # the whole shard node-by-node, merge it wholesale into its
        # strongest neighbour, then the keep-one-core carves.
        trials = [(members, _rehome(members))]
        cut_to = W[members].sum(axis=0)
        cut_to[s] = -1.0
        strongest = int(np.argmax(cut_to))
        trials.append(
            (members, np.full(members.size, strongest if cut_to[strongest] > 0 else lightest))
        )
        for c in cand_labels:
            spill = np.flatnonzero(mem_mask & (cores != c))
            if 0 < spill.size < members.size:
                trials.append((spill, _rehome(spill)))

        for spill, dest in trials:
            if trials_left <= 0:
                break
            trials_left -= 1
            trial = comm.copy()
            trial[spill] = dest
            sig2, lh2 = _comm_caches(trial, k, src, dst, w, loop, once, eta)
            obj2 = float(_capped(sig2, lh2, lam).sum())
            if obj2 > obj:
                comm, sigma, lam_hat, obj = trial, sig2, lh2, obj2
                moves += int(spill.size)
                improved = True
                W = _weight_matrix(views, comm, n, k)
                break
    return comm, sigma, lam_hat, moves, improved


def _initialise_seq(
    params: TxAlloParams,
    comm: np.ndarray,
    num_comms: int,
    views: dict,
    csr,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Phase 1 with the *sequential* absorption the flat engine uses.

    The batched waves of :func:`_initialise_vector` make absorption
    decisions against per-wave caches; the fast backend instead absorbs
    the small-community nodes one at a time in ascending id order, each
    against fully-current caches.  The two trajectories land in
    different basins, and neither dominates across the (k, eta) grid —
    so the vector backend runs both (see :func:`g_txallo_vector`) and
    keeps whichever polishes out better.  The community caches are
    pre-computed here as numpy bincounts so :func:`_initialise_flat`
    skips its Python edge walk; only the small-node loop itself runs
    sequentially.
    """
    from repro.core.engine import _initialise_flat

    src, dst, w = views["src"], views["dst"], views["w"]
    loop, once = views["loop"], views["once"]
    intra = np.bincount(comm, weights=loop, minlength=num_comms)
    if src.size:
        same = comm[src] == comm[dst]
        m_in = same & once
        intra += np.bincount(comm[src[m_in]], weights=w[m_in], minlength=num_comms)
        cut = np.bincount(comm[src[~same]], weights=w[~same], minlength=num_comms)
    else:
        cut = np.zeros(num_comms)
    flat, num_small = _initialise_flat(
        csr, params, comm.tolist(), num_comms, (intra.tolist(), cut.tolist())
    )
    return (
        np.asarray(flat.comm, dtype=np.int64),
        np.asarray(flat.sigma, dtype=np.float64),
        np.asarray(flat.lam_hat, dtype=np.float64),
        num_small,
    )


def _polish(
    params: TxAlloParams,
    comm: np.ndarray,
    sigma: np.ndarray,
    lam_hat: np.ndarray,
    views: dict,
    n: int,
    csr,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Phase 2: batched sweeps alternated with the capacity-cliff moves.

    Runs the sweep loop to convergence, then alternates the
    large-neighbourhood moves (drain, then carve) with fresh sweep
    passes until neither finds anything (bounded: each round must
    strictly improve the exact objective to continue).
    """
    comm, sigma, lam_hat, sweeps, moves = _optimise_vector(
        params, comm, sigma, lam_hat, views, n, params.epsilon
    )
    cores = None
    for _round in range(4):
        comm, sigma, lam_hat, d_moves, drained = _drain_capped(
            params, comm, sigma, lam_hat, views, n
        )
        carved = False
        c_moves = 0
        if (sigma > params.lam).any():
            if cores is None:
                # Memoised per snapshot — free on the default path,
                # one extra Louvain run on warm starts.
                from repro.core.engine import louvain_flat

                cores = np.asarray(louvain_flat(csr), dtype=np.int64)
            comm, sigma, lam_hat, c_moves, carved = _carve_capped(
                params, comm, sigma, lam_hat, views, n, cores
            )
        if not (drained or carved):
            break
        moves += d_moves + c_moves
        comm, sigma, lam_hat, extra_sweeps, extra_moves = _optimise_vector(
            params, comm, sigma, lam_hat, views, n, params.epsilon
        )
        sweeps += extra_sweeps
        moves += extra_moves
    return comm, sigma, lam_hat, sweeps, moves


def g_txallo_vector(
    graph: TransactionGraph,
    params: TxAlloParams,
    initial_partition: Optional[Dict[Node, int]] = None,
    node_order: Optional[Sequence[Node]] = None,
) -> Tuple[Allocation, int, int, int, int, float, float]:
    """Algorithm 1 on the numpy kernels (registry 7-tuple, like
    :func:`repro.core.engine.g_txallo_flat`).

    ``node_order`` is accepted for signature compatibility and ignored:
    the batched sweeps have no visit order (see the module docstring).
    """
    t0 = time.perf_counter()
    csr = graph.freeze()
    n = csr.num_nodes
    k = params.k

    if n < MIN_VECTOR_NODES:
        # Under the batch-size crossover: the flat engine is as fast
        # and byte-identical to the reference — delegate wholesale.
        from repro.core.engine import g_txallo_flat

        return g_txallo_flat(
            graph, params, initial_partition=initial_partition,
            node_order=node_order, warm=False,
        )

    if n == 0:
        alloc = Allocation.from_partition(graph, params, {}, num_communities=k)
        t1 = time.perf_counter()
        return alloc, 0, 0, 0, 0, t1 - t0, 0.0

    if initial_partition is None:
        # Seed from the flat engine's (memoised, sequential) Louvain:
        # it is both faster than the synchronous segment-op rounds of
        # :func:`louvain_vector` and — being the exact partition the
        # fast backend seeds from — keeps the polished objective inside
        # the gate (the batched rounds reach the same modularity but a
        # different community structure, which costs several percent of
        # capped throughput in the tight-capacity cells).
        from repro.core.engine import louvain_flat

        comm = np.asarray(louvain_flat(csr), dtype=np.int64)
        num_louvain = int(comm.max()) + 1 if n else 0
    else:
        from repro.core.engine import _lower_partition

        num_louvain = 1 + max(initial_partition.values(), default=-1)
        comm = np.asarray(
            _lower_partition(csr, initial_partition, num_louvain), dtype=np.int64
        )

    views = _edge_views(csr)
    if num_louvain > k:
        comm, sigma, lam_hat, num_small = _initialise_seq(
            params, comm, num_louvain, views, csr
        )
    else:
        comm, sigma, lam_hat, num_small = _initialise_vector(
            params, comm, num_louvain, views, n
        )
    t1 = time.perf_counter()

    comm, sigma, lam_hat, sweeps, moves = _polish(
        params, comm, sigma, lam_hat, views, n, csr
    )
    t2 = time.perf_counter()

    mapping = {v: int(c) for v, c in zip(csr.nodes, comm)}
    alloc = Allocation._from_compiled(
        graph, params, mapping, sigma.tolist(), lam_hat.tolist()
    )
    return alloc, num_louvain, num_small, sweeps, moves, t1 - t0, t2 - t1
