"""Shared fixtures for the benchmark suite.

One session-scoped workload is shared by every figure benchmark.  The
scale is chosen so the whole suite finishes in a few minutes while every
comparative shape of the paper still holds; crank ``BENCH_SCALE`` up via
the environment to stress the allocators.

Each ``bench_fig*.py`` file does two things:

* prints the regenerated figure (tables + ASCII charts) so the run's
  stdout is the reproduction artefact; and
* registers a pytest-benchmark measurement of the figure's core
  computation, plus shape assertions tying the output to the paper's
  qualitative claims.
"""

from __future__ import annotations

import os

import pytest

# Pin BLAS/OpenMP thread counts before any repro import can pull numpy
# in: bench timings must not be skewed by library-level oversubscription
# (the multi-core layer owns its parallelism explicitly — see
# repro.core.parallel).  The import is deliberately placed ahead of
# repro.eval below.
from repro.core.parallel import blas_threads_pinned, pin_blas_threads

pin_blas_threads()

from repro.eval import experiments  # noqa: E402

BENCH_SCALE = float(os.environ.get("BENCH_SCALE", "0.5"))
#: TxAllo engine backend for the whole suite ("fast"/"reference" are
#: byte-identical, so figures cannot depend on that choice; "turbo" may
#: shift figures within its documented objective tolerance).
BENCH_BACKEND = os.environ.get("BENCH_BACKEND", "fast")
BENCH_KS = (2, 10, 20, 40, 60)
BENCH_ETAS = (2.0, 6.0, 10.0)


def pytest_addoption(parser):
    """``--scale`` mirrors the run-table scripts' flag (beats the env).

    Consumed via the ``bench_scale`` fixture by the figure benchmarks
    *and* the ``test_*_run_table`` gate tests — note the latter then
    rewrite their committed ``BENCH_*.json`` at that scale, exactly as
    the env var always did.
    """
    parser.addoption(
        "--scale", action="store", type=float, default=None,
        help=f"workload scale factor (default: BENCH_SCALE env or {BENCH_SCALE})",
    )


@pytest.fixture(autouse=True)
def _assert_blas_pinned():
    """Every bench test runs under an explicit BLAS/OpenMP thread pin.

    The pin itself happens at module import above (before numpy loads);
    this just fails loudly if some future import shuffle drops it.
    """
    assert blas_threads_pinned(), (
        "BLAS/OpenMP thread knobs are unpinned — pin_blas_threads() must "
        "run at benchmarks/conftest.py import, before numpy loads"
    )
    yield


@pytest.fixture(scope="session")
def bench_scale(request) -> float:
    option = request.config.getoption("--scale")
    return BENCH_SCALE if option is None else option


@pytest.fixture(scope="session")
def workload(bench_scale):
    return experiments.build_workload(scale=bench_scale, seed=2022)


@pytest.fixture(scope="session")
def sweep_records(workload):
    """The shared (method x k x eta) grid behind Figs. 2,3,5,6,7,8."""
    return experiments.sweep(
        workload, ks=BENCH_KS, etas=BENCH_ETAS, backend=BENCH_BACKEND
    )
