"""Experiment runners for every figure of the paper's evaluation.

Each ``figure*`` function reproduces one figure of Section VI on a
synthetic Ethereum-like workload (see :mod:`repro.data.synthetic` for the
substitution rationale) and returns raw data plus a ``render()``-able
report.  The benchmark suite (``benchmarks/``) and the CLI both drive
these runners; EXPERIMENTS.md records paper-vs-measured shapes.

Scale: the paper uses 91.8M transactions; the default here is ~60k
(``scale=1.0``), which preserves every comparative shape while running on
a laptop.  Pass a larger ``scale`` to stress the allocators.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import allocators
from repro.chain.faults import FaultPlan
from repro.chain.live import LiveReport, LiveShardedNetwork
from repro.core.allocator import OnlineAllocator
from repro.core.resilience import ResilientAllocator
from repro.core.controller import TxAlloController
from repro.core.graph import TransactionGraph
from repro.core.gtxallo import g_txallo
from repro.core.metrics import (
    average_latency,
    evaluate_allocation,
    workload_balance,
    worst_case_latency,
)
from repro.core.params import TxAlloParams
from repro.data.stream import BlockStream
from repro.data.synthetic import (
    DatasetCard,
    EthereumWorkloadGenerator,
    WorkloadConfig,
    account_sets,
    make_workload_generator,
)
from repro.errors import ParameterError
from repro.eval.reporting import ascii_bar_chart, ascii_line_chart, format_table

#: Canonical method names, in the paper's legend order.  Any name known
#: to :mod:`repro.allocators` works wherever these do.
METHODS = ("txallo", "random", "metis", "shard_scheduler")

METHOD_LABELS = {
    "txallo": "Our Method",
    "txallo_online": "Our Method (online)",
    "random": "Random",
    "prefix": "Prefix",
    "metis": "Metis",
    "shard_scheduler": "Shard Scheduler",
}


def method_label(method: str) -> str:
    """Legend label for a method; registered names fall back to themselves."""
    return METHOD_LABELS.get(method, method)

#: The paper sweeps k in [2, 60] and eta in {2,..,10}; these defaults keep
#: bench runtime sane while covering the same range.
DEFAULT_KS = (2, 10, 20, 40, 60)
DEFAULT_ETAS = (2.0, 4.0, 6.0, 8.0, 10.0)


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Workload:
    """A materialised workload: transactions plus derived views."""

    config: WorkloadConfig
    generator: EthereumWorkloadGenerator
    account_sets: List[tuple]
    graph: TransactionGraph
    blocks: BlockStream
    card: DatasetCard
    #: Registered workload-zoo topology this workload was built from.
    topology: str = "ethereum"

    @property
    def num_transactions(self) -> int:
        return len(self.account_sets)


def build_workload(
    scale: float = 1.0,
    seed: int = 2022,
    topology: str = "ethereum",
    **overrides,
) -> Workload:
    """Generate the evaluation workload at a given scale.

    ``scale`` multiplies both the account and transaction counts of the
    default configuration; other :class:`WorkloadConfig` fields can be
    overridden by keyword.  ``topology`` names a registered workload-zoo
    generator (:func:`repro.data.synthetic.workload_names`); the default
    is the paper's Ethereum-like baseline.
    """
    if scale <= 0:
        raise ParameterError(f"scale must be positive, got {scale!r}")
    base = WorkloadConfig()
    config = dataclasses.replace(
        base,
        num_accounts=max(100, int(base.num_accounts * scale)),
        num_transactions=max(1000, int(base.num_transactions * scale)),
        seed=seed,
        **overrides,
    )
    generator = make_workload_generator(topology, config)
    transactions = generator.generate()
    sets_ = account_sets(transactions)
    graph = TransactionGraph()
    for s in sets_:
        graph.add_transaction(s)
    blocks = BlockStream(list(generator.blocks()))
    card = generator.dataset_card(transactions)
    return Workload(
        config=config,
        generator=generator,
        account_sets=sets_,
        graph=graph,
        blocks=blocks,
        card=card,
        topology=topology,
    )


# ----------------------------------------------------------------------
# Method runners
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class MethodMetrics:
    """All Section III-B metrics for one (method, k, eta) cell."""

    method: str
    k: int
    eta: float
    cross_shard_ratio: float
    workload_balance: float
    throughput_x: float
    avg_latency: float
    worst_latency: float
    runtime_seconds: float
    normalized_workloads: Tuple[float, ...]


class _MappingCache:
    """Caches eta-independent static mappings (hash, METIS) across the sweep.

    Registry-driven: any entry flagged ``eta_independent`` is computed
    once per ``k`` and reused for every eta panel, with the first run's
    wall-clock reported for each reuse (the mapping is what's shared,
    not the work).

    ``preloaded`` seeds the cache from another process: the parallel
    grid (:mod:`repro.core.parallel`) computes every eta-independent
    mapping once in the parent, ``export()``\\ s the cache, and ships it
    to the pool workers so fan-out never recomputes METIS/prefix per
    worker.
    """

    def __init__(
        self,
        preloaded: Optional[Dict[Tuple[str, int], Tuple[dict, float]]] = None,
    ) -> None:
        self._cache: Dict[Tuple[str, int], Tuple[dict, float]] = dict(preloaded or {})

    def export(self) -> Dict[Tuple[str, int], Tuple[dict, float]]:
        """A picklable snapshot of the cache, for seeding worker processes."""
        return dict(self._cache)

    def mapping_for(
        self,
        entry: "allocators.AllocatorEntry",
        workload: Workload,
        params: TxAlloParams,
    ) -> Tuple[dict, float]:
        key = (entry.name, params.k)
        if not entry.eta_independent or key not in self._cache:
            allocator = entry.factory()
            t0 = time.perf_counter()
            mapping = allocator.allocate(workload.graph, params)
            timed = (mapping, time.perf_counter() - t0)
            if not entry.eta_independent:
                return timed
            self._cache[key] = timed
        return self._cache[key]


def run_method(
    method: str,
    workload: Workload,
    params: TxAlloParams,
    cache: Optional[_MappingCache] = None,
) -> MethodMetrics:
    """Run one registered allocator at one (k, eta) setting and measure it.

    ``method`` is any name :mod:`repro.allocators` knows.  Static
    allocators are evaluated analytically over their final mapping;
    online allocators replay the chronological stream with
    processing-time accounting (``run_stream``), exactly the paper's
    treatment of the Shard Scheduler.
    """
    entry = allocators.get_entry(method)
    lam = params.lam
    if entry.kind == "online":
        # Online method: metrics accumulate at processing time.
        allocator: OnlineAllocator = allocators.get(method, params=params)
        t0 = time.perf_counter()
        result = allocator.run_stream(workload.account_sets)
        runtime = time.perf_counter() - t0
        return MethodMetrics(
            method=method,
            k=params.k,
            eta=params.eta,
            cross_shard_ratio=result.cross_shard_ratio,
            workload_balance=workload_balance(result.shard_loads, lam),
            throughput_x=result.throughput(lam) / lam,
            avg_latency=average_latency(result.shard_loads, lam),
            worst_latency=worst_case_latency(result.shard_loads, lam),
            runtime_seconds=runtime,
            normalized_workloads=tuple(s / lam for s in result.shard_loads),
        )

    cache = cache or _MappingCache()
    mapping, runtime = cache.mapping_for(entry, workload, params)
    report = evaluate_allocation(workload.account_sets, mapping, params)
    return MethodMetrics(
        method=method,
        k=params.k,
        eta=params.eta,
        cross_shard_ratio=report.cross_shard_ratio,
        workload_balance=report.workload_balance,
        throughput_x=report.normalized_throughput,
        avg_latency=report.average_latency,
        worst_latency=report.worst_case_latency,
        runtime_seconds=runtime,
        normalized_workloads=tuple(s / lam for s in report.shard_workloads),
    )


def sweep(
    workload: Workload,
    ks: Sequence[int] = DEFAULT_KS,
    etas: Sequence[float] = DEFAULT_ETAS,
    methods: Sequence[str] = METHODS,
    backend: str = "fast",
    workers: int = 1,
) -> List[MethodMetrics]:
    """The full (method x k x eta) grid behind Figs. 2, 3, 5, 6, 7, 8.

    ``backend`` names a tier in the engine-backend registry
    (:mod:`repro.core.backends`); with ``"fast"`` the whole grid shares
    one frozen CSR graph and one memoised Louvain partition, which is
    where most of the engine's end-to-end win comes from.
    ``"reference"`` is byte-identical to ``"fast"``; ``"turbo"`` and
    ``"vector"`` (the optional numpy tier — it amortises the same frozen
    CSR and adds batched sweeps at large N, falling back to ``"fast"``
    when numpy is absent) may shift TxAllo's cells within the registry's
    documented objective tolerance.

    ``workers > 1`` fans the independent cells out to a process pool
    (:func:`repro.core.parallel.run_grid`) with the shared freeze,
    Louvain memo and eta-independent mappings computed once in the
    parent.  Records come back in the same canonical (eta, k, method)
    order and are identical to a ``workers=1`` run up to the
    ``runtime_seconds`` timing field; platforms without ``fork`` fall
    back to the sequential path.
    """
    cells = [
        (method, k, eta) for eta in etas for k in ks for method in methods
    ]
    if workers > 1:
        from repro.core.parallel import run_grid

        return run_grid(workload, cells, backend=backend, workers=workers)
    cache = _MappingCache()
    records: List[MethodMetrics] = []
    for method, k, eta in cells:
        params = TxAlloParams.with_capacity_for(
            workload.num_transactions, k=k, eta=eta, backend=backend
        )
        records.append(run_method(method, workload, params, cache))
    return records


# ----------------------------------------------------------------------
# Figure-shaped views over sweep records
# ----------------------------------------------------------------------
@dataclasses.dataclass
class FigureSeries:
    """One paper figure: per-eta panels of per-method (k, value) curves."""

    figure: str
    metric: str
    panels: Dict[float, Dict[str, List[Tuple[float, float]]]]

    def panel(self, eta: float) -> Dict[str, List[Tuple[float, float]]]:
        return self.panels[eta]

    def value(self, eta: float, method: str, k: int) -> float:
        label = method_label(method)
        for x, y in self.panels[eta][label]:
            if x == k:
                return y
        raise KeyError(f"no ({method}, k={k}) point in panel eta={eta}")

    def render(self) -> str:
        chunks = [f"== {self.figure}: {self.metric} =="]
        for eta, series in sorted(self.panels.items()):
            chunks.append(
                ascii_line_chart(
                    series,
                    title=f"-- eta = {eta:g} --",
                )
            )
            headers = ["k"] + [name for name in series]
            ks = sorted({x for pts in series.values() for x, _ in pts})
            rows = []
            for k in ks:
                row: List[object] = [int(k)]
                for name in series:
                    val = dict(series[name]).get(k, float("nan"))
                    row.append(val)
                rows.append(row)
            chunks.append(format_table(headers, rows))
        return "\n\n".join(chunks)


def _series_from_records(
    records: Iterable[MethodMetrics],
    figure: str,
    metric: str,
    getter,
) -> FigureSeries:
    panels: Dict[float, Dict[str, List[Tuple[float, float]]]] = {}
    for rec in records:
        panel = panels.setdefault(rec.eta, {})
        label = method_label(rec.method)
        panel.setdefault(label, []).append((float(rec.k), getter(rec)))
    for panel in panels.values():
        for pts in panel.values():
            pts.sort()
    return FigureSeries(figure=figure, metric=metric, panels=panels)


def figure2(records: Iterable[MethodMetrics]) -> FigureSeries:
    """Fig. 2 — cross-shard transaction ratio vs. k, per eta."""
    return _series_from_records(
        records, "Figure 2", "cross-shard transaction ratio",
        lambda r: r.cross_shard_ratio,
    )


def figure3(records: Iterable[MethodMetrics]) -> FigureSeries:
    """Fig. 3 — workload balance (std of sigma_i / lambda) vs. k, per eta."""
    return _series_from_records(
        records, "Figure 3", "workload balance (rho)",
        lambda r: r.workload_balance,
    )


def figure5(records: Iterable[MethodMetrics]) -> FigureSeries:
    """Fig. 5 — normalised system throughput (times) vs. k, per eta."""
    return _series_from_records(
        records, "Figure 5", "throughput improvement (x)",
        lambda r: r.throughput_x,
    )


def figure6(records: Iterable[MethodMetrics]) -> FigureSeries:
    """Fig. 6 — average confirmation latency (blocks) vs. k, per eta."""
    return _series_from_records(
        records, "Figure 6", "average latency (blocks)",
        lambda r: r.avg_latency,
    )


def figure7(records: Iterable[MethodMetrics]) -> FigureSeries:
    """Fig. 7 — worst-case latency (blocks) vs. k, per eta."""
    return _series_from_records(
        records, "Figure 7", "worst-case latency (blocks)",
        lambda r: r.worst_latency,
    )


def figure8(records: Iterable[MethodMetrics]) -> FigureSeries:
    """Fig. 8 — allocator running time (seconds) vs. k, per eta."""
    return _series_from_records(
        records, "Figure 8", "running time (s)",
        lambda r: r.runtime_seconds,
    )


# ----------------------------------------------------------------------
# Figure 1 — dataset card
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Figure1Report:
    """Fig. 1 stand-in: the structural facts instead of a scatter plot."""

    card: DatasetCard
    degree_histogram: List[Tuple[int, int]]

    def render(self) -> str:
        lines = [
            "== Figure 1: dataset structure ==",
            f"transactions:        {self.card.num_transactions}",
            f"active accounts:     {self.card.num_accounts}",
            f"top account share:   {self.card.top_account_share:.1%}"
            "  (paper: ~11% of transactions on the most active account)",
            f"top-10 share:        {self.card.top10_account_share:.1%}",
            f"self-loop ratio:     {self.card.self_loop_ratio:.2%}",
            f"multi-IO ratio:      {self.card.multi_io_ratio:.2%}",
            f"accounts per tx:     {self.card.mean_accounts_per_tx:.2f}",
            "degree histogram (long tail):",
        ]
        total = sum(c for _, c in self.degree_histogram) or 1
        for bound, count in self.degree_histogram:
            bar = "#" * max(1, int(50 * count / total)) if count else ""
            lines.append(f"  degree <= {bound:>6}: {count:>8} {bar}")
        return "\n".join(lines)


def figure1(workload: Workload) -> Figure1Report:
    return Figure1Report(
        card=workload.card,
        degree_histogram=workload.graph.degree_histogram(),
    )


# ----------------------------------------------------------------------
# Figure 4 — workload distribution case study
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Figure4Report:
    """Per-shard normalised workloads for each method (k=20, eta=2)."""

    k: int
    eta: float
    distributions: Dict[str, Tuple[float, ...]]

    def render(self) -> str:
        chunks = [f"== Figure 4: workload distribution (k={self.k}, eta={self.eta:g}) =="]
        for method, dist in self.distributions.items():
            ordered = tuple(sorted(dist, reverse=True))
            chunks.append(
                ascii_bar_chart(
                    ordered,
                    labels=[str(i) for i in range(len(ordered))],
                    title=f"-- {method} --",
                    reference=1.0,
                )
            )
        return "\n\n".join(chunks)


def figure4(
    workload: Workload,
    k: int = 20,
    eta: float = 2.0,
    methods: Sequence[str] = METHODS,
    backend: str = "fast",
    workers: int = 1,
) -> Figure4Report:
    """Fig. 4 case study; ``workers > 1`` runs the methods through the
    process-parallel grid (identical distributions, wall-clock only)."""
    if workers > 1:
        from repro.core.parallel import run_grid

        cells = [(m, k, eta) for m in methods]
        records = run_grid(workload, cells, backend=backend, workers=workers)
        distributions = {
            method_label(rec.method): rec.normalized_workloads for rec in records
        }
        return Figure4Report(k=k, eta=eta, distributions=distributions)
    params = TxAlloParams.with_capacity_for(
        workload.num_transactions, k=k, eta=eta, backend=backend
    )
    cache = _MappingCache()
    distributions = {
        method_label(m): run_method(m, workload, params, cache).normalized_workloads
        for m in methods
    }
    return Figure4Report(k=k, eta=eta, distributions=distributions)


# ----------------------------------------------------------------------
# Figures 9 & 10 — the adaptive pipeline
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class AdaptiveStep:
    """One time step of the adaptive evolution experiment."""

    step: int
    kind: str             # "global" or "adaptive"
    throughput_x: float   # normalised throughput on this step's window
    runtime_seconds: float


@dataclasses.dataclass
class AdaptiveRun:
    """One policy's trajectory over the evaluation stream."""

    policy: str
    steps: List[AdaptiveStep]

    @property
    def mean_throughput(self) -> float:
        if not self.steps:
            return 0.0
        return sum(s.throughput_x for s in self.steps) / len(self.steps)

    @property
    def mean_adaptive_runtime(self) -> float:
        adaptive = [s.runtime_seconds for s in self.steps if s.kind == "adaptive"]
        if not adaptive:
            return 0.0
        return sum(adaptive) / len(adaptive)


@dataclasses.dataclass
class Figure9Report:
    """Fig. 9 — throughput evolution for various global updating gaps."""

    k: int
    eta: float
    runs: Dict[str, AdaptiveRun]

    def render(self) -> str:
        series = {
            name: [(float(s.step), s.throughput_x) for s in run.steps]
            for name, run in self.runs.items()
        }
        chart = ascii_line_chart(
            series,
            title=f"== Figure 9: throughput evolution (k={self.k}, eta={self.eta:g}) ==",
        )
        rows = [
            (name, run.mean_throughput, run.mean_adaptive_runtime)
            for name, run in self.runs.items()
        ]
        table = format_table(
            ["policy", "avg throughput (x)", "avg adaptive runtime (s)"], rows
        )
        return chart + "\n\n" + table


def _replay_policy(
    policy: str,
    global_gap: int,
    train_graph: TransactionGraph,
    base_mapping: dict,
    eval_windows: List[BlockStream],
    params: TxAlloParams,
) -> AdaptiveRun:
    """Replay the evaluation stream under one update policy.

    ``global_gap`` is the number of adaptive steps between G-TxAllo
    refreshes; 1 means "pure global" (G-TxAllo every step); 0 disables
    global refreshes entirely (pure adaptive).

    Each window is one controller block with ``τ₁ = 1`` and
    ``τ₂ = global_gap``, so Figs. 9-10 exercise **the same
    TxAlloController code path the live network runs** — the old
    hand-rolled adaptive/global loop this replaces is gone, not hidden.
    Only the per-window throughput evaluation stays here (it is
    measurement, not allocation).
    """
    controller = TxAlloController(
        params.replace(tau1=1, tau2=max(1, global_gap)),
        graph=train_graph.copy(),
        initial_mapping=base_mapping,
        global_enabled=global_gap > 0,
    )
    steps: List[AdaptiveStep] = []
    for index, window in enumerate(eval_windows):
        window_sets = window.account_sets()
        event = controller.observe_block(window_sets)
        window_lam = max(1.0, len(window_sets) / params.k)
        window_params = params.replace(lam=window_lam)
        report = evaluate_allocation(window_sets, controller.allocation, window_params)
        steps.append(
            AdaptiveStep(
                step=index,
                kind=event.kind,
                throughput_x=report.normalized_throughput,
                runtime_seconds=event.seconds,
            )
        )
    return AdaptiveRun(policy=policy, steps=steps)


def figure9(
    workload: Workload,
    k: int = 20,
    eta: float = 2.0,
    gaps: Sequence[int] = (20, 40, 100, 200),
    window_blocks: int = 0,
    split_ratio: float = 0.9,
    max_steps: int = 0,
    backend: str = "fast",
    workers: int = 1,
) -> Figure9Report:
    """Fig. 9: A-TxAllo throughput evolution for several global gaps.

    ``window_blocks`` is the adaptive period τ₁ in blocks (0 = auto so the
    evaluation stream yields ~40 windows); ``max_steps`` truncates the
    stream (0 = use all windows).  The paper's τ₁ is 300 blocks (≈1 hour).
    ``workers`` lands in :attr:`TxAlloParams.workers`: workers-aware
    backends (``"parallel"``) thread their adaptive window sweeps, all
    others ignore it.
    """
    train, evaluation = workload.blocks.split(split_ratio)
    if window_blocks <= 0:
        window_blocks = max(1, len(evaluation) // 40)
    windows = list(evaluation.windows(window_blocks))
    if max_steps > 0:
        windows = windows[:max_steps]

    params = TxAlloParams.with_capacity_for(
        train.num_transactions, k=k, eta=eta, backend=backend, workers=workers
    )
    train_graph = TransactionGraph()
    for s in train.account_sets():
        train_graph.add_transaction(s)
    base_mapping = g_txallo(train_graph, params).allocation.mapping()

    runs: Dict[str, AdaptiveRun] = {}
    runs["Global Method"] = _replay_policy(
        "Global Method", 1, train_graph, base_mapping, windows, params
    )
    for gap in gaps:
        name = f"Gap={gap}"
        runs[name] = _replay_policy(name, gap, train_graph, base_mapping, windows, params)
    return Figure9Report(k=k, eta=eta, runs=runs)


@dataclasses.dataclass
class Figure10Report:
    """Fig. 10 — per-step runtime: pure G-TxAllo vs. the hybrid policy."""

    pure: AdaptiveRun
    hybrid: AdaptiveRun

    def render(self) -> str:
        series = {
            "Pure G-TxAllo": [
                (float(s.step), s.runtime_seconds) for s in self.pure.steps
            ],
            "Hybrid Method": [
                (float(s.step), s.runtime_seconds) for s in self.hybrid.steps
            ],
        }
        chart = ascii_line_chart(series, title="== Figure 10: running time per step ==")
        pure_mean = sum(s.runtime_seconds for s in self.pure.steps) / max(
            1, len(self.pure.steps)
        )
        hybrid_adaptive = self.hybrid.mean_adaptive_runtime
        speedup = pure_mean / hybrid_adaptive if hybrid_adaptive > 0 else math.inf
        summary = format_table(
            ["policy", "mean step runtime (s)"],
            [
                ("Pure G-TxAllo", pure_mean),
                ("Hybrid adaptive steps", hybrid_adaptive),
                ("adaptive speedup (x)", speedup),
            ],
        )
        return chart + "\n\n" + summary


def figure10(
    workload: Workload,
    k: int = 20,
    eta: float = 2.0,
    global_gap: int = 20,
    window_blocks: int = 0,
    split_ratio: float = 0.9,
    max_steps: int = 0,
    backend: str = "fast",
    workers: int = 1,
) -> Figure10Report:
    """Fig. 10: runtime of pure-global vs. hybrid updating (τ₂ = gap·τ₁)."""
    report = figure9(
        workload,
        k=k,
        eta=eta,
        gaps=(global_gap,),
        window_blocks=window_blocks,
        split_ratio=split_ratio,
        max_steps=max_steps,
        backend=backend,
        workers=workers,
    )
    return Figure10Report(
        pure=report.runs["Global Method"],
        hybrid=report.runs[f"Gap={global_gap}"],
    )


# ----------------------------------------------------------------------
# Live comparison — every method through the tick-driven network
# ----------------------------------------------------------------------
@dataclasses.dataclass
class LiveComparison:
    """Deployed-setting comparison: one live run per registered method.

    The analytic figures score allocations with Eqs. (2)-(4); this
    report scores them by what the tick-driven network actually commits
    under shared capacity — the deployed counterpart of Figs. 5-7, and
    the first harness where all four methods (including the Shard
    Scheduler) run the same live system.
    """

    k: int
    eta: float
    lam: float
    seed_blocks: int
    live_blocks: int
    reports: Dict[str, LiveReport]
    #: The injected fault plan (every method saw the same one), or None.
    fault_plan: Optional[FaultPlan] = None

    def render(self) -> str:
        title = (
            f"== Live comparison: k={self.k}, eta={self.eta:g}, "
            f"lam={self.lam:g}/shard/tick, {self.seed_blocks} seed + "
            f"{self.live_blocks} live blocks =="
        )
        if self.fault_plan is not None:
            title += (
                f"\n== faults injected: "
                f"{len(self.fault_plan.allocator_faults)} allocator, "
                f"{len(self.fault_plan.stalls)} stall(s), "
                f"{len(self.fault_plan.delivery_faults)} delivery "
                f"(seed={self.fault_plan.seed}) =="
            )
        faulted = self.fault_plan is not None
        rows = []
        for method, report in self.reports.items():
            updates = sum(1 for t in report.ticks if t.allocation_update)
            row = [
                method_label(method),
                report.committed,
                len(report.ticks),
                report.committed_per_tick,
                report.cross_shard_ratio,
                report.mean_latency,
                report.p99_latency,
                updates,
            ]
            if faulted:
                row.extend([report.degraded_ticks, report.failovers])
            rows.append(tuple(row))
        headers = [
            "method",
            "committed",
            "ticks",
            "committed TPS",
            "cross-shard",
            "mean latency",
            "p99 latency",
            "alloc updates",
        ]
        if faulted:
            headers.extend(["degraded ticks", "failovers"])
        table = format_table(headers, rows)
        return title + "\n\n" + table


def live_compare(
    workload: Workload,
    k: int = 8,
    eta: float = 2.0,
    methods: Sequence[str] = METHODS,
    lam: Optional[float] = None,
    seed_fraction: float = 0.4,
    capacity_factor: float = 1.5,
    tau1: Optional[int] = None,
    tau2: Optional[int] = None,
    faults: bool = False,
    fault_seed: Optional[int] = None,
) -> LiveComparison:
    """Run every method through :class:`LiveShardedNetwork`, same traffic.

    The block stream splits into seed history (every allocator sees it:
    static methods allocate over it, the controller trains on it, the
    Shard Scheduler warms up on it) and live blocks fed one per tick.

    ``lam`` defaults so total capacity ``k·λ`` is ``capacity_factor``
    times the mean live block size — enough for well-clustered routing,
    not for hash routing's η-priced cross traffic, which is exactly the
    regime where allocation quality shows up as committed TPS.

    With ``faults=True`` every method runs under the same deterministic
    :class:`~repro.chain.faults.FaultPlan` (the standard plan, or a
    seeded one when ``fault_seed`` is given), with its allocator wrapped
    in a :class:`~repro.core.resilience.ResilientAllocator` so injected
    allocator failures degrade throughput instead of crashing the run.
    """
    seed_stream, live_stream = workload.blocks.split(seed_fraction)
    seed_sets = seed_stream.account_sets()
    live_blocks = [list(block) for block in live_stream]
    if not live_blocks:
        raise ParameterError("live_compare needs at least one live block")
    if lam is None:
        mean_block = live_stream.num_transactions / len(live_blocks)
        lam = max(1.0, capacity_factor * mean_block / k)
    if tau1 is None:
        tau1 = max(1, len(live_blocks) // 25)
    if tau2 is None:
        tau2 = 10 * tau1
    params = TxAlloParams(
        k=k,
        eta=eta,
        lam=lam,
        epsilon=1e-5 * max(1, workload.num_transactions),
        tau1=tau1,
        tau2=tau2,
    )

    seed_graph = TransactionGraph()
    for accounts in seed_sets:
        seed_graph.add_transaction(accounts)

    plan: Optional[FaultPlan] = None
    if faults:
        if fault_seed is not None:
            plan = FaultPlan.seeded(fault_seed, ticks=len(live_blocks), k=k)
        else:
            plan = FaultPlan.standard(params.tau2)

    reports: Dict[str, LiveReport] = {}
    for method in methods:
        allocator = allocators.get_online(
            method, params, seed_transactions=seed_sets, seed_graph=seed_graph
        )
        if plan is not None and not isinstance(allocator, ResilientAllocator):
            allocator = ResilientAllocator(allocator)
        net = LiveShardedNetwork(params, allocator, fault_plan=plan)
        reports[method] = net.run(live_blocks, drain=True)
    return LiveComparison(
        k=k,
        eta=eta,
        lam=lam,
        seed_blocks=len(seed_stream),
        live_blocks=len(live_blocks),
        reports=reports,
        fault_plan=plan,
    )
