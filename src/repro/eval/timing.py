"""Wall-clock timing helpers for the runtime figures (Figs. 8, 10)."""

from __future__ import annotations

import time
from typing import Callable, Tuple, TypeVar

T = TypeVar("T")


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start


def time_call(fn: Callable[..., T], *args, **kwargs) -> Tuple[T, float]:
    """Call ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
