"""Consensus cost models (paper Section IV-A).

TxAllo's determinism requirement exists to *avoid* running consensus on
allocation proposals; the paper quantifies what that avoidance saves:

* streamlined protocols (HotStuff): at least **6 communication steps** with
  overall **O(N)** message complexity;
* classic BFT (PBFT): **3 steps** with **O(N²)** messages.

These models let the simulator (and the protocol-integration example) price
an intra-shard consensus round and, by extension, a cross-shard commit.
They are cost models, not protocol implementations — no faults are
simulated beyond the quorum arithmetic.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ParameterError


@dataclasses.dataclass(frozen=True)
class ConsensusCost:
    """Cost of one consensus decision in a shard of ``n`` miners."""

    steps: int
    messages: int
    latency_seconds: float


def quorum_size(n: int) -> int:
    """Byzantine quorum ``2f + 1`` for ``n = 3f + 1`` miners (rounded up)."""
    if n < 1:
        raise ParameterError(f"a shard needs at least one miner, got {n}")
    f = (n - 1) // 3
    return 2 * f + 1


def max_faulty(n: int) -> int:
    """The number of Byzantine miners ``f`` tolerated by ``n`` miners."""
    if n < 1:
        raise ParameterError(f"a shard needs at least one miner, got {n}")
    return (n - 1) // 3


def pbft_cost(n: int, message_delay: float = 0.05) -> ConsensusCost:
    """Classic PBFT: 3 steps (pre-prepare, prepare, commit), O(N²) messages."""
    if message_delay < 0:
        raise ParameterError(f"message_delay must be non-negative, got {message_delay!r}")
    steps = 3
    messages = n + 2 * n * n  # pre-prepare broadcast + two all-to-all rounds
    return ConsensusCost(steps=steps, messages=messages, latency_seconds=steps * message_delay)


def hotstuff_cost(n: int, message_delay: float = 0.05) -> ConsensusCost:
    """Streamlined HotStuff: 6 steps, O(N) messages per step (leader relay)."""
    if message_delay < 0:
        raise ParameterError(f"message_delay must be non-negative, got {message_delay!r}")
    steps = 6
    messages = 6 * n
    return ConsensusCost(steps=steps, messages=messages, latency_seconds=steps * message_delay)


def consensus_cost(protocol: str, n: int, message_delay: float = 0.05) -> ConsensusCost:
    """Dispatch by protocol name (``"pbft"`` or ``"hotstuff"``)."""
    normalized = protocol.lower()
    if normalized == "pbft":
        return pbft_cost(n, message_delay)
    if normalized == "hotstuff":
        return hotstuff_cost(n, message_delay)
    raise ParameterError(f"unknown consensus protocol {protocol!r}")
