"""repro — a reproduction of TxAllo (ICDE 2023).

Dynamic transaction allocation for sharded account-based blockchains:
the transaction-graph formulation, the G-TxAllo / A-TxAllo algorithms,
the paper's baselines (hash, METIS-style multilevel partitioning, Shard
Scheduler), a sharded-chain simulator substrate, a synthetic Ethereum
workload generator, and the full evaluation harness for Figures 1-10.

Quickstart::

    from repro import TransactionGraph, TxAlloParams, g_txallo

    graph = TransactionGraph()
    graph.add_transactions([("a", "b"), ("b", "c"), ("d", "e")])
    params = TxAlloParams.with_capacity_for(graph.num_transactions, k=2)
    result = g_txallo(graph, params)
    print(result.allocation.mapping())

Every allocation method (TxAllo and all baselines) is also reachable by
name through the unified registry::

    from repro import allocators

    mapping = allocators.get("metis").allocate(graph, params)
    print(allocators.available())
"""

from repro.core import (
    Allocation,
    ATxAlloResult,
    GTxAlloResult,
    MetricsReport,
    TransactionGraph,
    TxAlloController,
    TxAlloParams,
    a_txallo,
    evaluate_allocation,
    g_txallo,
    louvain_partition,
)
from repro import allocators

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "allocators",
    "ATxAlloResult",
    "GTxAlloResult",
    "MetricsReport",
    "TransactionGraph",
    "TxAlloController",
    "TxAlloParams",
    "a_txallo",
    "evaluate_allocation",
    "g_txallo",
    "louvain_partition",
    "__version__",
]
