"""Tests for shard state and the discrete-time simulator, including the
cross-validation of the paper's analytic formulas (Eqs. 2-4) against the
event-level simulation."""

import pytest

from repro.chain.shard import ShardState
from repro.chain.simulator import ShardedChainSimulator, simulate_allocation
from repro.chain.types import Transaction
from repro.core.metrics import evaluate_allocation
from repro.core.params import TxAlloParams
from repro.errors import AllocationError, SimulationError


def tx(s, r):
    return Transaction.transfer(s, r)


class TestShardState:
    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            ShardState(0, capacity=0.0)

    def test_step_processes_up_to_capacity(self):
        shard = ShardState(0, capacity=2.0)
        for i in range(5):
            shard.enqueue(tx(f"s{i}", f"r{i}"), cost=1.0, share=1.0, now=0)
        done = shard.step(now=0)
        assert len(done) == 2
        assert shard.queue_length == 3

    def test_chronological_head_spans_units(self):
        """An expensive head is worked across units, never skipped."""
        shard = ShardState(0, capacity=1.0)
        shard.enqueue(tx("a", "b"), cost=3.0, share=1.0, now=0)
        shard.enqueue(tx("c", "d"), cost=1.0, share=1.0, now=0)
        assert shard.step(now=0) == []
        assert shard.step(now=1) == []
        done = shard.step(now=2)
        assert len(done) == 1 and done[0].item.tx.inputs == ("a",)
        assert done[0].latency == 3
        assert shard.step(now=3)[0].item.tx.inputs == ("c",)

    def test_latency_computation(self):
        shard = ShardState(0, capacity=1.0)
        shard.enqueue(tx("a", "b"), cost=1.0, share=1.0, now=0)
        done = shard.step(now=0)
        assert done[0].latency == 1

    def test_throughput_credit_accumulates_shares(self):
        shard = ShardState(0, capacity=10.0)
        shard.enqueue(tx("a", "b"), cost=2.0, share=0.5, now=0)
        shard.enqueue(tx("c", "d"), cost=1.0, share=1.0, now=0)
        shard.step(now=0)
        assert shard.throughput_credit == pytest.approx(1.5)

    def test_invalid_work_item(self):
        shard = ShardState(0, capacity=1.0)
        with pytest.raises(SimulationError):
            shard.enqueue(tx("a", "b"), cost=0.0, share=1.0, now=0)

    def test_drain_fully(self):
        shard = ShardState(0, capacity=1.0)
        for i in range(4):
            shard.enqueue(tx(f"s{i}", f"r{i}"), cost=1.0, share=1.0, now=0)
        units = shard.drain_fully(start=0)
        assert units == 4
        assert shard.queue_length == 0


class TestSimulator:
    def test_unknown_account_rejected(self):
        params = TxAlloParams(k=2, eta=2.0, lam=10.0)
        sim = ShardedChainSimulator(params, {"a": 0})
        with pytest.raises(AllocationError):
            sim.submit(tx("a", "ghost"))

    def test_invalid_mapping_rejected(self):
        params = TxAlloParams(k=2, eta=2.0, lam=10.0)
        with pytest.raises(AllocationError):
            ShardedChainSimulator(params, {"a": 5})

    def test_cross_shard_counted(self):
        params = TxAlloParams(k=2, eta=2.0, lam=10.0)
        sim = ShardedChainSimulator(params, {"a": 0, "b": 1, "c": 0})
        assert sim.submit(tx("a", "b")) == 2
        assert sim.submit(tx("a", "c")) == 1
        report = sim.run()
        assert report.num_cross_shard == 1
        assert report.cross_shard_ratio == pytest.approx(0.5)

    def test_report_workloads(self):
        params = TxAlloParams(k=2, eta=3.0, lam=10.0)
        mapping = {"a": 0, "b": 1}
        report = simulate_allocation([tx("a", "b")], mapping, params)
        assert report.per_shard_workload == (3.0, 3.0)


class TestCrossValidation:
    """Eqs. 2-4 against the event-level simulation (DESIGN.md §5)."""

    def scenario(self, k=4, lam=5.0, eta=2.0, seed=3):
        import random

        rng = random.Random(seed)
        accounts = [f"a{i}" for i in range(24)]
        mapping = {a: i % k for i, a in enumerate(accounts)}
        txs = [
            Transaction.transfer(*rng.sample(accounts, 2)) for _ in range(60)
        ]
        params = TxAlloParams(k=k, eta=eta, lam=lam)
        return txs, mapping, params

    def test_first_unit_throughput_matches_eq3(self):
        txs, mapping, params = self.scenario()
        sim_report = simulate_allocation(txs, mapping, params)
        analytic = evaluate_allocation(
            [tuple(t.accounts) for t in txs], mapping, params
        )
        # The analytic Lambda is a fluid steady-state rate; the event
        # simulator works at whole-transaction granularity, so agreement
        # is to within one transaction's workload per shard.
        tolerance = params.k * params.eta / analytic.throughput
        assert sim_report.first_unit_throughput == pytest.approx(
            analytic.throughput, rel=max(0.15, tolerance)
        )

    def test_worst_case_latency_matches_ceiling(self):
        txs, mapping, params = self.scenario()
        sim_report = simulate_allocation(txs, mapping, params)
        analytic = evaluate_allocation(
            [tuple(t.accounts) for t in txs], mapping, params
        )
        assert sim_report.worst_case_latency == int(analytic.worst_case_latency)

    def test_mean_latency_close_to_eq4(self):
        txs, mapping, params = self.scenario()
        sim_report = simulate_allocation(txs, mapping, params)
        analytic = evaluate_allocation(
            [tuple(t.accounts) for t in txs], mapping, params
        )
        assert sim_report.mean_latency == pytest.approx(
            analytic.average_latency, rel=0.25
        )

    def test_underloaded_system_all_done_in_one_unit(self):
        txs, mapping, params = self.scenario(lam=1000.0)
        report = simulate_allocation(txs, mapping, params)
        assert report.total_units == 1
        assert report.worst_case_latency == 1
        assert report.mean_latency == pytest.approx(1.0)

    def test_throughput_shares_prevent_double_counting(self):
        """Total committed credit equals the number of transactions."""
        txs, mapping, params = self.scenario(lam=1000.0)
        sim = ShardedChainSimulator(params, mapping)
        sim.submit_all(txs)
        report = sim.run()
        assert report.first_unit_throughput == pytest.approx(len(txs))
