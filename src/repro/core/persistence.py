"""Persisting and fingerprinting allocations.

Two operational needs around the paper's determinism argument
(Section IV-A):

* miners should be able to *checkpoint* an allocation (mapping +
  hyperparameters) and reload it after a restart — :func:`save_allocation`
  / :func:`load_allocation` use a stable JSON layout;
* miners should be able to *compare* allocations cheaply: rather than
  exchanging 12M-entry mappings, they exchange a 32-byte digest —
  :func:`allocation_digest` hashes the canonically ordered mapping, so
  equal allocations give equal digests on every machine.

Checkpoints record ``params.backend`` verbatim — any name in the engine
backend registry (:mod:`repro.core.backends`) round-trips, including
optional tiers like ``"vector"`` whose dependency may be absent on the
reloading machine (resolution falls back at dispatch time, not here).  A
checkpoint naming a backend this build does *not* register fails
parameter validation inside :func:`load_allocation` and therefore
surfaces as :class:`~repro.errors.DataError` (malformed checkpoint), the
same as any other bad field.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from pathlib import Path
from typing import Dict, Tuple

from repro.core.params import TxAlloParams
from repro.errors import AllocationError, DataError

_FORMAT = "txallo-allocation-v1"


def allocation_digest(mapping: Dict[str, int]) -> str:
    """SHA-256 over the canonically sorted mapping (hex).

    Stable across Python versions and dict insertion orders; two miners
    with byte-identical allocations always produce the same digest.
    """
    hasher = hashlib.sha256()
    for account in sorted(mapping):
        hasher.update(str(account).encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(str(int(mapping[account])).encode("ascii"))
        hasher.update(b"\x01")
    return hasher.hexdigest()


def save_allocation(
    path,
    mapping: Dict[str, int],
    params: TxAlloParams,
    block_height: int = 0,
) -> str:
    """Write a checkpoint; returns the allocation digest it records."""
    digest = allocation_digest(mapping)
    payload = {
        "format": _FORMAT,
        "digest": digest,
        "block_height": block_height,
        "params": {
            "k": params.k,
            "eta": params.eta,
            "lam": None if math.isinf(params.lam) else params.lam,
            "epsilon": params.epsilon,
            "tau1": params.tau1,
            "tau2": params.tau2,
            "backend": params.backend,
            "workers": params.workers,
        },
        "mapping": {str(a): int(s) for a, s in sorted(mapping.items())},
    }
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))
    return digest


def load_allocation(path) -> Tuple[Dict[str, int], TxAlloParams, int]:
    """Read a checkpoint; verifies format and digest integrity.

    Returns ``(mapping, params, block_height)``.  A digest mismatch
    means the file was corrupted or hand-edited and raises.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise DataError(f"cannot read allocation checkpoint {path}: {exc}") from None
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise DataError(f"{path}: not a {_FORMAT} checkpoint")
    try:
        mapping = {str(a): int(s) for a, s in payload["mapping"].items()}
        raw = payload["params"]
        params = TxAlloParams(
            k=int(raw["k"]),
            eta=float(raw["eta"]),
            lam=math.inf if raw["lam"] is None else float(raw["lam"]),
            epsilon=float(raw["epsilon"]),
            tau1=int(raw["tau1"]),
            tau2=int(raw["tau2"]),
            # Checkpoints written before the engine switch carry no
            # backend; the result is the same either way, so default fast.
            backend=str(raw.get("backend", "fast")),
            # Likewise pre-parallel checkpoints carry no worker count;
            # workers is semantically inert, so default serial.
            workers=int(raw.get("workers", 1)),
        )
        height = int(payload.get("block_height", 0))
        recorded = payload["digest"]
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"{path}: malformed checkpoint ({exc})") from None
    actual = allocation_digest(mapping)
    if actual != recorded:
        raise DataError(
            f"{path}: digest mismatch — recorded {recorded[:12]}..., "
            f"computed {actual[:12]}... (corrupted checkpoint)"
        )
    for shard in mapping.values():
        if not 0 <= shard < params.k:
            raise AllocationError(
                f"{path}: checkpoint maps an account to shard {shard} "
                f"outside [0, {params.k})"
            )
    return mapping, params, height


@dataclasses.dataclass(frozen=True)
class AllocationCheckpoint:
    """Convenience bundle mirroring the on-disk layout."""

    mapping: Dict[str, int]
    params: TxAlloParams
    block_height: int

    @property
    def digest(self) -> str:
        return allocation_digest(self.mapping)

    @classmethod
    def load(cls, path) -> "AllocationCheckpoint":
        mapping, params, height = load_allocation(path)
        return cls(mapping=mapping, params=params, block_height=height)

    def save(self, path) -> str:
        return save_allocation(path, self.mapping, self.params, self.block_height)
