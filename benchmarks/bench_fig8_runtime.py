"""Figure 8 + Section VI-B6 — allocator running time.

Paper headline (12.6M accounts): Shard Scheduler 3447.9 s, METIS 422.7 s,
G-TxAllo 122.3 s (67.6 s of which is the Louvain initialisation) — i.e.
G-TxAllo is >3x faster than METIS, and the transaction-level scheduler is
an order of magnitude slower than the graph methods.  Absolute numbers
shrink with the workload; the *ordering* must hold.
"""

import pytest

from repro.eval import experiments


@pytest.fixture(scope="module")
def fig8(sweep_records):
    return experiments.figure8(sweep_records)


def test_fig8_report(fig8):
    print()
    print(fig8.render())


def test_random_is_fastest(fig8):
    for k in (20, 60):
        rand = fig8.value(2.0, "random", k)
        assert rand <= fig8.value(2.0, "txallo", k)
        assert rand <= fig8.value(2.0, "metis", k)


def test_gtxallo_within_parity_of_metis(fig8):
    """The paper reports G-TxAllo 3.5x faster than the METIS *package*
    at 12.6M accounts.  Our baseline is a simplified pure-Python
    multilevel partitioner, which is much cheaper than the real METIS
    pipeline, so at laptop scale the two are comparable; we assert a
    parity band and record the caveat in EXPERIMENTS.md."""
    total_ours = sum(fig8.value(2.0, "txallo", k) for k in (10, 20, 40, 60))
    total_metis = sum(fig8.value(2.0, "metis", k) for k in (10, 20, 40, 60))
    assert total_ours < total_metis * 2.5


def test_scheduler_slowest_graph_excluded(fig8):
    """Shard Scheduler pays a per-transaction cost (paper: 3447 s)."""
    sched = sum(fig8.value(2.0, "shard_scheduler", k) for k in (10, 20, 40, 60))
    rand = sum(fig8.value(2.0, "random", k) for k in (10, 20, 40, 60))
    assert sched > rand


def test_bench_gtxallo_runtime(workload, benchmark):
    from repro.core.gtxallo import g_txallo
    from repro.core.params import TxAlloParams

    params = TxAlloParams.with_capacity_for(workload.num_transactions, k=20, eta=2.0)
    benchmark.pedantic(g_txallo, args=(workload.graph, params), rounds=2, iterations=1)


def test_bench_metis_runtime(workload, benchmark):
    from repro.baselines.metis import metis_partition

    benchmark.pedantic(
        metis_partition, args=(workload.graph, 20), rounds=2, iterations=1
    )


def test_bench_scheduler_runtime(workload, benchmark):
    from repro.baselines.shard_scheduler import shard_scheduler_partition
    from repro.core.params import TxAlloParams

    params = TxAlloParams.with_capacity_for(workload.num_transactions, k=20, eta=2.0)
    benchmark.pedantic(
        shard_scheduler_partition, args=(workload.account_sets, params),
        rounds=2, iterations=1,
    )
