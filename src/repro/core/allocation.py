"""Account-shard mapping with incrementally maintained workloads.

:class:`Allocation` is the mutable state shared by G-TxAllo, A-TxAllo and
the baselines.  It keeps, per community ``i``:

* ``sigma[i]``   — the workload ``σ_i`` of Eq. (5):
  ``σ_i = (intra weight incl. self-loops) + η · (cut weight from i's side)``;
* ``lam_hat[i]`` — the capacity-unconstrained throughput ``Λ̂_i``:
  ``Λ̂_i = (intra weight) + (cut weight) / 2``;
* ``members[i]`` — the account set of the community.

Moving a node updates only the two affected communities (Lemma 1), in time
proportional to the node's degree.  The caches can always be re-derived from
scratch with :meth:`Allocation.recompute`, which the test-suite uses to prove
the incremental deltas exact.

During G-TxAllo's initialisation the number of communities may exceed the
shard count ``k`` (Louvain produces ``l > k`` communities); communities with
index ``>= k`` are temporary and are emptied before :meth:`truncate` reduces
the mapping to exactly ``k`` shards.

Unassigned nodes
----------------
A node present in the graph but not yet in the mapping is treated as
*external*: every edge from an assigned node to it counts as cut weight.
Assigning it later with :meth:`assign` applies exactly the paper's join
delta, so caches stay consistent (see ``tests/test_allocation.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.graph import Node, TransactionGraph, pair_count
from repro.core.params import TxAlloParams
from repro.errors import AllocationError


def capped_throughput(sigma: float, lam_hat: float, lam: float) -> float:
    """Per-shard throughput ``Λ_i`` of Eq. (3).

    ``Λ_i = Λ̂_i`` when the workload fits the capacity (``σ_i <= λ``),
    otherwise only the fraction ``λ / σ_i`` of the workload is processed.
    """
    if sigma <= lam or sigma == 0.0:
        return lam_hat
    return lam / sigma * lam_hat


class Allocation:
    """A mutable account→community mapping over a transaction graph."""

    __slots__ = (
        "graph", "params", "_shard_of", "sigma", "lam_hat", "members", "mutation_count"
    )

    def __init__(
        self,
        graph: TransactionGraph,
        params: TxAlloParams,
        num_communities: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.params = params
        n = params.k if num_communities is None else num_communities
        if n < params.k:
            raise AllocationError(
                f"cannot create {n} communities for {params.k} shards"
            )
        self._shard_of: Dict[Node, int] = {}
        self.sigma: List[float] = [0.0] * n
        self.lam_hat: List[float] = [0.0] * n
        self.members: List[Set[Node]] = [set() for _ in range(n)]
        # Bumped by every mapping mutation (assign/move/truncate).  The
        # adaptive workspace watermarks this to detect mutations applied
        # behind its back (a bare count of assigned accounts cannot see
        # a move) and rebuild instead of serving a stale id→shard view.
        self.mutation_count: int = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_partition(
        cls,
        graph: TransactionGraph,
        params: TxAlloParams,
        partition: Dict[Node, int],
        num_communities: Optional[int] = None,
    ) -> "Allocation":
        """Build an allocation (and its caches) from a complete partition.

        ``partition`` maps every graph node to a community index.  Caches
        are computed in a single O(E) pass.
        """
        if num_communities is None:
            num_communities = max(params.k, 1 + max(partition.values(), default=-1))
        alloc = cls(graph, params, num_communities)
        shard_of = alloc._shard_of
        for v in graph.nodes():
            try:
                i = partition[v]
            except KeyError:
                raise AllocationError(f"partition misses account {v!r}") from None
            if not 0 <= i < num_communities:
                raise AllocationError(
                    f"community index {i} of account {v!r} outside [0, {num_communities})"
                )
            shard_of[v] = i
            alloc.members[i].add(v)
        alloc._recompute_caches()
        return alloc

    @classmethod
    def _from_compiled(
        cls,
        graph: TransactionGraph,
        params: TxAlloParams,
        mapping: Dict[Node, int],
        sigma: List[float],
        lam_hat: List[float],
    ) -> "Allocation":
        """Adopt the state produced by the flat sweep engine.

        ``mapping`` must cover every graph node with communities in
        ``[0, len(sigma))`` and ``sigma`` / ``lam_hat`` must be the caches
        the engine maintained for exactly that mapping — the engine's
        parity contract (see :mod:`repro.core.engine`) guarantees both.
        """
        alloc = cls(graph, params, len(sigma))
        shard_of = alloc._shard_of
        members = alloc.members
        for v, c in mapping.items():
            shard_of[v] = c
            members[c].add(v)
        alloc.sigma = list(sigma)
        alloc.lam_hat = list(lam_hat)
        return alloc

    def recompute(self) -> Tuple[List[float], List[float]]:
        """Return freshly computed ``(sigma, lam_hat)`` — side-effect free.

        One O(E) pass over the graph; the allocation's own caches are
        left untouched.  Used by tests and by :meth:`validate` to check
        cache integrity, and by :meth:`_recompute_caches` to install the
        result.
        """
        eta = self.params.eta
        n = len(self.sigma)
        intra = [0.0] * n
        cut = [0.0] * n
        shard_of = self._shard_of
        for u, v, w in self.graph.edges():
            iu = shard_of.get(u)
            if u == v:
                if iu is not None:
                    intra[iu] += w
                continue
            iv = shard_of.get(v)
            if iu is not None and iu == iv:
                intra[iu] += w
            else:
                if iu is not None:
                    cut[iu] += w
                if iv is not None:
                    cut[iv] += w
        sigma = [intra[i] + eta * cut[i] for i in range(n)]
        lam_hat = [intra[i] + cut[i] / 2.0 for i in range(n)]
        return sigma, lam_hat

    def _recompute_caches(self) -> None:
        """Install a fresh O(E) rebuild of ``sigma`` and ``lam_hat``."""
        self.sigma, self.lam_hat = self.recompute()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def num_communities(self) -> int:
        return len(self.sigma)

    def shard_of(self, v: Node) -> int:
        """Community of ``v``; raises if unassigned (completeness check)."""
        try:
            return self._shard_of[v]
        except KeyError:
            raise AllocationError(f"account {v!r} is not allocated to any shard") from None

    def shard_of_or_none(self, v: Node) -> Optional[int]:
        """Community of ``v`` or ``None`` when ``v`` is unassigned."""
        return self._shard_of.get(v)

    def is_assigned(self, v: Node) -> bool:
        return v in self._shard_of

    def __len__(self) -> int:
        return len(self._shard_of)

    def mapping(self) -> Dict[Node, int]:
        """A snapshot copy of the account→community dictionary."""
        return dict(self._shard_of)

    def community_sizes(self) -> List[int]:
        return [len(m) for m in self.members]

    # ------------------------------------------------------------------
    # Neighbourhood summaries (the inputs of Eqs. 6-9)
    # ------------------------------------------------------------------
    def neighbour_shard_weights(self, v: Node) -> Tuple[Dict[int, float], float, float]:
        """Summarise ``v``'s incident weights by community.

        Returns ``(by_shard, w_self, w_ext)`` where ``by_shard[j]`` is
        ``w{v, V_j}`` restricted to *assigned* neighbours, ``w_self`` is the
        self-loop weight and ``w_ext`` is ``w{v, V/v}`` over **all**
        neighbours (assigned or not) — exactly the quantities the paper's
        throughput deltas consume.
        """
        by_shard: Dict[int, float] = {}
        w_self = 0.0
        w_ext = 0.0
        shard_of = self._shard_of
        for u, w in self.graph.neighbours(v).items():
            if u == v:
                w_self = w
                continue
            w_ext += w
            j = shard_of.get(u)
            if j is not None:
                if j in by_shard:
                    by_shard[j] += w
                else:
                    by_shard[j] = w
        return by_shard, w_self, w_ext

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def assign(self, v: Node, q: int, *, weights=None) -> None:
        """Assign the unassigned node ``v`` to community ``q``.

        Applies the paper's join delta (Section V-B): self-loops become
        intra workload, edges to ``V_q`` flip from cut to intra, all other
        incident edges become cut from ``q``'s side.  ``weights`` may carry
        a precomputed :meth:`neighbour_shard_weights` triple to avoid a
        second neighbourhood scan.
        """
        if v in self._shard_of:
            raise AllocationError(f"account {v!r} is already allocated; use move()")
        if not 0 <= q < len(self.sigma):
            raise AllocationError(f"community {q} out of range")
        by_shard, w_self, w_ext = (
            weights if weights is not None else self.neighbour_shard_weights(v)
        )
        eta = self.params.eta
        w_q = by_shard.get(q, 0.0)
        # The join delta is the same as for a paper-style move: edges v-V_q
        # flip from eta-cut to intra ((1-eta)*w_q), the self-loop becomes
        # intra workload, and v's remaining incident edges become cut from
        # q's side (eta each).
        self.sigma[q] += w_self + eta * (w_ext - w_q) + (1.0 - eta) * w_q
        self.lam_hat[q] += w_self + w_ext / 2.0
        self._shard_of[v] = q
        self.members[q].add(v)
        self.mutation_count += 1

    def move(self, v: Node, q: int, *, weights=None) -> None:
        """Move the assigned node ``v`` to community ``q`` (Section V-B).

        Only the source and destination caches change (Lemma 1).
        """
        p = self.shard_of(v)
        if p == q:
            return
        if not 0 <= q < len(self.sigma):
            raise AllocationError(f"community {q} out of range")
        by_shard, w_self, w_ext = (
            weights if weights is not None else self.neighbour_shard_weights(v)
        )
        eta = self.params.eta
        w_p = by_shard.get(p, 0.0)
        w_q = by_shard.get(q, 0.0)
        half = w_self + w_ext / 2.0
        # Leave p: sigma'_p = sigma_p - w{v,v} - eta*w{v,V/V_p} + (eta-1)*w{v,V_p/v}
        self.sigma[p] += -w_self - eta * (w_ext - w_p) + (eta - 1.0) * w_p
        self.lam_hat[p] -= half
        # Join q: sigma'_q = sigma_q + w{v,v} + eta*(w{v,V/V_q}-w{v,v}) + (1-eta)*w{v,V_q}
        self.sigma[q] += w_self + eta * (w_ext - w_q) + (1.0 - eta) * w_q
        self.lam_hat[q] += half
        self._shard_of[v] = q
        self.members[p].discard(v)
        self.members[q].add(v)
        self.mutation_count += 1

    def ingest_transaction(self, accounts: Iterable[Node]) -> None:
        """Update caches for a transaction already added to the graph.

        Mirrors :meth:`TransactionGraph.add_transaction`'s pair expansion.
        Call this *after* the graph itself was updated so that subsequent
        moves see consistent neighbourhoods.
        """
        unique = sorted(set(accounts))
        if len(unique) == 1:
            v = unique[0]
            i = self._shard_of.get(v)
            if i is not None:
                self.sigma[i] += 1.0
                self.lam_hat[i] += 1.0
            return
        share = 1.0 / pair_count(len(unique))
        for a in range(len(unique)):
            for b in range(a + 1, len(unique)):
                self._ingest_edge(unique[a], unique[b], share)

    def _ingest_edge(self, u: Node, v: Node, w: float) -> None:
        """Account for a new pair-edge of weight ``w`` between ``u != v``."""
        eta = self.params.eta
        iu = self._shard_of.get(u)
        iv = self._shard_of.get(v)
        if iu is not None and iu == iv:
            self.sigma[iu] += w
            self.lam_hat[iu] += w
            return
        if iu is not None:
            self.sigma[iu] += eta * w
            self.lam_hat[iu] += w / 2.0
        if iv is not None:
            self.sigma[iv] += eta * w
            self.lam_hat[iv] += w / 2.0

    def truncate(self, k: Optional[int] = None) -> None:
        """Drop trailing communities, which must be empty.

        G-TxAllo calls this once its initialisation phase has absorbed all
        small Louvain communities into the top ``k``.
        """
        k = self.params.k if k is None else k
        for i in range(k, len(self.sigma)):
            if self.members[i]:
                raise AllocationError(
                    f"cannot truncate: community {i} still holds {len(self.members[i])} accounts"
                )
        del self.sigma[k:]
        del self.lam_hat[k:]
        del self.members[k:]
        self.mutation_count += 1

    # ------------------------------------------------------------------
    # Throughput (Eqs. 2-3)
    # ------------------------------------------------------------------
    def community_throughput(self, i: int) -> float:
        """``Λ_i`` with the capacity cap of Eq. (3)."""
        return capped_throughput(self.sigma[i], self.lam_hat[i], self.params.lam)

    def total_throughput(self) -> float:
        """System throughput ``Λ = Σ_i Λ_i`` (Eq. 2)."""
        lam = self.params.lam
        return sum(
            capped_throughput(s, lh, lam)
            for s, lh in zip(self.sigma, self.lam_hat)
        )

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def validate(self, *, check_caches: bool = True, tolerance: float = 1e-6) -> None:
        """Check Definition 1 (uniqueness + completeness) and cache integrity.

        Uniqueness is structural (a dict key maps to one community); this
        verifies membership sets agree with the dict, that every graph node
        is assigned, and — when ``check_caches`` — that the incremental
        ``sigma`` / ``lam_hat`` agree with an O(E) recomputation.
        """
        for v in self.graph.nodes():
            if v not in self._shard_of:
                raise AllocationError(f"completeness violated: account {v!r} unassigned")
        total_members = 0
        for i, member_set in enumerate(self.members):
            total_members += len(member_set)
            for v in member_set:
                if self._shard_of.get(v) != i:
                    raise AllocationError(
                        f"uniqueness violated: {v!r} in members[{i}] but mapped to "
                        f"{self._shard_of.get(v)!r}"
                    )
        if total_members != len(self._shard_of):
            raise AllocationError(
                f"membership sets hold {total_members} accounts but the mapping has "
                f"{len(self._shard_of)}"
            )
        if check_caches:
            fresh_sigma, fresh_lam = self.recompute()
            scale = max(1.0, self.graph.total_weight)
            for i in range(len(self.sigma)):
                if abs(self.sigma[i] - fresh_sigma[i]) > tolerance * scale:
                    raise AllocationError(
                        f"sigma[{i}] cache drift: {self.sigma[i]!r} vs {fresh_sigma[i]!r}"
                    )
                if abs(self.lam_hat[i] - fresh_lam[i]) > tolerance * scale:
                    raise AllocationError(
                        f"lam_hat[{i}] cache drift: {self.lam_hat[i]!r} vs {fresh_lam[i]!r}"
                    )

    def copy(self) -> "Allocation":
        """Deep copy sharing the (immutable from our side) graph object."""
        clone = Allocation(self.graph, self.params, len(self.sigma))
        clone._shard_of = dict(self._shard_of)
        clone.sigma = self.sigma[:]
        clone.lam_hat = self.lam_hat[:]
        clone.members = [set(m) for m in self.members]
        clone.mutation_count = self.mutation_count
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Allocation(communities={self.num_communities}, "
            f"accounts={len(self._shard_of)}, throughput={self.total_throughput():.2f})"
        )
