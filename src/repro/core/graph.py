"""The transaction graph of Definition 2 (paper Section III-C).

Accounts are nodes; each transaction ``Tx`` touching the account set
``A_Tx`` contributes a total weight of 1, split uniformly over the
``π(Tx) = C(|A_Tx|, 2)`` unordered account pairs it induces.  A transaction
whose accounts collapse to a single address (e.g. an Ethereum
self-replacement transaction) becomes a *self-loop* of weight 1.

The graph is undirected and weighted, stored as a dict-of-dicts adjacency
structure optimised for *ingest*: accumulating a new transaction's pair
weights is a handful of dict updates.

Ingest/freeze lifecycle
-----------------------
The allocation hot paths (Louvain initialisation, G-TxAllo optimisation
sweeps) do not run on the dict form — scanning string-keyed dicts per node
per sweep pays Python string hashing and per-node dict construction.  They
run on the *frozen* form instead: :meth:`TransactionGraph.freeze` interns
account strings to dense integer ids and lowers the adjacency into flat
CSR arrays (:class:`repro.core.csr.CSRGraph`), which the flat-array sweep
engine (:mod:`repro.core.engine`) consumes.  The two forms are linked by a
version counter: every mutation (``add_node`` / ``add_edge`` /
``add_transaction``) bumps the version, and ``freeze()`` returns a cached
snapshot while the version is unchanged, so repeated allocator runs over a
quiescent graph freeze exactly once.  The frozen snapshot preserves the
dict rows' iteration order, which keeps every float accumulation in the
fast engine bit-identical to the reference dict-based scans.

Between freezes the graph additionally records a compact *delta* — the
nodes added since the last snapshot (in insertion order) and the nodes
whose adjacency rows changed.  When the next ``freeze()`` finds the delta
small and monotone, it extends the cached snapshot incrementally
(:meth:`repro.core.csr.CSRGraph.extend`) instead of re-lowering the whole
graph, so the dynamic controller's periodic refreshes cost work
proportional to the block frontier rather than to N + E.  Bulk rewrites
(window decay, pruning) and oversized deltas fall back to a full rebuild;
either way the resulting snapshot is element-identical to a cold
``CSRGraph.from_graph``.

Independently of the freeze-relative delta log, a consumer may subscribe
to a :class:`MutationJournal` (``start_mutation_journal``): an
append-only log of new nodes and edge-weight increments that the
adaptive workspace (:class:`repro.core.engine.AdaptiveWorkspace`)
replays to keep its flat neighbourhood state current *without* freezing
the graph at all between global refreshes.

Determinism
-----------
``nodes()`` and ``neighbours()`` iterate in *insertion order* which, for a
ledger replay, is the chronological account-appearance order — a canonical
order every miner can reproduce (paper Section IV-A).  ``nodes_sorted()``
gives an explicitly sorted order when insertion order is not meaningful.
The frozen form assigns integer ids in *insertion* order (stable under
incremental growth) and exposes the sorted order as a permutation
(``CSRGraph.sorted_order``), which the allocators sweep.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import GraphError, TransactionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.csr import CSRGraph

#: Type alias for account identifiers.  Any hashable, totally-orderable value
#: works; the chain substrate uses hex address strings.
Node = str

#: Delta-freeze falls back to a full rebuild when more than this fraction
#: of the graph's nodes need re-lowering — past that point the incremental
#: bookkeeping costs more than the straight O(N + E) pass it avoids.
DELTA_REBUILD_FRACTION = 0.25

#: A full rebuild whose delta log stayed intact (monotone growth, just a
#: too-large frontier) still carries the turbo warm-Louvain seeds forward
#: — but only up to this frontier share.  Past it the prior partition is
#: a worse starting point than a cold restart (measured in
#: tests/test_louvain_warm.py's interleaving suite), so the seeds die
#: with the snapshot exactly as on poisoned-log rebuilds.
REBUILD_SEED_CARRY_FRACTION = 0.5

#: Safety valve on mutation-journal growth: past this many edge entries
#: the journal is poisoned and detached, so an abandoned consumer (e.g. a
#: discarded controller whose workspace was never invalidated) cannot
#: grow the log without bound.  Generous on purpose — a τ₂ window at
#: bench scale logs a few thousand entries; a live consumer drains the
#: journal every adaptive run and never gets anywhere near it.
JOURNAL_EDGE_CAP = 1_000_000


class MutationJournal:
    """Consumable log of graph mutations since the last :meth:`drain`.

    The adaptive workspace (:class:`repro.core.engine.AdaptiveWorkspace`)
    keeps flat neighbourhood state alive *across* A-TxAllo runs instead of
    re-freezing the graph every τ₁ window.  It stays current by replaying
    this journal: ``nodes`` lists brand-new accounts in insertion order,
    ``edges`` lists every ``add_edge`` weight increment ``(u, v, w)`` in
    call order (self-loops as ``u == v``) — applying the increments in
    order reproduces the adjacency dicts' float accumulations bit for
    bit.  ``poisoned`` flags an out-of-band rewrite (window decay,
    pruning, a newer journal replacing this one) that the append-only log
    cannot describe; consumers must discard their derived state and
    rebuild from a fresh :meth:`TransactionGraph.freeze`.

    A graph feeds at most one journal at a time
    (:meth:`TransactionGraph.start_mutation_journal` poisons any previous
    one), so two workspaces sharing a graph degrade to rebuild-per-run
    rather than silently corrupting each other.
    """

    __slots__ = ("nodes", "edges", "poisoned")

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        self.edges: List[Tuple[Node, Node, float]] = []
        self.poisoned: bool = False

    def clear(self) -> None:
        """Drop the drained entries (consumers call this after replay)."""
        self.nodes = []
        self.edges = []


def pair_count(num_accounts: int) -> int:
    """``π(Tx)``: number of one-to-one edges induced by a transaction.

    ``π(Tx) = C(|A_Tx|, 2)`` (paper Section III-C).  A single-account
    transaction induces one self-loop, so ``pair_count(1) == 1`` by
    convention (the whole unit weight lands on the loop).
    """
    if num_accounts < 1:
        raise TransactionError(f"a transaction must touch at least one account, got {num_accounts}")
    if num_accounts == 1:
        return 1
    return math.comb(num_accounts, 2)


class TransactionGraph:
    """Undirected weighted multigraph-as-simple-graph with self-loops.

    Weights accumulate: adding the same account pair twice sums the edge
    weight, exactly as Definition 2 sums over all transactions involving
    both endpoints.
    """

    __slots__ = (
        "_adj",
        "_total_weight",
        "_num_edges",
        "_num_transactions",
        "_version",
        "_frozen",
        "_delta_nodes",
        "_delta_touched",
        "_delta_full",
        "_delta_enabled",
        "_freeze_counts",
        "_journal",
    )

    def __init__(self) -> None:
        self._adj: Dict[Node, Dict[Node, float]] = {}
        # Total edge weight, counting each unordered pair once and each
        # self-loop once.  Equals the number of transactions ingested via
        # add_transaction() because each transaction distributes weight 1.
        self._total_weight: float = 0.0
        self._num_edges: int = 0
        self._num_transactions: int = 0
        # Mutation counter + cached (version, CSRGraph) frozen snapshot.
        self._version: int = 0
        self._frozen: Optional[Tuple[int, "CSRGraph"]] = None
        # Delta log since the cached snapshot: nodes added (insertion
        # order), nodes whose rows changed, and whether the log no longer
        # describes the change (bulk rewrite -> full rebuild).
        self._delta_nodes: List[Node] = []
        self._delta_touched: set = set()
        self._delta_full: bool = False
        self._delta_enabled: bool = True
        self._freeze_counts: Dict[str, int] = {"full": 0, "delta": 0, "cached": 0}
        # Optional mutation journal (adaptive-workspace consumer).
        self._journal: Optional[MutationJournal] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, v: Node) -> None:
        """Ensure ``v`` exists (isolated nodes are permitted)."""
        if v not in self._adj:
            self._adj[v] = {}
            self._version += 1
            if self._delta_enabled and not self._delta_full and self._frozen is not None:
                self._delta_nodes.append(v)
            journal = self._journal
            if journal is not None:
                journal.nodes.append(v)

    def add_edge(self, u: Node, v: Node, weight: float) -> None:
        """Accumulate ``weight`` on the undirected edge ``{u, v}``.

        ``u == v`` creates/updates a self-loop.  Weights must be positive;
        zero-weight edges are a modelling error upstream.
        """
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight!r} for {{{u!r}, {v!r}}}")
        self.add_node(u)
        self.add_node(v)
        row = self._adj[u]
        if v in row:
            row[v] += weight
            if u != v:
                self._adj[v][u] += weight
        else:
            row[v] = weight
            if u != v:
                self._adj[v][u] = weight
            self._num_edges += 1
        self._total_weight += weight
        self._version += 1
        if self._delta_enabled and not self._delta_full and self._frozen is not None:
            self._delta_touched.add(u)
            self._delta_touched.add(v)
        journal = self._journal
        if journal is not None:
            edges = journal.edges
            edges.append((u, v, weight))
            if len(edges) > JOURNAL_EDGE_CAP:
                # No live consumer is draining this journal; stop paying
                # for it.  The (poisoned) journal makes any late reader
                # rebuild instead of trusting a truncated log.
                journal.poisoned = True
                self._journal = None

    def add_transaction(self, accounts: Iterable[Node]) -> None:
        """Ingest one transaction per Definition 2.

        ``accounts`` is the (possibly repeating) union of the transaction's
        input and output accounts; duplicates are collapsed, as the set
        ``A_Tx`` in the paper is a set.
        """
        unique: List[Node] = sorted(set(accounts))
        if not unique:
            raise TransactionError("a transaction must touch at least one account")
        self._num_transactions += 1
        n = len(unique)
        if n == 1:
            self.add_edge(unique[0], unique[0], 1.0)
            return
        share = 1.0 / pair_count(n)
        for i in range(n):
            for j in range(i + 1, n):
                self.add_edge(unique[i], unique[j], share)

    def add_transactions(self, transactions: Iterable[Iterable[Node]]) -> None:
        """Bulk :meth:`add_transaction`."""
        for accounts in transactions:
            self.add_transaction(accounts)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, v: Node) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    @property
    def num_nodes(self) -> int:
        """Number of accounts seen so far."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of distinct undirected edges (self-loops count once)."""
        return self._num_edges

    @property
    def num_transactions(self) -> int:
        """Number of transactions ingested via :meth:`add_transaction`."""
        return self._num_transactions

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights (pairs once, loops once).

        For a graph built purely with :meth:`add_transaction` this equals
        the transaction count, because every transaction spreads exactly
        one unit of weight.
        """
        return self._total_weight

    def nodes(self) -> Iterator[Node]:
        """Nodes in insertion (chronological-appearance) order."""
        return iter(self._adj)

    def nodes_sorted(self) -> List[Node]:
        """Nodes in ascending identifier order (a canonical order)."""
        return sorted(self._adj)

    def neighbours(self, v: Node) -> Dict[Node, float]:
        """Adjacency row of ``v`` (includes the self-loop if present).

        The returned mapping is *live*; callers must not mutate it.
        """
        try:
            return self._adj[v]
        except KeyError:
            raise GraphError(f"unknown node {v!r}") from None

    def edge_weight(self, u: Node, v: Node) -> float:
        """Weight of ``{u, v}``; 0.0 if absent."""
        row = self._adj.get(u)
        if row is None:
            return 0.0
        return row.get(v, 0.0)

    def self_loop(self, v: Node) -> float:
        """``w{v, v}`` — the self-loop weight of ``v`` (0.0 if none)."""
        return self.edge_weight(v, v)

    def external_strength(self, v: Node) -> float:
        """``w{v, V/v}`` — total weight from ``v`` to *other* nodes.

        Excludes the self-loop; this is the quantity the paper's throughput
        deltas use (Section V-B).
        """
        row = self.neighbours(v)
        loop = row.get(v, 0.0)
        return sum(row.values()) - loop

    def strength(self, v: Node) -> float:
        """Total incident weight of ``v``: external strength + self-loop."""
        return sum(self.neighbours(v).values())

    def degree(self, v: Node) -> int:
        """Number of distinct neighbours of ``v`` (self counts if looped)."""
        return len(self.neighbours(v))

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Yield each undirected edge exactly once as ``(u, v, w)``.

        Self-loops are yielded as ``(v, v, w)``.  Pair edges are oriented
        with the earlier-*inserted* endpoint first: the outer loop walks
        nodes in insertion order and ``seen`` holds exactly the nodes
        already walked, so a pair ``{u, v}`` is emitted at its
        earlier-inserted endpoint (the later one is still missing from
        ``seen``) and skipped at the later one.  A regression test pins
        this orientation; the frozen CSR form relies on it to replay
        edge-ordered passes bit-identically (insertion-ordered ids make
        this walk an ascending-id walk, see
        :class:`repro.core.csr.CSRGraph`).
        """
        seen: set = set()
        for u, row in self._adj.items():
            for v, w in row.items():
                if u == v:
                    yield u, v, w
                elif v not in seen:
                    yield u, v, w
            seen.add(u)

    # ------------------------------------------------------------------
    # Frozen (compiled) view
    # ------------------------------------------------------------------
    def freeze(self) -> "CSRGraph":
        """Compile the graph into its flat CSR form for the sweep engine.

        Returns a :class:`repro.core.csr.CSRGraph` snapshot: account
        strings interned to dense integer ids (insertion order, stable
        under growth) and adjacency lowered into flat
        index/neighbour/weight arrays plus per-node self-loop and
        strength vectors.  The snapshot is cached
        against an internal mutation counter — freezing an unchanged
        graph returns the same object, so back-to-back allocator runs
        (e.g. a (k, eta) parameter sweep) pay the O(N + E) lowering once.

        When the graph *has* changed but the recorded delta is small and
        monotone, the previous snapshot is extended incrementally
        (:meth:`repro.core.csr.CSRGraph.extend`): untouched rows are
        reused wholesale and only the mutated frontier is re-lowered.
        Bulk rewrites (window decay/pruning, see
        :meth:`_mark_bulk_mutation`) and deltas touching more than
        ``DELTA_REBUILD_FRACTION`` of the nodes rebuild from scratch.
        Either path yields an element-identical snapshot;
        :attr:`freeze_stats` counts which one ran.

        The snapshot is immutable and detached: mutating the graph
        afterwards does not touch it, it only invalidates the cache.
        """
        from repro.core.csr import CSRGraph, carry_warm_seeds

        frozen = self._frozen
        if frozen is not None and frozen[0] == self._version:
            self._freeze_counts["cached"] += 1
            return frozen[1]
        csr = None
        log_intact = (
            frozen is not None and self._delta_enabled and not self._delta_full
        )
        if log_intact:
            # Union, not sum: a brand-new connected node sits in both the
            # node log (via add_node) and the touched set (via add_edge).
            frontier = len(self._delta_touched.union(self._delta_nodes))
            if frontier <= DELTA_REBUILD_FRACTION * len(self._adj):
                csr = CSRGraph.extend(
                    self, frozen[1], self._delta_nodes, self._delta_touched
                )
                self._freeze_counts["delta"] += 1
        if csr is None:
            csr = CSRGraph.from_graph(self)
            self._freeze_counts["full"] += 1
            if (
                log_intact
                and frontier <= REBUILD_SEED_CARRY_FRACTION * len(self._adj)
            ):
                # The frontier was too large for an incremental extend,
                # but the log still describes monotone growth only — ids
                # are insertion-stable across the rebuild, so the prior
                # Louvain membership remains usable.  Carry the turbo
                # warm seeds instead of dropping them with the snapshot
                # (a τ₂ refresh right after a bursty window keeps its
                # warm start), as long as the partition is still mostly
                # fresh; the per-seed staleness check also still applies.
                delta_ids = [
                    csr.index_of[v]
                    for v in self._delta_touched.union(self._delta_nodes)
                ]
                carry_warm_seeds(frozen[1], csr, delta_ids)
        self._frozen = (self._version, csr)
        self._delta_nodes = []
        self._delta_touched.clear()
        self._delta_full = False
        return csr

    @property
    def delta_freeze_enabled(self) -> bool:
        """Whether :meth:`freeze` may extend snapshots incrementally."""
        return self._delta_enabled

    @delta_freeze_enabled.setter
    def delta_freeze_enabled(self, enabled: bool) -> None:
        self._delta_enabled = bool(enabled)
        # Toggling in either direction poisons the log: mutations made
        # while disabled are unlogged, so an extend after re-enabling
        # would silently produce a stale snapshot.  The next freeze()
        # rebuilds from scratch and restarts the log.
        self._delta_full = True
        self._delta_nodes = []
        self._delta_touched.clear()

    @property
    def freeze_stats(self) -> Dict[str, int]:
        """Snapshot-production counters: ``{"full", "delta", "cached"}``.

        ``full`` counts from-scratch :meth:`CSRGraph.from_graph`
        lowerings, ``delta`` incremental extends, ``cached`` hits on an
        unchanged snapshot.  Benchmarks and tests use this to prove the
        incremental path actually runs.
        """
        return dict(self._freeze_counts)

    def _mark_bulk_mutation(self) -> None:
        """Record an out-of-band adjacency rewrite (decay, pruning).

        Bumps the version and poisons the delta log: such rewrites touch
        every row (and may *remove* rows), which the append-only delta
        cannot describe, so the next :meth:`freeze` re-lowers from
        scratch.
        """
        self._version += 1
        self._delta_full = True
        self._delta_nodes = []
        self._delta_touched.clear()
        journal = self._journal
        if journal is not None:
            # Poison *and* detach: the consumer must rebuild anyway, so
            # appending further entries would be pure waste.
            journal.poisoned = True
            self._journal = None

    # ------------------------------------------------------------------
    # Mutation journal (adaptive-workspace plumbing)
    # ------------------------------------------------------------------
    def start_mutation_journal(self) -> MutationJournal:
        """Begin journaling mutations; returns the fresh journal.

        From this call on, every new node and every ``add_edge`` weight
        increment is appended to the returned :class:`MutationJournal`
        until it is replaced by another ``start_mutation_journal`` call
        (which poisons it) or detached via :meth:`stop_mutation_journal`.
        Bulk rewrites (:meth:`_mark_bulk_mutation`) and overflowing
        :data:`JOURNAL_EDGE_CAP` poison *and* detach it.  The caller
        owns draining and clearing it; the graph only appends.
        """
        old = self._journal
        if old is not None:
            old.poisoned = True
        journal = MutationJournal()
        self._journal = journal
        return journal

    def stop_mutation_journal(self, journal: MutationJournal) -> None:
        """Detach ``journal`` (no-op if it is not the active one)."""
        journal.poisoned = True
        if self._journal is journal:
            self._journal = None

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def subgraph_weight(self, nodes: Iterable[Node]) -> float:
        """Total weight internal to ``nodes`` (pairs once, loops once)."""
        node_set = set(nodes)
        total = 0.0
        for v in node_set:
            if v not in self._adj:
                continue
            for u, w in self._adj[v].items():
                if u == v:
                    total += w
                elif u in node_set and u > v:
                    total += w
        return total

    def copy(self) -> "TransactionGraph":
        """Deep copy preserving insertion order and all counters.

        The clone is of ``type(self)`` — subclasses hold extra state in
        their own slots and extend this via :meth:`_copy_extra_into`, so
        a :class:`~repro.core.forecast.DecayingTransactionGraph` copy
        keeps its decay configuration.  The clone starts with a cold
        freeze cache and an empty delta log.
        """
        clone = type(self).__new__(type(self))
        TransactionGraph.__init__(clone)
        clone._adj = {v: dict(row) for v, row in self._adj.items()}
        clone._total_weight = self._total_weight
        clone._num_edges = self._num_edges
        clone._num_transactions = self._num_transactions
        self._copy_extra_into(clone)
        return clone

    def _copy_extra_into(self, clone: "TransactionGraph") -> None:
        """Hook for subclasses to copy their own slots into ``clone``."""

    def degree_histogram(self, bins: int = 10) -> List[Tuple[int, int]]:
        """Coarse log-ish histogram of node degrees, for dataset cards.

        Returns ``(upper_bound, count)`` pairs with geometric bin edges.
        """
        if not self._adj:
            return []
        degrees = sorted(len(row) for row in self._adj.values())
        top = degrees[-1]
        edges_: List[int] = []
        bound = 1
        while bound < top and len(edges_) < bins - 1:
            edges_.append(bound)
            bound *= 4
        edges_.append(top)
        result = []
        idx = 0
        for bound in edges_:
            count = 0
            while idx < len(degrees) and degrees[idx] <= bound:
                count += 1
                idx += 1
            result.append((bound, count))
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TransactionGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"transactions={self.num_transactions}, weight={self.total_weight:.2f})"
        )
