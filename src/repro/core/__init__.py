"""Core TxAllo machinery: transaction graph, metrics and the two algorithms."""

from repro.core.allocation import Allocation, capped_throughput
from repro.core.forecast import (
    DecayingTransactionGraph,
    forecast_error,
    forecast_graph,
)
from repro.core.atxallo import ATxAlloResult, a_txallo
from repro.core.controller import TxAlloController, UpdateEvent
from repro.core.csr import CSRGraph
from repro.core.graph import Node, TransactionGraph, pair_count
from repro.core.gtxallo import GTxAlloResult, g_txallo
from repro.core.louvain import louvain_partition, modularity
from repro.core.metrics import (
    MetricsReport,
    average_latency,
    evaluate_allocation,
    graph_cross_shard_ratio,
    graph_shard_workloads,
    graph_throughput,
    is_cross_shard,
    mu,
    shard_latency,
    workload_balance,
    worst_case_latency,
)
from repro.core.objective import GainComputer
from repro.core.persistence import (
    AllocationCheckpoint,
    allocation_digest,
    load_allocation,
    save_allocation,
)
from repro.core.workload_model import (
    RoleAwareModel,
    ShardRole,
    UniformEta,
    WorkloadModel,
    effective_eta,
    evaluate_with_model,
    shard_roles,
)
from repro.core.params import TxAlloParams

__all__ = [
    "Allocation",
    "AllocationCheckpoint",
    "CSRGraph",
    "DecayingTransactionGraph",
    "RoleAwareModel",
    "ShardRole",
    "UniformEta",
    "WorkloadModel",
    "allocation_digest",
    "effective_eta",
    "evaluate_with_model",
    "forecast_error",
    "forecast_graph",
    "load_allocation",
    "save_allocation",
    "shard_roles",
    "ATxAlloResult",
    "GTxAlloResult",
    "GainComputer",
    "MetricsReport",
    "Node",
    "TransactionGraph",
    "TxAlloController",
    "TxAlloParams",
    "UpdateEvent",
    "a_txallo",
    "average_latency",
    "capped_throughput",
    "evaluate_allocation",
    "g_txallo",
    "graph_cross_shard_ratio",
    "graph_shard_workloads",
    "graph_throughput",
    "is_cross_shard",
    "louvain_partition",
    "modularity",
    "mu",
    "pair_count",
    "shard_latency",
    "workload_balance",
    "worst_case_latency",
]
