"""Scenario-matrix smoke row: the declared-factors harness, gated.

PR 9 added the scenario-matrix harness (:mod:`repro.eval.matrix`) and the
workload zoo (:mod:`repro.data.synthetic`): a declarative spec over
topology x scale x allocator x backend x cadence x fault-plan factors,
expanded with seeded repetitions and executed through
:class:`repro.chain.live.LiveShardedNetwork`.  This benchmark runs the
built-in smoke spec (2 topologies x 2 allocators x 2 seeded reps) three
times — sequentially, sequentially again, and through the fork process
pool — and records the structural facts every later matrix claim rests
on.  Writes ``BENCH_matrix.json`` next to this file:

``{"scale", "grid_scale", "cells", "all_cells_complete",
"deterministic", "workers_identical", "txallo_tps_ethereum",
"hash_tps_ethereum", "txallo_beats_hash", "matrix_seconds", ...}``

Gates (enforced by :func:`check_gates`, ``tests/test_bench_gate.py`` and
the CI perf job):

* **all cells complete** — every grid cell produced a row, every row
  drained fully (``committed == arrived``);
* **determinism** — two runs of the same spec agree on every
  non-runtime column (:data:`repro.eval.matrix.RUNTIME_COLUMNS`), and a
  4-worker pool run agrees with the sequential rows;
* **txallo >= hash committed TPS** on the planted-community (ethereum)
  topology, averaged over the seeded repetitions — the paper's headline
  claim, now standing on the matrix instead of a single hand-run.

Scale knob: ``--scale`` / the ``BENCH_SCALE`` env crank the grid's
workload scale (the spec's ``scales`` factor is ``0.2 x BENCH_SCALE``,
so CI's 0.5 pin lands on the smoke spec's native 0.1).  ``--artifacts``
additionally writes the full artifact tree (per-run folders +
``run_table.csv``) — the CI perf job uploads that.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

try:  # script mode from a clean checkout: resolve the src layout
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.parallel import pin_blas_threads

# Explicit thread ownership for honest timings: pin the BLAS/OpenMP
# knobs before any repro import can pull numpy in (the multi-core
# layer owns its parallelism -- see repro.core.parallel).
pin_blas_threads()

from repro.eval.matrix import MatrixSpec, run_matrix

BENCH_SCALE = float(os.environ.get("BENCH_SCALE", "0.5"))

#: The smoke spec's workload scale as a fraction of the bench scale:
#: CI's BENCH_SCALE=0.5 lands on the spec's native 0.1.
GRID_SCALE_FACTOR = 0.2
POOL_WORKERS = 4

OUT_PATH = Path(__file__).resolve().parent / "BENCH_matrix.json"


def _spec(scale: float) -> MatrixSpec:
    grid_scale = max(0.02, round(GRID_SCALE_FACTOR * scale, 4))
    return MatrixSpec(scales=(grid_scale,))


def run_bench(
    scale: float = BENCH_SCALE,
    out_path: Path = OUT_PATH,
    artifacts_dir: Path | None = None,
) -> dict:
    spec = _spec(scale)
    expected = len(spec.cells())

    t0 = time.perf_counter()
    first = run_matrix(
        spec, out_dir=str(artifacts_dir) if artifacts_dir is not None else None
    )
    matrix_seconds = time.perf_counter() - t0
    rerun = run_matrix(spec)
    pooled = run_matrix(spec, workers=POOL_WORKERS)

    all_complete = (
        len(first.results) == expected
        and all(r.ticks > 0 for r in first.results)
        and all(r.committed == r.arrived for r in first.results)
    )
    deterministic = first.comparable_rows() == rerun.comparable_rows()
    workers_identical = first.comparable_rows() == pooled.comparable_rows()

    txallo_tps = statistics.mean(
        r.committed_tps for r in first.select(topology="ethereum", allocator="txallo")
    )
    hash_tps = statistics.mean(
        r.committed_tps for r in first.select(topology="ethereum", allocator="hash")
    )

    payload = {
        "scale": scale,
        "grid_scale": spec.scales[0],
        "spec": spec.to_dict(),
        "cells": len(first.results),
        "expected_cells": expected,
        "all_cells_complete": all_complete,
        "deterministic": deterministic,
        "workers_identical": workers_identical,
        "pool_workers": POOL_WORKERS,
        "txallo_tps_ethereum": txallo_tps,
        "hash_tps_ethereum": hash_tps,
        "txallo_beats_hash": txallo_tps >= hash_tps,
        "matrix_seconds": matrix_seconds,
        "rows": [
            {
                "cell_id": r.cell_id,
                "committed_tps": r.committed_tps,
                "cross_shard_ratio": r.cross_shard_ratio,
                "mean_latency": r.mean_latency,
                "p99_latency": r.p99_latency,
                "moves": r.moves,
            }
            for r in first.results
        ],
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"== scenario-matrix smoke grid (scale={scale}) ==")
    for key, value in payload.items():
        if key in ("rows", "spec"):
            continue
        print(f"  {key}: {value}")
    print(first.render())
    return payload


def check_gates(payload: dict) -> list:
    """Return the list of failed gate descriptions (empty = all green)."""
    failures = []
    if not payload["all_cells_complete"]:
        failures.append(
            f"matrix completed {payload['cells']}/{payload['expected_cells']} "
            "cells (or a cell failed to drain)"
        )
    if not payload["deterministic"]:
        failures.append(
            "re-running the same spec changed non-runtime run-table columns"
        )
    if not payload["workers_identical"]:
        failures.append(
            f"{payload['pool_workers']}-worker pool rows differ from the "
            "sequential rows on non-runtime columns"
        )
    if not payload["txallo_beats_hash"]:
        failures.append(
            f"txallo committed TPS {payload['txallo_tps_ethereum']:.2f} fell "
            f"below hash {payload['hash_tps_ethereum']:.2f} on the "
            "planted-community workload"
        )
    return failures


def test_matrix_run_table(bench_scale):
    payload = run_bench(scale=bench_scale)
    failures = check_gates(payload)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=BENCH_SCALE,
        help="bench scale factor (default: BENCH_SCALE env or 0.5; the "
             f"grid's workload scale is {GRID_SCALE_FACTOR} x this)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUT_PATH,
        help=f"output run-table path (default {OUT_PATH.name} next to this file)",
    )
    parser.add_argument(
        "--artifacts", type=Path, default=None,
        help="also write the full artifact tree (spec.json, per-run "
             "folders, run_table.csv) to this directory",
    )
    args = parser.parse_args()
    result = run_bench(scale=args.scale, out_path=args.out, artifacts_dir=args.artifacts)
    problems = check_gates(result)
    for problem in problems:
        print(f"GATE FAILED: {problem}", file=sys.stderr)
    sys.exit(1 if problems else 0)
