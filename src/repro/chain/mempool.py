"""A chronological mempool.

The paper's throughput model assumes every shard "processes transactions
chronologically" — a shard may not improve its measured throughput by
cherry-picking cheap intra-shard transactions (Section III-B).  The mempool
therefore is strictly FIFO; the only policy knob is how much *workload*
(not how many transactions) a drain may remove, matching the capacity
model ``λ``.
"""

from __future__ import annotations

import collections
from typing import Deque, Iterable, List, Optional, Tuple

from repro.chain.types import Transaction
from repro.errors import SimulationError


class Mempool:
    """FIFO queue of (transaction, workload cost) entries."""

    def __init__(self) -> None:
        self._queue: Deque[Tuple[Transaction, float]] = collections.deque()
        self._pending_workload = 0.0

    def add(self, tx: Transaction, cost: float = 1.0) -> None:
        if cost <= 0:
            raise SimulationError(f"workload cost must be positive, got {cost!r}")
        self._queue.append((tx, cost))
        self._pending_workload += cost

    def add_all(self, txs: Iterable[Transaction], cost: float = 1.0) -> None:
        for tx in txs:
            self.add(tx, cost)

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def pending_workload(self) -> float:
        return self._pending_workload

    def peek(self) -> Optional[Transaction]:
        return self._queue[0][0] if self._queue else None

    def drain(self, capacity: float) -> List[Tuple[Transaction, float]]:
        """Remove transactions chronologically until ``capacity`` is spent.

        A transaction is only removed if its *full* cost fits the remaining
        capacity — work on a transaction is not split across drains, which
        matches block-granularity processing.
        """
        if capacity < 0:
            raise SimulationError(f"capacity must be non-negative, got {capacity!r}")
        drained: List[Tuple[Transaction, float]] = []
        remaining = capacity
        while self._queue and self._queue[0][1] <= remaining + 1e-12:
            tx, cost = self._queue.popleft()
            drained.append((tx, cost))
            remaining -= cost
            self._pending_workload -= cost
        if self._pending_workload < -1e-9:
            # Queued costs are strictly positive, so with items queued the
            # true pending workload is positive and float dust cannot push
            # the accumulator past the tolerance — a genuinely negative
            # value means the add/drain accounting itself broke.
            raise SimulationError(
                f"mempool workload accumulator went negative "
                f"({self._pending_workload!r}) with {len(self._queue)} queued"
            )
        if not self._queue:
            # Many add/drain cycles of non-dyadic costs (e.g. 0.1) leave
            # ~1e-16 dust in the accumulator; an empty queue has exactly
            # zero pending workload by definition.
            self._pending_workload = 0.0
        return drained
