"""Warm-start quality suite — the turbo backend's gated contract.

The turbo backend is *allowed* to produce a different allocation than
fast/reference (warm-started Louvain + work-skipping sweeps land on a
different deterministic local optimum), so these tests pin what turbo
promises instead of byte-parity:

* the TxAllo objective of a turbo allocation stays within
  :data:`repro.core.engine.WARM_OBJECTIVE_TOLERANCE` of the cold
  fast-backend result on the same graph, across randomised
  ingest / decay / refresh interleavings;
* turbo is deterministic: identical histories give identical mappings;
* turbo never contaminates the fast backend — ``backend="fast"`` stays
  byte-identical to ``"reference"`` even on a snapshot turbo already
  partitioned (separate memos);
* warm seeds ride ``CSRGraph.extend``; on full rebuilds they survive
  only when the delta log stayed intact and the frontier is still under
  ``REBUILD_SEED_CARRY_FRACTION`` (a bursty-but-monotone window), and
  die with the snapshot otherwise (decay / pruning / mostly-rewritten
  graphs);
* the controller's ``warm_stats`` counters report the warm/cold split.
"""

import random

import pytest

from repro.core.controller import TxAlloController
from repro.core.engine import WARM_OBJECTIVE_TOLERANCE, louvain_flat_warm
from repro.core.forecast import DecayingTransactionGraph
from repro.core.graph import TransactionGraph
from repro.core.gtxallo import g_txallo
from repro.core.louvain import louvain_partition
from repro.core.params import TxAlloParams
from repro.core.persistence import load_allocation, save_allocation
from tests.conftest import make_random_graph


def _random_transactions(rng, nodes, count, new_prefix):
    """A mixed batch: pair txs among known nodes plus a few new accounts."""
    txs = []
    for i in range(count):
        roll = rng.random()
        if roll < 0.15 and nodes:
            txs.append((f"{new_prefix}_{i}", rng.choice(nodes)))
        elif roll < 0.2:
            txs.append((f"{new_prefix}_solo_{i}",))
        else:
            txs.append(tuple(rng.sample(nodes, min(len(nodes), rng.choice([2, 2, 3])))))
    return txs


def _objectives_after_interleaving(graph, seed, rounds, k, decay_every=0):
    """Ingest/refresh (optionally decay) rounds; returns per-round
    (turbo_objective, fast_objective) pairs computed on identical graphs."""
    rng = random.Random(seed)
    params_turbo = TxAlloParams.with_capacity_for(600, k=k, backend="turbo")
    params_fast = params_turbo.replace(backend="fast")
    pairs = []
    for round_ in range(rounds):
        nodes = list(graph.nodes())
        for tx in _random_transactions(rng, nodes, 60, f"r{round_}"):
            graph.add_transaction(tx)
        if decay_every and (round_ + 1) % decay_every == 0:
            graph.advance_window()
        # freeze() here extends (or rebuilds) the snapshot exactly as the
        # controller's adaptive steps would between global refreshes.
        graph.freeze()
        turbo = g_txallo(graph, params_turbo).allocation
        fast = g_txallo(graph, params_fast).allocation
        pairs.append((turbo.total_throughput(), fast.total_throughput()))
    return pairs


class TestObjectiveTolerance:
    @pytest.mark.parametrize("seed", (1, 2, 3, 4))
    @pytest.mark.parametrize("k", (2, 6))
    def test_random_ingest_refresh_interleavings(self, seed, k):
        graph = make_random_graph(num_accounts=80, num_transactions=500, seed=seed)
        for turbo_obj, fast_obj in _objectives_after_interleaving(
            graph, seed, rounds=5, k=k
        ):
            assert turbo_obj >= (1.0 - WARM_OBJECTIVE_TOLERANCE) * fast_obj

    @pytest.mark.parametrize("seed", (5, 6))
    def test_ingest_decay_refresh_interleavings(self, seed):
        graph = DecayingTransactionGraph(decay=0.6, prune_threshold=1e-3)
        rng = random.Random(seed)
        accounts = [f"acc{i:03d}" for i in range(60)]
        for _ in range(300):
            graph.add_transaction(tuple(rng.sample(accounts, 2)))
        for turbo_obj, fast_obj in _objectives_after_interleaving(
            graph, seed, rounds=6, k=4, decay_every=2
        ):
            assert turbo_obj >= (1.0 - WARM_OBJECTIVE_TOLERANCE) * fast_obj

    def test_turbo_is_deterministic(self):
        mappings = []
        for _ in range(2):
            graph = make_random_graph(seed=11)
            params = TxAlloParams.with_capacity_for(400, k=4, backend="turbo")
            g_txallo(graph, params)  # cold; memoises the seed partition
            graph.add_transaction(("acc001", "acc042"))
            graph.add_transaction(("fresh", "acc007"))
            graph.freeze()
            mappings.append(g_txallo(graph, params).allocation.mapping())
        assert mappings[0] == mappings[1]


class TestBackendIsolation:
    def test_turbo_does_not_poison_fast_parity(self):
        """fast must stay byte-identical to reference on a snapshot the
        turbo backend already partitioned (memo separation)."""
        graph = make_random_graph(seed=7)
        params = TxAlloParams.with_capacity_for(400, k=4)
        g_txallo(graph, params, backend="turbo")
        graph.add_transaction(("acc001", "acc002"))
        graph.freeze()
        g_txallo(graph, params, backend="turbo")  # warm run on the extend

        ref = g_txallo(graph, params, backend="reference")
        fast = g_txallo(graph, params, backend="fast")
        assert ref.allocation.mapping() == fast.allocation.mapping()
        assert ref.allocation.sigma == fast.allocation.sigma
        assert ref.allocation.lam_hat == fast.allocation.lam_hat
        assert (ref.sweeps, ref.moves) == (fast.sweeps, fast.moves)

    def test_warm_partition_is_a_complete_partition(self):
        graph = make_random_graph(seed=8)
        louvain_partition(graph, backend="turbo")
        graph.add_transaction(("acc000", "acc059"))
        partition = louvain_partition(graph, backend="turbo")
        assert set(partition) == set(graph.nodes())
        labels = set(partition.values())
        assert labels == set(range(len(labels)))  # dense, 0-based

    def test_warm_memo_serves_fresh_copies(self):
        graph = make_random_graph(seed=9)
        louvain_partition(graph, backend="turbo")
        graph.add_transaction(("acc001", "acc050"))
        p1 = louvain_partition(graph, backend="turbo")
        p1[next(iter(p1))] = 10**6
        assert louvain_partition(graph, backend="turbo") != p1


class TestWarmSeedLifecycle:
    def test_extend_carries_seed_and_flags_warm(self):
        graph = make_random_graph(seed=10)
        csr0 = graph.freeze()
        louvain_flat_warm(csr0)  # cold: nothing to seed from
        assert csr0.louvain_warm_hit is False

        graph.add_transaction(("acc003", "acc033"))
        csr1 = graph.freeze()
        assert csr1 is not csr0
        assert (32, 1.0) in csr1.warm_seeds
        louvain_flat_warm(csr1)
        assert csr1.louvain_warm_hit is True

    def test_full_rebuild_invalidates_seed(self):
        graph = DecayingTransactionGraph(decay=0.5, prune_threshold=1e-3)
        rng = random.Random(3)
        accounts = [f"a{i}" for i in range(40)]
        for _ in range(200):
            graph.add_transaction(tuple(rng.sample(accounts, 2)))
        csr0 = graph.freeze()
        louvain_flat_warm(csr0)

        graph.advance_window()  # bulk rewrite -> full rebuild
        graph.add_transaction(("a0", "a1"))
        csr1 = graph.freeze()
        assert csr1.warm_seeds == {}
        louvain_flat_warm(csr1)
        assert csr1.louvain_warm_hit is False

    def test_older_snapshot_survives_shared_frontier_growth(self):
        """The chain shares one mutable frontier set; later extends may
        inject ids beyond an older snapshot's node range.  Warm Louvain
        on the older snapshot must clamp them, not crash."""
        graph = make_random_graph(seed=14)
        csr0 = graph.freeze()
        louvain_flat_warm(csr0)  # cold; memoises the seed partition
        graph.add_transaction(("acc001", "acc002"))
        csr1 = graph.freeze()  # carries a seed whose frontier is shared
        # Newer extend adds brand-new accounts: their ids are beyond
        # csr1's range but land in csr1's shared frontier set.
        graph.add_transaction(("brand_new_a", "brand_new_b"))
        graph.add_transaction(("brand_new_c", "acc003"))
        csr2 = graph.freeze()
        assert csr2.num_nodes > csr1.num_nodes

        partition = louvain_flat_warm(csr1)  # must not raise
        assert len(partition) == csr1.num_nodes
        assert csr1.louvain_warm_hit is True
        # And the newest snapshot still warm-starts correctly.
        newest = louvain_flat_warm(csr2)
        assert len(newest) == csr2.num_nodes

    def test_intact_log_full_rebuild_carries_seed(self):
        """A monotone frontier past ``DELTA_REBUILD_FRACTION`` forces the
        full O(N+E) re-lowering, but — ids being insertion-stable — the
        turbo seeds ride across it when the frontier share stays under
        ``REBUILD_SEED_CARRY_FRACTION``, so a τ₂ refresh right after a
        bursty window still warm-starts."""
        graph = make_random_graph(seed=11)
        csr0 = graph.freeze()
        louvain_flat_warm(csr0)
        full0 = graph.freeze_stats["full"]
        # Touch ~35% of the nodes: above the 25% extend cutoff, below
        # the 50% seed-carry cutoff.
        nodes = sorted(graph.nodes())
        upto = int(len(nodes) * 0.35)
        for i in range(0, upto - 1, 2):
            graph.add_transaction((nodes[i], nodes[i + 1]))
        csr1 = graph.freeze()
        assert graph.freeze_stats["full"] == full0 + 1  # rebuilt, not extended
        assert (32, 1.0) in csr1.warm_seeds
        louvain_flat_warm(csr1)
        assert csr1.louvain_warm_hit is True

    def test_oversized_frontier_falls_back_cold(self):
        graph = make_random_graph(seed=12)
        csr0 = graph.freeze()
        louvain_flat_warm(csr0)
        # Touch (nearly) every node: the accumulated frontier exceeds the
        # warm fallback fraction even though delta-freeze may still extend.
        nodes = list(graph.nodes())
        for i in range(0, len(nodes) - 1, 2):
            graph.add_transaction((nodes[i], nodes[i + 1]))
        csr1 = graph.freeze()
        louvain_flat_warm(csr1)
        assert csr1.louvain_warm_hit is False


class TestControllerWarmStats:
    def _stream(self, rng, nodes, blocks, txs_per_block):
        out = []
        for b in range(blocks):
            block = _random_transactions(rng, nodes, txs_per_block, f"b{b}")
            out.append(block)
        return out

    def test_turbo_controller_counts_warm_refreshes(self):
        # Account pool much larger than a τ₂ window's frontier, so the
        # carried seed survives the warm fallback fraction.
        rng = random.Random(0)
        accounts = [f"acc{i:03d}" for i in range(400)]
        seed_txs = [tuple(rng.sample(accounts, 2)) for _ in range(1200)]
        params = TxAlloParams.with_capacity_for(
            1200, k=4, tau1=1, tau2=5, backend="turbo"
        )
        controller = TxAlloController(params, seed_transactions=seed_txs)
        for block in self._stream(rng, accounts, blocks=15, txs_per_block=10):
            controller.observe_block(block)
        stats = controller.warm_stats
        assert stats["cold"] >= 1  # the seed run has no prior partition
        assert stats["warm"] >= 1  # scheduled refreshes warm-start
        assert len(controller.global_events) == stats["warm"] + stats["cold"]

    def test_fast_controller_counters_stay_zero(self):
        rng = random.Random(1)
        accounts = [f"acc{i:03d}" for i in range(40)]
        seed_txs = [tuple(rng.sample(accounts, 2)) for _ in range(200)]
        params = TxAlloParams.with_capacity_for(200, k=4, tau1=1, tau2=5)
        controller = TxAlloController(params, seed_transactions=seed_txs)
        for block in self._stream(rng, accounts, blocks=10, txs_per_block=10):
            controller.observe_block(block)
        assert controller.warm_stats == {"warm": 0, "cold": 0}


class TestPlumbing:
    def test_params_accept_turbo(self):
        assert TxAlloParams(k=2, backend="turbo").backend == "turbo"

    def test_persistence_roundtrip_turbo(self, tmp_path):
        path = tmp_path / "ckpt.json"
        params = TxAlloParams(k=4, backend="turbo")
        save_allocation(path, {"a": 1, "b": 0}, params)
        _, loaded, _ = load_allocation(path)
        assert loaded.backend == "turbo"

    def test_turbo_on_empty_and_tiny_graphs(self):
        params = TxAlloParams.with_capacity_for(1, k=3, backend="turbo")
        result = g_txallo(TransactionGraph(), params)
        assert result.allocation.mapping() == {}

        solo = TransactionGraph()
        solo.add_transaction(("only",))
        solo.freeze()
        solo.add_transaction(("only", "other"))
        result = g_txallo(solo, params)
        assert set(result.allocation.mapping()) == {"only", "other"}
