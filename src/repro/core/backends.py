"""Backend strategy registry — every engine tier, one lookup.

This is the engine-side sibling of :mod:`repro.allocators`: where that
registry maps allocator *names* to allocator factories, this one maps
``TxAlloParams.backend`` names to a :class:`BackendSpec` declaring, per
tier, the three kernels the allocation stack dispatches to — Louvain,
the G-TxAllo sweep, the A-TxAllo sweep — together with the tier's parity
contract and its availability predicate.  ``louvain_partition``,
``g_txallo``, ``a_txallo``, ``TxAlloParams`` validation, the controller's
workspace/warm-stats decisions, the CLI's ``--backend`` choices and the
benchmarks all resolve backends through :func:`get_backend` /
:func:`resolve_backend` instead of string-switching, so a fourth tier
(numba, a C extension, ...) is one :func:`register_backend` call, not a
multi-file surgery.

Built-in tiers
--------------
``reference``
    The dict-based executable specification (`louvain.py` / `gtxallo.py`
    / `atxallo.py` module bodies).  Slow, readable, the parity anchor.
``fast`` (default)
    The flat-array CSR sweep engine (:mod:`repro.core.engine`).
    **Byte-identical** to the reference — same mapping, same cache
    floats, same sweep/move counts.
``turbo``
    Fast plus warm-started Louvain and work-skipping sweeps.
    **Objective-gated**: allowed to land on a different local optimum as
    long as its total capped throughput stays within
    :data:`OBJECTIVE_TOLERANCE` of the cold fast result.
``vector``
    numpy segment-op kernels over the CSR arrays
    (:mod:`repro.core.vector`).  Objective-gated like turbo (float
    summation order differs from the reference by construction), and
    *optional*: numpy is the ``repro[vector]`` extra, and when the
    import is unavailable the tier falls back to ``fast`` at resolve
    time with a single warning (:func:`resolve_backend`).
``parallel``
    The vector tier's Louvain/G-TxAllo kernels plus the shard-parallel
    A-TxAllo kernel (:mod:`repro.core.parallel`): per-shard batched
    frozen-state proposals in ``TxAlloParams.workers`` threads, exact
    sequential apply + conflict passes.  Objective-gated, optional like
    vector (falls back to ``vector`` → ``fast``), and
    *workers-independent*: any ``workers`` value yields the identical
    allocation — the knob trades wall-clock only.

Kernel signatures
-----------------
* ``louvain_kernel(graph, max_levels, resolution) -> Dict[Node, int]``
* ``gtxallo_kernel(graph, params, initial_partition, node_order) ->
  (allocation, louvain_communities, small_nodes_absorbed, sweeps, moves,
  init_seconds, optimise_seconds)``
* ``atxallo_kernel(alloc, touched, epsilon, workspace) ->
  (new_nodes, swept_nodes, sweeps, moves, converged)``

The spec callables below import their implementation modules lazily:
this module sits *under* ``params``/``louvain``/``gtxallo``/``atxallo``
in the import graph, and the engine imports those reference modules —
eager kernel imports here would close the cycle.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ParameterError

#: Relative tolerance of the objective gate shared by every
#: ``objective_gated`` tier: the tier's total capped throughput must be
#: ``>= (1 - OBJECTIVE_TOLERANCE) *`` the cold fast-backend result on
#: the same graph and parameters.  ``repro.core.engine`` re-exports this
#: as ``WARM_OBJECTIVE_TOLERANCE`` (the historical name tests and
#: benchmarks gate against).
OBJECTIVE_TOLERANCE = 0.02

#: ``BackendSpec.parity`` values.
BYTE_IDENTICAL = "byte_identical"
OBJECTIVE_GATED = "objective_gated"


def _always_available() -> bool:
    return True


def numpy_available() -> bool:
    """True when ``import numpy`` succeeds — the vector tier's predicate."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


@dataclasses.dataclass(frozen=True)
class BackendSpec:
    """One engine tier: its kernels, parity contract and availability.

    ``parity`` is :data:`BYTE_IDENTICAL` (the tier must reproduce the
    reference bit-for-bit; ``tolerance`` is 0) or
    :data:`OBJECTIVE_GATED` (the tier may land on a different local
    optimum, gated on total capped throughput within ``tolerance``).

    ``available`` is checked by :func:`resolve_backend` before
    dispatching; when it returns False the resolver walks ``fallback``
    (warning once per process) instead of failing — optional-dependency
    tiers degrade, they do not break the run.

    ``uses_workspace`` tells the controller the tier's A-TxAllo kernel
    runs on the flat engine and accepts an
    :class:`~repro.core.engine.AdaptiveWorkspace`; ``warm_louvain``
    that its global runs stamp ``louvain_warm_hit`` for the warm/cold
    counters.

    ``workers_aware`` declares that the tier's kernels read
    ``TxAlloParams.workers`` and split work across that many
    threads/processes (the ``parallel`` tier today).  Other tiers ignore
    the knob entirely, so ``workers`` composes with any backend without
    changing its results.
    """

    name: str
    description: str
    parity: str
    louvain_kernel: Callable
    gtxallo_kernel: Callable
    atxallo_kernel: Callable
    tolerance: float = 0.0
    available: Callable[[], bool] = _always_available
    fallback: Optional[str] = None
    uses_workspace: bool = False
    warm_louvain: bool = False
    workers_aware: bool = False


_REGISTRY: Dict[str, BackendSpec] = {}

#: Backend names that already warned about an unavailable tier this
#: process — the fallback is taken silently afterwards.
_FALLBACK_WARNED: set = set()


def register_backend(spec: BackendSpec, *, overwrite: bool = False) -> BackendSpec:
    """Register ``spec`` under ``spec.name``; returns it for chaining."""
    if spec.parity not in (BYTE_IDENTICAL, OBJECTIVE_GATED):
        raise ParameterError(
            f"backend parity must be {BYTE_IDENTICAL!r} or "
            f"{OBJECTIVE_GATED!r}, got {spec.parity!r}"
        )
    if spec.name in _REGISTRY and not overwrite:
        raise ParameterError(f"backend {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_backend(name: str) -> None:
    """Remove a backend (for tests registering throwaway tiers)."""
    _REGISTRY.pop(name, None)
    _FALLBACK_WARNED.discard(name)


def names() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> BackendSpec:
    """The spec registered under ``name``.

    Raises :class:`~repro.errors.ParameterError` (a ``ValueError``) with
    the one canonical unknown-backend message — every dispatcher and
    ``TxAlloParams`` validation surface this same text.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ParameterError(
            f"unknown backend {name!r}, available: [{', '.join(names())}]"
        ) from None


def resolve_backend(name: str) -> BackendSpec:
    """Like :func:`get_backend`, but walks unavailable tiers' fallbacks.

    An optional-dependency tier (``vector`` without numpy) resolves to
    its declared fallback with one ``RuntimeWarning`` per process; a
    tier that is unavailable *and* has no fallback raises.
    """
    spec = get_backend(name)
    seen = set()
    while not spec.available():
        if spec.fallback is None:
            raise ParameterError(
                f"backend {spec.name!r} is unavailable and declares no fallback"
            )
        if spec.name in seen:
            raise ParameterError(
                f"backend fallback cycle at {spec.name!r}"
            )
        seen.add(spec.name)
        if spec.name not in _FALLBACK_WARNED:
            _FALLBACK_WARNED.add(spec.name)
            warnings.warn(
                f"backend {spec.name!r} is unavailable "
                f"({spec.description.split(';')[0]}); falling back to "
                f"{spec.fallback!r}",
                RuntimeWarning,
                stacklevel=3,
            )
        spec = get_backend(spec.fallback)
    return spec


def reset_fallback_warnings() -> None:
    """Re-arm the once-per-process fallback warnings (tests only)."""
    _FALLBACK_WARNED.clear()


# ======================================================================
# Built-in tiers.  Kernels import their modules lazily (see module
# docstring); each wrapper normalises to the registry signatures.
# ======================================================================
def _louvain_reference(graph, max_levels, resolution):
    from repro.core.louvain import _louvain_reference_kernel

    return _louvain_reference_kernel(graph, max_levels, resolution)


def _gtxallo_reference(graph, params, initial_partition, node_order):
    from repro.core.gtxallo import _g_txallo_reference

    return _g_txallo_reference(graph, params, initial_partition, node_order)


def _atxallo_reference(alloc, touched, epsilon, workspace):
    # The reference path scans the live dicts every sweep — the
    # workspace cache has nothing to offer it.
    from repro.core.atxallo import _a_txallo_reference

    return _a_txallo_reference(alloc, touched, epsilon)


def _louvain_fast(graph, max_levels, resolution):
    from repro.core.engine import louvain_fast

    return louvain_fast(graph, max_levels=max_levels, resolution=resolution, warm=False)


def _gtxallo_fast(graph, params, initial_partition, node_order):
    from repro.core.engine import g_txallo_flat

    return g_txallo_flat(
        graph, params, initial_partition=initial_partition,
        node_order=node_order, warm=False,
    )


def _atxallo_flat(alloc, touched, epsilon, workspace):
    from repro.core.engine import a_txallo_flat

    return a_txallo_flat(alloc, touched, epsilon, workspace=workspace)


def _louvain_turbo(graph, max_levels, resolution):
    from repro.core.engine import louvain_fast

    return louvain_fast(graph, max_levels=max_levels, resolution=resolution, warm=True)


def _gtxallo_turbo(graph, params, initial_partition, node_order):
    from repro.core.engine import g_txallo_flat

    return g_txallo_flat(
        graph, params, initial_partition=initial_partition,
        node_order=node_order, warm=True,
    )


def _louvain_vector(graph, max_levels, resolution):
    from repro.core.vector import louvain_vector

    return louvain_vector(graph, max_levels=max_levels, resolution=resolution)


def _gtxallo_vector(graph, params, initial_partition, node_order):
    from repro.core.vector import g_txallo_vector

    return g_txallo_vector(
        graph, params, initial_partition=initial_partition, node_order=node_order
    )


register_backend(BackendSpec(
    name="fast",
    description="flat-array CSR sweep engine; byte-identical to the reference",
    parity=BYTE_IDENTICAL,
    louvain_kernel=_louvain_fast,
    gtxallo_kernel=_gtxallo_fast,
    atxallo_kernel=_atxallo_flat,
    uses_workspace=True,
))

register_backend(BackendSpec(
    name="reference",
    description="dict-based executable specification (the parity anchor)",
    parity=BYTE_IDENTICAL,
    louvain_kernel=_louvain_reference,
    gtxallo_kernel=_gtxallo_reference,
    atxallo_kernel=_atxallo_reference,
))

register_backend(BackendSpec(
    name="turbo",
    description="warm-started Louvain + work-skipping sweeps on the flat engine",
    parity=OBJECTIVE_GATED,
    tolerance=OBJECTIVE_TOLERANCE,
    louvain_kernel=_louvain_turbo,
    gtxallo_kernel=_gtxallo_turbo,
    atxallo_kernel=_atxallo_flat,
    uses_workspace=True,
    warm_louvain=True,
))

def _atxallo_parallel(alloc, touched, epsilon, workspace):
    from repro.core.parallel import a_txallo_parallel

    return a_txallo_parallel(alloc, touched, epsilon, workspace=workspace)


register_backend(BackendSpec(
    name="vector",
    description="numpy segment-op kernels (requires the repro[vector] extra)",
    parity=OBJECTIVE_GATED,
    tolerance=OBJECTIVE_TOLERANCE,
    available=numpy_available,
    fallback="fast",
    louvain_kernel=_louvain_vector,
    gtxallo_kernel=_gtxallo_vector,
    # A-TxAllo stays on the byte-identical flat kernel: the adaptive
    # sweeps touch O(|V̂|) nodes, where the flat engine is already
    # optimal and the AdaptiveWorkspace batching applies unchanged.
    atxallo_kernel=_atxallo_flat,
    uses_workspace=True,
))

register_backend(BackendSpec(
    name="parallel",
    description=(
        "vector tier + shard-parallel A-TxAllo sweeps across "
        "TxAlloParams.workers threads (requires the repro[vector] extra)"
    ),
    parity=OBJECTIVE_GATED,
    tolerance=OBJECTIVE_TOLERANCE,
    available=numpy_available,
    fallback="vector",
    louvain_kernel=_louvain_vector,
    gtxallo_kernel=_gtxallo_vector,
    # Large windows run the shard-parallel batched kernel
    # (repro.core.parallel): per-shard frozen-state proposal batches in
    # worker threads, an exact sequential apply pass, and a sequential
    # conflict pass over the overlap — identical results for any
    # ``workers`` value, objective-gated like turbo/vector.  Windows
    # under MIN_PARALLEL_TOUCHED delegate to the flat kernel.  Both
    # paths consume the AdaptiveWorkspace, so the τ₁ loop keeps its
    # freeze-free batching.
    atxallo_kernel=_atxallo_parallel,
    uses_workspace=True,
    workers_aware=True,
))
