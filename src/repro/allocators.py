"""String-keyed allocator registry — every allocation method, one lookup.

This is the integration layer over :mod:`repro.core.allocator`: the
built-in methods of the paper's evaluation (Section VI-B) are registered
here under stable names, and every consumer — the figure runners, the
live network harness, the CLI's ``--methods`` flag — resolves allocators
through :func:`get` / :func:`get_online` instead of string-switching.

Built-in names
--------------
``txallo``
    One-shot G-TxAllo (static).  Its online form (via
    :func:`get_online`) is the dynamic :class:`TxAlloController`.
``txallo_online``
    The τ₁/τ₂ controller itself (online), for direct use.
``random`` (alias ``hash``)
    Chainspace-style ``SHA256(address) mod k`` (static).
``prefix``
    Monoxide-style hash-prefix allocation (static).
``metis``
    METIS-style multilevel partitioning (static).
``shard_scheduler``
    The online Shard Scheduler of Krol et al. (AFT'21).
``txallo_resilient``
    The τ₁/τ₂ controller under a supervised wrapper
    (:class:`repro.core.resilience.ResilientAllocator`): exception
    isolation, block-clocked retry/backoff, circuit breaker with
    degraded routing (online).

Adding an allocator
-------------------
A new method is one registration, not a four-layer surgery::

    from repro import allocators
    from repro.core.allocator import FunctionAllocator

    allocators.register(
        "round_robin",
        lambda: FunctionAllocator(
            "round_robin",
            lambda graph, params: {
                a: i % params.k
                for i, a in enumerate(graph.nodes_sorted())
            },
        ),
        kind="static",
        description="index-order round robin (toy)",
    )

After that, ``repro.allocators.get("round_robin")`` works everywhere:
``run_method`` / ``sweep`` / ``figure4`` accept the name, ``live_compare``
and the live network drive it through
:meth:`~repro.core.allocator.StaticAllocator.as_online`, and the CLI's
``--methods`` flag admits it.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.baselines.hash_allocation import (
    hash_partition,
    prefix_partition,
    prefix_shard,
)
from repro.baselines.metis import metis_partition
from repro.baselines.shard_scheduler import ShardScheduler
from repro.core.allocator import (
    AllocationUpdate,
    AllocatorBase,
    FunctionAllocator,
    OnlineAllocator,
    OnlineRunResult,
    hash_fallback_shard,
)
from repro.core.controller import TxAlloController
from repro.core.graph import Node, TransactionGraph
from repro.core.gtxallo import g_txallo
from repro.core.params import TxAlloParams
from repro.core.resilience import ResilientAllocator
from repro.errors import ParameterError


# ----------------------------------------------------------------------
# Online adapter for the Shard Scheduler baseline
# ----------------------------------------------------------------------
class ShardSchedulerAllocator(OnlineAllocator):
    """The online Shard Scheduler (Krol et al.) behind the protocol.

    ``observe_block`` feeds each transaction through the scheduler's
    placement/migration rule; ``seed_transactions`` warm the scheduler
    with history so live comparisons start from the same knowledge as
    the graph methods.
    """

    name = "shard_scheduler"

    def __init__(
        self,
        params: TxAlloParams,
        seed_transactions: Optional[Iterable[Sequence[Node]]] = None,
        *,
        buffer_ratio: float = 1.0,
    ) -> None:
        self.params = params
        self.scheduler = ShardScheduler(params, buffer_ratio=buffer_ratio)
        if seed_transactions is not None:
            for accounts in seed_transactions:
                self.scheduler.observe(accounts)

    def observe_block(self, transactions) -> Optional[AllocationUpdate]:
        before = self.scheduler.num_migrations
        for accounts in transactions:
            self.scheduler.observe(accounts)
        moves = self.scheduler.num_migrations - before
        if moves:
            return AllocationUpdate(kind="migration", moves=moves)
        return None

    def shard_of(self, account: Node) -> int:
        shard = self.scheduler.mapping.get(account)
        if shard is not None:
            return shard
        return hash_fallback_shard(account, self.params.k)

    def mapping(self) -> Dict[Node, int]:
        return dict(self.scheduler.mapping)

    def run_stream(self, transactions) -> OnlineRunResult:
        # The scheduler charges loads internally at processing time —
        # its native accounting is exactly the protocol's contract.  Its
        # counters are cumulative over the instance's lifetime, so on a
        # seed-warmed allocator the pre-stream state must be subtracted:
        # run_stream reports the replayed stream only.
        scheduler = self.scheduler
        loads_before = list(scheduler.loads)
        lam_hat_before = list(scheduler.lam_hat)
        txs_before = scheduler.num_transactions
        cross_before = scheduler.num_cross_shard
        result = scheduler.run(transactions)
        return OnlineRunResult(
            mapping=dict(result.mapping),
            shard_loads=tuple(
                a - b for a, b in zip(result.shard_loads, loads_before)
            ),
            shard_lam_hat=tuple(
                a - b for a, b in zip(result.shard_lam_hat, lam_hat_before)
            ),
            num_transactions=result.num_transactions - txs_before,
            num_cross_shard=result.num_cross_shard - cross_before,
        )


# ----------------------------------------------------------------------
# Registry machinery
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class AllocatorEntry:
    """One registered allocation method.

    ``factory`` builds the base form (no-arg for static allocators;
    ``(params, seed_transactions=None)`` keywords for online ones).
    ``online_factory`` — ``(params, seed_transactions=None,
    seed_graph=None)`` — overrides how :func:`get_online` builds the
    method's live form (e.g. ``txallo`` upgrades to the dynamic
    controller); when absent, static entries freeze one allocation via
    ``as_online`` and online entries use ``factory`` directly.
    ``eta_independent`` marks mappings that depend only on ``k``, which
    the sweep cache exploits (hash, METIS).
    """

    name: str
    kind: str  # "static" | "online"
    factory: Callable[..., AllocatorBase]
    description: str = ""
    aliases: Tuple[str, ...] = ()
    eta_independent: bool = False
    online_factory: Optional[Callable[..., OnlineAllocator]] = None


_REGISTRY: Dict[str, AllocatorEntry] = {}
_ALIASES: Dict[str, str] = {}


def register(
    name: str,
    factory: Callable[..., AllocatorBase],
    *,
    kind: str,
    description: str = "",
    aliases: Sequence[str] = (),
    eta_independent: bool = False,
    online_factory: Optional[Callable[..., OnlineAllocator]] = None,
    overwrite: bool = False,
) -> AllocatorEntry:
    """Register an allocation method under ``name`` (plus ``aliases``)."""
    if kind not in ("static", "online"):
        raise ParameterError(
            f"allocator kind must be 'static' or 'online', got {kind!r}"
        )
    taken = set(_REGISTRY) | set(_ALIASES)
    clashes = ({name} | set(aliases)) & taken
    if clashes:
        if not overwrite:
            raise ParameterError(
                f"allocator name(s) already registered: {sorted(clashes)}; "
                "pass overwrite=True to replace"
            )
        # Displace whatever owned the clashing names, aliases included,
        # so no stale alias keeps pointing at a removed (or replaced)
        # entry.
        for clash in sorted(clashes):
            if clash in _REGISTRY:
                _remove_entry(clash)
            else:
                _ALIASES.pop(clash, None)
    entry = AllocatorEntry(
        name=name,
        kind=kind,
        factory=factory,
        description=description,
        aliases=tuple(aliases),
        eta_independent=eta_independent,
        online_factory=online_factory,
    )
    _REGISTRY[name] = entry
    for alias in entry.aliases:
        _ALIASES[alias] = name
    return entry


def _remove_entry(canonical: str) -> None:
    entry = _REGISTRY.pop(canonical)
    for alias in entry.aliases:
        # Only drop aliases this entry still owns — an overwrite may
        # have re-pointed one at a different entry.
        if _ALIASES.get(alias) == canonical:
            del _ALIASES[alias]


def unregister(name: str) -> None:
    """Remove a registered allocator (and the aliases it still owns)."""
    _remove_entry(get_entry(name).name)


def available() -> Tuple[str, ...]:
    """Canonical names of every registered allocator, sorted."""
    return tuple(sorted(_REGISTRY))


def get_entry(name: str) -> AllocatorEntry:
    """Resolve ``name`` (or an alias) to its registry entry."""
    key = _ALIASES.get(name, name)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ParameterError(
            f"unknown allocator {name!r}; available: "
            f"{', '.join(available())}"
        ) from None


def get(name: str, **kwargs) -> AllocatorBase:
    """Build a fresh allocator instance by registered name.

    Static allocators take no arguments; online ones require
    ``params=...`` (and accept ``seed_transactions=...``).
    """
    return get_entry(name).factory(**kwargs)


def get_online(
    name: str,
    params: TxAlloParams,
    *,
    seed_transactions: Optional[Iterable[Sequence[Node]]] = None,
    seed_graph: Optional[TransactionGraph] = None,
) -> OnlineAllocator:
    """Build the method's live form, seeded with history.

    Online methods are constructed warm (``seed_transactions`` observed,
    or the controller's graph pre-built); static methods allocate once
    over the seed history and are frozen via ``as_online``.  The result
    plugs straight into :class:`repro.chain.live.LiveShardedNetwork`.
    """
    entry = get_entry(name)
    if entry.online_factory is not None:
        return entry.online_factory(
            params, seed_transactions=seed_transactions, seed_graph=seed_graph
        )
    if entry.kind == "online":
        return entry.factory(params=params, seed_transactions=seed_transactions)
    allocator = entry.factory()
    return allocator.as_online(
        params, graph=seed_graph, seed_transactions=seed_transactions
    )


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------
def _g_txallo_mapping(graph: TransactionGraph, params: TxAlloParams) -> Dict[Node, int]:
    return g_txallo(graph, params).allocation.mapping()


def _controller_online(
    params: TxAlloParams,
    seed_transactions=None,
    seed_graph: Optional[TransactionGraph] = None,
) -> TxAlloController:
    if seed_graph is not None:
        # The controller mutates its graph; never adopt a shared one.
        return TxAlloController(params, graph=seed_graph.copy())
    return TxAlloController(params, seed_transactions=seed_transactions)


def _controller_factory(
    params: TxAlloParams, seed_transactions=None
) -> TxAlloController:
    return TxAlloController(params, seed_transactions=seed_transactions)


register(
    "txallo",
    lambda: FunctionAllocator(
        "txallo",
        _g_txallo_mapping,
        description="G-TxAllo one-shot global allocation (Algorithm 1)",
    ),
    kind="static",
    description="G-TxAllo one-shot global allocation (Algorithm 1)",
    online_factory=_controller_online,
)

register(
    "txallo_online",
    _controller_factory,
    kind="online",
    description="dynamic TxAllo controller: A-TxAllo every tau1 blocks, "
    "G-TxAllo every tau2 (Section V-A)",
    online_factory=_controller_online,
)

register(
    "random",
    lambda: FunctionAllocator(
        "random",
        lambda graph, params: hash_partition(graph.nodes_sorted(), params.k),
        description="Chainspace-style SHA256(address) mod k",
    ),
    kind="static",
    description="hash-based random allocation (Chainspace style)",
    aliases=("hash",),
    eta_independent=True,
)

register(
    "prefix",
    lambda: FunctionAllocator(
        "prefix",
        lambda graph, params: prefix_partition(graph.nodes_sorted(), params.k),
        fallback=prefix_shard,
        description="Monoxide-style hash-prefix allocation",
    ),
    kind="static",
    description="hash-prefix allocation (Monoxide style)",
    eta_independent=True,
)

register(
    "metis",
    lambda: FunctionAllocator(
        "metis",
        lambda graph, params: metis_partition(graph, params.k).mapping,
        description="METIS-style multilevel k-way partitioning",
    ),
    kind="static",
    description="METIS-style multilevel partitioning (graph-based prior work)",
    eta_independent=True,
)

register(
    "shard_scheduler",
    lambda params, seed_transactions=None: ShardSchedulerAllocator(
        params, seed_transactions
    ),
    kind="online",
    description="online Shard Scheduler of Krol et al. (AFT'21)",
)


def _resilient_controller_factory(
    params: TxAlloParams, seed_transactions=None
) -> ResilientAllocator:
    return ResilientAllocator(_controller_factory(params, seed_transactions))


def _resilient_controller_online(
    params: TxAlloParams,
    seed_transactions=None,
    seed_graph: Optional[TransactionGraph] = None,
) -> ResilientAllocator:
    return ResilientAllocator(
        _controller_online(params, seed_transactions, seed_graph)
    )


register(
    "txallo_resilient",
    _resilient_controller_factory,
    kind="online",
    description="supervised TxAllo controller: exception isolation, "
    "block-clocked backoff, circuit breaker with degraded routing "
    "(repro.core.resilience)",
    online_factory=_resilient_controller_online,
)


__all__ = [
    "AllocatorEntry",
    "ShardSchedulerAllocator",
    "available",
    "get",
    "get_entry",
    "get_online",
    "register",
    "unregister",
]
