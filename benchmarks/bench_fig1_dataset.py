"""Figure 1 + Section VI-A — dataset structure.

Paper: 91,857,819 transactions over 12,614,390 accounts; the most active
account appears in ~11 % of transactions; activity is long-tailed.
Here: the synthetic workload's dataset card must show the same facts at
the benchmark scale.
"""

from repro.eval import experiments


def test_fig1_dataset_card(workload, benchmark):
    report = benchmark(experiments.figure1, workload)
    print()
    print(report.render())
    card = report.card
    # Paper facts, as shapes:
    assert 0.08 <= card.top_account_share <= 0.16, "hub should carry ~11%"
    assert card.self_loop_ratio > 0.0, "self-loop transactions exist"
    assert card.multi_io_ratio > 0.0, "multi-input/output transactions exist"


def test_fig1_long_tail(workload):
    hist = workload.graph.degree_histogram()
    low_degree = sum(count for bound, count in hist if bound <= 4)
    assert low_degree > 0.5 * workload.graph.num_nodes, (
        "most accounts should have very few transaction partners"
    )
