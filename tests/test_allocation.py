"""Unit + property tests for the allocation cache machinery.

The crucial invariant: the incremental ``sigma`` / ``lam_hat`` deltas of
``move``/``assign``/``ingest_transaction`` must agree *exactly* with an
O(E) recomputation from the graph (the paper's Eqs. 5-7 applied from
scratch).  If these drift, every gain computation is wrong.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import Allocation, capped_throughput
from repro.core.graph import TransactionGraph
from repro.core.params import TxAlloParams
from repro.errors import AllocationError
from tests.conftest import make_random_graph


def build_alloc(graph, k=3, eta=2.0, lam=50.0, seed=3):
    rng = random.Random(seed)
    partition = {v: rng.randrange(k) for v in graph.nodes()}
    params = TxAlloParams(k=k, eta=eta, lam=lam)
    return Allocation.from_partition(graph, params, partition)


class TestCappedThroughput:
    def test_under_capacity_passes_through(self):
        assert capped_throughput(5.0, 4.0, 10.0) == pytest.approx(4.0)

    def test_at_capacity_passes_through(self):
        assert capped_throughput(10.0, 7.0, 10.0) == pytest.approx(7.0)

    def test_over_capacity_scales(self):
        assert capped_throughput(20.0, 8.0, 10.0) == pytest.approx(4.0)

    def test_zero_workload(self):
        assert capped_throughput(0.0, 0.0, 10.0) == 0.0


class TestConstruction:
    def test_from_partition_builds_caches(self, triangle_graph):
        alloc = build_alloc(triangle_graph, k=2)
        fresh_sigma, fresh_lam = alloc.recompute()
        assert alloc.sigma == pytest.approx(fresh_sigma)
        assert alloc.lam_hat == pytest.approx(fresh_lam)

    def test_partition_must_cover_all_nodes(self, triangle_graph):
        params = TxAlloParams(k=2, lam=10.0)
        with pytest.raises(AllocationError):
            Allocation.from_partition(triangle_graph, params, {"a": 0})

    def test_partition_index_range_checked(self, triangle_graph):
        params = TxAlloParams(k=2, lam=10.0)
        partition = {v: 0 for v in triangle_graph.nodes()}
        partition["a"] = 7
        with pytest.raises(AllocationError):
            Allocation.from_partition(
                triangle_graph, params, partition, num_communities=2
            )

    def test_cannot_shrink_below_k(self, triangle_graph):
        params = TxAlloParams(k=4, lam=10.0)
        with pytest.raises(AllocationError):
            Allocation(triangle_graph, params, num_communities=2)

    def test_sigma_definition_on_known_graph(self):
        # Two nodes, one edge, split across shards: each side pays eta.
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        params = TxAlloParams(k=2, eta=3.0, lam=10.0)
        alloc = Allocation.from_partition(g, params, {"a": 0, "b": 1})
        assert alloc.sigma == pytest.approx([3.0, 3.0])
        assert alloc.lam_hat == pytest.approx([0.5, 0.5])

    def test_sigma_intra_counts_once(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        params = TxAlloParams(k=2, eta=3.0, lam=10.0)
        alloc = Allocation.from_partition(g, params, {"a": 0, "b": 0})
        assert alloc.sigma == pytest.approx([1.0, 0.0])
        assert alloc.lam_hat == pytest.approx([1.0, 0.0])

    def test_self_loop_is_intra_workload(self):
        g = TransactionGraph()
        g.add_transaction(("a",))
        params = TxAlloParams(k=2, eta=3.0, lam=10.0)
        alloc = Allocation.from_partition(g, params, {"a": 1})
        assert alloc.sigma == pytest.approx([0.0, 1.0])
        assert alloc.lam_hat == pytest.approx([0.0, 1.0])


class TestMoves:
    def test_move_updates_mapping(self, triangle_graph):
        alloc = build_alloc(triangle_graph, k=2)
        alloc.move("a", 1)
        assert alloc.shard_of("a") == 1

    def test_move_to_same_shard_is_noop(self, triangle_graph):
        alloc = build_alloc(triangle_graph, k=2)
        p = alloc.shard_of("a")
        sigma = alloc.sigma[:]
        alloc.move("a", p)
        assert alloc.sigma == sigma

    def test_move_out_of_range_rejected(self, triangle_graph):
        alloc = build_alloc(triangle_graph, k=2)
        with pytest.raises(AllocationError):
            alloc.move("a", 5)

    def test_move_unknown_account_rejected(self, triangle_graph):
        alloc = build_alloc(triangle_graph, k=2)
        with pytest.raises(AllocationError):
            alloc.move("ghost", 0)

    def test_moves_keep_caches_exact(self, clustered_graph):
        alloc = build_alloc(clustered_graph, k=4)
        rng = random.Random(99)
        nodes = list(clustered_graph.nodes())
        for _ in range(300):
            alloc.move(rng.choice(nodes), rng.randrange(4))
        alloc.validate()

    def test_only_two_shards_change_per_move(self, clustered_graph):
        """Lemma 1: a move touches only the source and destination caches."""
        alloc = build_alloc(clustered_graph, k=4)
        v = next(iter(clustered_graph.nodes()))
        p = alloc.shard_of(v)
        q = (p + 1) % 4
        before_sigma = alloc.sigma[:]
        before_lam = alloc.lam_hat[:]
        alloc.move(v, q)
        for j in range(4):
            if j in (p, q):
                continue
            assert alloc.sigma[j] == before_sigma[j]
            assert alloc.lam_hat[j] == before_lam[j]


class TestAssignAndIngest:
    def test_assign_unassigned_node(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        g.add_transaction(("b", "c"))
        params = TxAlloParams(k=2, eta=2.0, lam=10.0)
        alloc = Allocation.from_partition(
            g, params, {"a": 0, "b": 0, "c": 1}
        )
        g.add_transaction(("c", "d"))
        alloc.ingest_transaction(("c", "d"))
        alloc.assign("d", 1)
        alloc.validate()
        assert alloc.shard_of("d") == 1

    def test_assign_twice_rejected(self, triangle_graph):
        alloc = build_alloc(triangle_graph, k=2)
        with pytest.raises(AllocationError):
            alloc.assign("a", 0)

    def test_ingest_keeps_caches_exact(self, clustered_graph):
        graph = clustered_graph.copy()
        alloc = build_alloc(graph, k=3)
        alloc.graph = graph
        rng = random.Random(5)
        nodes = list(graph.nodes())
        for i in range(50):
            accs = set(rng.sample(nodes, rng.choice([1, 2, 2, 3])))
            if rng.random() < 0.3:
                accs.add(f"fresh{i}")
            graph.add_transaction(accs)
            alloc.ingest_transaction(accs)
        # Assign the fresh nodes so completeness holds, then validate.
        for v in graph.nodes():
            if not alloc.is_assigned(v):
                alloc.assign(v, 0)
        alloc.validate()

    def test_ingest_self_loop_on_assigned(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        params = TxAlloParams(k=2, eta=2.0, lam=10.0)
        alloc = Allocation.from_partition(g, params, {"a": 0, "b": 1})
        g.add_transaction(("a",))
        alloc.ingest_transaction(("a",))
        alloc.validate()


class TestTruncateAndIntegrity:
    def test_truncate_drops_empty_tail(self, triangle_graph):
        params = TxAlloParams(k=2, lam=10.0)
        partition = {v: 0 for v in triangle_graph.nodes()}
        alloc = Allocation.from_partition(
            triangle_graph, params, partition, num_communities=5
        )
        alloc.truncate(2)
        assert alloc.num_communities == 2

    def test_truncate_refuses_nonempty(self, triangle_graph):
        params = TxAlloParams(k=1, lam=10.0)
        partition = {v: 1 for v in triangle_graph.nodes()}
        alloc = Allocation.from_partition(
            triangle_graph, params, partition, num_communities=2
        )
        with pytest.raises(AllocationError):
            alloc.truncate(1)

    def test_validate_detects_missing_account(self, triangle_graph):
        alloc = build_alloc(triangle_graph, k=2)
        del alloc._shard_of["a"]
        with pytest.raises(AllocationError):
            alloc.validate(check_caches=False)

    def test_validate_detects_cache_drift(self, triangle_graph):
        alloc = build_alloc(triangle_graph, k=2)
        alloc.sigma[0] += 5.0
        with pytest.raises(AllocationError):
            alloc.validate()

    def test_copy_is_deep(self, triangle_graph):
        alloc = build_alloc(triangle_graph, k=2)
        clone = alloc.copy()
        clone.move("a", 1 - alloc.shard_of("a"))
        assert alloc.shard_of("a") != clone.shard_of("a") or True
        alloc.validate()
        clone.validate()

    def test_mapping_snapshot(self, triangle_graph):
        alloc = build_alloc(triangle_graph, k=2)
        snap = alloc.mapping()
        alloc.move("a", 1)
        assert snap != alloc.mapping() or snap["a"] == 1


class TestThroughput:
    def test_total_is_sum_of_communities(self, clustered_graph):
        alloc = build_alloc(clustered_graph, k=4, lam=30.0)
        total = sum(alloc.community_throughput(i) for i in range(4))
        assert alloc.total_throughput() == pytest.approx(total)

    def test_all_intra_uncapped_equals_total_weight(self, clustered_graph):
        params = TxAlloParams(k=2, eta=2.0, lam=1e12)
        partition = {v: 0 for v in clustered_graph.nodes()}
        alloc = Allocation.from_partition(clustered_graph, params, partition)
        assert alloc.total_throughput() == pytest.approx(
            clustered_graph.total_weight
        )


@given(
    moves=st.lists(st.tuples(st.integers(0, 39), st.integers(0, 3)), max_size=80),
    eta=st.floats(min_value=1.0, max_value=10.0),
)
@settings(max_examples=30, deadline=None)
def test_property_caches_never_drift(moves, eta):
    """Any random move sequence leaves caches equal to a recomputation."""
    graph = make_random_graph(num_accounts=40, num_transactions=150, seed=2)
    params = TxAlloParams(k=4, eta=eta, lam=40.0)
    partition = {v: i % 4 for i, v in enumerate(graph.nodes())}
    alloc = Allocation.from_partition(graph, params, partition)
    nodes = list(graph.nodes())
    for node_index, shard in moves:
        alloc.move(nodes[node_index % len(nodes)], shard)
    alloc.validate()
