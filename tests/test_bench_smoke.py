"""Fast smoke tests for the perf run-table plumbing.

Runs ``benchmarks/bench_delta_freeze.py``,
``benchmarks/bench_louvain_warm.py``, ``benchmarks/bench_adaptive.py``,
``benchmarks/bench_resilience.py`` and ``benchmarks/bench_parallel.py``
end-to-end at a small scale and asserts the run tables regenerate and the
incremental/warm/batched/supervised/multi-core paths were actually
exercised — so the
benchmarks (and the ``BENCH_*.json`` trajectories later PRs gate
against) cannot silently rot.  The speedup gates themselves only apply
at the benchmarks' own scale, not here.
"""

import importlib.util
import json
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_PATH = BENCH_DIR / "bench_delta_freeze.py"
WARM_BENCH_PATH = BENCH_DIR / "bench_louvain_warm.py"
ADAPTIVE_BENCH_PATH = BENCH_DIR / "bench_adaptive.py"
RESILIENCE_BENCH_PATH = BENCH_DIR / "bench_resilience.py"
PARALLEL_BENCH_PATH = BENCH_DIR / "bench_parallel.py"
MATRIX_BENCH_PATH = BENCH_DIR / "bench_matrix.py"


def _load_module(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _load_bench_module():
    return _load_module(BENCH_PATH)


def test_bench_delta_regenerates_and_exercises_delta_path(tmp_path):
    bench = _load_bench_module()
    out_path = tmp_path / "BENCH_delta.json"
    # run_bench itself asserts full-vs-delta parity (same mapping, same
    # caches, same events) and that at least one incremental freeze ran.
    payload = bench.run_bench(scale=0.05, out_path=out_path)

    assert out_path.exists()
    on_disk = json.loads(out_path.read_text())
    assert on_disk == payload

    for key in (
        "scale",
        "n_nodes",
        "n_edges",
        "stream_blocks",
        "full_loop_seconds",
        "delta_loop_seconds",
        "speedup",
        "full_freeze_stats",
        "delta_freeze_stats",
        "frontier_freeze_ms",
        "full_freeze_ms",
    ):
        assert key in payload, key

    assert payload["delta_freeze_stats"]["delta"] > 0
    assert payload["full_freeze_stats"]["delta"] == 0
    assert payload["delta_loop_seconds"] > 0
    assert set(payload["frontier_freeze_ms"]) == {"8", "32", "128"}


def test_committed_run_table_is_current():
    """The checked-in BENCH_delta.json must match the bench's schema, so
    the perf trajectory stays comparable across PRs."""
    committed = BENCH_PATH.parent / "BENCH_delta.json"
    assert committed.exists(), "run benchmarks/bench_delta_freeze.py to regenerate"
    payload = json.loads(committed.read_text())
    assert payload["speedup"] >= 2.0
    assert payload["delta_freeze_stats"]["delta"] > 0


def test_bench_louvain_warm_regenerates_and_warm_starts(tmp_path):
    """bench_louvain_warm end-to-end at the smallest scale whose stream
    still schedules a τ₂ refresh with enough surviving labels to seed
    (below ~0.3 the 50-block frontier swamps the whole account set and
    the warm path correctly falls back cold)."""
    bench = _load_module(WARM_BENCH_PATH)
    out_path = tmp_path / "BENCH_louvain.json"
    # run_bench itself asserts a scheduled refresh happened and that the
    # warm path actually ran.
    payload = bench.run_bench(scale=0.3, out_path=out_path)

    assert out_path.exists()
    assert json.loads(out_path.read_text()) == payload

    for key in (
        "scale",
        "cold_refresh_seconds",
        "warm_refresh_seconds",
        "refresh_speedup",
        "objective_ratio",
        "objective_tolerance",
        "warm_stats",
        "throughput_fast",
        "throughput_turbo",
        "cross_shard_fast",
        "cross_shard_turbo",
    ):
        assert key in payload, key

    assert payload["warm_stats"]["warm"] > 0
    assert payload["warm_refresh_seconds"] > 0
    # The objective quality gate holds at any scale, unlike the timing one.
    assert payload["objective_ratio"] >= 1.0 - payload["objective_tolerance"]


def test_committed_louvain_run_table_is_current():
    """The checked-in BENCH_louvain.json must satisfy the standing gates."""
    committed = BENCH_DIR / "BENCH_louvain.json"
    assert committed.exists(), "run benchmarks/bench_louvain_warm.py to regenerate"
    bench = _load_module(WARM_BENCH_PATH)
    payload = json.loads(committed.read_text())
    assert bench.check_gates(payload) == []


def test_bench_adaptive_regenerates_and_batches(tmp_path):
    """bench_adaptive end-to-end at a small scale: the run table must
    regenerate, the two loops must be byte-identical (run_bench asserts
    it), and the workspace must actually extend across τ₁ windows."""
    bench = _load_module(ADAPTIVE_BENCH_PATH)
    out_path = tmp_path / "BENCH_adaptive.json"
    payload = bench.run_bench(scale=0.05, out_path=out_path)

    assert out_path.exists()
    assert json.loads(out_path.read_text()) == payload

    for key in (
        "scale",
        "n_nodes",
        "stream_blocks",
        "base_loop_seconds",
        "workspace_loop_seconds",
        "speedup",
        "adaptive_base_ms",
        "adaptive_workspace_ms",
        "adaptive_speedup",
        "workspace_stats",
        "byte_identical",
    ):
        assert key in payload, key

    assert payload["byte_identical"] is True
    assert payload["workspace_stats"]["extends"] > 0
    assert payload["workspace_stats"]["runs"] > 0
    # The byte-identity + batching gates hold at any scale, unlike the
    # timing one.
    assert payload["workspace_loop_seconds"] > 0


def test_committed_adaptive_run_table_is_current():
    """The checked-in BENCH_adaptive.json must satisfy the standing gates."""
    committed = BENCH_DIR / "BENCH_adaptive.json"
    assert committed.exists(), "run benchmarks/bench_adaptive.py to regenerate"
    bench = _load_module(ADAPTIVE_BENCH_PATH)
    payload = json.loads(committed.read_text())
    assert bench.check_gates(payload) == []


def test_bench_resilience_regenerates_and_recovers(tmp_path):
    """bench_resilience end-to-end at a small scale: the run table must
    regenerate, the circuit must trip and re-close, and no transaction
    may be lost (run_bench asserts committed == arrived in both runs).
    The TPS-retention gate itself holds at any scale: supervision cost
    is a bounded number of degraded blocks, not a percentage."""
    bench = _load_module(RESILIENCE_BENCH_PATH)
    out_path = tmp_path / "BENCH_resilience.json"
    payload = bench.run_bench(scale=0.1, out_path=out_path)

    assert out_path.exists()
    assert json.loads(out_path.read_text()) == payload

    for key in (
        "scale",
        "baseline_committed",
        "baseline_tps",
        "faulted_committed",
        "faulted_tps",
        "tps_retention",
        "recovery_blocks",
        "circuit_state",
        "resilience_stats",
    ):
        assert key in payload, key

    assert payload["resilience_stats"]["trips"] >= 1
    assert payload["resilience_stats"]["recoveries"] >= 1
    assert payload["circuit_state"] == "closed"
    assert payload["faulted_committed"] == payload["baseline_committed"]


def test_committed_resilience_run_table_is_current():
    """The checked-in BENCH_resilience.json must satisfy the standing
    gates."""
    committed = BENCH_DIR / "BENCH_resilience.json"
    assert committed.exists(), "run benchmarks/bench_resilience.py to regenerate"
    bench = _load_module(RESILIENCE_BENCH_PATH)
    payload = json.loads(committed.read_text())
    assert bench.check_gates(payload) == []


def test_bench_parallel_regenerates_and_fans_out(tmp_path):
    """bench_parallel end-to-end at a small scale: the run table must
    regenerate, the grid records must be byte-identical across worker
    counts (run_bench asserts it), and the window sweeps must actually
    take the batched shard-parallel path.  The multi-core *speedup*
    gates are environment-conditional and do not apply here."""
    bench = _load_module(PARALLEL_BENCH_PATH)
    out_path = tmp_path / "BENCH_parallel.json"
    payload = bench.run_bench(scale=0.25, out_path=out_path)

    assert out_path.exists()
    assert json.loads(out_path.read_text()) == payload

    for key in (
        "scale",
        "cpu_count",
        "fork_available",
        "blas_pinned",
        "grid_seconds",
        "grid_speedup_w4",
        "grid_records_identical",
        "window_speedup_w4",
        "window_objective_ratio_min",
        "window_workers_independent",
        "window_batched_runs",
    ):
        assert key in payload, key

    assert payload["blas_pinned"] is True
    assert payload["grid_records_identical"] is True
    if payload["window_objective_ratio_min"] is not None:
        assert payload["window_workers_independent"] is True
        assert payload["window_batched_runs"] > 0
    assert bench.check_gates(payload) == []


def test_bench_matrix_regenerates_and_gates(tmp_path):
    """bench_matrix end-to-end at a small scale: the grid must complete,
    stay deterministic across re-runs and worker counts, and keep txallo
    ahead of hash on the planted-community topology — all structural
    gates, so they hold at any scale.  Also exercises the artifact tree
    (spec.json + per-run folders + run_table.csv)."""
    bench = _load_module(MATRIX_BENCH_PATH)
    out_path = tmp_path / "BENCH_matrix.json"
    artifacts = tmp_path / "matrix-artifacts"
    payload = bench.run_bench(scale=0.25, out_path=out_path, artifacts_dir=artifacts)

    assert out_path.exists()
    assert json.loads(out_path.read_text()) == payload

    for key in (
        "scale",
        "grid_scale",
        "spec",
        "cells",
        "expected_cells",
        "all_cells_complete",
        "deterministic",
        "workers_identical",
        "txallo_tps_ethereum",
        "hash_tps_ethereum",
        "txallo_beats_hash",
        "matrix_seconds",
        "rows",
    ):
        assert key in payload, key

    assert (artifacts / "spec.json").exists()
    assert (artifacts / "run_table.csv").exists()
    run_dirs = list((artifacts / "runs").iterdir())
    assert len(run_dirs) == payload["cells"]
    for run_dir in run_dirs:
        assert (run_dir / "result.json").exists()
        assert (run_dir / "ticks.csv").exists()
    assert bench.check_gates(payload) == []


def test_committed_matrix_run_table_is_current():
    """The checked-in BENCH_matrix.json must satisfy the standing gates."""
    committed = BENCH_DIR / "BENCH_matrix.json"
    assert committed.exists(), "run benchmarks/bench_matrix.py to regenerate"
    bench = _load_module(MATRIX_BENCH_PATH)
    payload = json.loads(committed.read_text())
    assert bench.check_gates(payload) == []


def test_committed_parallel_run_table_is_current():
    """The checked-in BENCH_parallel.json must satisfy the standing
    gates (the environment-conditional speedup gates consult the
    *recorded* cpu_count, so this holds on any runner)."""
    committed = BENCH_DIR / "BENCH_parallel.json"
    assert committed.exists(), "run benchmarks/bench_parallel.py to regenerate"
    bench = _load_module(PARALLEL_BENCH_PATH)
    payload = json.loads(committed.read_text())
    assert bench.check_gates(payload) == []
