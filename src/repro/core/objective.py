"""Throughput-gain computation — Eqs. (6)-(9) of the paper.

Given an :class:`~repro.core.allocation.Allocation`, this module answers the
one question both TxAllo sweeps ask per node: *which community should ``v``
join, and what does the system throughput gain by the move?*

All gains are computed in O(deg(v)) from a single neighbourhood scan,
using the closed-form deltas of Section V-B:

* join  (Eq. 6):  ``σ'_q = σ_q + w{v,v} + η(w{v,V/V_q} − w{v,v}) + (1−η) w{v,V_q}``
  and ``Λ̂'_q = Λ̂_q + w{v,v} + w{v,V/v}/2``;
* leave:          ``σ'_p = σ_p − w{v,v} − η w{v,V/V_p} + (η−1) w{v,V_p/v}``
  and ``Λ̂'_p = Λ̂_p − w{v,v} − w{v,V/v}/2``;
* move  (Eq. 8):  ``Δ(i,p,q)Λ = Δ_leave Λ_p + Δ_join Λ_q`` — by Lemma 1 no
  other community's throughput changes;
* candidates (Eq. 9): only communities ``v`` actually connects to.

Ties between equally good destinations break toward the smallest community
index, keeping the whole scheme deterministic (paper Section IV-A).

.. warning::
   This module is the *executable specification* for the flat-array sweep
   engine (:mod:`repro.core.engine`), which inlines every formula below —
   with the same operand order and parenthesisation, because the parity
   tests require bit-identical floats.  If you change an expression here,
   change the engine's inlined copy in lockstep (and vice versa);
   ``tests/test_engine_parity.py`` will catch any drift.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.allocation import Allocation, capped_throughput
from repro.core.graph import Node


class GainComputer:
    """Evaluates join / leave / move throughput gains on an allocation."""

    __slots__ = ("alloc", "_eta", "_lam")

    def __init__(self, alloc: Allocation) -> None:
        self.alloc = alloc
        self._eta = alloc.params.eta
        self._lam = alloc.params.lam

    # ------------------------------------------------------------------
    # Primitive deltas
    # ------------------------------------------------------------------
    def join_gain(
        self,
        q: int,
        w_to_q: float,
        w_self: float,
        w_ext: float,
    ) -> float:
        """``Δ_join Λ_q`` (Eq. 6) for a node with the given incident weights.

        Works identically whether the node currently sits in another
        community, in a temporary small community, or is unassigned — in
        every case its edges toward ``V_q`` are currently cut weight of
        ``q`` and would become intra weight.
        """
        alloc = self.alloc
        sigma_q = alloc.sigma[q]
        lam_hat_q = alloc.lam_hat[q]
        sigma_new = sigma_q + w_self + self._eta * (w_ext - w_to_q) + (1.0 - self._eta) * w_to_q
        lam_hat_new = lam_hat_q + w_self + w_ext / 2.0
        before = capped_throughput(sigma_q, lam_hat_q, self._lam)
        after = capped_throughput(sigma_new, lam_hat_new, self._lam)
        return after - before

    def leave_gain(
        self,
        p: int,
        w_to_p: float,
        w_self: float,
        w_ext: float,
    ) -> float:
        """``Δ_leave Λ_p`` for a node of ``V_p`` leaving it.

        ``w_to_p`` is ``w{v, V_p/v}`` — the node's weight toward the *other*
        members of its own community.
        """
        alloc = self.alloc
        sigma_p = alloc.sigma[p]
        lam_hat_p = alloc.lam_hat[p]
        sigma_new = sigma_p - w_self - self._eta * (w_ext - w_to_p) + (self._eta - 1.0) * w_to_p
        lam_hat_new = lam_hat_p - w_self - w_ext / 2.0
        before = capped_throughput(sigma_p, lam_hat_p, self._lam)
        after = capped_throughput(sigma_new, lam_hat_new, self._lam)
        return after - before

    def move_gain(
        self,
        p: int,
        q: int,
        w_to_p: float,
        w_to_q: float,
        w_self: float,
        w_ext: float,
    ) -> float:
        """``Δ(i,p,q)Λ`` (Eq. 8): combined leave + join gain."""
        return (
            self.leave_gain(p, w_to_p, w_self, w_ext)
            + self.join_gain(q, w_to_q, w_self, w_ext)
        )

    # ------------------------------------------------------------------
    # Node-level search
    # ------------------------------------------------------------------
    def candidate_communities(
        self,
        v: Node,
        by_shard: Dict[int, float],
        exclude: Optional[int],
        limit: Optional[int] = None,
    ) -> List[int]:
        """``C_v`` of Eq. (9): communities ``v`` connects to, minus its own.

        ``limit`` restricts candidates to community indices ``< limit`` —
        the initialisation phase passes ``limit=k`` so small temporary
        communities are never destinations.  The result is sorted so the
        subsequent argmax is deterministic.
        """
        if limit is None:
            return sorted(
                j for j, w in by_shard.items() if j != exclude and w > 0.0
            )
        return sorted(
            j for j, w in by_shard.items() if j != exclude and w > 0.0 and j < limit
        )

    def best_join(
        self,
        v: Node,
        candidates: Iterable[int],
        by_shard: Dict[int, float],
        w_self: float,
        w_ext: float,
    ) -> Tuple[Optional[int], float]:
        """Argmax of Eq. (6) over ``candidates``.

        Returns ``(community, gain)``; ``(None, 0.0)`` when there are no
        candidates.  Ties break toward the smallest index because
        candidates are scanned in ascending order and strict improvement
        is required to switch.
        """
        best_q: Optional[int] = None
        best_gain = -float("inf")
        for q in candidates:
            gain = self.join_gain(q, by_shard.get(q, 0.0), w_self, w_ext)
            if gain > best_gain:
                best_gain = gain
                best_q = q
        if best_q is None:
            return None, 0.0
        return best_q, best_gain

    def best_move(
        self,
        v: Node,
        candidates: Iterable[int],
        by_shard: Dict[int, float],
        w_self: float,
        w_ext: float,
        p: int,
    ) -> Tuple[Optional[int], float]:
        """Argmax of Eq. (8) over ``candidates`` for a node of ``V_p``.

        The leave gain is evaluated once (it does not depend on ``q``).
        """
        w_to_p = by_shard.get(p, 0.0)
        leave = self.leave_gain(p, w_to_p, w_self, w_ext)
        best_q: Optional[int] = None
        best_gain = -float("inf")
        for q in candidates:
            if q == p:
                continue
            gain = leave + self.join_gain(q, by_shard.get(q, 0.0), w_self, w_ext)
            if gain > best_gain:
                best_gain = gain
                best_q = q
        if best_q is None:
            return None, 0.0
        return best_q, best_gain
