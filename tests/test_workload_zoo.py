"""Tests for the workload zoo: registry round-trip, per-generator
determinism, and the shape invariants each topology exists to provide."""

import pytest

from repro.data.synthetic import (
    AdversarialWorkloadGenerator,
    CommunityDriftWorkloadGenerator,
    EthereumWorkloadGenerator,
    ExchangeHubWorkloadGenerator,
    HotSpotWorkloadGenerator,
    MintBurstWorkloadGenerator,
    WorkloadConfig,
    address_from_int,
    get_workload_entry,
    make_workload_generator,
    register_workload,
    workload_names,
)
from repro.errors import ParameterError


def small_config(**overrides):
    base = dict(num_accounts=600, num_transactions=4000, seed=3)
    base.update(overrides)
    return WorkloadConfig(**base)


ZOO = (
    "adversarial",
    "community_drift",
    "ethereum",
    "exchange_hub",
    "hotspot",
    "mint_burst",
)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_topologies_registered(self):
        assert set(ZOO) <= set(workload_names())

    def test_round_trip_by_name(self):
        for name in ZOO:
            entry = get_workload_entry(name)
            assert entry.name == name
            assert entry.description
            assert entry.stress_axis
            generator = make_workload_generator(name, small_config())
            assert isinstance(generator, EthereumWorkloadGenerator)

    def test_factory_classes_match(self):
        assert isinstance(
            make_workload_generator("hotspot", small_config()), HotSpotWorkloadGenerator
        )
        assert isinstance(
            make_workload_generator("exchange_hub", small_config()),
            ExchangeHubWorkloadGenerator,
        )
        assert isinstance(
            make_workload_generator("mint_burst", small_config()),
            MintBurstWorkloadGenerator,
        )
        assert isinstance(
            make_workload_generator("community_drift", small_config()),
            CommunityDriftWorkloadGenerator,
        )
        assert isinstance(
            make_workload_generator("adversarial", small_config()),
            AdversarialWorkloadGenerator,
        )
        # The baseline resolves to the plain generator, not a subclass.
        assert type(make_workload_generator("ethereum", small_config())) is (
            EthereumWorkloadGenerator
        )

    def test_unknown_name_lists_available(self):
        with pytest.raises(ParameterError, match="available.*ethereum"):
            make_workload_generator("nope")

    def test_unknown_knob_rejected(self):
        with pytest.raises(ParameterError, match="bad knobs"):
            make_workload_generator("hotspot", small_config(), bogus=1)

    def test_ethereum_rejects_knobs(self):
        with pytest.raises(ParameterError, match="no extra knobs"):
            make_workload_generator("ethereum", small_config(), spike_share=0.5)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ParameterError, match="already registered"):
            register_workload("ethereum", lambda config: None)

    def test_knobs_pass_through(self):
        generator = make_workload_generator(
            "hotspot", small_config(), spike_start=0.2, spike_end=0.5, spike_share=0.8
        )
        assert generator.spike_start == 0.2
        assert generator.spike_share == 0.8


# ----------------------------------------------------------------------
# Determinism & scaling — every topology
# ----------------------------------------------------------------------
class TestDeterminism:
    @pytest.mark.parametrize("name", ZOO)
    def test_equal_configs_byte_identical(self, name):
        config = small_config()
        first = list(make_workload_generator(name, config).transactions())
        second = list(make_workload_generator(name, config).transactions())
        assert first == second

    @pytest.mark.parametrize("name", ZOO)
    def test_reiteration_byte_identical(self, name):
        """One generator instance must restart its stream identically —
        build_workload iterates it twice (transactions, then blocks)."""
        generator = make_workload_generator(name, small_config())
        first = list(generator.transactions())
        second = list(generator.transactions())
        assert first == second

    @pytest.mark.parametrize("name", ZOO)
    def test_seed_changes_stream(self, name):
        a = list(make_workload_generator(name, small_config(seed=3)).transactions())
        b = list(make_workload_generator(name, small_config(seed=4)).transactions())
        assert a != b

    @pytest.mark.parametrize("name", ZOO)
    def test_counts_scale_with_config(self, name):
        small = make_workload_generator(name, small_config())
        large = make_workload_generator(
            name, small_config(num_accounts=1200, num_transactions=8000)
        )
        small_txs = list(small.transactions())
        large_txs = list(large.transactions())
        assert len(small_txs) == 4000
        assert len(large_txs) == 8000
        small_accounts = {a for tx in small_txs for a in tx.accounts}
        large_accounts = {a for tx in large_txs for a in tx.accounts}
        assert len(large_accounts) > len(small_accounts)

    @pytest.mark.parametrize("name", ZOO)
    def test_blocks_chunk_the_stream(self, name):
        generator = make_workload_generator(name, small_config())
        blocks = list(generator.blocks())
        total = sum(len(block.transactions) for block in blocks)
        assert total == 4000
        flat = [tx for block in blocks for tx in block.transactions]
        assert flat == list(generator.transactions())


# ----------------------------------------------------------------------
# Shape invariants — the stress axis each topology promises
# ----------------------------------------------------------------------
class TestHotSpot:
    def test_spike_concentrates_volume(self):
        generator = make_workload_generator("hotspot", small_config())
        txs = list(generator.transactions())
        in_window = [tx for i, tx in enumerate(txs) if generator.in_spike(i)]
        outside = [tx for i, tx in enumerate(txs) if not generator.in_spike(i)]
        hot = generator.hot
        window_share = sum(1 for tx in in_window if hot in tx.accounts) / len(in_window)
        outside_share = sum(1 for tx in outside if hot in tx.accounts) / len(outside)
        # spike_share=0.5 -> the hot contract carries >= 40% of the
        # window's volume and stays cold (a mid-tail account) outside it.
        assert window_share >= 0.4
        assert outside_share < 0.1

    def test_hot_is_not_the_hub(self):
        generator = make_workload_generator("hotspot", small_config())
        assert generator.hot != generator.hub

    def test_bad_window_rejected(self):
        with pytest.raises(ParameterError, match="spike window"):
            make_workload_generator("hotspot", small_config(), spike_start=0.7, spike_end=0.4)
        with pytest.raises(ParameterError, match="spike_share"):
            make_workload_generator("hotspot", small_config(), spike_share=1.5)


class TestExchangeHub:
    def test_hubs_carry_declared_share(self):
        generator = make_workload_generator(
            "exchange_hub", small_config(), num_hubs=3, hub_traffic_share=0.6
        )
        hubs = set(generator.hubs)
        txs = list(generator.transactions())
        hub_txs = sum(1 for tx in txs if hubs & set(tx.accounts))
        # At least the declared share touches a hub (base traffic can
        # also touch account 0, never fewer).
        assert hub_txs / len(txs) >= 0.55

    def test_periphery_stripes_are_disjoint(self):
        """Each hub's traffic volume concentrates on its own periphery
        stripe (index ≡ hub mod num_hubs); base traffic adds a trickle
        of off-stripe contacts."""
        generator = make_workload_generator("exchange_hub", small_config(), num_hubs=4)
        hubs = set(generator.hubs)
        index_of = {a: i for i, a in enumerate(generator.addresses)}
        partners = {h: [] for h in range(generator.num_hubs)}
        for tx in generator.transactions():
            accounts = set(tx.accounts)
            for h, hub in enumerate(generator.hubs):
                if hub in accounts:
                    partners[h].extend(
                        index_of[a] for a in accounts - hubs
                        if index_of[a] >= generator.num_hubs
                    )
        for h, stripe in partners.items():
            assert stripe
            on_stripe = sum(1 for i in stripe if i % generator.num_hubs == h)
            assert on_stripe / len(stripe) > 0.8

    def test_bad_knobs_rejected(self):
        with pytest.raises(ParameterError, match="num_hubs"):
            make_workload_generator("exchange_hub", small_config(), num_hubs=0)
        with pytest.raises(ParameterError, match="hub_traffic_share"):
            make_workload_generator("exchange_hub", small_config(), hub_traffic_share=1.0)


class TestMintBurst:
    def test_bursts_hit_the_mint_contract(self):
        generator = make_workload_generator("mint_burst", small_config())
        txs = list(generator.transactions())
        mint = generator.mint
        burst = [tx for i, tx in enumerate(txs) if generator.in_burst(i)]
        calm = [tx for i, tx in enumerate(txs) if not generator.in_burst(i)]
        assert burst and calm
        assert all(mint in tx.accounts for tx in burst)
        assert not any(mint in tx.accounts for tx in calm)

    def test_newcomers_are_outside_the_account_space(self):
        config = small_config()
        generator = make_workload_generator("mint_burst", config)
        base_accounts = set(generator.addresses)
        for i, tx in enumerate(generator.transactions()):
            if generator.in_burst(i):
                sender = tx.inputs[0]
                assert sender not in base_accounts
                assert sender == address_from_int(config.num_accounts + 1 + i)

    def test_bad_knobs_rejected(self):
        with pytest.raises(ParameterError, match="num_waves"):
            make_workload_generator("mint_burst", small_config(), num_waves=0)
        with pytest.raises(ParameterError, match="wave_fraction"):
            make_workload_generator("mint_burst", small_config(), wave_fraction=1.0)


class TestCommunityDrift:
    def test_epoch_views_differ(self):
        generator = make_workload_generator(
            "community_drift", small_config(), epochs=3, churn=0.4
        )
        views = [generator.community_view(e) for e in range(3)]
        assert views[0] != views[1]
        assert views[1] != views[2]
        moved = sum(1 for a, b in zip(views[0], views[1]) if a != b)
        # churn=0.4 of core accounts re-seat (minus the occasional mover
        # skipped to keep a community non-empty).
        assert moved >= 0.25 * len(views[0])

    def test_no_community_emptied(self):
        generator = make_workload_generator(
            "community_drift", small_config(), epochs=4, churn=0.5
        )
        num_comms = generator.config.resolved_communities()
        for epoch in range(4):
            view = generator.community_view(epoch)
            core = view[1 : generator.core_count]
            assert len(set(core)) == num_comms

    def test_epoch_of_partitions_the_stream(self):
        generator = make_workload_generator(
            "community_drift", small_config(), epochs=4
        )
        n = generator.config.num_transactions
        assert generator.epoch_of(0) == 0
        assert generator.epoch_of(n - 1) == 3
        epochs = [generator.epoch_of(i) for i in range(n)]
        assert epochs == sorted(epochs)

    def test_bad_knobs_rejected(self):
        with pytest.raises(ParameterError, match="epochs"):
            make_workload_generator("community_drift", small_config(), epochs=0)
        with pytest.raises(ParameterError, match="churn"):
            make_workload_generator("community_drift", small_config(), churn=1.5)


class TestAdversarial:
    def test_every_transfer_crosses_communities(self):
        generator = make_workload_generator("adversarial", small_config())
        index_of = {a: i for i, a in enumerate(generator.addresses)}
        for tx in generator.transactions():
            communities = {
                generator.community_of[index_of[a]] for a in tx.accounts
            }
            assert len(communities) > 1

    def test_cross_shard_floor_for_any_mapping(self):
        """No k=4 mapping can co-locate this traffic: even the oracle
        that places whole communities together leaves most transfers
        cross-shard."""
        generator = make_workload_generator("adversarial", small_config())
        index_of = {a: i for i, a in enumerate(generator.addresses)}
        k = 4
        mapping = {
            a: generator.community_of[index_of[a]] % k for a in generator.addresses
        }
        cross = 0
        txs = list(generator.transactions())
        for tx in txs:
            shards = {mapping[a] for a in tx.accounts}
            if len(shards) > 1:
                cross += 1
        assert cross / len(txs) > 0.5
