"""Figure 3 — workload balance (rho) vs. number of shards.

Paper: Shard Scheduler best (transaction-level smearing); TxAllo better
than the graph-based baselines once eta grows; Random worst at large eta
(the hub's cross-shard traffic costs eta per involved shard).
"""

import pytest

from repro.eval import experiments


@pytest.fixture(scope="module")
def fig3(sweep_records):
    return experiments.figure3(sweep_records)


def test_fig3_report(fig3):
    print()
    print(fig3.render())


@pytest.mark.parametrize("eta", [2.0, 6.0, 10.0])
def test_shard_scheduler_best_balance(fig3, eta):
    for k in (10, 20, 40, 60):
        sched = fig3.value(eta, "shard_scheduler", k)
        assert sched <= fig3.value(eta, "txallo", k)
        assert sched <= fig3.value(eta, "random", k)
        assert sched <= fig3.value(eta, "metis", k)


@pytest.mark.parametrize("k", [20, 40, 60])
def test_txallo_beats_random_at_high_eta(fig3, k):
    assert fig3.value(10.0, "txallo", k) < fig3.value(10.0, "random", k)


def test_txallo_beats_metis_at_high_eta(fig3):
    assert fig3.value(10.0, "txallo", 60) < fig3.value(10.0, "metis", 60)


def test_balance_degrades_with_eta_for_random(fig3):
    """Random's hub shard pays eta per cross tx; rho grows with eta."""
    assert fig3.value(10.0, "random", 60) > fig3.value(2.0, "random", 60)


def test_bench_balance_metric(workload, benchmark):
    from repro.core.metrics import evaluate_allocation, workload_balance
    from repro.baselines.hash_allocation import hash_partition
    from repro.core.params import TxAlloParams

    params = TxAlloParams.with_capacity_for(workload.num_transactions, k=20, eta=2.0)
    mapping = hash_partition(workload.graph.nodes_sorted(), 20)

    def run():
        report = evaluate_allocation(workload.account_sets, mapping, params)
        return workload_balance(report.shard_workloads, params.lam)

    benchmark(run)
