"""Tests for allocation checkpointing and digests."""

import json
import math

import pytest

from repro.core.params import TxAlloParams
from repro.core.persistence import (
    AllocationCheckpoint,
    allocation_digest,
    load_allocation,
    save_allocation,
)
from repro.errors import AllocationError, DataError

MAPPING = {"0xaa": 0, "0xbb": 1, "0xcc": 0}
PARAMS = TxAlloParams(k=2, eta=2.0, lam=100.0, epsilon=0.001, tau1=3, tau2=9)


class TestDigest:
    def test_stable_across_insertion_order(self):
        forward = dict(sorted(MAPPING.items()))
        backward = dict(sorted(MAPPING.items(), reverse=True))
        assert allocation_digest(forward) == allocation_digest(backward)

    def test_sensitive_to_assignment(self):
        changed = dict(MAPPING, **{"0xaa": 1})
        assert allocation_digest(changed) != allocation_digest(MAPPING)

    def test_sensitive_to_membership(self):
        smaller = {k: v for k, v in MAPPING.items() if k != "0xcc"}
        assert allocation_digest(smaller) != allocation_digest(MAPPING)

    def test_empty_mapping(self):
        assert len(allocation_digest({})) == 64

    def test_no_separator_ambiguity(self):
        """('ab', 1) must not collide with ('a', 'b1'-ish encodings)."""
        d1 = allocation_digest({"ab": 1})
        d2 = allocation_digest({"a": 1, "b": 1})
        assert d1 != d2


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "alloc.json"
        digest = save_allocation(path, MAPPING, PARAMS, block_height=42)
        mapping, params, height = load_allocation(path)
        assert mapping == MAPPING
        assert params == PARAMS
        assert height == 42
        assert digest == allocation_digest(mapping)

    def test_infinite_capacity_roundtrips(self, tmp_path):
        path = tmp_path / "alloc.json"
        params = TxAlloParams(k=2)
        save_allocation(path, MAPPING, params)
        _, loaded, _ = load_allocation(path)
        assert math.isinf(loaded.lam)

    def test_checkpoint_class(self, tmp_path):
        path = tmp_path / "alloc.json"
        cp = AllocationCheckpoint(mapping=MAPPING, params=PARAMS, block_height=7)
        cp.save(path)
        loaded = AllocationCheckpoint.load(path)
        assert loaded.mapping == cp.mapping
        assert loaded.digest == cp.digest
        assert loaded.block_height == 7


class TestCorruption:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_allocation(tmp_path / "nope.json")

    def test_not_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{{{")
        with pytest.raises(DataError):
            load_allocation(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(DataError):
            load_allocation(path)

    def test_tampered_mapping_detected(self, tmp_path):
        path = tmp_path / "alloc.json"
        save_allocation(path, MAPPING, PARAMS)
        payload = json.loads(path.read_text())
        payload["mapping"]["0xaa"] = 1  # flip a shard without re-digesting
        path.write_text(json.dumps(payload))
        with pytest.raises(DataError, match="digest mismatch"):
            load_allocation(path)

    def test_out_of_range_shard_detected(self, tmp_path):
        path = tmp_path / "alloc.json"
        bad = dict(MAPPING, extra=5)
        save_allocation(path, bad, PARAMS)
        with pytest.raises(AllocationError):
            load_allocation(path)

    def test_malformed_params(self, tmp_path):
        path = tmp_path / "alloc.json"
        save_allocation(path, MAPPING, PARAMS)
        payload = json.loads(path.read_text())
        del payload["params"]["k"]
        path.write_text(json.dumps(payload))
        with pytest.raises(DataError):
            load_allocation(path)


class TestMinerAgreement:
    def test_two_miners_same_digest(self, small_workload):
        """The determinism story end to end: independent G-TxAllo runs
        yield the same digest, so miners can agree by exchanging 32
        bytes instead of the full mapping."""
        from repro.core.gtxallo import g_txallo

        params = TxAlloParams.with_capacity_for(
            len(small_workload["sets"]), k=4, eta=2.0
        )
        d1 = allocation_digest(
            g_txallo(small_workload["graph"], params).allocation.mapping()
        )
        d2 = allocation_digest(
            g_txallo(small_workload["graph"].copy(), params).allocation.mapping()
        )
        assert d1 == d2
