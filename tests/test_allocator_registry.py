"""Registry + protocol parity suite.

Every allocator registered in :mod:`repro.allocators` must run through
**both** chain substrates — the analytic :class:`ShardedChainSimulator`
and the tick-driven :class:`LiveShardedNetwork` — on one shared
synthetic workload, and satisfy the report invariants: cross-shard
ratio in [0, 1], committed ≤ arrived, bit-identical results across two
runs, and TxAllo ≥ hash on committed TPS.  A method that registers but
cannot survive this suite is not integrated.
"""

import pytest

from repro import allocators
from repro.chain.live import LiveShardedNetwork
from repro.chain.simulator import simulate_allocation
from repro.core.allocator import (
    FixedMappingAllocator,
    FunctionAllocator,
    OnlineAllocator,
    StaticAllocator,
    ensure_online,
)
from repro.core.controller import TxAlloController
from repro.core.params import TxAlloParams
from repro.data.synthetic import EthereumWorkloadGenerator, WorkloadConfig
from repro.errors import AllocationError, ParameterError

BUILTINS = (
    "metis",
    "prefix",
    "random",
    "shard_scheduler",
    "txallo",
    "txallo_online",
    "txallo_resilient",
)


@pytest.fixture(scope="module")
def shared_workload():
    """One synthetic workload every registered allocator is judged on."""
    config = WorkloadConfig(
        num_accounts=300, num_transactions=2400, block_size=40, seed=11
    )
    generator = EthereumWorkloadGenerator(config)
    transactions = generator.generate()
    blocks = [list(b) for b in generator.blocks()]
    seed_blocks, live_blocks = blocks[:30], blocks[30:]
    seed_sets = [tuple(sorted(t.accounts)) for b in seed_blocks for t in b]
    live_sets = [tuple(sorted(t.accounts)) for b in live_blocks for t in b]
    accounts = sorted({a for t in transactions for a in t.accounts})
    params = TxAlloParams(
        k=4, eta=2.0, lam=30.0, epsilon=1e-5 * len(transactions), tau1=3, tau2=30
    )
    return {
        "transactions": transactions,
        "seed_sets": seed_sets,
        "live_sets": live_sets,
        "live_blocks": live_blocks,
        "accounts": accounts,
        "params": params,
    }


class TestRegistry:
    def test_builtins_available(self):
        assert set(BUILTINS) <= set(allocators.available())

    def test_alias_resolves(self):
        assert allocators.get_entry("hash").name == "random"

    def test_unknown_name_raises_parameter_error(self):
        with pytest.raises(ParameterError, match="available"):
            allocators.get_entry("quantum")

    def test_get_builds_fresh_instances(self):
        a = allocators.get("metis")
        b = allocators.get("metis")
        assert a is not b
        assert isinstance(a, StaticAllocator)
        assert a.metadata["kind"] == "static"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ParameterError, match="already registered"):
            allocators.register(
                "random", lambda: None, kind="static"
            )

    def test_register_and_unregister_custom_allocator(self):
        name = "_test_round_robin"
        allocators.register(
            name,
            lambda: FunctionAllocator(
                name,
                lambda graph, params: {
                    a: i % params.k
                    for i, a in enumerate(graph.nodes_sorted())
                },
            ),
            kind="static",
            description="index-order round robin (test only)",
        )
        try:
            assert name in allocators.available()
            allocator = allocators.get(name)
            assert isinstance(allocator, StaticAllocator)
        finally:
            allocators.unregister(name)
        assert name not in allocators.available()

    def test_bad_kind_rejected(self):
        with pytest.raises(ParameterError, match="kind"):
            allocators.register("_bad", lambda: None, kind="quantum")

    def test_overwrite_repoints_alias_and_unregister_respects_ownership(self):
        factory = lambda: FunctionAllocator("_t", lambda g, p: {})
        allocators.register("_t_first", factory, kind="static", aliases=("_t_alias",))
        try:
            allocators.register(
                "_t_second", factory, kind="static", aliases=("_t_alias",),
                overwrite=True,
            )
            try:
                assert allocators.get_entry("_t_alias").name == "_t_second"
                # Removing the old entry must not steal the alias the
                # overwrite re-pointed at the new one.
                allocators.unregister("_t_first")
                assert allocators.get_entry("_t_alias").name == "_t_second"
            finally:
                allocators.unregister("_t_second")
        finally:
            if "_t_first" in allocators.available():
                allocators.unregister("_t_first")
        assert "_t_alias" not in set(allocators.available())
        with pytest.raises(ParameterError):
            allocators.get_entry("_t_alias")


class TestEnsureOnline:
    def test_mapping_wraps_with_hash_fallback(self):
        params = TxAlloParams(k=3, eta=2.0, lam=10.0)
        online = ensure_online({"a": 2}, params)
        assert isinstance(online, FixedMappingAllocator)
        assert online.shard_of("a") == 2
        assert 0 <= online.shard_of("unknown") < 3

    def test_invalid_mapping_value_rejected(self):
        params = TxAlloParams(k=2, eta=2.0, lam=10.0)
        with pytest.raises(AllocationError):
            ensure_online({"a": 5}, params)

    def test_bare_static_allocator_rejected_with_guidance(self):
        params = TxAlloParams(k=2, eta=2.0, lam=10.0)
        with pytest.raises(AllocationError, match="as_online"):
            ensure_online(allocators.get("metis"), params)

    def test_online_allocator_passes_through(self):
        params = TxAlloParams(k=2, eta=2.0, lam=10.0)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        assert ensure_online(controller, params) is controller


class TestParityAcrossSubstrates:
    """Every registered allocator, both substrates, shared workload."""

    def _online(self, name, shared):
        return allocators.get_online(
            name,
            shared["params"],
            seed_transactions=shared["seed_sets"],
        )

    @pytest.mark.parametrize("name", BUILTINS)
    def test_analytic_simulator_invariants(self, shared_workload, name):
        allocator = self._online(name, shared_workload)
        for block in shared_workload["live_blocks"]:
            allocator.observe_block([tuple(t.accounts) for t in block])
        # shard_of is total, so the simulator gets a complete mapping.
        mapping = {
            a: allocator.shard_of(a) for a in shared_workload["accounts"]
        }
        assert all(0 <= s < shared_workload["params"].k for s in mapping.values())
        report = simulate_allocation(
            shared_workload["transactions"], mapping, shared_workload["params"]
        )
        assert report.num_transactions == len(shared_workload["transactions"])
        assert 0.0 <= report.cross_shard_ratio <= 1.0
        assert report.worst_case_latency >= 1

    @pytest.mark.parametrize("name", BUILTINS)
    def test_live_network_invariants_and_determinism(self, shared_workload, name):
        reports = []
        for _ in range(2):
            allocator = self._online(name, shared_workload)
            net = LiveShardedNetwork(shared_workload["params"], allocator)
            reports.append(net.run(shared_workload["live_blocks"], drain=True))
        first, second = reports
        assert 0.0 <= first.cross_shard_ratio <= 1.0
        assert first.committed <= first.arrived + 0  # never over-commit
        assert first.committed == first.arrived  # drained runs commit all
        assert first == second, f"{name} is not deterministic across runs"

    def test_txallo_at_least_hash_on_committed_tps(self, shared_workload):
        def tps(name):
            allocator = self._online(name, shared_workload)
            net = LiveShardedNetwork(shared_workload["params"], allocator)
            return net.run(
                shared_workload["live_blocks"], drain=True
            ).committed_per_tick

        assert tps("txallo") >= tps("random")

    @pytest.mark.parametrize("name", BUILTINS)
    def test_run_stream_accounting_is_consistent(self, shared_workload, name):
        params = shared_workload["params"]
        allocator = allocators.get_online(name, params)
        assert isinstance(allocator, OnlineAllocator)
        result = allocator.run_stream(shared_workload["live_sets"])
        assert result.num_transactions == len(shared_workload["live_sets"])
        assert 0.0 <= result.cross_shard_ratio <= 1.0
        assert len(result.shard_loads) == params.k
        assert result.throughput(params.lam) >= 0.0

    @pytest.mark.parametrize("name", ("shard_scheduler", "txallo_online"))
    def test_run_stream_on_warmed_allocator_counts_only_the_stream(
        self, shared_workload, name
    ):
        """Seed history warms the allocator's state but must not leak
        into the replayed stream's accounting."""
        params = shared_workload["params"]
        allocator = allocators.get_online(
            name, params, seed_transactions=shared_workload["seed_sets"]
        )
        result = allocator.run_stream(shared_workload["live_sets"])
        assert result.num_transactions == len(shared_workload["live_sets"])
        assert result.num_cross_shard <= result.num_transactions
        # eta bounds per-transaction load: total charged load for the
        # stream alone can never exceed eta * k * |stream|.
        assert sum(result.shard_loads) <= (
            params.eta * params.k * len(shared_workload["live_sets"])
        )
