"""Determinism guarantees (paper Section IV-A).

Every allocator must produce byte-identical output for identical input —
that is what lets miners skip an extra consensus round on the allocation.
"""


from repro.baselines import hash_partition, metis_partition, shard_scheduler_partition
from repro.core.gtxallo import g_txallo
from repro.core.louvain import louvain_partition
from repro.core.params import TxAlloParams
from repro.data.synthetic import EthereumWorkloadGenerator, WorkloadConfig, account_sets
from repro.core.graph import TransactionGraph


def fresh_graph(seed=42):
    config = WorkloadConfig(num_accounts=500, num_transactions=3000, seed=seed)
    sets_ = account_sets(EthereumWorkloadGenerator(config).generate())
    graph = TransactionGraph()
    for s in sets_:
        graph.add_transaction(s)
    return graph, sets_


class TestEndToEndDeterminism:
    def test_gtxallo_identical_across_processes_worth_of_state(self):
        params = TxAlloParams.with_capacity_for(3000, k=6, eta=2.0)
        g1, _ = fresh_graph()
        g2, _ = fresh_graph()
        assert (
            g_txallo(g1, params).allocation.mapping()
            == g_txallo(g2, params).allocation.mapping()
        )

    def test_louvain_identical(self):
        g1, _ = fresh_graph()
        g2, _ = fresh_graph()
        assert louvain_partition(g1) == louvain_partition(g2)

    def test_metis_identical(self):
        g1, _ = fresh_graph()
        g2, _ = fresh_graph()
        assert metis_partition(g1, 6).mapping == metis_partition(g2, 6).mapping

    def test_scheduler_identical(self):
        _, s1 = fresh_graph()
        _, s2 = fresh_graph()
        params = TxAlloParams.with_capacity_for(3000, k=6)
        assert (
            shard_scheduler_partition(s1, params).mapping
            == shard_scheduler_partition(s2, params).mapping
        )

    def test_hash_identical(self):
        g1, _ = fresh_graph()
        assert hash_partition(g1.nodes_sorted(), 6) == hash_partition(
            g1.nodes_sorted(), 6
        )

    def test_insertion_order_does_not_matter_for_gtxallo(self):
        """G-TxAllo sweeps in sorted order, so the order in which the
        graph was built must not change the result."""
        params = TxAlloParams.with_capacity_for(3000, k=4, eta=2.0)
        _, sets_ = fresh_graph()
        forward = TransactionGraph()
        for s in sets_:
            forward.add_transaction(s)
        backward = TransactionGraph()
        for s in reversed(sets_):
            backward.add_transaction(s)
        assert (
            g_txallo(forward, params).allocation.mapping()
            == g_txallo(backward, params).allocation.mapping()
        )

    def test_eta_changes_result_but_stays_deterministic(self):
        g1, _ = fresh_graph()
        m = {}
        for eta in (2.0, 8.0):
            params = TxAlloParams.with_capacity_for(3000, k=6, eta=eta)
            m[eta] = g_txallo(g1, params).allocation.mapping()
            assert m[eta] == g_txallo(g1, params).allocation.mapping()
