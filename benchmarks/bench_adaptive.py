"""Adaptive-workspace run-table: the Fig. 9 block-loop, snapshot-per-run
vs batched A-TxAllo.

At the paper's deployed cadence (τ₁=1, Section V-A) the controller
block-loop is A-TxAllo-dominated: PR 2 made each run's CSR refresh
incremental and PR 4 made the τ₂ global refresh 2.7x faster, but every
τ₁ window still paid a freeze extend plus a fresh flat snapshot of the
touched neighbourhoods.  The adaptive workspace (PR 5,
:class:`repro.core.engine.AdaptiveWorkspace`) batches consecutive runs:
one persistent flat view, kept current from the graph's mutation
journal, so between global refreshes the loop does not freeze at all.

This benchmark replays the same Fig. 9-style stream twice — once with
``adaptive_workspace=False`` (the PR 4 fast path) and once with the
workspace (the new default) — asserts the two runs are **byte-identical**
(same mapping, same caches, same update events including the
``converged`` flags; the workspace is a cache, not a backend level), and
writes ``BENCH_adaptive.json`` next to this file:

``{"scale", "base_loop_seconds", "workspace_loop_seconds", "speedup",
"adaptive_base_ms", "adaptive_workspace_ms", "adaptive_speedup",
"workspace_stats", "byte_identical", ...}``

Gates (enforced by :func:`check_gates`, ``tests/test_bench_gate.py`` and
the CI perf job):

* end-to-end block-loop ≥ 1.3x at the default scale;
* the workspace actually carried across windows (``extends`` > 0);
* both loops byte-identical.

Scale knob: ``--scale`` / the ``BENCH_SCALE`` env crank the workload
(CI pins 0.5 for runner budget; ``benchmarks/run_table.py
--local-scale 2`` regenerates a non-toy row locally).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

try:  # script mode from a clean checkout: resolve the src layout
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.parallel import pin_blas_threads

# Explicit thread ownership for honest timings: pin the BLAS/OpenMP
# knobs before any repro import can pull numpy in (the multi-core
# layer owns its parallelism -- see repro.core.parallel).
pin_blas_threads()

from repro.core.controller import TxAlloController
from repro.core.params import TxAlloParams
from repro.data.synthetic import EthereumWorkloadGenerator, WorkloadConfig

BENCH_SCALE = float(os.environ.get("BENCH_SCALE", "0.5"))

#: Fig. 9 cadence: adaptive every block, global refresh every 50 blocks.
TAU1 = 1
TAU2 = 50
BLOCK_SIZE = 100
#: Loop timings are best-of-N to shave scheduler noise off the gate.
TIMING_REPEATS = 3

#: The standing end-to-end gate (the loop was 1.1-1.2x after PR 4's
#: turbo refreshes; the A-TxAllo-dominated term lands here).
LOOP_SPEEDUP_GATE = 1.3

OUT_PATH = Path(__file__).resolve().parent / "BENCH_adaptive.json"


def _block_stream(scale: float, seed: int = 2022):
    config = WorkloadConfig(
        num_accounts=max(100, int(10_000 * scale)),
        num_transactions=max(1_000, int(60_000 * scale)),
        block_size=BLOCK_SIZE,
        seed=seed,
    )
    gen = EthereumWorkloadGenerator(config)
    return [[tuple(tx.accounts) for tx in block.transactions] for block in gen.blocks()]


def _run_loop(blocks, seed_blocks, workspace: bool):
    """One controller over the stream; returns (loop_seconds, controller)."""
    params = TxAlloParams.with_capacity_for(
        sum(len(b) for b in blocks) + sum(len(b) for b in seed_blocks),
        k=16,
        eta=2.0,
        tau1=TAU1,
        tau2=TAU2,
    )
    controller = TxAlloController(
        params,
        seed_transactions=[tx for block in seed_blocks for tx in block],
        adaptive_workspace=workspace,
    )
    t0 = time.perf_counter()
    for block in blocks:
        controller.observe_block(block)
    return time.perf_counter() - t0, controller


def _event_key(events):
    return [(e.kind, e.block_height, e.moves, e.touched, e.converged) for e in events]


def run_bench(scale: float = BENCH_SCALE, out_path: Path = OUT_PATH) -> dict:
    blocks = _block_stream(scale)
    # First half seeds the initial global allocation (history), second
    # half is the live stream the controller loop is timed over.
    split = len(blocks) // 2
    seed_blocks, stream = blocks[:split], blocks[split:]

    base_seconds = ws_seconds = float("inf")
    for _ in range(TIMING_REPEATS):
        seconds, base_ctrl = _run_loop(stream, seed_blocks, workspace=False)
        base_seconds = min(base_seconds, seconds)
        seconds, ws_ctrl = _run_loop(stream, seed_blocks, workspace=True)
        ws_seconds = min(ws_seconds, seconds)

    # Parity: the workspace is a cache, not a backend level.
    assert base_ctrl.allocation.mapping() == ws_ctrl.allocation.mapping()
    assert base_ctrl.allocation.sigma == ws_ctrl.allocation.sigma
    assert base_ctrl.allocation.lam_hat == ws_ctrl.allocation.lam_hat
    assert _event_key(base_ctrl.events) == _event_key(ws_ctrl.events)

    ws_stats = ws_ctrl.workspace_stats
    assert ws_stats["extends"] > 0, "workspace never carried across a window"
    assert ws_stats["runs"] > 0, "workspace path never ran"

    adaptive_base = [e.seconds for e in base_ctrl.adaptive_events]
    adaptive_ws = [e.seconds for e in ws_ctrl.adaptive_events]
    assert adaptive_ws, "stream too short: no adaptive run was scheduled"

    payload = {
        "scale": scale,
        "n_nodes": ws_ctrl.graph.num_nodes,
        "n_edges": ws_ctrl.graph.num_edges,
        "seed_blocks": split,
        "stream_blocks": len(stream),
        "tau1": TAU1,
        "tau2": TAU2,
        "base_loop_seconds": base_seconds,
        "workspace_loop_seconds": ws_seconds,
        "speedup": base_seconds / ws_seconds if ws_seconds > 0 else float("inf"),
        "adaptive_base_ms": sum(adaptive_base) / len(adaptive_base) * 1e3,
        "adaptive_workspace_ms": sum(adaptive_ws) / len(adaptive_ws) * 1e3,
        "adaptive_speedup": (
            sum(adaptive_base) / sum(adaptive_ws) if sum(adaptive_ws) > 0 else float("inf")
        ),
        "workspace_stats": ws_stats,
        "base_freeze_stats": base_ctrl.freeze_stats,
        "workspace_freeze_stats": ws_ctrl.freeze_stats,
        "byte_identical": True,  # asserted above, recorded for the gate test
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"== adaptive-workspace block loop (scale={scale}) ==")
    for key, value in payload.items():
        print(f"  {key}: {value}")
    return payload


def check_gates(payload: dict) -> list:
    """Return the list of failed gate descriptions (empty = all green)."""
    failures = []
    if payload["speedup"] < LOOP_SPEEDUP_GATE:
        failures.append(
            f"adaptive-workspace block-loop speedup {payload['speedup']:.2f}x "
            f"< {LOOP_SPEEDUP_GATE}x"
        )
    if payload["workspace_stats"]["extends"] < 1:
        failures.append("workspace never extended across a τ₁ window")
    if not payload.get("byte_identical"):
        failures.append("workspace run was not byte-identical to the base run")
    return failures


def test_adaptive_run_table(bench_scale):
    payload = run_bench(scale=bench_scale)
    failures = check_gates(payload)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=BENCH_SCALE,
        help="workload scale factor (default: BENCH_SCALE env or 0.5)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUT_PATH,
        help=f"output run-table path (default {OUT_PATH.name} next to this file)",
    )
    args = parser.parse_args()
    result = run_bench(scale=args.scale, out_path=args.out)
    problems = check_gates(result)
    for problem in problems:
        print(f"GATE FAILED: {problem}", file=sys.stderr)
    sys.exit(1 if problems else 0)
