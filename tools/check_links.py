"""Link-check the repo's markdown documentation. Stdlib only.

Scans README.md and docs/**/*.md for markdown links and verifies that
every *relative* link resolves to a file in the repo and that every
anchored link (``file.md#section`` or ``#section``) points at a heading
that exists. External ``http(s)://`` / ``mailto:`` links are not
fetched — CI must stay hermetic — but their URLs are syntax-checked for
whitespace.

Usage::

    python tools/check_links.py            # check README.md + docs/
    python tools/check_links.py FILE...    # check specific files

Exits 1 with one line per broken link, 0 when clean.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target) — excluding images' alt text
#: distinction (images are links too, for existence purposes).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+(?:\s+\"[^\"]*\")?)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def default_files() -> List[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("**/*.md")))
    return [f for f in files if f.exists()]


def slugify(heading: str) -> str:
    """GitHub-style heading anchor: lowercase, spaces to dashes, drop
    everything that is not a word character or dash."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return {slugify(m.group(1)) for m in HEADING_RE.finditer(text)}


def iter_links(path: Path) -> Iterator[str]:
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        # Strip an optional markdown title: (file.md "Title")
        target = target.split(' "', 1)[0].strip()
        yield target


def check_file(path: Path) -> List[Tuple[Path, str, str]]:
    problems = []
    for target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            if any(c.isspace() for c in target):
                problems.append((path, target, "whitespace in URL"))
            continue
        base, _, fragment = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        if not dest.exists():
            problems.append((path, target, "missing file"))
            continue
        if fragment:
            if dest.suffix != ".md":
                continue
            if slugify(fragment) not in anchors_of(dest):
                problems.append((path, target, f"missing anchor #{fragment}"))
    return problems


def main(argv: List[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    files = [Path(a).resolve() for a in argv] if argv else default_files()
    problems = []
    for path in files:
        if not path.exists():
            problems.append((path, "-", "file not found"))
            continue
        problems.extend(check_file(path))
    for path, target, why in problems:
        try:
            shown = path.relative_to(REPO)
        except ValueError:
            shown = path
        print(f"BROKEN {shown}: {target} ({why})", file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
