"""Emit one perf run-table row from the committed/regenerated BENCH files.

ROADMAP's "track absolute seconds across PRs" item: every CI perf run
appends one row — commit, scale, absolute grid/loop/refresh seconds and
the three gated speedups — to a tab-separated table uploaded as a build
artifact, so the trajectory across PRs is a download away instead of an
archaeology dig through old logs.

Usage::

    python benchmarks/run_table.py --header            # print the header
    python benchmarks/run_table.py --commit $SHA       # print one row
    python benchmarks/run_table.py --commit $SHA --append runs.tsv

Missing BENCH files render as ``-`` so a partial regeneration still
produces a row.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent

COLUMNS = (
    "commit",
    "scale",
    "engine_grid_ref_s",
    "engine_grid_fast_s",
    "engine_grid_speedup",
    "delta_loop_full_s",
    "delta_loop_delta_s",
    "delta_loop_speedup",
    "refresh_cold_s",
    "refresh_warm_s",
    "refresh_speedup",
    "warm_objective_ratio",
)


def _load(bench_dir: Path, name: str) -> dict:
    path = bench_dir / name
    if not path.exists():
        return {}
    return json.loads(path.read_text())


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def build_row(bench_dir: Path, commit: str) -> dict:
    engine = _load(bench_dir, "BENCH_engine.json")
    delta = _load(bench_dir, "BENCH_delta.json")
    louvain = _load(bench_dir, "BENCH_louvain.json")
    scale = engine.get("scale", delta.get("scale", louvain.get("scale")))
    return {
        "commit": commit,
        "scale": scale,
        "engine_grid_ref_s": engine.get("ref_seconds"),
        "engine_grid_fast_s": engine.get("fast_seconds"),
        "engine_grid_speedup": engine.get("speedup"),
        "delta_loop_full_s": delta.get("full_loop_seconds"),
        "delta_loop_delta_s": delta.get("delta_loop_seconds"),
        "delta_loop_speedup": delta.get("speedup"),
        "refresh_cold_s": louvain.get("cold_refresh_seconds"),
        "refresh_warm_s": louvain.get("warm_refresh_seconds"),
        "refresh_speedup": louvain.get("refresh_speedup"),
        "warm_objective_ratio": louvain.get("objective_ratio"),
    }


def _git_head() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=BENCH_DIR, check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench-dir", type=Path, default=BENCH_DIR,
        help="directory holding the BENCH_*.json files (default: benchmarks/)",
    )
    parser.add_argument(
        "--commit", default=None,
        help="commit id for the row (default: git rev-parse --short HEAD)",
    )
    parser.add_argument(
        "--header", action="store_true", help="print the header line too"
    )
    parser.add_argument(
        "--append", type=Path, default=None,
        help="append the row (with a header when creating) to this file",
    )
    args = parser.parse_args(argv)

    row = build_row(args.bench_dir, args.commit or _git_head())
    header = "\t".join(COLUMNS)
    line = "\t".join(_fmt(row[c]) for c in COLUMNS)

    if args.append is not None:
        fresh = not args.append.exists() or not args.append.read_text().strip()
        with args.append.open("a") as fh:
            if fresh:
                fh.write(header + "\n")
            fh.write(line + "\n")
    if args.header:
        print(header)
    print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
