"""Two-phase atomic commit for cross-shard transactions (Section II-B).

A cross-shard transaction "is either fully committed or fully aborted by
all involved shards".  We model the client-driven Atomix-style protocol
(OmniLedger): the coordinator collects a *prepare* vote — itself an
intra-shard consensus decision — from every involved shard, then
broadcasts *commit* (all yes) or *abort* (any no).

This is the mechanism behind the ``η > 1`` workload parameter: each
involved shard pays an extra consensus round plus cross-shard messaging.
:func:`estimate_eta` derives an η consistent with the chosen consensus
and network models, which the protocol-integration example uses to pick a
realistic η instead of guessing.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.chain.consensus import consensus_cost
from repro.chain.network import NetworkModel
from repro.errors import ParameterError, SimulationError


@dataclasses.dataclass(frozen=True)
class CommitOutcome:
    """Result of driving one cross-shard transaction to completion."""

    committed: bool
    involved_shards: tuple
    latency_seconds: float
    messages: int
    consensus_rounds: int


class CrossShardCoordinator:
    """Drives prepare/commit across shards and prices the protocol."""

    def __init__(
        self,
        network: NetworkModel,
        miners_per_shard: int,
        protocol: str = "pbft",
        message_delay: float = 0.05,
    ) -> None:
        if miners_per_shard < 1:
            raise ParameterError(
                f"miners_per_shard must be positive, got {miners_per_shard!r}"
            )
        self.network = network
        self.miners_per_shard = miners_per_shard
        self.protocol = protocol
        self.message_delay = message_delay

    def execute(
        self,
        involved_shards: Sequence[int],
        votes: Sequence[bool] = (),
    ) -> CommitOutcome:
        """Run 2PC over ``involved_shards``.

        ``votes`` optionally injects per-shard prepare votes (for abort-path
        testing); by default every shard votes yes.  A single-shard call is
        a plain intra-shard commit: one consensus round, no 2PC.
        """
        shards = sorted(set(involved_shards))
        if not shards:
            raise SimulationError("a transaction must involve at least one shard")
        if votes and len(votes) != len(shards):
            raise SimulationError(
                f"got {len(votes)} votes for {len(shards)} shards"
            )
        per_round = consensus_cost(self.protocol, self.miners_per_shard, self.message_delay)

        if len(shards) == 1:
            return CommitOutcome(
                committed=not votes or votes[0],
                involved_shards=tuple(shards),
                latency_seconds=per_round.latency_seconds,
                messages=per_round.messages,
                consensus_rounds=1,
            )

        coordinator = shards[0]
        # Phase 1 — prepare: request fan-out, a consensus round in each
        # shard (they run in parallel), vote fan-in.
        fan_out = self.network.broadcast_delay(coordinator, shards)
        prepare = per_round.latency_seconds
        fan_in = max(self.network.delay(s, coordinator) for s in shards)
        committed = all(votes) if votes else True
        # Phase 2 — commit/abort broadcast plus the finalising round.
        fan_out2 = self.network.broadcast_delay(coordinator, shards)
        finalise = per_round.latency_seconds
        latency = fan_out + prepare + fan_in + fan_out2 + finalise
        rounds = 2 * len(shards)
        messages = rounds * per_round.messages + 3 * len(shards)
        return CommitOutcome(
            committed=committed,
            involved_shards=tuple(shards),
            latency_seconds=latency,
            messages=messages,
            consensus_rounds=rounds,
        )


def estimate_eta(
    network: NetworkModel,
    miners_per_shard: int,
    protocol: str = "pbft",
    message_delay: float = 0.05,
) -> float:
    """Derive η as the latency ratio cross-shard / intra-shard commit.

    The paper treats η as application-specific; this gives a principled
    default from the substrate's own cost models (typically 2-4 for the
    default parameters, in line with the paper's η range).
    """
    coordinator = CrossShardCoordinator(network, miners_per_shard, protocol, message_delay)
    intra = coordinator.execute([0]).latency_seconds
    cross = coordinator.execute([0, 1]).latency_seconds
    if intra <= 0:
        raise SimulationError("intra-shard commit latency must be positive")
    return max(1.0, cross / intra)
