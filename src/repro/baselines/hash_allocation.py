"""Hash-based random allocation — the incumbent baseline (Section II-C).

Production sharding protocols allocate accounts by hashing their address:

* **Chainspace style**: ``SHA256(address) mod k``;
* **Monoxide style**: the first ``b`` bits of the hash, for ``k = 2^b``
  shards.

Both ignore transaction history entirely, which is why ~90-98 % of
transactions end up cross-shard once ``k`` grows (paper Fig. 2).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable

from repro.core.graph import Node
from repro.errors import ParameterError


def account_digest(account: Node) -> int:
    """The SHA-256 digest of the account identifier, as an integer."""
    data = account if isinstance(account, bytes) else str(account).encode("utf-8")
    return int.from_bytes(hashlib.sha256(data).digest(), "big")


def hash_shard(account: Node, k: int) -> int:
    """Chainspace-style shard of one account: ``SHA256(address) mod k``."""
    if k < 1:
        raise ParameterError(f"number of shards k must be positive, got {k!r}")
    return account_digest(account) % k


def hash_partition(accounts: Iterable[Node], k: int) -> Dict[Node, int]:
    """Allocate every account by ``SHA256(address) mod k``."""
    return {a: hash_shard(a, k) for a in accounts}


def prefix_shard(account: Node, k: int) -> int:
    """Monoxide-style shard: the first ``ceil(log2 k)`` hash bits, mod k.

    For a power-of-two ``k`` this is exactly the paper's "first ``b`` bits"
    rule; for other ``k`` the residue keeps the mapping total.
    """
    if k < 1:
        raise ParameterError(f"number of shards k must be positive, got {k!r}")
    if k == 1:
        return 0
    bits = (k - 1).bit_length()
    prefix = account_digest(account) >> (256 - bits)
    return prefix % k


def prefix_partition(accounts: Iterable[Node], k: int) -> Dict[Node, int]:
    """Allocate every account by its hash prefix (Monoxide style)."""
    return {a: prefix_shard(a, k) for a in accounts}
