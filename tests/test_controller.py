"""Tests for the τ₁/τ₂ dynamic controller."""


from repro.core.controller import TxAlloController
from repro.core.params import TxAlloParams
from repro.data.synthetic import EthereumWorkloadGenerator, WorkloadConfig


def block_stream(num_blocks=12, block_size=30, seed=9):
    config = WorkloadConfig(
        num_accounts=400,
        num_transactions=num_blocks * block_size,
        block_size=block_size,
        seed=seed,
    )
    gen = EthereumWorkloadGenerator(config)
    return [[tuple(tx.accounts) for tx in block] for block in gen.blocks()]


class TestScheduling:
    def test_initial_global_run_recorded(self):
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=2, tau2=6)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        assert controller.events[0].kind == "global"

    def test_adaptive_fires_every_tau1(self):
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=2, tau2=100)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        events = [controller.observe_block(block) for block in block_stream(8)]
        fired = [e for e in events if e is not None]
        assert len(fired) == 4
        assert all(e.kind == "adaptive" for e in fired)

    def test_global_fires_every_tau2_and_wins_ties(self):
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=2, tau2=4)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        events = [controller.observe_block(block) for block in block_stream(8)]
        fired = [e for e in events if e is not None]
        kinds = [e.kind for e in fired]
        # Blocks 2,6 -> adaptive; blocks 4,8 -> global (tau2 divides them).
        assert kinds == ["adaptive", "global", "adaptive", "global"]

    def test_no_update_between_periods(self):
        params = TxAlloParams(k=2, eta=2.0, lam=1000.0, tau1=5, tau2=10)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        assert controller.observe_block([("a", "c")]) is None

    def test_event_views(self):
        params = TxAlloParams(k=2, eta=2.0, lam=1000.0, tau1=1, tau2=3)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        for block in block_stream(6):
            controller.observe_block(block)
        assert len(controller.global_events) >= 2  # initial + scheduled
        assert len(controller.adaptive_events) >= 3


class TestStateIntegrity:
    def test_allocation_complete_after_stream(self):
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=2, tau2=6)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        for block in block_stream(12):
            controller.observe_block(block)
        controller.force_adaptive()  # flush the touched set
        controller.allocation.validate()

    def test_force_global_resets_touched(self):
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=100, tau2=1000)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        for block in block_stream(3):
            controller.observe_block(block)
        event = controller.force_global()
        assert event.kind == "global"
        controller.allocation.validate()

    def test_block_height_advances(self):
        params = TxAlloParams(k=2, eta=2.0, lam=1000.0, tau1=5, tau2=10)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        blocks = block_stream(4)
        for block in blocks:
            controller.observe_block(block)
        assert controller.block_height == 4

    def test_deterministic_across_controllers(self):
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=2, tau2=6)
        mappings = []
        for _ in range(2):
            controller = TxAlloController(params, seed_transactions=[("a", "b")])
            for block in block_stream(10):
                controller.observe_block(block)
            controller.force_adaptive()
            mappings.append(controller.allocation.mapping())
        assert mappings[0] == mappings[1]

    def test_hash_order_independent_ingest(self):
        """Two controllers fed permuted, duplicate-laden account lists
        must produce identical caches *float for float*: observe_block
        ingests in sorted deduplicated order, so the allocation's
        accumulations never depend on set iteration order."""
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=2, tau2=6)
        blocks = block_stream(10)
        import random

        rng = random.Random(42)
        controllers = []
        for permute in (False, True):
            controller = TxAlloController(params, seed_transactions=[("a", "b")])
            for block in blocks:
                if permute:
                    block = [
                        tuple(rng.sample(list(accs) + [accs[0]], len(accs) + 1))
                        for accs in block
                    ]
                controller.observe_block(block)
            controller.force_adaptive()
            controllers.append(controller)
        first, second = controllers
        assert first.allocation.mapping() == second.allocation.mapping()
        assert first.allocation.sigma == second.allocation.sigma      # exact
        assert first.allocation.lam_hat == second.allocation.lam_hat  # exact

    def test_incremental_freezes_on_the_block_loop(self):
        """The controller path must ride the delta-freeze: after the
        seeded global run, scheduled updates extend the snapshot."""
        params = TxAlloParams(k=4, eta=2.0, lam=1000.0, tau1=1, tau2=50)
        controller = TxAlloController(
            params, seed_transactions=[b for blk in block_stream(12) for b in blk]
        )
        for block in block_stream(8, block_size=10, seed=10):
            controller.observe_block(block)
        stats = controller.freeze_stats
        assert stats["delta"] > 0
        assert stats["delta"] >= stats["full"]

    def test_seed_event_times_like_scheduled_globals(self):
        """Satellite pin: the seed UpdateEvent carries wall-clock seconds
        around the g_txallo call, same semantics as _run_global."""
        params = TxAlloParams(k=2, eta=2.0, lam=1000.0, tau1=5, tau2=10)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        seed_event = controller.events[0]
        assert seed_event.kind == "global"
        assert seed_event.seconds > 0.0

    def test_adaptive_disabled(self):
        params = TxAlloParams(k=2, eta=2.0, lam=1000.0, tau1=1, tau2=100)
        controller = TxAlloController(
            params, seed_transactions=[("a", "b")], adaptive_enabled=False
        )
        events = [controller.observe_block(b) for b in block_stream(4)]
        assert all(e is None for e in events)
