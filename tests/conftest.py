"""Shared fixtures for the test suite.

Heavy objects (the synthetic workload, its transaction graph) are
session-scoped; tests must treat them as read-only and copy before
mutating.
"""

from __future__ import annotations

import random

import pytest

from repro.core.graph import TransactionGraph
from repro.core.params import TxAlloParams
from repro.data.synthetic import EthereumWorkloadGenerator, WorkloadConfig, account_sets


@pytest.fixture
def triangle_graph() -> TransactionGraph:
    """Two triangles joined by one bridge edge, plus a self-loop."""
    graph = TransactionGraph()
    for pair in [("a", "b"), ("b", "c"), ("a", "c"),
                 ("x", "y"), ("y", "z"), ("x", "z"),
                 ("c", "x")]:
        graph.add_transaction(pair)
    graph.add_transaction(("a", "a"))
    return graph


@pytest.fixture
def params2() -> TxAlloParams:
    return TxAlloParams(k=2, eta=2.0, lam=10.0, epsilon=1e-9)


@pytest.fixture
def params4() -> TxAlloParams:
    return TxAlloParams(k=4, eta=2.0, lam=100.0, epsilon=1e-9)


def make_random_graph(
    num_accounts: int = 60,
    num_transactions: int = 400,
    seed: int = 11,
    groups: int = 3,
) -> TransactionGraph:
    """A small clustered random graph for exactness/property tests."""
    rng = random.Random(seed)
    accounts = [f"acc{i:03d}" for i in range(num_accounts)]
    per_group = num_accounts // groups
    graph = TransactionGraph()
    for _ in range(num_transactions):
        g = rng.randrange(groups)
        pool = accounts[g * per_group:(g + 1) * per_group]
        size = rng.choice([1, 2, 2, 2, 2, 3])
        accs = rng.sample(pool, min(size, len(pool)))
        if rng.random() < 0.15:
            accs.append(rng.choice(accounts))
        graph.add_transaction(set(accs))
    return graph


@pytest.fixture
def clustered_graph() -> TransactionGraph:
    return make_random_graph()


@pytest.fixture(scope="session")
def small_workload():
    """A session-scoped synthetic workload: ~6k transactions."""
    config = WorkloadConfig(num_accounts=1500, num_transactions=6000, seed=5)
    generator = EthereumWorkloadGenerator(config)
    transactions = generator.generate()
    sets_ = account_sets(transactions)
    graph = TransactionGraph()
    for s in sets_:
        graph.add_transaction(s)
    return {
        "config": config,
        "generator": generator,
        "transactions": transactions,
        "sets": sets_,
        "graph": graph,
    }
