"""Multi-core execution layer run-table: parallel grids + shard sweeps.

Times both halves of :mod:`repro.core.parallel` (ROADMAP item 5's
multi-core layer) and writes ``BENCH_parallel.json`` next to this file:

* **grid scaling** — the Fig. 8 evaluation grid
  (:func:`repro.eval.experiments.sweep`) at ``workers`` 1, 2 and 4,
  asserting the records are identical across worker counts (the
  process-parallel contract: ``workers=N`` changes wall-clock only);
* **window sweeps** — a τ₁-cadenced controller run over the block
  stream on the ``vector`` baseline vs the ``parallel`` backend at
  ``workers`` 1 and 4, recording adaptive-seconds totals, the minimum
  TxAllo objective ratio against the baseline, and the
  workers-independence of the final mapping.

``cpu_count`` and ``fork_available`` ride in the payload because the
*speedup* gates are environment-conditional: a 1-core container cannot
exhibit multi-core speedups, so ``check_gates`` enforces them only when
the recording host actually had the cores (>= 4) at the committed
scale-2 row — the structural gates (record identity, objective ratio,
workers-independence, the batched path actually running) hold
everywhere and always.

Scale knob: ``--scale`` / the ``BENCH_SCALE`` env crank the workload
(CI's perf leg regenerates this table with ``--workers 2``;
``--scale 2 --out BENCH_parallel.scale2.json`` produces the committed
large-N row that ``tests/test_bench_gate.py`` gates).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

try:  # script mode from a clean checkout: resolve the src layout
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.parallel import pin_blas_threads

# Explicit thread ownership for honest timings: pin the BLAS/OpenMP
# knobs before any repro import can pull numpy in (the multi-core
# layer owns its parallelism -- see repro.core.parallel).
pin_blas_threads()

from repro.core import backends, parallel
from repro.core.controller import TxAlloController
from repro.core.params import TxAlloParams
from repro.data.synthetic import account_sets
from repro.eval import experiments

BENCH_SCALE = float(os.environ.get("BENCH_SCALE", "0.5"))

#: The Fig. 8 grid axes (``conftest.BENCH_KS`` x ``conftest.BENCH_ETAS``)
#: restricted to the two slowest methods — the grid-scaling story is
#: about fan-out, not about re-benching every allocator (bench_fig8
#: already does that).
GRID_KS = (2, 10, 20, 40, 60)
GRID_ETAS = (2.0, 6.0, 10.0)
GRID_METHODS = ("txallo", "metis")
GRID_WORKERS = (1, 2, 4)

#: Window-sweep scenario: adaptive-only cadence (no global refresh
#: inside the run) so the measured seconds are pure A-TxAllo kernel
#: time, with windows large enough to exercise the batched path.
WINDOW_TAU1 = 10
WINDOW_MAX_BLOCKS = 400
WINDOW_K = 20
WINDOW_ETA = 2.0

OUT_PATH = Path(__file__).resolve().parent / "BENCH_parallel.json"


def _grid_part(scale: float) -> dict:
    workload = experiments.build_workload(scale=scale, seed=2022)
    seconds = {}
    canon = {}
    for workers in GRID_WORKERS:
        t0 = time.perf_counter()
        records = experiments.sweep(
            workload,
            ks=GRID_KS,
            etas=GRID_ETAS,
            methods=GRID_METHODS,
            backend="fast",
            workers=workers,
        )
        seconds[workers] = time.perf_counter() - t0
        canon[workers] = parallel.canonical_records(records)
    identical = all(canon[w] == canon[1] for w in GRID_WORKERS)
    return {
        "n_nodes": workload.graph.num_nodes,
        "n_edges": workload.graph.num_edges,
        "n_transactions": workload.num_transactions,
        "grid_ks": list(GRID_KS),
        "grid_etas": list(GRID_ETAS),
        "grid_methods": list(GRID_METHODS),
        "grid_seconds": {str(w): seconds[w] for w in GRID_WORKERS},
        "grid_speedup_w2": seconds[1] / seconds[2] if seconds[2] > 0 else None,
        "grid_speedup_w4": seconds[1] / seconds[4] if seconds[4] > 0 else None,
        "grid_records_identical": identical,
    }


def _window_run(scale: float, backend: str, workers: int):
    """One adaptive-only controller run; returns the per-run summary."""
    workload = experiments.build_workload(scale=scale, seed=2022)
    blocks = list(workload.blocks)[:WINDOW_MAX_BLOCKS]
    # Finite capacity (the paper's lam = |T|/k convention) so the sweeps
    # chase real capped-throughput gains: with the uncapped default every
    # join/leave pair cancels exactly and the kernels converge on noise.
    params = TxAlloParams.with_capacity_for(
        workload.num_transactions,
        k=WINDOW_K,
        eta=WINDOW_ETA,
        tau1=WINDOW_TAU1,
        tau2=10**6,
        backend=backend,
        workers=workers,
    )
    controller = TxAlloController(params)
    batched_runs = 0
    for block in blocks:
        event = controller.observe_block(account_sets(list(block)))
        if (
            event is not None
            and event.kind == "adaptive"
            and backend == "parallel"
            and parallel.LAST_RUN_STATS.get("batched")
        ):
            batched_runs += 1
    adaptive_seconds = sum(e.seconds for e in controller.adaptive_events)
    return {
        "adaptive_seconds": adaptive_seconds,
        "adaptive_runs": len(controller.adaptive_events),
        "objective": controller.allocation.total_throughput(),
        "mapping": controller.allocation.mapping(),
        "batched_runs": batched_runs,
    }


def _window_part(scale: float) -> dict:
    if not backends.get_backend("parallel").available():
        # No numpy: the parallel tier resolves to its fallback chain, so
        # there is nothing new to measure.  Keep the schema stable.
        return {
            "window_tau1": WINDOW_TAU1,
            "window_blocks": WINDOW_MAX_BLOCKS,
            "window_adaptive_runs": None,
            "window_vector_seconds": None,
            "window_par1_seconds": None,
            "window_par4_seconds": None,
            "window_speedup_w4": None,
            "window_objective_ratio_min": None,
            "window_workers_independent": None,
            "window_batched_runs": None,
        }
    base = _window_run(scale, "vector", 1)
    par1 = _window_run(scale, "parallel", 1)
    par4 = _window_run(scale, "parallel", 4)
    ratio_min = min(
        par1["objective"] / base["objective"],
        par4["objective"] / base["objective"],
    )
    return {
        "window_tau1": WINDOW_TAU1,
        "window_blocks": WINDOW_MAX_BLOCKS,
        "window_adaptive_runs": base["adaptive_runs"],
        "window_vector_seconds": base["adaptive_seconds"],
        "window_par1_seconds": par1["adaptive_seconds"],
        "window_par4_seconds": par4["adaptive_seconds"],
        "window_speedup_w4": (
            base["adaptive_seconds"] / par4["adaptive_seconds"]
            if par4["adaptive_seconds"] > 0
            else None
        ),
        "window_objective_ratio_min": ratio_min,
        "window_workers_independent": par1["mapping"] == par4["mapping"],
        "window_batched_runs": par4["batched_runs"],
    }


def run_bench(scale: float = BENCH_SCALE, out_path: Path = OUT_PATH) -> dict:
    payload = {
        "scale": scale,
        "cpu_count": os.cpu_count(),
        "fork_available": parallel.fork_available(),
        "numpy_available": backends.get_backend("parallel").available(),
        "blas_pinned": parallel.blas_threads_pinned(),
    }
    payload.update(_grid_part(scale))
    payload.update(_window_part(scale))
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"== multi-core execution layer (scale={scale}) ==")
    for key, value in payload.items():
        print(f"  {key}: {value}")
    return payload


def check_gates(payload: dict) -> list:
    """Return the list of failed gate descriptions (empty = all green).

    Structural gates apply unconditionally; the multi-core *speedup*
    gates only where the recording host could exhibit them (>= 4 cores,
    the committed scale-2 row) — a 1-core container records honest
    ~1.0x columns without failing.
    """
    failures = []
    if not payload["grid_records_identical"]:
        failures.append("parallel grid records differ from workers=1")
    # Fork-pool overhead must stay in the noise even without spare
    # cores: fanning out may not *lose* the grid.
    w4 = payload.get("grid_speedup_w4")
    if w4 is not None and w4 < 0.8:
        failures.append(f"parallel grid overhead too high: {w4:.2f}x at 4 workers")
    if payload.get("window_objective_ratio_min") is not None:
        ratio = payload["window_objective_ratio_min"]
        if ratio < 1.0 - backends.OBJECTIVE_TOLERANCE:
            failures.append(
                f"shard-parallel objective ratio out of tolerance: {ratio:.4f}"
            )
        if not payload["window_workers_independent"]:
            failures.append("shard-parallel mapping depends on workers")
        if not payload["window_batched_runs"]:
            failures.append("no window ever took the batched shard-parallel path")
    cpus = payload.get("cpu_count") or 1
    if cpus >= 4 and payload["scale"] >= 2.0:
        if w4 is not None and w4 < 2.5:
            failures.append(f"parallel grid speedup regressed: {w4:.2f}x < 2.5x")
        ws = payload.get("window_speedup_w4")
        if ws is not None and ws < 1.5:
            failures.append(f"window sweep speedup regressed: {ws:.2f}x < 1.5x")
    return failures


def test_parallel_run_table(bench_scale):
    payload = run_bench(scale=bench_scale)
    failures = check_gates(payload)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=BENCH_SCALE,
        help="workload scale factor (default: BENCH_SCALE env or 0.5)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUT_PATH,
        help=f"output run-table path (default {OUT_PATH.name} next to this file)",
    )
    args = parser.parse_args()
    result = run_bench(scale=args.scale, out_path=args.out)
    problems = check_gates(result)
    for problem in problems:
        print(f"GATE FAILED: {problem}", file=sys.stderr)
    sys.exit(1 if problems else 0)
