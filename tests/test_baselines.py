"""Tests for the three baseline allocators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.hash_allocation import (
    account_digest,
    hash_partition,
    hash_shard,
    prefix_partition,
    prefix_shard,
)
from repro.baselines.metis import metis_partition
from repro.baselines.shard_scheduler import ShardScheduler, shard_scheduler_partition
from repro.core.metrics import graph_cross_shard_ratio, workload_balance
from repro.core.params import TxAlloParams
from repro.errors import ParameterError
from tests.conftest import make_random_graph


class TestHashAllocation:
    def test_shard_in_range(self):
        for k in (1, 2, 7, 60):
            assert 0 <= hash_shard("0xabc", k) < k

    def test_deterministic(self):
        assert hash_shard("0xabc", 16) == hash_shard("0xabc", 16)

    def test_partition_covers_all_accounts(self):
        accounts = [f"0x{i:040x}" for i in range(100)]
        part = hash_partition(accounts, 8)
        assert set(part) == set(accounts)
        assert set(part.values()) <= set(range(8))

    def test_roughly_uniform(self):
        accounts = [f"0x{i:040x}" for i in range(4000)]
        part = hash_partition(accounts, 4)
        counts = [0] * 4
        for shard in part.values():
            counts[shard] += 1
        for c in counts:
            assert abs(c - 1000) < 200

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            hash_shard("0xabc", 0)
        with pytest.raises(ParameterError):
            prefix_shard("0xabc", -1)

    def test_prefix_shard_range(self):
        for k in (1, 2, 8, 60):
            assert 0 <= prefix_shard("0xdef", k) < k

    def test_prefix_partition(self):
        accounts = [f"0x{i:040x}" for i in range(50)]
        part = prefix_partition(accounts, 8)
        assert set(part) == set(accounts)

    def test_digest_accepts_bytes(self):
        assert account_digest(b"abc") == account_digest(b"abc")

    @given(k=st.integers(1, 64), acc=st.text(min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_property_shard_in_range(self, k, acc):
        assert 0 <= hash_shard(acc, k) < k


class TestMetis:
    def test_partition_complete_and_in_range(self, clustered_graph):
        result = metis_partition(clustered_graph, 4)
        assert set(result.mapping) == set(clustered_graph.nodes())
        assert set(result.mapping.values()) <= set(range(4))

    def test_single_part(self, clustered_graph):
        result = metis_partition(clustered_graph, 1)
        assert set(result.mapping.values()) == {0}
        assert result.edge_cut == 0.0

    def test_empty_graph(self):
        from repro.core.graph import TransactionGraph

        assert metis_partition(TransactionGraph(), 4).mapping == {}

    def test_invalid_k(self, clustered_graph):
        with pytest.raises(ParameterError):
            metis_partition(clustered_graph, 0)

    def test_deterministic(self, clustered_graph):
        r1 = metis_partition(clustered_graph, 4)
        r2 = metis_partition(clustered_graph, 4)
        assert r1.mapping == r2.mapping

    def test_cut_better_than_random(self):
        graph = make_random_graph(num_accounts=80, num_transactions=600, seed=17, groups=4)
        metis_gamma = graph_cross_shard_ratio(graph, metis_partition(graph, 4).mapping)
        random_gamma = graph_cross_shard_ratio(
            graph, hash_partition(graph.nodes_sorted(), 4)
        )
        assert metis_gamma < random_gamma

    def test_node_weight_balance_respected(self):
        graph = make_random_graph(num_accounts=80, num_transactions=600, seed=18, groups=4)
        result = metis_partition(graph, 4, imbalance=1.1)
        # imbalance diagnostic is max/avg of node weights.
        assert result.node_weight_imbalance < 1.8

    def test_custom_node_weights(self, clustered_graph):
        weights = {v: 1.0 for v in clustered_graph.nodes()}
        result = metis_partition(clustered_graph, 3, node_weights=weights)
        sizes = [0] * 3
        for shard in result.mapping.values():
            sizes[shard] += 1
        assert max(sizes) - min(sizes) < len(weights)

    def test_levels_reported(self):
        graph = make_random_graph(num_accounts=200, num_transactions=1500, seed=19)
        result = metis_partition(graph, 2)
        assert result.levels >= 1


class TestShardScheduler:
    def params(self, k=4, eta=2.0, n=100):
        return TxAlloParams.with_capacity_for(n, k=k, eta=eta)

    def test_places_every_account(self):
        txs = [("a", "b"), ("c", "d"), ("a", "c")]
        result = shard_scheduler_partition(txs, self.params(n=3))
        assert set(result.mapping) == {"a", "b", "c", "d"}

    def test_new_accounts_go_to_least_loaded(self):
        scheduler = ShardScheduler(self.params())
        scheduler.loads = [5.0, 0.0, 5.0, 5.0]
        scheduler.observe(("x", "y"))
        assert scheduler.mapping["x"] == 1
        assert scheduler.mapping["y"] == 1

    def test_intra_tx_charges_one(self):
        scheduler = ShardScheduler(self.params())
        scheduler.observe(("a", "b"))
        assert sum(scheduler.loads) == pytest.approx(1.0)

    def test_cross_tx_charges_eta_per_shard(self):
        scheduler = ShardScheduler(self.params(eta=3.0))
        scheduler.mapping = {"a": 0, "b": 1}
        # Force loads so no migration is allowed (neither overloaded).
        scheduler.loads = [1.0, 1.0, 1.0, 1.0]
        was_cross = scheduler.observe(("a", "b"))
        assert was_cross
        assert scheduler.loads[0] == pytest.approx(4.0)
        assert scheduler.loads[1] == pytest.approx(4.0)

    def test_migration_relieves_overloaded_shard(self):
        scheduler = ShardScheduler(self.params())
        scheduler.mapping = {"a": 0, "b": 1}
        scheduler.loads = [100.0, 0.0, 0.0, 0.0]  # shard 0 overloaded
        scheduler.observe(("a", "b"))
        assert scheduler.mapping["a"] == 1
        assert scheduler.num_migrations == 1

    def test_no_migration_when_balanced(self):
        scheduler = ShardScheduler(self.params())
        scheduler.mapping = {"a": 0, "b": 1}
        scheduler.loads = [1.0, 1.0, 1.0, 1.0]
        scheduler.observe(("a", "b"))
        assert scheduler.mapping["a"] == 0
        assert scheduler.num_migrations == 0

    def test_deterministic(self, small_workload):
        params = TxAlloParams.with_capacity_for(len(small_workload["sets"]), k=6)
        r1 = shard_scheduler_partition(small_workload["sets"], params)
        r2 = shard_scheduler_partition(small_workload["sets"], params)
        assert r1.mapping == r2.mapping
        assert r1.shard_loads == r2.shard_loads

    def test_balance_is_excellent(self, small_workload):
        params = TxAlloParams.with_capacity_for(len(small_workload["sets"]), k=6)
        result = shard_scheduler_partition(small_workload["sets"], params)
        rho = workload_balance(result.shard_loads, params.lam)
        assert rho < 0.2

    def test_invalid_buffer(self):
        with pytest.raises(ParameterError):
            ShardScheduler(self.params(), buffer_ratio=0.0)

    def test_result_counters_consistent(self, small_workload):
        params = TxAlloParams.with_capacity_for(len(small_workload["sets"]), k=6)
        result = shard_scheduler_partition(small_workload["sets"], params)
        assert result.num_transactions == len(small_workload["sets"])
        assert 0 <= result.num_cross_shard <= result.num_transactions
        assert 0.0 <= result.cross_shard_ratio <= 1.0

    def test_throughput_capped_by_system_capacity(self, small_workload):
        params = TxAlloParams.with_capacity_for(len(small_workload["sets"]), k=6)
        result = shard_scheduler_partition(small_workload["sets"], params)
        assert result.throughput(params.lam) <= params.lam * params.k + 1e-6
