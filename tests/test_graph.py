"""Unit tests for the transaction graph (Definition 2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import TransactionGraph, pair_count
from repro.errors import GraphError, TransactionError


class TestPairCount:
    def test_single_account_is_one_self_loop(self):
        assert pair_count(1) == 1

    def test_pair(self):
        assert pair_count(2) == 1

    def test_triple(self):
        assert pair_count(3) == 3

    def test_five_accounts(self):
        assert pair_count(5) == 10

    def test_matches_combination_formula(self):
        for n in range(2, 12):
            assert pair_count(n) == math.comb(n, 2)

    def test_zero_accounts_rejected(self):
        with pytest.raises(TransactionError):
            pair_count(0)

    def test_negative_rejected(self):
        with pytest.raises(TransactionError):
            pair_count(-3)


class TestEdgeConstruction:
    def test_simple_transfer_adds_unit_edge(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        assert g.edge_weight("a", "b") == pytest.approx(1.0)
        assert g.edge_weight("b", "a") == pytest.approx(1.0)

    def test_weights_accumulate_over_transactions(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        g.add_transaction(("a", "b"))
        g.add_transaction(("b", "a"))
        assert g.edge_weight("a", "b") == pytest.approx(3.0)

    def test_direction_is_ignored(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        h = TransactionGraph()
        h.add_transaction(("b", "a"))
        assert g.edge_weight("a", "b") == h.edge_weight("a", "b")

    def test_multi_account_transaction_splits_weight(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b", "c"))
        for u, v in [("a", "b"), ("a", "c"), ("b", "c")]:
            assert g.edge_weight(u, v) == pytest.approx(1.0 / 3.0)

    def test_multi_account_weight_sums_to_one(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b", "c", "d", "e"))
        assert g.total_weight == pytest.approx(1.0)

    def test_duplicate_accounts_collapse(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b", "a", "b"))
        assert g.edge_weight("a", "b") == pytest.approx(1.0)

    def test_self_loop_gets_full_weight(self):
        g = TransactionGraph()
        g.add_transaction(("a",))
        assert g.self_loop("a") == pytest.approx(1.0)

    def test_self_loop_counts_once_in_total_weight(self):
        g = TransactionGraph()
        g.add_transaction(("a",))
        g.add_transaction(("a", "b"))
        assert g.total_weight == pytest.approx(2.0)

    def test_empty_transaction_rejected(self):
        g = TransactionGraph()
        with pytest.raises(TransactionError):
            g.add_transaction(())

    def test_zero_weight_edge_rejected(self):
        g = TransactionGraph()
        with pytest.raises(GraphError):
            g.add_edge("a", "b", 0.0)

    def test_negative_weight_edge_rejected(self):
        g = TransactionGraph()
        with pytest.raises(GraphError):
            g.add_edge("a", "b", -1.0)

    def test_add_transactions_bulk(self):
        g = TransactionGraph()
        g.add_transactions([("a", "b"), ("b", "c")])
        assert g.num_transactions == 2


class TestQueries:
    def test_contains_and_len(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        assert "a" in g and "b" in g and "c" not in g
        assert len(g) == 2

    def test_num_edges_counts_distinct_pairs(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        g.add_transaction(("a", "b"))
        g.add_transaction(("a",))
        assert g.num_edges == 2  # pair + self-loop

    def test_unknown_node_neighbourhood_raises(self):
        g = TransactionGraph()
        with pytest.raises(GraphError):
            g.neighbours("ghost")

    def test_edge_weight_missing_is_zero(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        assert g.edge_weight("a", "zzz") == 0.0
        assert g.edge_weight("zzz", "a") == 0.0

    def test_external_strength_excludes_self_loop(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        g.add_transaction(("a",))
        assert g.external_strength("a") == pytest.approx(1.0)
        assert g.strength("a") == pytest.approx(2.0)

    def test_degree(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        g.add_transaction(("a", "c"))
        g.add_transaction(("a",))
        assert g.degree("a") == 3  # b, c, and the loop

    def test_nodes_sorted(self):
        g = TransactionGraph()
        g.add_transaction(("z", "a"))
        g.add_transaction(("m", "a"))
        assert g.nodes_sorted() == ["a", "m", "z"]

    def test_nodes_insertion_order(self):
        g = TransactionGraph()
        g.add_transaction(("b", "a"))  # sorted inside a tx: a first
        g.add_transaction(("c", "a"))
        assert list(g.nodes()) == ["a", "b", "c"]

    def test_edges_yields_each_pair_once(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        g.add_transaction(("b", "c"))
        g.add_transaction(("a",))
        edges = list(g.edges())
        assert len(edges) == 3
        total = sum(w for _, _, w in edges)
        assert total == pytest.approx(g.total_weight)

    def test_subgraph_weight(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        g.add_transaction(("b", "c"))
        g.add_transaction(("a",))
        assert g.subgraph_weight({"a", "b"}) == pytest.approx(2.0)
        assert g.subgraph_weight({"a", "b", "c"}) == pytest.approx(3.0)
        assert g.subgraph_weight({"c"}) == pytest.approx(0.0)

    def test_copy_is_independent(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        h = g.copy()
        h.add_transaction(("a", "c"))
        assert "c" not in g
        assert g.num_transactions == 1
        assert h.num_transactions == 2

    def test_degree_histogram_covers_all_nodes(self, clustered_graph):
        hist = clustered_graph.degree_histogram()
        assert sum(count for _, count in hist) == clustered_graph.num_nodes

    def test_degree_histogram_empty_graph(self):
        assert TransactionGraph().degree_histogram() == []


class TestInvariantsProperty:
    @given(
        txs=st.lists(
            st.lists(st.integers(0, 20).map(lambda i: f"a{i}"), min_size=1, max_size=5),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_total_weight_equals_transaction_count(self, txs):
        g = TransactionGraph()
        for accounts in txs:
            g.add_transaction(accounts)
        assert g.total_weight == pytest.approx(len(txs))

    @given(
        txs=st.lists(
            st.lists(st.integers(0, 15).map(lambda i: f"a{i}"), min_size=1, max_size=4),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_strength_sum_is_twice_pairs_plus_loops(self, txs):
        g = TransactionGraph()
        for accounts in txs:
            g.add_transaction(accounts)
        loops = sum(g.self_loop(v) for v in g.nodes())
        strengths = sum(g.external_strength(v) for v in g.nodes())
        # Each pair edge is counted from both endpoints.
        assert strengths / 2.0 + loops == pytest.approx(g.total_weight)

    @given(
        txs=st.lists(
            st.lists(st.integers(0, 15).map(lambda i: f"a{i}"), min_size=1, max_size=4),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_edges_iteration_consistent_with_adjacency(self, txs):
        g = TransactionGraph()
        for accounts in txs:
            g.add_transaction(accounts)
        for u, v, w in g.edges():
            assert g.edge_weight(u, v) == pytest.approx(w)
            assert g.edge_weight(v, u) == pytest.approx(w)

    @given(
        txs=st.lists(
            st.lists(st.integers(0, 15).map(lambda i: f"a{i}"), min_size=1, max_size=4),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_edges_orientation_is_insertion_order(self, txs):
        """Regression pin for the documented ``edges()`` orientation: the
        earlier-inserted endpoint of every pair comes first, and each
        undirected edge is yielded exactly once."""
        g = TransactionGraph()
        for accounts in txs:
            g.add_transaction(accounts)
        rank = {v: i for i, v in enumerate(g.nodes())}
        seen = set()
        count = 0
        for u, v, w in g.edges():
            count += 1
            key = frozenset((u, v))
            assert key not in seen
            seen.add(key)
            if u != v:
                assert rank[u] < rank[v]
        assert count == g.num_edges


class TestFreeze:
    def small_graph(self):
        g = TransactionGraph()
        g.add_transaction(("b", "a"))
        g.add_transaction(("c", "b"))
        g.add_transaction(("a",))
        g.add_node("island")
        return g

    def test_freeze_interns_in_insertion_order(self):
        g = self.small_graph()
        csr = g.freeze()
        # Ids follow chronological appearance (add_transaction ingests
        # each transaction's accounts in sorted order, so "a" precedes
        # "b" here), stable under incremental growth ...
        assert csr.nodes == ["a", "b", "c", "island"]
        assert csr.nodes == list(g.nodes())
        assert csr.index_of["a"] == 0
        assert csr.num_nodes == 4
        # ... and the canonical ascending-identifier sweep order is the
        # sorted_order permutation.
        assert [csr.nodes[i] for i in csr.sorted_order] == ["a", "b", "c", "island"]
        # Ids diverge from sorted order once a later transaction brings
        # in an earlier-sorting account.
        g.add_transaction(("aaa", "c"))
        csr = g.freeze()
        assert csr.index_of["aaa"] == 4
        assert [csr.nodes[i] for i in csr.sorted_order] == [
            "a", "aaa", "b", "c", "island",
        ]

    def test_freeze_mirrors_adjacency(self):
        g = self.small_graph()
        csr = g.freeze()
        for v in g.nodes():
            i = csr.index_of[v]
            row = g.neighbours(v)
            start, end = csr.indptr[i], csr.indptr[i + 1]
            got = {csr.nodes[csr.indices[t]]: csr.weights[t] for t in range(start, end)}
            assert got == dict(row)
            assert csr.loop[i] == g.self_loop(v)
            assert csr.ext[i] == pytest.approx(g.external_strength(v))
            # The loop-free hot view carries the same (neighbour, weight)s.
            assert {csr.nodes[j]: w for j, w in csr.pairs[i]} == {
                u: w for u, w in row.items() if u != v
            }

    def test_freeze_is_cached_until_mutation(self):
        g = self.small_graph()
        first = g.freeze()
        assert g.freeze() is first
        g.add_transaction(("a", "d"))
        second = g.freeze()
        assert second is not first
        assert "d" in second.index_of
        # The old snapshot is detached, not mutated.
        assert "d" not in first.index_of

    def test_add_existing_node_keeps_cache(self):
        g = self.small_graph()
        first = g.freeze()
        g.add_node("a")  # no-op: already present
        assert g.freeze() is first

    def test_sorted_permutation_roundtrips(self):
        g = self.small_graph()
        csr = g.freeze()
        assert list(csr.nodes) == list(g.nodes())  # ids == insertion order
        order = [csr.nodes[i] for i in csr.sorted_order]
        assert order == g.nodes_sorted()
        for i in range(csr.num_nodes):
            assert csr.sorted_order[csr.sorted_rank[i]] == i


class TestMutationJournal:
    def test_records_nodes_and_edge_increments_in_order(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        journal = g.start_mutation_journal()
        g.add_transaction(("a", "b"))   # existing pair: increment only
        g.add_transaction(("c",))       # new node + self-loop
        assert journal.nodes == ["c"]
        assert journal.edges == [("a", "b", 1.0), ("c", "c", 1.0)]
        journal.clear()
        assert journal.nodes == [] and journal.edges == []
        assert not journal.poisoned

    def test_bulk_mutation_poisons_and_detaches(self):
        from repro.core.forecast import DecayingTransactionGraph

        g = DecayingTransactionGraph(decay=0.5)
        g.add_transaction(("a", "b"))
        journal = g.start_mutation_journal()
        g.advance_window()
        assert journal.poisoned
        # Detached: later mutations no longer accrue to the dead journal.
        g.add_transaction(("a", "b"))
        assert journal.edges == []

    def test_new_journal_poisons_the_previous_one(self):
        g = TransactionGraph()
        first = g.start_mutation_journal()
        second = g.start_mutation_journal()
        assert first.poisoned and not second.poisoned
        g.add_transaction(("x", "y"))
        assert first.edges == [] and len(second.edges) == 1

    def test_stop_detaches_only_the_active_journal(self):
        g = TransactionGraph()
        journal = g.start_mutation_journal()
        g.stop_mutation_journal(journal)
        assert journal.poisoned
        g.add_transaction(("x", "y"))
        assert journal.edges == []
