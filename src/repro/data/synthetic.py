"""Synthetic Ethereum-like transaction workloads.

The paper evaluates on an XBlock/BigQuery export of 91,857,819 Ethereum
transactions over 12,614,390 accounts (blocks 10.0M-10.6M, summer 2020).
That dump is not redistributable here, so this generator synthesises a
workload reproducing the structural facts the paper states about it
(Section VI-A, Fig. 1) — the facts that actually drive every comparative
result:

* **long-tail account activity** — account popularity is Zipf-distributed;
  most accounts appear in a handful of transactions;
* **a hyper-active hub** — one account (a popular contract) participates
  in ~11 % of all transactions, which is what wrecks workload balance for
  graph partitioners (Fig. 4);
* **community structure** — accounts cluster (exchanges, DApps); most
  transactions stay inside a cluster, which is what TxAllo exploits;
* **self-loops** — e.g. self-sends used to replace pending transactions;
* **multi-input/multi-output transactions** — a small fraction of
  transactions touch more than two accounts (contract fan-outs).

Everything is driven by one integer seed; two generators with equal
configs produce byte-identical workloads.
"""

from __future__ import annotations

import bisect
import dataclasses
import itertools
import random
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.chain.types import Address, Block, Transaction, address_from_int
from repro.errors import ParameterError


@dataclasses.dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the synthetic workload (defaults mirror the paper's facts)."""

    num_accounts: int = 10_000
    num_transactions: int = 60_000
    block_size: int = 150
    seed: int = 2022
    #: Zipf exponent of within-community account popularity.
    zipf_exponent: float = 1.1
    #: Fraction of transactions involving the single hyper-active account.
    hub_share: float = 0.11
    #: Fraction of accounts that form the hub's dedicated periphery —
    #: exchange-style deposit addresses that transact (almost) only with
    #: the hub.  Keeps the hub cluster dense but *light*, as in the real
    #: graph, instead of gluing unrelated communities together.
    hub_periphery_fraction: float = 0.15
    #: Probability that a hub transaction stays inside its periphery.
    hub_periphery_affinity: float = 0.95
    #: Number of latent account communities (0 = auto: ~1 per 75 accounts,
    #: so a default workload has many more communities than shards — as the
    #: real graph does).
    num_communities: int = 0
    #: Zipf exponent of community sizes/popularity.
    community_exponent: float = 0.6
    #: Probability that a transaction stays inside its community.
    community_affinity: float = 0.85
    #: Fraction of self-loop transactions.
    self_loop_rate: float = 0.01
    #: Fraction of multi-input/multi-output transactions ...
    multi_io_rate: float = 0.05
    #: ... and the maximum number of accounts such a transaction touches.
    multi_io_max: int = 5

    def __post_init__(self) -> None:
        if self.num_accounts < 2:
            raise ParameterError("need at least two accounts")
        if self.num_transactions < 1:
            raise ParameterError("need at least one transaction")
        if self.block_size < 1:
            raise ParameterError("block_size must be positive")
        if not 0.0 <= self.hub_share < 1.0:
            raise ParameterError("hub_share must be in [0, 1)")
        if not 0.0 <= self.community_affinity <= 1.0:
            raise ParameterError("community_affinity must be in [0, 1]")
        if not 0.0 <= self.self_loop_rate < 1.0:
            raise ParameterError("self_loop_rate must be in [0, 1)")
        if not 0.0 <= self.multi_io_rate < 1.0:
            raise ParameterError("multi_io_rate must be in [0, 1)")
        if self.multi_io_max < 3:
            raise ParameterError("multi_io_max must be at least 3")
        if not 0.0 <= self.hub_periphery_fraction < 0.9:
            raise ParameterError("hub_periphery_fraction must be in [0, 0.9)")
        if not 0.0 <= self.hub_periphery_affinity <= 1.0:
            raise ParameterError("hub_periphery_affinity must be in [0, 1]")

    def resolved_communities(self) -> int:
        if self.num_communities > 0:
            return self.num_communities
        return max(8, self.num_accounts // 75)


@dataclasses.dataclass(frozen=True)
class DatasetCard:
    """Summary statistics, the synthetic counterpart of Section VI-A."""

    num_transactions: int
    num_accounts: int
    top_account_share: float
    top10_account_share: float
    self_loop_ratio: float
    multi_io_ratio: float
    mean_accounts_per_tx: float


class _ZipfSampler:
    """Deterministic sampling from a Zipf-weighted finite population."""

    def __init__(self, population: Sequence[int], exponent: float) -> None:
        self.population = list(population)
        cumulative: List[float] = []
        total = 0.0
        for rank in range(1, len(self.population) + 1):
            total += rank ** (-exponent)
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def sample(self, rng: random.Random) -> int:
        u = rng.random() * self._total
        idx = bisect.bisect_left(self._cumulative, u)
        if idx >= len(self.population):
            idx = len(self.population) - 1
        return self.population[idx]


class EthereumWorkloadGenerator:
    """Generates a deterministic Ethereum-like transaction stream."""

    def __init__(self, config: WorkloadConfig = WorkloadConfig()) -> None:
        self.config = config
        rng = random.Random(config.seed)
        n = config.num_accounts
        self.addresses: List[Address] = [address_from_int(i) for i in range(n)]
        self.hub: Address = self.addresses[0]

        # The tail of the address space is the hub's dedicated periphery;
        # only the "core" accounts participate in community traffic.
        self.core_count: int = max(2, n - int(n * config.hub_periphery_fraction))
        self.periphery_start: int = self.core_count

        # Assign core accounts to latent communities with Zipf-ish sizes;
        # periphery accounts nominally live in the hub's community.
        num_comms = config.resolved_communities()
        comm_sampler = _ZipfSampler(range(num_comms), config.community_exponent)
        self.community_of: List[int] = [
            comm_sampler.sample(rng) for _ in range(self.core_count)
        ]
        self.community_of.extend([self.community_of[0]] * (n - self.core_count))
        members: Dict[int, List[int]] = {c: [] for c in range(num_comms)}
        # The hub (account 0) is excluded from community sampling: all of
        # its traffic is generated by the dedicated hub branch, so its
        # transaction share stays at hub_share across scales.
        for account in range(1, self.core_count):
            members[self.community_of[account]].append(account)
        # Guarantee no empty community (re-seat one account deterministically).
        spare = itertools.cycle(range(1, self.core_count))  # hub never donated
        for c in range(num_comms):
            if not members[c]:
                donor = next(
                    a for a in spare if len(members[self.community_of[a]]) > 1
                )
                members[self.community_of[donor]].remove(donor)
                members[c].append(donor)
                self.community_of[donor] = c
        self.members = members
        self._member_samplers = {
            c: _ZipfSampler(m, config.zipf_exponent) for c, m in members.items()
        }
        self._community_sampler = _ZipfSampler(range(num_comms), config.community_exponent)
        self._rng = rng

    # ------------------------------------------------------------------
    def _pick_member(self, community: int, rng: random.Random) -> int:
        return self._member_samplers[community].sample(rng)

    def _pick_global(self, rng: random.Random) -> int:
        community = self._community_sampler.sample(rng)
        return self._pick_member(community, rng)

    def _one_transaction(self, rng: random.Random) -> Transaction:
        cfg = self.config
        roll = rng.random()
        if roll < cfg.self_loop_rate:
            account = self.addresses[self._pick_global(rng)]
            return Transaction(inputs=(account,), outputs=(account,))

        if rng.random() < cfg.hub_share:
            # The hyper-active account trades overwhelmingly with its
            # dedicated periphery (exchange deposit addresses) and
            # occasionally with arbitrary accounts — never preferentially
            # with other popular accounts.  This keeps the hub cluster
            # dense but light, which is what lets real-world partitions
            # bound the hub shard's extra load (paper Fig. 4).
            sender_idx = 0
            has_periphery = self.periphery_start < cfg.num_accounts
            if has_periphery and rng.random() < cfg.hub_periphery_affinity:
                receiver_idx = rng.randrange(self.periphery_start, cfg.num_accounts)
            else:
                receiver_idx = rng.randrange(1, cfg.num_accounts)
            community = self.community_of[receiver_idx]
        else:
            community = self._community_sampler.sample(rng)
            sender_idx = self._pick_member(community, rng)
            if rng.random() < cfg.community_affinity:
                receiver_idx = self._pick_member(community, rng)
            else:
                # Cross-community leak: a uniformly chosen foreign
                # community, popular member within it.
                foreign = rng.randrange(self.config.resolved_communities())
                receiver_idx = self._pick_member(foreign, rng)
        if receiver_idx == sender_idx:
            # Re-draw from a uniformly chosen community so collisions do
            # not funnel extra weight into the most popular community.
            foreign = rng.randrange(self.config.resolved_communities())
            receiver_idx = self._pick_member(foreign, rng)
            if receiver_idx == sender_idx:
                receiver_idx = (sender_idx + 1) % self.core_count

        outputs = [self.addresses[receiver_idx]]
        if rng.random() < cfg.multi_io_rate:
            extra = rng.randint(1, cfg.multi_io_max - 2)
            for _ in range(extra):
                outputs.append(self.addresses[self._pick_member(community, rng)])
        return Transaction(inputs=(self.addresses[sender_idx],), outputs=tuple(outputs))

    # ------------------------------------------------------------------
    def transactions(self) -> Iterator[Transaction]:
        """The full transaction stream, lazily."""
        rng = random.Random(self.config.seed + 1)
        for _ in range(self.config.num_transactions):
            yield self._one_transaction(rng)

    def generate(self) -> List[Transaction]:
        """The full transaction stream, materialised."""
        return list(self.transactions())

    def blocks(self) -> Iterator[Block]:
        """The stream chunked into blocks with linked parent hashes."""
        parent = ""
        height = 0
        batch: List[Transaction] = []
        for tx in self.transactions():
            batch.append(tx)
            if len(batch) == self.config.block_size:
                block = Block(height=height, transactions=tuple(batch), parent_hash=parent)
                yield block
                parent = block.block_hash
                height += 1
                batch = []
        if batch:
            yield Block(height=height, transactions=tuple(batch), parent_hash=parent)

    # ------------------------------------------------------------------
    def dataset_card(self, transactions: Sequence[Transaction] = None) -> DatasetCard:
        """Summarise a generated stream (defaults to a fresh generation)."""
        txs = list(transactions) if transactions is not None else self.generate()
        counts: Dict[Address, int] = {}
        self_loops = 0
        multi_io = 0
        accounts_per_tx = 0
        for tx in txs:
            accs = tx.accounts
            accounts_per_tx += len(accs)
            if tx.is_self_loop:
                self_loops += 1
            if len(accs) > 2:
                multi_io += 1
            for a in accs:
                counts[a] = counts.get(a, 0) + 1
        total = len(txs)
        ranked = sorted(counts.values(), reverse=True)
        return DatasetCard(
            num_transactions=total,
            num_accounts=len(counts),
            top_account_share=(ranked[0] / total) if ranked else 0.0,
            top10_account_share=(sum(ranked[:10]) / total) if ranked else 0.0,
            self_loop_ratio=self_loops / total if total else 0.0,
            multi_io_ratio=multi_io / total if total else 0.0,
            mean_accounts_per_tx=accounts_per_tx / total if total else 0.0,
        )


def account_sets(transactions: Sequence[Transaction]) -> List[Tuple[Address, ...]]:
    """Project transactions to sorted account tuples (metric/graph input)."""
    return [tuple(sorted(tx.accounts)) for tx in transactions]
