"""Tests for Algorithm 2 (A-TxAllo) and the graph-ingest pipeline."""

import random

import pytest

from repro.core.atxallo import MAX_SWEEPS, a_txallo
from repro.core.gtxallo import g_txallo
from repro.core.params import TxAlloParams
from tests.conftest import make_random_graph


def prepared(seed=21, k=4):
    graph = make_random_graph(num_accounts=80, num_transactions=500, seed=seed, groups=4)
    params = TxAlloParams.with_capacity_for(500, k=k, eta=2.0)
    alloc = g_txallo(graph, params).allocation
    return graph, params, alloc


def ingest(graph, alloc, txs):
    touched = set()
    for accounts in txs:
        unique = set(accounts)
        graph.add_transaction(unique)
        alloc.ingest_transaction(unique)
        touched.update(unique)
    return touched


class TestNewNodes:
    def test_new_accounts_get_allocated(self):
        graph, params, alloc = prepared()
        nodes = list(graph.nodes())
        txs = [("brand_new_1", nodes[0]), ("brand_new_2", "brand_new_3")]
        touched = ingest(graph, alloc, txs)
        result = a_txallo(alloc, touched)
        alloc.validate()
        assert result.new_nodes == 3
        for v in ("brand_new_1", "brand_new_2", "brand_new_3"):
            assert alloc.is_assigned(v)

    def test_connected_new_node_joins_its_neighbourhood(self):
        graph, params, alloc = prepared()
        anchor = max(graph.nodes(), key=lambda v: graph.strength(v))
        home = alloc.shard_of(anchor)
        txs = [("sticky_new", anchor)] * 5
        touched = ingest(graph, alloc, txs)
        a_txallo(alloc, touched)
        assert alloc.shard_of("sticky_new") == home

    def test_disconnected_new_node_still_allocated(self):
        graph, params, alloc = prepared()
        touched = ingest(graph, alloc, [("lonely",)])
        a_txallo(alloc, touched)
        assert alloc.is_assigned("lonely")

    def test_empty_touched_set_is_noop(self):
        graph, params, alloc = prepared()
        before = alloc.mapping()
        result = a_txallo(alloc, [])
        assert result.moves == 0
        assert alloc.mapping() == before


class TestOptimisation:
    def test_throughput_does_not_decrease(self):
        graph, params, alloc = prepared()
        rng = random.Random(1)
        nodes = list(graph.nodes())
        txs = [tuple(rng.sample(nodes, 2)) for _ in range(60)]
        touched = ingest(graph, alloc, txs)
        before = alloc.total_throughput()
        a_txallo(alloc, touched)
        assert alloc.total_throughput() >= before - params.epsilon

    def test_caches_exact_after_run(self):
        graph, params, alloc = prepared()
        rng = random.Random(2)
        nodes = list(graph.nodes())
        txs = [tuple(rng.sample(nodes, 2)) for _ in range(60)]
        txs += [(f"n{i}", rng.choice(nodes)) for i in range(10)]
        touched = ingest(graph, alloc, txs)
        a_txallo(alloc, touched)
        alloc.validate()

    def test_untouched_accounts_do_not_move(self):
        graph, params, alloc = prepared()
        nodes = list(graph.nodes())
        touched_txs = [(nodes[0], nodes[1])]
        before = alloc.mapping()
        touched = ingest(graph, alloc, touched_txs)
        a_txallo(alloc, touched)
        after = alloc.mapping()
        for v, shard in before.items():
            if v not in touched:
                assert after[v] == shard

    def test_result_statistics(self):
        graph, params, alloc = prepared()
        nodes = list(graph.nodes())
        touched = ingest(graph, alloc, [(nodes[0], "fresh")])
        result = a_txallo(alloc, touched)
        assert result.swept_nodes == 2
        assert result.sweeps >= 1
        assert result.seconds >= 0.0


class TestDeterminism:
    def test_identical_streams_identical_result(self):
        outcomes = []
        for _ in range(2):
            graph, params, alloc = prepared(seed=33)
            rng = random.Random(44)
            nodes = list(graph.nodes())
            txs = [tuple(rng.sample(nodes, 2)) for _ in range(40)]
            touched = ingest(graph, alloc, txs)
            a_txallo(alloc, touched)
            outcomes.append(alloc.mapping())
        assert outcomes[0] == outcomes[1]


class TestApproximationQuality:
    def test_adaptive_close_to_global(self):
        """A-TxAllo's throughput stays within a few percent of a fresh
        G-TxAllo run on the same final graph (paper Fig. 9's message)."""
        graph, params, alloc = prepared(seed=55)
        rng = random.Random(55)
        nodes = list(graph.nodes())
        for _round in range(5):
            txs = []
            for _ in range(40):
                g_ = rng.randrange(4)
                pool = nodes[g_ * 20:(g_ + 1) * 20]
                txs.append(tuple(rng.sample(pool, 2)))
            touched = ingest(graph, alloc, txs)
            a_txallo(alloc, touched)
        fresh = g_txallo(graph, params).allocation
        adaptive_thpt = alloc.total_throughput()
        global_thpt = fresh.total_throughput()
        assert adaptive_thpt >= 0.9 * global_thpt


class TestConvergedFlag:
    def test_normal_runs_report_convergence(self):
        graph, params, alloc = prepared()
        touched = ingest(graph, alloc, [("fresh", next(iter(graph.nodes())))])
        result = a_txallo(alloc, touched)
        assert result.converged is True
        assert result.sweeps < MAX_SWEEPS

    @pytest.mark.parametrize("backend", ("reference", "fast"))
    def test_epsilon_zero_exhausts_cap_and_flags_it(self, backend):
        """ε=0 can never satisfy `sweep_gain < ε`, so the run must stop
        at MAX_SWEEPS and report converged=False on every backend —
        previously a truncated run was indistinguishable from a
        converged one."""
        graph, params, alloc = prepared()
        nodes = list(graph.nodes())
        touched = ingest(graph, alloc, [(nodes[0], nodes[1])])
        result = a_txallo(alloc, touched, epsilon=0.0, backend=backend)
        assert result.sweeps == MAX_SWEEPS
        assert result.converged is False

    def test_epsilon_zero_workspace_path_matches(self):
        from repro.core.engine import AdaptiveWorkspace

        graph, params, alloc = prepared()
        nodes = list(graph.nodes())
        touched = ingest(graph, alloc, [(nodes[0], nodes[1])])
        result = a_txallo(
            alloc, touched, epsilon=0.0, workspace=AdaptiveWorkspace()
        )
        assert result.sweeps == MAX_SWEEPS
        assert result.converged is False

    def test_default_keeps_old_consumers_working(self):
        """The field defaults to True so results built without it (e.g.
        persisted replays) read as converged."""
        from repro.core.atxallo import ATxAlloResult

        graph, params, alloc = prepared()
        result = ATxAlloResult(
            allocation=alloc, new_nodes=0, swept_nodes=0, sweeps=1,
            moves=0, seconds=0.0,
        )
        assert result.converged is True
