"""Fine-grained workload models (paper Section III-A, "fine-tuning").

The paper prices every cross-shard transaction at a single η but notes:

    "additional fine-tuning can be applied.  For example, the processing
    workload may differ for input shards and output shards, and for
    transactions with a different number of affected accounts |A_Tx|."

This module implements that extension.  A :class:`WorkloadModel` prices
one transaction's cost for one shard given the shard's *role* (does it
hold input accounts, output accounts, or both?) and the transaction's
fan-out.  :func:`evaluate_with_model` is the role-aware counterpart of
:func:`repro.core.metrics.evaluate_allocation`; with the default
:class:`UniformEta` model the two agree exactly, which the tests assert.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable

from repro.chain.types import Transaction
from repro.core.allocation import capped_throughput
from repro.core.metrics import (
    average_latency,
    MetricsReport,
    workload_balance,
    worst_case_latency,
)
from repro.core.params import TxAlloParams
from repro.errors import AllocationError, ParameterError


class ShardRole(enum.Enum):
    """How a shard participates in one transaction."""

    SOLE = "sole"          # intra-shard: the only shard involved
    INPUT = "input"        # holds input accounts only
    OUTPUT = "output"      # holds output accounts only
    BOTH = "both"          # holds inputs and outputs of a cross-shard tx


class WorkloadModel:
    """Interface: the processing cost of one tx for one involved shard."""

    def cost(self, role: ShardRole, num_accounts: int) -> float:
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class UniformEta(WorkloadModel):
    """The paper's base model: 1 intra, ``eta`` for any cross-shard role."""

    eta: float = 2.0

    def __post_init__(self) -> None:
        if self.eta < 1.0:
            raise ParameterError(f"eta must be >= 1, got {self.eta!r}")

    def cost(self, role: ShardRole, num_accounts: int) -> float:
        if role is ShardRole.SOLE:
            return 1.0
        return self.eta


@dataclasses.dataclass(frozen=True)
class RoleAwareModel(WorkloadModel):
    """Input/output-differentiated costs with a fan-out surcharge.

    * an input shard runs the debit + 2PC prepare (``input_eta``);
    * an output shard only applies credits on commit (``output_eta``,
      usually cheaper);
    * a shard holding both pays the heavier of the two;
    * every extra account beyond two adds ``fanout_surcharge`` — wide
      transactions touch more state.
    """

    input_eta: float = 2.5
    output_eta: float = 1.5
    fanout_surcharge: float = 0.25

    def __post_init__(self) -> None:
        if self.input_eta < 1.0 or self.output_eta < 1.0:
            raise ParameterError("role costs must be >= 1")
        if self.fanout_surcharge < 0.0:
            raise ParameterError("fanout_surcharge must be >= 0")

    def cost(self, role: ShardRole, num_accounts: int) -> float:
        extra = self.fanout_surcharge * max(0, num_accounts - 2)
        if role is ShardRole.SOLE:
            return 1.0 + extra
        if role is ShardRole.INPUT:
            return self.input_eta + extra
        if role is ShardRole.OUTPUT:
            return self.output_eta + extra
        return max(self.input_eta, self.output_eta) + extra


def shard_roles(tx: Transaction, mapping: Dict[str, int]) -> Dict[int, ShardRole]:
    """Classify every involved shard of ``tx`` by its role."""
    try:
        input_shards = {mapping[a] for a in tx.inputs}
        output_shards = {mapping[a] for a in tx.outputs}
    except KeyError as exc:
        raise AllocationError(f"account {exc.args[0]!r} is not allocated") from None
    involved = input_shards | output_shards
    if len(involved) == 1:
        (only,) = involved
        return {only: ShardRole.SOLE}
    roles: Dict[int, ShardRole] = {}
    for shard in involved:
        holds_in = shard in input_shards
        holds_out = shard in output_shards
        if holds_in and holds_out:
            roles[shard] = ShardRole.BOTH
        elif holds_in:
            roles[shard] = ShardRole.INPUT
        else:
            roles[shard] = ShardRole.OUTPUT
    return roles


def evaluate_with_model(
    transactions: Iterable[Transaction],
    mapping: Dict[str, int],
    params: TxAlloParams,
    model: WorkloadModel,
) -> MetricsReport:
    """Role-aware evaluation; mirrors ``evaluate_allocation``'s report.

    With ``UniformEta(params.eta)`` this is numerically identical to the
    account-set evaluator (asserted by tests); richer models shift the
    per-shard workloads without changing μ(Tx) or γ.
    """
    k, lam = params.k, params.lam
    sigma = [0.0] * k
    lam_hat = [0.0] * k
    total = 0
    cross = 0
    for tx in transactions:
        roles = shard_roles(tx, mapping)
        total += 1
        num_accounts = len(tx.accounts)
        m = len(roles)
        if m == 1:
            (shard,) = roles
            sigma[shard] += model.cost(ShardRole.SOLE, num_accounts)
            lam_hat[shard] += 1.0
        else:
            cross += 1
            share = 1.0 / m
            for shard, role in roles.items():
                sigma[shard] += model.cost(role, num_accounts)
                lam_hat[shard] += share
    throughput = sum(capped_throughput(s, lh, lam) for s, lh in zip(sigma, lam_hat))
    return MetricsReport(
        num_transactions=total,
        num_cross_shard=cross,
        cross_shard_ratio=(cross / total) if total else 0.0,
        shard_workloads=tuple(sigma),
        workload_balance=workload_balance(sigma, lam),
        throughput=throughput,
        normalized_throughput=throughput / lam if lam else 0.0,
        average_latency=average_latency(sigma, lam),
        worst_case_latency=worst_case_latency(sigma, lam),
    )


def effective_eta(model: WorkloadModel, num_accounts: int = 2) -> float:
    """The single η that best summarises a role-aware model.

    Averages the input and output roles — useful for feeding a
    role-aware cost structure into the (single-η) TxAllo optimiser.
    """
    costs = (
        model.cost(ShardRole.INPUT, num_accounts),
        model.cost(ShardRole.OUTPUT, num_accounts),
    )
    return max(1.0, sum(costs) / len(costs))
