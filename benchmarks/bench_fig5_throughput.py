"""Figure 5 — normalised system throughput vs. number of shards.

Paper: throughput grows ~linearly with k for every method; TxAllo grows
fastest (34.7x at k=60, eta=2 vs. METIS 31.6x — about a 10 % edge);
throughput of every method decreases as eta grows; TxAllo is the most
stable in eta.
"""

import pytest

from repro.eval import experiments


@pytest.fixture(scope="module")
def fig5(sweep_records):
    return experiments.figure5(sweep_records)


def test_fig5_report(fig5):
    print()
    print(fig5.render())


@pytest.mark.parametrize("eta", [2.0, 6.0, 10.0])
def test_txallo_highest_throughput(fig5, eta):
    for k in (20, 40, 60):
        ours = fig5.value(eta, "txallo", k)
        assert ours > fig5.value(eta, "random", k)
        assert ours >= fig5.value(eta, "metis", k) * 0.95
        assert ours >= fig5.value(eta, "shard_scheduler", k) * 0.95


def test_throughput_grows_with_k(fig5):
    for method in ("txallo", "metis", "random"):
        values = [fig5.value(2.0, method, k) for k in (2, 10, 20, 40, 60)]
        assert values == sorted(values), f"{method} should scale with k"


def test_txallo_roughly_linear_scaling(fig5):
    """Paper: ~34.7x at k=60; we require at least half-linear scaling."""
    assert fig5.value(2.0, "txallo", 60) > 25.0


def test_txallo_edge_over_metis_about_ten_percent(fig5):
    ours = fig5.value(2.0, "txallo", 60)
    metis = fig5.value(2.0, "metis", 60)
    assert ours >= metis, "TxAllo should not lose to METIS"
    assert ours <= metis * 1.6, "the edge should be moderate (paper: ~10%)"


def test_eta_degrades_everyone_but_txallo_least(fig5):
    """Stability in eta is relative: TxAllo retains the largest fraction
    of its eta=2 throughput when eta grows to 10 (paper: 'the most
    stable as it achieves the lowest gamma')."""
    retention = {}
    for method in ("txallo", "random", "metis"):
        retention[method] = fig5.value(10.0, method, 60) / fig5.value(2.0, method, 60)
    assert retention["txallo"] >= retention["random"]
    assert retention["txallo"] >= retention["metis"]


def test_bench_throughput_evaluation(workload, benchmark):
    from repro.core.metrics import evaluate_allocation
    from repro.baselines.hash_allocation import hash_partition
    from repro.core.params import TxAlloParams

    params = TxAlloParams.with_capacity_for(workload.num_transactions, k=60, eta=2.0)
    mapping = hash_partition(workload.graph.nodes_sorted(), 60)
    benchmark(evaluate_allocation, workload.account_sets, mapping, params)
