"""Emit one perf run-table row from the committed/regenerated BENCH files.

ROADMAP's "track absolute seconds across PRs" item: every CI perf run
appends one row — commit, scale, absolute grid/loop/refresh seconds,
the four gated speedups and the resilience retention/recovery pair — to
a tab-separated table uploaded as a build
artifact, so the trajectory across PRs is a download away instead of an
archaeology dig through old logs.

Usage::

    python benchmarks/run_table.py --header            # print the header
    python benchmarks/run_table.py --commit $SHA       # print one row
    python benchmarks/run_table.py --commit $SHA --append runs.tsv
    python benchmarks/run_table.py --local-scale 2     # extra non-toy row

Missing BENCH files render as ``-`` so a partial regeneration still
produces a row.

``--local-scale S`` (ROADMAP's non-toy coverage item) regenerates every
benchmark at scale ``S`` (>= 2 is the intended use) into
``BENCH_*.scaleS.json`` side files and emits a *second* row from them,
so the perf trajectory also covers a graph several times the default.
It is a local knob: the regeneration takes minutes at scale 2 and CI
stays at ``BENCH_SCALE=0.5`` for runner budget.  Gates are *not*
enforced on the extra row — they are calibrated at the default scale —
but each bench's internal parity assertions still run.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent

COLUMNS = (
    "commit",
    "scale",
    "engine_grid_ref_s",
    "engine_grid_fast_s",
    "engine_grid_speedup",
    "engine_grid_vector_s",
    "engine_grid_vector_speedup",
    "engine_vector_obj_ratio",
    "delta_loop_full_s",
    "delta_loop_delta_s",
    "delta_loop_speedup",
    "refresh_cold_s",
    "refresh_warm_s",
    "refresh_speedup",
    "warm_objective_ratio",
    "adaptive_loop_base_s",
    "adaptive_loop_ws_s",
    "adaptive_loop_speedup",
    "resilience_tps_retention",
    "resilience_recovery_blocks",
    "parallel_grid_w1_s",
    "parallel_grid_speedup_w4",
    "parallel_window_speedup_w4",
    "parallel_window_obj_ratio",
    "matrix_s",
    "matrix_cells",
    "matrix_txallo_tps",
    "matrix_hash_tps",
)

#: (bench script, BENCH json stem) pairs behind the row columns — also
#: what ``--local-scale`` regenerates.
BENCHES = (
    ("bench_engine_speedup.py", "BENCH_engine"),
    ("bench_delta_freeze.py", "BENCH_delta"),
    ("bench_louvain_warm.py", "BENCH_louvain"),
    ("bench_adaptive.py", "BENCH_adaptive"),
    ("bench_resilience.py", "BENCH_resilience"),
    ("bench_parallel.py", "BENCH_parallel"),
    ("bench_matrix.py", "BENCH_matrix"),
)


def _load(bench_dir: Path, name: str) -> dict:
    path = bench_dir / name
    if not path.exists():
        return {}
    return json.loads(path.read_text())


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def build_row(bench_dir: Path, commit: str, suffix: str = "") -> dict:
    engine = _load(bench_dir, f"BENCH_engine{suffix}.json")
    delta = _load(bench_dir, f"BENCH_delta{suffix}.json")
    louvain = _load(bench_dir, f"BENCH_louvain{suffix}.json")
    adaptive = _load(bench_dir, f"BENCH_adaptive{suffix}.json")
    resilience = _load(bench_dir, f"BENCH_resilience{suffix}.json")
    par = _load(bench_dir, f"BENCH_parallel{suffix}.json")
    matrix = _load(bench_dir, f"BENCH_matrix{suffix}.json")
    scale = engine.get(
        "scale", delta.get("scale", louvain.get("scale", adaptive.get("scale")))
    )
    return {
        "commit": commit,
        "scale": scale,
        "engine_grid_ref_s": engine.get("ref_seconds"),
        "engine_grid_fast_s": engine.get("fast_seconds"),
        "engine_grid_speedup": engine.get("speedup"),
        # Schema-guarded: old BENCH_engine.json files predate the numpy
        # tier and render as "-", as does a no-numpy regeneration.
        "engine_grid_vector_s": engine.get("vector_seconds"),
        "engine_grid_vector_speedup": engine.get("vector_speedup"),
        "engine_vector_obj_ratio": engine.get("vector_objective_ratio_min"),
        "delta_loop_full_s": delta.get("full_loop_seconds"),
        "delta_loop_delta_s": delta.get("delta_loop_seconds"),
        "delta_loop_speedup": delta.get("speedup"),
        "refresh_cold_s": louvain.get("cold_refresh_seconds"),
        "refresh_warm_s": louvain.get("warm_refresh_seconds"),
        "refresh_speedup": louvain.get("refresh_speedup"),
        "warm_objective_ratio": louvain.get("objective_ratio"),
        "adaptive_loop_base_s": adaptive.get("base_loop_seconds"),
        "adaptive_loop_ws_s": adaptive.get("workspace_loop_seconds"),
        "adaptive_loop_speedup": adaptive.get("speedup"),
        "resilience_tps_retention": resilience.get("tps_retention"),
        "resilience_recovery_blocks": resilience.get("recovery_blocks"),
        "parallel_grid_w1_s": (par.get("grid_seconds") or {}).get("1"),
        "parallel_grid_speedup_w4": par.get("grid_speedup_w4"),
        "parallel_window_speedup_w4": par.get("window_speedup_w4"),
        "parallel_window_obj_ratio": par.get("window_objective_ratio_min"),
        "matrix_s": matrix.get("matrix_seconds"),
        "matrix_cells": matrix.get("cells"),
        "matrix_txallo_tps": matrix.get("txallo_tps_ethereum"),
        "matrix_hash_tps": matrix.get("hash_tps_ethereum"),
    }


def _scale_suffix(scale: float) -> str:
    return f".scale{scale:g}"


def regenerate_at_scale(bench_dir: Path, scale: float) -> None:
    """Run every bench's ``run_bench`` at ``scale`` into side files.

    Gates are not checked here — they are calibrated at the default
    scale — but each bench's internal parity assertions still apply.
    """
    suffix = _scale_suffix(scale)
    for script, stem in BENCHES:
        path = bench_dir / script
        spec = importlib.util.spec_from_file_location(path.stem, path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        out_path = bench_dir / f"{stem}{suffix}.json"
        print(f"[run_table] {script} --scale {scale} -> {out_path.name}")
        module.run_bench(scale=scale, out_path=out_path)


def _git_head() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=BENCH_DIR, check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench-dir", type=Path, default=BENCH_DIR,
        help="directory holding the BENCH_*.json files (default: benchmarks/)",
    )
    parser.add_argument(
        "--commit", default=None,
        help="commit id for the row (default: git rev-parse --short HEAD)",
    )
    parser.add_argument(
        "--header", action="store_true", help="print the header line too"
    )
    parser.add_argument(
        "--append", type=Path, default=None,
        help="append the row(s) (with a header when creating) to this file",
    )
    parser.add_argument(
        "--local-scale", type=float, default=None,
        help="also regenerate every bench at this scale (>= 2 intended) "
             "into BENCH_*.scaleS.json and emit a second row — local "
             "only, CI keeps the default scale",
    )
    args = parser.parse_args(argv)

    commit = args.commit or _git_head()
    rows = [build_row(args.bench_dir, commit)]
    if args.local_scale is not None:
        regenerate_at_scale(args.bench_dir, args.local_scale)
        rows.append(
            build_row(args.bench_dir, commit, suffix=_scale_suffix(args.local_scale))
        )

    header = "\t".join(COLUMNS)
    lines = ["\t".join(_fmt(row[c]) for c in COLUMNS) for row in rows]

    if args.append is not None:
        existing = args.append.read_text() if args.append.exists() else ""
        fresh = not existing.strip()
        if not fresh and existing.splitlines()[0] != header:
            # An old-schema table (e.g. pre-adaptive columns): appending
            # would silently misalign every new row against its header.
            print(
                f"error: {args.append} has a different column set; move it "
                "aside (or delete it) to start a fresh table",
                file=sys.stderr,
            )
            return 1
        with args.append.open("a") as fh:
            if fresh:
                fh.write(header + "\n")
            for line in lines:
                fh.write(line + "\n")
    if args.header:
        print(header)
    for line in lines:
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
