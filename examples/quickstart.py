#!/usr/bin/env python3
"""Quickstart: allocate accounts to shards with TxAllo in ~40 lines.

Builds a transaction graph from a handful of transfers, runs G-TxAllo,
and prints the resulting account-shard mapping plus the Section III-B
metrics.  Run with::

    python examples/quickstart.py
"""

from repro import TransactionGraph, TxAlloParams, evaluate_allocation, g_txallo


def main() -> None:
    # Each transaction is just the set of accounts it touches.
    transactions = [
        ("alice", "bob"), ("bob", "carol"), ("alice", "carol"),     # one cluster
        ("dave", "erin"), ("erin", "frank"), ("dave", "frank"),     # another
        ("carol", "dave"),                                          # a bridge
        ("alice", "alice"),                                         # a self-loop
        ("bob", "carol", "alice"),                                  # multi-output
    ]

    graph = TransactionGraph()
    graph.add_transactions(transactions)

    # Paper conventions: capacity lambda = |T| / k, epsilon = 1e-5 |T|.
    params = TxAlloParams.with_capacity_for(
        num_transactions=graph.num_transactions, k=2, eta=2.0
    )

    result = g_txallo(graph, params)
    mapping = result.allocation.mapping()

    print("account -> shard")
    for account in sorted(mapping):
        print(f"  {account:>6} -> {mapping[account]}")

    report = evaluate_allocation(transactions, mapping, params)
    print()
    print(f"cross-shard ratio : {report.cross_shard_ratio:.1%}")
    print(f"workload balance  : {report.workload_balance:.3f}")
    print(f"throughput        : {report.normalized_throughput:.2f}x a single shard")
    print(f"avg latency       : {report.average_latency:.2f} blocks")

    # The two triangles should land in different shards; the bridge edge
    # is the only cross-shard traffic.
    cluster_a = {mapping[a] for a in ("alice", "bob", "carol")}
    cluster_b = {mapping[a] for a in ("dave", "erin", "frank")}
    assert len(cluster_a) == 1 and len(cluster_b) == 1 and cluster_a != cluster_b
    print("\nTxAllo recovered the two account clusters. ✔")


if __name__ == "__main__":
    main()
