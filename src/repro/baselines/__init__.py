"""Baseline allocators the paper compares TxAllo against (Section VI-B).

* :mod:`repro.baselines.hash_allocation` — hash-based random allocation
  (Chainspace / Monoxide style), the incumbent in deployed protocols;
* :mod:`repro.baselines.metis` — a from-scratch METIS-style multilevel
  partitioner, the backbone of the graph-based prior works
  (Fynn et al., Mizrahi & Rottenstreich, BrokerChain);
* :mod:`repro.baselines.shard_scheduler` — the transaction-level online
  allocator of Krol et al. (AFT'21).

Every baseline is adapted onto the unified allocator protocol
(:mod:`repro.core.allocator`) and registered by name in
:mod:`repro.allocators` — ``random`` (alias ``hash``), ``prefix``,
``metis`` as :class:`~repro.core.allocator.StaticAllocator` wrappers,
``shard_scheduler`` as an
:class:`~repro.core.allocator.OnlineAllocator` — so the figure runners,
the live network and the CLI drive them through the same interface as
TxAllo itself.  The modules here stay framework-free (plain functions
and classes); the protocol adapters live with the registry.
"""

from repro.baselines.hash_allocation import (
    account_digest,
    hash_partition,
    hash_shard,
    prefix_partition,
    prefix_shard,
)
from repro.baselines.metis import MetisResult, metis_partition
from repro.baselines.shard_scheduler import (
    SchedulerResult,
    ShardScheduler,
    shard_scheduler_partition,
)

__all__ = [
    "MetisResult",
    "SchedulerResult",
    "ShardScheduler",
    "account_digest",
    "hash_partition",
    "hash_shard",
    "metis_partition",
    "prefix_partition",
    "prefix_shard",
    "shard_scheduler_partition",
]
