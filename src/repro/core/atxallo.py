"""A-TxAllo — the adaptive allocation algorithm (paper Algorithm 2).

Where G-TxAllo sweeps every account, A-TxAllo touches only ``V̂`` — the
accounts that appear in the newly committed blocks — and reuses the previous
allocation for everyone else.  Its complexity is ``O(|V̂| k)``, constant in
the chain length because ``|V̂|`` is bounded by the update period ``τ₁``.

The caller is responsible for having already *ingested* the new
transactions into both the graph and the allocation caches (see
:meth:`repro.core.allocation.Allocation.ingest_transaction`); the
:class:`~repro.core.controller.TxAlloController` does this bookkeeping.

Two phases, mirroring Algorithm 2:

1. brand-new accounts (``v ∈ V̂ − ∪V_j``) join the shard with the best
   join gain (Eq. 6) among the shards they connect to, or any shard when
   they connect to none;
2. all of ``V̂`` is swept with the full move gain (Eq. 8) until the summed
   per-sweep gain falls below ``ε``.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterable, List, Optional

from repro.core import backends
from repro.core.allocation import Allocation
from repro.core.graph import Node
from repro.core.objective import GainComputer

#: Safety bound on optimisation sweeps (converges much earlier in practice).
MAX_SWEEPS = 100


@dataclasses.dataclass
class ATxAlloResult:
    """Outcome of an A-TxAllo run, instrumented for Fig. 10."""

    allocation: Allocation
    new_nodes: int
    swept_nodes: int
    sweeps: int
    moves: int
    seconds: float
    #: False when the run exhausted :data:`MAX_SWEEPS` before the
    #: per-sweep gain fell below ``epsilon`` — previously a truncated run
    #: was indistinguishable from a converged one.  Defaults to True so
    #: persisted results and report consumers built before this field
    #: keep working unchanged.
    converged: bool = True


def a_txallo(
    alloc: Allocation,
    touched: Iterable[Node],
    *,
    epsilon: Optional[float] = None,
    backend: Optional[str] = None,
    workspace=None,
) -> ATxAlloResult:
    """Run Algorithm 2 in place on ``alloc`` for the touched node set ``V̂``.

    ``touched`` is the set of accounts appearing in the newly committed
    blocks; unknown accounts among them are allocated first.  ``epsilon``
    defaults to the allocation's configured threshold.

    ``backend`` overrides ``alloc.params.backend`` and names a tier in
    the engine-backend registry (:mod:`repro.core.backends`):
    ``"fast"`` snapshots the touched neighbourhoods into flat arrays
    once — reading the rows from the graph's incrementally-maintained
    frozen CSR form — and sweeps on those (:mod:`repro.core.engine`),
    ``"reference"`` rescans the dict adjacency every sweep.  Both mutate
    ``alloc`` byte-identically.  ``"turbo"`` and ``"vector"`` have no
    adaptive-specific behaviour — A-TxAllo already touches only the
    block frontier, where the flat engine is optimal — so both register
    the fast kernel unchanged (and stay byte-identical here).
    ``"parallel"`` swaps in the shard-parallel kernel
    (:func:`repro.core.parallel.a_txallo_parallel`): windows above its
    batching threshold sweep as vectorized frozen proposal batches with
    a sequential exact apply + conflict pass — objective-gated within
    the registry tolerance rather than byte-identical, though the
    result never depends on ``params.workers``.

    ``workspace`` (an :class:`repro.core.engine.AdaptiveWorkspace`) makes
    consecutive flat-backend runs share one persistent neighbourhood
    view, kept current from the graph's mutation journal, instead of
    re-freezing and re-snapshotting every run — the τ₁ block loop's
    batched path.  Results stay byte-identical with or without it; the
    reference backend ignores it (the dict scans *are* the live graph).
    """
    t0 = time.perf_counter()
    if epsilon is None:
        epsilon = alloc.params.epsilon
    if backend is None:
        backend = alloc.params.backend
    spec = backends.resolve_backend(backend)
    new_nodes, swept, sweeps, moves, converged = spec.atxallo_kernel(
        alloc, touched, epsilon, workspace
    )
    return ATxAlloResult(
        allocation=alloc,
        new_nodes=new_nodes,
        swept_nodes=swept,
        sweeps=sweeps,
        moves=moves,
        seconds=time.perf_counter() - t0,
        converged=converged,
    )


def _a_txallo_reference(
    alloc: Allocation,
    touched: Iterable[Node],
    epsilon: float,
) -> tuple:
    """The dict-based Algorithm 2 (``backend="reference"``).

    Returns the registry kernel tuple ``(new_nodes, swept_nodes, sweeps,
    moves, converged)``; mutates ``alloc`` in place like every backend.
    """
    k = alloc.params.k
    gains = GainComputer(alloc)

    hat_v: List[Node] = sorted(set(touched))

    # Phase 1 — allocate brand-new accounts (Algorithm 2, lines 1-8).
    new_nodes = [v for v in hat_v if not alloc.is_assigned(v)]
    for v in new_nodes:
        by_shard, w_self, w_ext = alloc.neighbour_shard_weights(v)
        candidates = gains.candidate_communities(v, by_shard, exclude=None, limit=k)
        if not candidates:
            candidates = range(k)
        q, _gain = gains.best_join(v, candidates, by_shard, w_self, w_ext)
        alloc.assign(v, q, weights=(by_shard, w_self, w_ext))

    # Phase 2 — optimise the touched set (Algorithm 2, lines 9-17).
    sweeps = 0
    moves = 0
    converged = False
    while sweeps < MAX_SWEEPS:
        sweeps += 1
        sweep_gain = 0.0
        for v in hat_v:
            by_shard, w_self, w_ext = alloc.neighbour_shard_weights(v)
            p = alloc.shard_of(v)
            candidates = gains.candidate_communities(v, by_shard, exclude=p)
            if not candidates:
                continue
            q, gain = gains.best_move(v, candidates, by_shard, w_self, w_ext, p)
            if q is not None and gain > 0.0:
                alloc.move(v, q, weights=(by_shard, w_self, w_ext))
                sweep_gain += gain
                moves += 1
        if sweep_gain < epsilon:
            converged = True
            break

    return len(new_nodes), len(hat_v), sweeps, moves, converged
