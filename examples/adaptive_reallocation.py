#!/usr/bin/env python3
"""Dynamic allocation with the τ₁/τ₂ controller (paper Figs. 9-10).

Streams blocks through a :class:`TxAlloController` that runs A-TxAllo
every ``tau1`` blocks and refreshes with G-TxAllo every ``tau2`` blocks,
then prints the update timeline and the per-kind runtime statistics —
the paper's headline being that adaptive updates are ~hundreds of times
cheaper than global ones.

Run with::

    python examples/adaptive_reallocation.py --blocks 120 --tau1 5 --tau2 50
"""

import argparse

from repro import TxAlloParams
from repro.core.controller import TxAlloController
from repro.data import BlockStream, EthereumWorkloadGenerator, WorkloadConfig
from repro.eval.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=120)
    parser.add_argument("--block-size", type=int, default=100)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--eta", type=float, default=2.0)
    parser.add_argument("--tau1", type=int, default=5)
    parser.add_argument("--tau2", type=int, default=50)
    parser.add_argument("--seed", type=int, default=2022)
    args = parser.parse_args()

    config = WorkloadConfig(
        num_accounts=max(500, args.blocks * args.block_size // 6),
        num_transactions=args.blocks * args.block_size * 2,
        block_size=args.block_size,
        seed=args.seed,
    )
    generator = EthereumWorkloadGenerator(config)
    stream = BlockStream(list(generator.blocks()))
    train, live = stream.split(0.5)

    params = TxAlloParams(
        k=args.k,
        eta=args.eta,
        lam=train.num_transactions / args.k,
        epsilon=1e-5 * train.num_transactions,
        tau1=args.tau1,
        tau2=args.tau2,
    )

    print(f"seeding controller with {train.num_transactions} historical txs ...")
    controller = TxAlloController(params, seed_transactions=train.account_sets())

    for block in live:
        event = controller.observe_block([tuple(tx.accounts) for tx in block])
        if event is not None:
            print(
                f"block {event.block_height:>5}: {event.kind:>8} update, "
                f"{event.touched:>6} accounts touched, {event.moves:>5} moves, "
                f"{event.seconds * 1000:8.1f} ms"
            )

    controller.allocation.validate()

    adaptive = controller.adaptive_events
    global_ = controller.global_events[1:]  # skip the seeding run
    rows = []
    if adaptive:
        rows.append((
            "A-TxAllo",
            len(adaptive),
            sum(e.seconds for e in adaptive) / len(adaptive),
        ))
    if global_:
        rows.append((
            "G-TxAllo",
            len(global_),
            sum(e.seconds for e in global_) / len(global_),
        ))
    print()
    print(format_table(["algorithm", "runs", "avg seconds"], rows))
    if adaptive and global_:
        speedup = (sum(e.seconds for e in global_) / len(global_)) / (
            sum(e.seconds for e in adaptive) / len(adaptive)
        )
        print(f"\nadaptive updates are {speedup:.0f}x cheaper per run "
              f"(paper: ~200x at full Ethereum scale)")


if __name__ == "__main__":
    main()
