"""State-migration accounting for allocation updates (paper Section VII).

When TxAllo publishes a new account-shard mapping, accounts change
shards.  The paper argues this needs **no extra network communication**
— in type-1 systems every miner already holds all state; in type-2
systems the periodic reshuffle already disseminates every shard's state
through the peer-to-peer network, so miners only pay *storage* to retain
what they would otherwise forward and drop.

This module quantifies that argument for a concrete update:

* :func:`migration_plan` diffs two mappings into per-shard in/out flows;
* :class:`MigrationPlan.storage_overhead_bytes` prices the retained
  state under the type-1 / type-2 distinction of Section VII.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.errors import AllocationError, ParameterError

#: A conservative per-account state size (balance + nonce + trie
#: overhead); Ethereum's account RLP is ~100-150 bytes.
DEFAULT_ACCOUNT_STATE_BYTES = 128


@dataclasses.dataclass(frozen=True)
class AccountMove:
    """One account changing shards in an allocation update."""

    account: str
    source: int
    destination: int


@dataclasses.dataclass
class MigrationPlan:
    """The diff between two consecutive account-shard mappings."""

    k: int
    moves: Tuple[AccountMove, ...]
    new_accounts: Tuple[str, ...]
    total_accounts: int

    @property
    def moved_count(self) -> int:
        return len(self.moves)

    @property
    def churn_ratio(self) -> float:
        """Fraction of known accounts that changed shards."""
        if self.total_accounts == 0:
            return 0.0
        return self.moved_count / self.total_accounts

    def inflow(self) -> List[int]:
        """Accounts arriving at each shard (moves + fresh accounts excluded)."""
        flows = [0] * self.k
        for move in self.moves:
            flows[move.destination] += 1
        return flows

    def outflow(self) -> List[int]:
        flows = [0] * self.k
        for move in self.moves:
            flows[move.source] += 1
        return flows

    def storage_overhead_bytes(
        self,
        sharded_state: bool,
        account_state_bytes: int = DEFAULT_ACCOUNT_STATE_BYTES,
    ) -> int:
        """Extra bytes a miner stores to apply this update (Section VII).

        * ``sharded_state=False`` (type 1 — Monoxide, Elastico, Zilliqa):
          miners replicate the full state already; the update is free.
        * ``sharded_state=True`` (type 2 — OmniLedger, RapidChain,
          Chainspace): a miner must *retain* the state of every inbound
          account, which it previously only forwarded.  No extra network
          messages are needed — hence bytes, not messages.
        """
        if account_state_bytes < 0:
            raise ParameterError("account_state_bytes must be >= 0")
        if not sharded_state:
            return 0
        return self.moved_count * account_state_bytes

    def communication_overhead_messages(self) -> int:
        """Extra network messages required by the update: none.

        Kept as an explicit method so the Section VII claim is part of
        the API surface (and testable), not a comment.
        """
        return 0


def migration_plan(
    old_mapping: Dict[str, int],
    new_mapping: Dict[str, int],
    k: int,
) -> MigrationPlan:
    """Diff two mappings.  ``new_mapping`` must cover ``old_mapping``.

    Accounts present only in the new mapping are *new accounts* (no
    state exists yet anywhere, so they never count as migrations).
    Accounts disappearing from the mapping indicate a caller bug — an
    account's state cannot be dropped by reallocation — and raise.
    """
    if k < 1:
        raise ParameterError(f"k must be positive, got {k!r}")
    moves: List[AccountMove] = []
    for account, old_shard in old_mapping.items():
        try:
            new_shard = new_mapping[account]
        except KeyError:
            raise AllocationError(
                f"account {account!r} vanished from the new allocation"
            ) from None
        if not 0 <= new_shard < k or not 0 <= old_shard < k:
            raise AllocationError(
                f"account {account!r} mapped outside [0, {k}): "
                f"{old_shard} -> {new_shard}"
            )
        if new_shard != old_shard:
            moves.append(AccountMove(account, old_shard, new_shard))
    fresh = tuple(sorted(a for a in new_mapping if a not in old_mapping))
    moves.sort(key=lambda m: m.account)
    return MigrationPlan(
        k=k,
        moves=tuple(moves),
        new_accounts=fresh,
        total_accounts=len(old_mapping),
    )
