"""Unit tests for the transaction graph (Definition 2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import TransactionGraph, pair_count
from repro.errors import GraphError, TransactionError


class TestPairCount:
    def test_single_account_is_one_self_loop(self):
        assert pair_count(1) == 1

    def test_pair(self):
        assert pair_count(2) == 1

    def test_triple(self):
        assert pair_count(3) == 3

    def test_five_accounts(self):
        assert pair_count(5) == 10

    def test_matches_combination_formula(self):
        for n in range(2, 12):
            assert pair_count(n) == math.comb(n, 2)

    def test_zero_accounts_rejected(self):
        with pytest.raises(TransactionError):
            pair_count(0)

    def test_negative_rejected(self):
        with pytest.raises(TransactionError):
            pair_count(-3)


class TestEdgeConstruction:
    def test_simple_transfer_adds_unit_edge(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        assert g.edge_weight("a", "b") == pytest.approx(1.0)
        assert g.edge_weight("b", "a") == pytest.approx(1.0)

    def test_weights_accumulate_over_transactions(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        g.add_transaction(("a", "b"))
        g.add_transaction(("b", "a"))
        assert g.edge_weight("a", "b") == pytest.approx(3.0)

    def test_direction_is_ignored(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        h = TransactionGraph()
        h.add_transaction(("b", "a"))
        assert g.edge_weight("a", "b") == h.edge_weight("a", "b")

    def test_multi_account_transaction_splits_weight(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b", "c"))
        for u, v in [("a", "b"), ("a", "c"), ("b", "c")]:
            assert g.edge_weight(u, v) == pytest.approx(1.0 / 3.0)

    def test_multi_account_weight_sums_to_one(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b", "c", "d", "e"))
        assert g.total_weight == pytest.approx(1.0)

    def test_duplicate_accounts_collapse(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b", "a", "b"))
        assert g.edge_weight("a", "b") == pytest.approx(1.0)

    def test_self_loop_gets_full_weight(self):
        g = TransactionGraph()
        g.add_transaction(("a",))
        assert g.self_loop("a") == pytest.approx(1.0)

    def test_self_loop_counts_once_in_total_weight(self):
        g = TransactionGraph()
        g.add_transaction(("a",))
        g.add_transaction(("a", "b"))
        assert g.total_weight == pytest.approx(2.0)

    def test_empty_transaction_rejected(self):
        g = TransactionGraph()
        with pytest.raises(TransactionError):
            g.add_transaction(())

    def test_zero_weight_edge_rejected(self):
        g = TransactionGraph()
        with pytest.raises(GraphError):
            g.add_edge("a", "b", 0.0)

    def test_negative_weight_edge_rejected(self):
        g = TransactionGraph()
        with pytest.raises(GraphError):
            g.add_edge("a", "b", -1.0)

    def test_add_transactions_bulk(self):
        g = TransactionGraph()
        g.add_transactions([("a", "b"), ("b", "c")])
        assert g.num_transactions == 2


class TestQueries:
    def test_contains_and_len(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        assert "a" in g and "b" in g and "c" not in g
        assert len(g) == 2

    def test_num_edges_counts_distinct_pairs(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        g.add_transaction(("a", "b"))
        g.add_transaction(("a",))
        assert g.num_edges == 2  # pair + self-loop

    def test_unknown_node_neighbourhood_raises(self):
        g = TransactionGraph()
        with pytest.raises(GraphError):
            g.neighbours("ghost")

    def test_edge_weight_missing_is_zero(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        assert g.edge_weight("a", "zzz") == 0.0
        assert g.edge_weight("zzz", "a") == 0.0

    def test_external_strength_excludes_self_loop(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        g.add_transaction(("a",))
        assert g.external_strength("a") == pytest.approx(1.0)
        assert g.strength("a") == pytest.approx(2.0)

    def test_degree(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        g.add_transaction(("a", "c"))
        g.add_transaction(("a",))
        assert g.degree("a") == 3  # b, c, and the loop

    def test_nodes_sorted(self):
        g = TransactionGraph()
        g.add_transaction(("z", "a"))
        g.add_transaction(("m", "a"))
        assert g.nodes_sorted() == ["a", "m", "z"]

    def test_nodes_insertion_order(self):
        g = TransactionGraph()
        g.add_transaction(("b", "a"))  # sorted inside a tx: a first
        g.add_transaction(("c", "a"))
        assert list(g.nodes()) == ["a", "b", "c"]

    def test_edges_yields_each_pair_once(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        g.add_transaction(("b", "c"))
        g.add_transaction(("a",))
        edges = list(g.edges())
        assert len(edges) == 3
        total = sum(w for _, _, w in edges)
        assert total == pytest.approx(g.total_weight)

    def test_subgraph_weight(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        g.add_transaction(("b", "c"))
        g.add_transaction(("a",))
        assert g.subgraph_weight({"a", "b"}) == pytest.approx(2.0)
        assert g.subgraph_weight({"a", "b", "c"}) == pytest.approx(3.0)
        assert g.subgraph_weight({"c"}) == pytest.approx(0.0)

    def test_copy_is_independent(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        h = g.copy()
        h.add_transaction(("a", "c"))
        assert "c" not in g
        assert g.num_transactions == 1
        assert h.num_transactions == 2

    def test_degree_histogram_covers_all_nodes(self, clustered_graph):
        hist = clustered_graph.degree_histogram()
        assert sum(count for _, count in hist) == clustered_graph.num_nodes

    def test_degree_histogram_empty_graph(self):
        assert TransactionGraph().degree_histogram() == []


class TestInvariantsProperty:
    @given(
        txs=st.lists(
            st.lists(st.integers(0, 20).map(lambda i: f"a{i}"), min_size=1, max_size=5),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_total_weight_equals_transaction_count(self, txs):
        g = TransactionGraph()
        for accounts in txs:
            g.add_transaction(accounts)
        assert g.total_weight == pytest.approx(len(txs))

    @given(
        txs=st.lists(
            st.lists(st.integers(0, 15).map(lambda i: f"a{i}"), min_size=1, max_size=4),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_strength_sum_is_twice_pairs_plus_loops(self, txs):
        g = TransactionGraph()
        for accounts in txs:
            g.add_transaction(accounts)
        loops = sum(g.self_loop(v) for v in g.nodes())
        strengths = sum(g.external_strength(v) for v in g.nodes())
        # Each pair edge is counted from both endpoints.
        assert strengths / 2.0 + loops == pytest.approx(g.total_weight)

    @given(
        txs=st.lists(
            st.lists(st.integers(0, 15).map(lambda i: f"a{i}"), min_size=1, max_size=4),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_edges_iteration_consistent_with_adjacency(self, txs):
        g = TransactionGraph()
        for accounts in txs:
            g.add_transaction(accounts)
        for u, v, w in g.edges():
            assert g.edge_weight(u, v) == pytest.approx(w)
            assert g.edge_weight(v, u) == pytest.approx(w)
