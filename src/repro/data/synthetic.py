"""Synthetic Ethereum-like transaction workloads.

The paper evaluates on an XBlock/BigQuery export of 91,857,819 Ethereum
transactions over 12,614,390 accounts (blocks 10.0M-10.6M, summer 2020).
That dump is not redistributable here, so this generator synthesises a
workload reproducing the structural facts the paper states about it
(Section VI-A, Fig. 1) — the facts that actually drive every comparative
result:

* **long-tail account activity** — account popularity is Zipf-distributed;
  most accounts appear in a handful of transactions;
* **a hyper-active hub** — one account (a popular contract) participates
  in ~11 % of all transactions, which is what wrecks workload balance for
  graph partitioners (Fig. 4);
* **community structure** — accounts cluster (exchanges, DApps); most
  transactions stay inside a cluster, which is what TxAllo exploits;
* **self-loops** — e.g. self-sends used to replace pending transactions;
* **multi-input/multi-output transactions** — a small fraction of
  transactions touch more than two accounts (contract fan-outs).

Everything is driven by one integer seed; two generators with equal
configs produce byte-identical workloads.
"""

from __future__ import annotations

import bisect
import dataclasses
import itertools
import random
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from repro.chain.types import Address, Block, Transaction, address_from_int
from repro.errors import ParameterError


@dataclasses.dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the synthetic workload (defaults mirror the paper's facts)."""

    num_accounts: int = 10_000
    num_transactions: int = 60_000
    block_size: int = 150
    seed: int = 2022
    #: Zipf exponent of within-community account popularity.
    zipf_exponent: float = 1.1
    #: Fraction of transactions involving the single hyper-active account.
    hub_share: float = 0.11
    #: Fraction of accounts that form the hub's dedicated periphery —
    #: exchange-style deposit addresses that transact (almost) only with
    #: the hub.  Keeps the hub cluster dense but *light*, as in the real
    #: graph, instead of gluing unrelated communities together.
    hub_periphery_fraction: float = 0.15
    #: Probability that a hub transaction stays inside its periphery.
    hub_periphery_affinity: float = 0.95
    #: Number of latent account communities (0 = auto: ~1 per 75 accounts,
    #: so a default workload has many more communities than shards — as the
    #: real graph does).
    num_communities: int = 0
    #: Zipf exponent of community sizes/popularity.
    community_exponent: float = 0.6
    #: Probability that a transaction stays inside its community.
    community_affinity: float = 0.85
    #: Fraction of self-loop transactions.
    self_loop_rate: float = 0.01
    #: Fraction of multi-input/multi-output transactions ...
    multi_io_rate: float = 0.05
    #: ... and the maximum number of accounts such a transaction touches.
    multi_io_max: int = 5

    def __post_init__(self) -> None:
        if self.num_accounts < 2:
            raise ParameterError("need at least two accounts")
        if self.num_transactions < 1:
            raise ParameterError("need at least one transaction")
        if self.block_size < 1:
            raise ParameterError("block_size must be positive")
        if not 0.0 <= self.hub_share < 1.0:
            raise ParameterError("hub_share must be in [0, 1)")
        if not 0.0 <= self.community_affinity <= 1.0:
            raise ParameterError("community_affinity must be in [0, 1]")
        if not 0.0 <= self.self_loop_rate < 1.0:
            raise ParameterError("self_loop_rate must be in [0, 1)")
        if not 0.0 <= self.multi_io_rate < 1.0:
            raise ParameterError("multi_io_rate must be in [0, 1)")
        if self.multi_io_max < 3:
            raise ParameterError("multi_io_max must be at least 3")
        if not 0.0 <= self.hub_periphery_fraction < 0.9:
            raise ParameterError("hub_periphery_fraction must be in [0, 0.9)")
        if not 0.0 <= self.hub_periphery_affinity <= 1.0:
            raise ParameterError("hub_periphery_affinity must be in [0, 1]")

    def resolved_communities(self) -> int:
        if self.num_communities > 0:
            return self.num_communities
        return max(8, self.num_accounts // 75)


@dataclasses.dataclass(frozen=True)
class DatasetCard:
    """Summary statistics, the synthetic counterpart of Section VI-A."""

    num_transactions: int
    num_accounts: int
    top_account_share: float
    top10_account_share: float
    self_loop_ratio: float
    multi_io_ratio: float
    mean_accounts_per_tx: float


class _ZipfSampler:
    """Deterministic sampling from a Zipf-weighted finite population."""

    def __init__(self, population: Sequence[int], exponent: float) -> None:
        self.population = list(population)
        cumulative: List[float] = []
        total = 0.0
        for rank in range(1, len(self.population) + 1):
            total += rank ** (-exponent)
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def sample(self, rng: random.Random) -> int:
        u = rng.random() * self._total
        idx = bisect.bisect_left(self._cumulative, u)
        if idx >= len(self.population):
            idx = len(self.population) - 1
        return self.population[idx]


class EthereumWorkloadGenerator:
    """Generates a deterministic Ethereum-like transaction stream."""

    def __init__(self, config: WorkloadConfig = WorkloadConfig()) -> None:
        self.config = config
        rng = random.Random(config.seed)
        n = config.num_accounts
        self.addresses: List[Address] = [address_from_int(i) for i in range(n)]
        self.hub: Address = self.addresses[0]

        # The tail of the address space is the hub's dedicated periphery;
        # only the "core" accounts participate in community traffic.
        self.core_count: int = max(2, n - int(n * config.hub_periphery_fraction))
        self.periphery_start: int = self.core_count

        # Assign core accounts to latent communities with Zipf-ish sizes;
        # periphery accounts nominally live in the hub's community.
        num_comms = config.resolved_communities()
        comm_sampler = _ZipfSampler(range(num_comms), config.community_exponent)
        self.community_of: List[int] = [
            comm_sampler.sample(rng) for _ in range(self.core_count)
        ]
        self.community_of.extend([self.community_of[0]] * (n - self.core_count))
        members: Dict[int, List[int]] = {c: [] for c in range(num_comms)}
        # The hub (account 0) is excluded from community sampling: all of
        # its traffic is generated by the dedicated hub branch, so its
        # transaction share stays at hub_share across scales.
        for account in range(1, self.core_count):
            members[self.community_of[account]].append(account)
        # Guarantee no empty community (re-seat one account deterministically).
        spare = itertools.cycle(range(1, self.core_count))  # hub never donated
        for c in range(num_comms):
            if not members[c]:
                donor = next(
                    a for a in spare if len(members[self.community_of[a]]) > 1
                )
                members[self.community_of[donor]].remove(donor)
                members[c].append(donor)
                self.community_of[donor] = c
        self.members = members
        self._member_samplers = {
            c: _ZipfSampler(m, config.zipf_exponent) for c, m in members.items()
        }
        self._community_sampler = _ZipfSampler(range(num_comms), config.community_exponent)
        self._rng = rng

    # ------------------------------------------------------------------
    def _pick_member(self, community: int, rng: random.Random) -> int:
        return self._member_samplers[community].sample(rng)

    def _pick_global(self, rng: random.Random) -> int:
        community = self._community_sampler.sample(rng)
        return self._pick_member(community, rng)

    def _one_transaction(self, rng: random.Random) -> Transaction:
        cfg = self.config
        roll = rng.random()
        if roll < cfg.self_loop_rate:
            account = self.addresses[self._pick_global(rng)]
            return Transaction(inputs=(account,), outputs=(account,))

        if rng.random() < cfg.hub_share:
            # The hyper-active account trades overwhelmingly with its
            # dedicated periphery (exchange deposit addresses) and
            # occasionally with arbitrary accounts — never preferentially
            # with other popular accounts.  This keeps the hub cluster
            # dense but light, which is what lets real-world partitions
            # bound the hub shard's extra load (paper Fig. 4).
            sender_idx = 0
            has_periphery = self.periphery_start < cfg.num_accounts
            if has_periphery and rng.random() < cfg.hub_periphery_affinity:
                receiver_idx = rng.randrange(self.periphery_start, cfg.num_accounts)
            else:
                receiver_idx = rng.randrange(1, cfg.num_accounts)
            community = self.community_of[receiver_idx]
        else:
            community = self._community_sampler.sample(rng)
            sender_idx = self._pick_member(community, rng)
            if rng.random() < cfg.community_affinity:
                receiver_idx = self._pick_member(community, rng)
            else:
                # Cross-community leak: a uniformly chosen foreign
                # community, popular member within it.
                foreign = rng.randrange(self.config.resolved_communities())
                receiver_idx = self._pick_member(foreign, rng)
        if receiver_idx == sender_idx:
            # Re-draw from a uniformly chosen community so collisions do
            # not funnel extra weight into the most popular community.
            foreign = rng.randrange(self.config.resolved_communities())
            receiver_idx = self._pick_member(foreign, rng)
            if receiver_idx == sender_idx:
                receiver_idx = (sender_idx + 1) % self.core_count

        outputs = [self.addresses[receiver_idx]]
        if rng.random() < cfg.multi_io_rate:
            extra = rng.randint(1, cfg.multi_io_max - 2)
            for _ in range(extra):
                outputs.append(self.addresses[self._pick_member(community, rng)])
        return Transaction(inputs=(self.addresses[sender_idx],), outputs=tuple(outputs))

    # ------------------------------------------------------------------
    def transactions(self) -> Iterator[Transaction]:
        """The full transaction stream, lazily."""
        rng = random.Random(self.config.seed + 1)
        for index in range(self.config.num_transactions):
            yield self._stream_transaction(index, rng)

    def _stream_transaction(self, index: int, rng: random.Random) -> Transaction:
        """Hook for time-varying workloads: transaction at stream position
        ``index``.  The base generator is stationary, so the position is
        ignored; zoo generators override this to phase their traffic
        (spikes, waves, epochs) while reusing the stationary machinery."""
        return self._one_transaction(rng)

    def generate(self) -> List[Transaction]:
        """The full transaction stream, materialised."""
        return list(self.transactions())

    def blocks(self) -> Iterator[Block]:
        """The stream chunked into blocks with linked parent hashes."""
        parent = ""
        height = 0
        batch: List[Transaction] = []
        for tx in self.transactions():
            batch.append(tx)
            if len(batch) == self.config.block_size:
                block = Block(height=height, transactions=tuple(batch), parent_hash=parent)
                yield block
                parent = block.block_hash
                height += 1
                batch = []
        if batch:
            yield Block(height=height, transactions=tuple(batch), parent_hash=parent)

    # ------------------------------------------------------------------
    def dataset_card(self, transactions: Sequence[Transaction] = None) -> DatasetCard:
        """Summarise a generated stream (defaults to a fresh generation)."""
        txs = list(transactions) if transactions is not None else self.generate()
        counts: Dict[Address, int] = {}
        self_loops = 0
        multi_io = 0
        accounts_per_tx = 0
        for tx in txs:
            accs = tx.accounts
            accounts_per_tx += len(accs)
            if tx.is_self_loop:
                self_loops += 1
            if len(accs) > 2:
                multi_io += 1
            for a in accs:
                counts[a] = counts.get(a, 0) + 1
        total = len(txs)
        ranked = sorted(counts.values(), reverse=True)
        return DatasetCard(
            num_transactions=total,
            num_accounts=len(counts),
            top_account_share=(ranked[0] / total) if ranked else 0.0,
            top10_account_share=(sum(ranked[:10]) / total) if ranked else 0.0,
            self_loop_ratio=self_loops / total if total else 0.0,
            multi_io_ratio=multi_io / total if total else 0.0,
            mean_accounts_per_tx=accounts_per_tx / total if total else 0.0,
        )


def account_sets(transactions: Sequence[Transaction]) -> List[Tuple[Address, ...]]:
    """Project transactions to sorted account tuples (metric/graph input)."""
    return [tuple(sorted(tx.accounts)) for tx in transactions]


# ======================================================================
# Workload zoo — named traffic topologies over the same account machinery
# ======================================================================
# Each generator below stresses one axis of the allocator that the base
# Ethereum-like workload does not: sudden load concentration (hotspot),
# star traffic (exchange_hub), unseen-account waves (mint_burst),
# mapping staleness (community_drift), and the absence of exploitable
# locality (adversarial).  All of them derive every draw from the one
# config seed — equal configs produce byte-identical streams — and all
# reuse the base generator's community/Zipf machinery, so scale, block
# chunking, dataset cards and determinism behave identically across the
# zoo.  ``docs/workloads.md`` documents each topology's traffic shape,
# stress axis and knobs.


class HotSpotWorkloadGenerator(EthereumWorkloadGenerator):
    """Flash crowd: one previously-quiet contract suddenly dominates.

    Outside the spike window the stream is exactly the base Ethereum
    workload.  Inside ``[spike_start, spike_end)`` (fractions of the
    stream), each transaction is, with probability ``spike_share``, a
    transfer from a random account to one fixed *hot* contract — a
    mid-tail core account that carried no special traffic before.  The
    stress axis is sudden load concentration: the allocator must detect
    the flash crowd and rebalance the hot shard mid-stream.
    """

    def __init__(
        self,
        config: WorkloadConfig = WorkloadConfig(),
        *,
        spike_start: float = 0.4,
        spike_end: float = 0.7,
        spike_share: float = 0.5,
    ) -> None:
        if not 0.0 <= spike_start < spike_end <= 1.0:
            raise ParameterError(
                "spike window must satisfy 0 <= spike_start < spike_end <= 1, "
                f"got [{spike_start!r}, {spike_end!r})"
            )
        if not 0.0 <= spike_share < 1.0:
            raise ParameterError(f"spike_share must be in [0, 1), got {spike_share!r}")
        super().__init__(config)
        self.spike_start = spike_start
        self.spike_end = spike_end
        self.spike_share = spike_share
        #: The flash-crowd target: a mid-tail core account (never the
        #: hub, so the spike is genuinely *new* load concentration).
        self.hot_index: int = max(1, self.core_count // 2)
        self.hot: Address = self.addresses[self.hot_index]

    def in_spike(self, index: int) -> bool:
        n = self.config.num_transactions
        return self.spike_start * n <= index < self.spike_end * n

    def _stream_transaction(self, index: int, rng: random.Random) -> Transaction:
        if self.in_spike(index) and rng.random() < self.spike_share:
            sender_idx = self._pick_global(rng)
            if sender_idx == self.hot_index:
                sender_idx = (self.hot_index + 1) % self.core_count or 1
            return Transaction(
                inputs=(self.addresses[sender_idx],), outputs=(self.hot,)
            )
        return self._one_transaction(rng)


class ExchangeHubWorkloadGenerator(EthereumWorkloadGenerator):
    """Star traffic: a few exchange hot wallets with dedicated peripheries.

    With probability ``hub_traffic_share`` a transaction is a deposit to
    (or withdrawal from) one of ``num_hubs`` exchange accounts, drawn
    Zipf so the first hub dominates; the partner is drawn from the hub's
    own periphery stripe (account index ≡ hub index mod ``num_hubs``).
    The rest of the stream is base community traffic.  The stress axis
    is workload balance under hyper-hubs: graph partitioners glue each
    star together and overload the hub shards (the paper's Fig. 4
    pathology, multiplied by ``num_hubs``).
    """

    def __init__(
        self,
        config: WorkloadConfig = WorkloadConfig(),
        *,
        num_hubs: int = 4,
        hub_traffic_share: float = 0.65,
    ) -> None:
        if num_hubs < 1:
            raise ParameterError(f"num_hubs must be positive, got {num_hubs!r}")
        if not 0.0 <= hub_traffic_share < 1.0:
            raise ParameterError(
                f"hub_traffic_share must be in [0, 1), got {hub_traffic_share!r}"
            )
        super().__init__(config)
        self.num_hubs = min(num_hubs, max(1, config.num_accounts // 2 - 1))
        self.hub_traffic_share = hub_traffic_share
        self.hubs: List[Address] = [self.addresses[h] for h in range(self.num_hubs)]
        self._hub_sampler = _ZipfSampler(range(self.num_hubs), 1.0)

    def _stream_transaction(self, index: int, rng: random.Random) -> Transaction:
        if rng.random() < self.hub_traffic_share:
            h = self._hub_sampler.sample(rng)
            # Periphery stripe of hub h: indices ≡ h (mod num_hubs),
            # excluding the hub block itself.
            p = rng.randrange(self.num_hubs, self.config.num_accounts)
            p -= (p - h) % self.num_hubs
            if p < self.num_hubs:
                p += self.num_hubs
            partner = self.addresses[p]
            if rng.random() < 0.5:
                return Transaction(inputs=(partner,), outputs=(self.hubs[h],))
            return Transaction(inputs=(self.hubs[h],), outputs=(partner,))
        return self._one_transaction(rng)


class MintBurstWorkloadGenerator(EthereumWorkloadGenerator):
    """Mint-burst waves: bursts of brand-new accounts hitting one contract.

    The stream is divided into ``num_waves`` equal periods; the first
    ``wave_fraction`` of each period is a burst in which every
    transaction is a mint — a *never-seen* account (addresses beyond the
    configured account space, one per stream position, so repetition of
    the stream is byte-identical) paying one fixed mint contract.  The
    stress axis is unseen-account placement: fallback routing carries
    each newcomer until the allocator's next scheduled update, and the
    mint contract's shard rides a recurring load wave.
    """

    def __init__(
        self,
        config: WorkloadConfig = WorkloadConfig(),
        *,
        num_waves: int = 4,
        wave_fraction: float = 0.2,
    ) -> None:
        if num_waves < 1:
            raise ParameterError(f"num_waves must be positive, got {num_waves!r}")
        if not 0.0 < wave_fraction < 1.0:
            raise ParameterError(
                f"wave_fraction must be in (0, 1), got {wave_fraction!r}"
            )
        super().__init__(config)
        self.num_waves = num_waves
        self.wave_fraction = wave_fraction
        #: The mint contract sits just beyond the base account space: no
        #: community owns it, so its placement is entirely the
        #: allocator's doing.
        self.mint: Address = address_from_int(config.num_accounts)
        self._period = max(1, config.num_transactions // num_waves)

    def in_burst(self, index: int) -> bool:
        return (index % self._period) < self.wave_fraction * self._period

    def _stream_transaction(self, index: int, rng: random.Random) -> Transaction:
        if self.in_burst(index):
            # One fresh account per burst position — a pure function of
            # the stream index, so re-iteration is byte-identical.
            newcomer = address_from_int(self.config.num_accounts + 1 + index)
            return Transaction(inputs=(newcomer,), outputs=(self.mint,))
        return self._one_transaction(rng)


class CommunityDriftWorkloadGenerator(EthereumWorkloadGenerator):
    """Community drift/churn: cluster membership rotates over the stream.

    The stream is divided into ``epochs`` equal spans.  At each epoch
    boundary a ``churn`` fraction of core accounts is deterministically
    re-seated into a different community (communities are kept
    non-empty); traffic within an epoch follows that epoch's assignment
    with the base generator's affinities.  The stress axis is mapping
    staleness: an allocation computed on epoch-``e`` traffic bleeds
    cross-shard volume in epoch ``e+1``, so the τ₂ refresh cadence — not
    one-shot quality — decides throughput.
    """

    def __init__(
        self,
        config: WorkloadConfig = WorkloadConfig(),
        *,
        epochs: int = 4,
        churn: float = 0.3,
    ) -> None:
        if epochs < 1:
            raise ParameterError(f"epochs must be positive, got {epochs!r}")
        if not 0.0 <= churn <= 1.0:
            raise ParameterError(f"churn must be in [0, 1], got {churn!r}")
        super().__init__(config)
        self.epochs = epochs
        self.churn = churn
        rng = random.Random(config.seed + 7)
        num_comms = config.resolved_communities()
        community_of = list(self.community_of)
        members = {c: list(m) for c, m in self.members.items()}
        views = [
            (
                list(community_of),
                {c: list(m) for c, m in members.items()},
                dict(self._member_samplers),
            )
        ]
        for _ in range(1, epochs):
            movers = rng.sample(
                range(1, self.core_count), int(self.churn * (self.core_count - 1))
            )
            for account in movers:
                old = community_of[account]
                if len(members[old]) <= 1:
                    continue  # never empty a community
                new = rng.randrange(num_comms)
                if new == old:
                    new = (new + 1) % num_comms
                members[old].remove(account)
                members[new].append(account)
                community_of[account] = new
            samplers = {
                c: _ZipfSampler(m, config.zipf_exponent) for c, m in members.items()
            }
            views.append(
                (
                    list(community_of),
                    {c: list(m) for c, m in members.items()},
                    samplers,
                )
            )
        self._epoch_views = views
        self._installed_epoch = 0

    def epoch_of(self, index: int) -> int:
        n = self.config.num_transactions
        return min(self.epochs - 1, index * self.epochs // n)

    def community_view(self, epoch: int) -> List[int]:
        """The community assignment in force during ``epoch``."""
        return list(self._epoch_views[epoch][0])

    def _stream_transaction(self, index: int, rng: random.Random) -> Transaction:
        epoch = self.epoch_of(index)
        if epoch != self._installed_epoch:
            # Swap the epoch's assignment in; idempotent by epoch number,
            # so re-iterating the stream from index 0 re-installs epoch 0
            # and repetition stays byte-identical.
            self.community_of, self.members, self._member_samplers = (
                self._epoch_views[epoch]
            )
            self._installed_epoch = epoch
        return self._one_transaction(rng)


class AdversarialWorkloadGenerator(EthereumWorkloadGenerator):
    """Adversarial cross-shard traffic: every transfer crosses communities.

    Senders are drawn with the base Zipf popularity, but the receiver is
    always a member of a *different* community, uniformly chosen — the
    planted cluster structure exists in the account population but never
    in the edges.  The stress axis is the absence of exploitable
    locality: no allocation can co-locate this traffic, so cross-shard
    ratios stay high for every method and the interesting question is
    whether a community-exploiting allocator degrades *gracefully*
    (it should do no worse than hash, not collapse).
    """

    def __init__(self, config: WorkloadConfig = WorkloadConfig()) -> None:
        super().__init__(config)

    def _stream_transaction(self, index: int, rng: random.Random) -> Transaction:
        num_comms = self.config.resolved_communities()
        community = self._community_sampler.sample(rng)
        sender_idx = self._pick_member(community, rng)
        foreign = (community + 1 + rng.randrange(max(1, num_comms - 1))) % num_comms
        receiver_idx = self._pick_member(foreign, rng)
        if receiver_idx == sender_idx:  # distinct communities -> distinct
            receiver_idx = (receiver_idx + 1) % self.core_count or 1
        return Transaction(
            inputs=(self.addresses[sender_idx],),
            outputs=(self.addresses[receiver_idx],),
        )


# ----------------------------------------------------------------------
# Workload registry — topologies by name, the matrix harness's seam
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class WorkloadEntry:
    """One registered workload topology.

    ``factory`` builds a generator from ``(config, **knobs)``; the
    generator must expose the :class:`EthereumWorkloadGenerator` surface
    (``transactions()``/``generate()``/``blocks()``/``dataset_card()``).
    """

    name: str
    factory: Callable[..., EthereumWorkloadGenerator]
    description: str = ""
    #: Which failure mode of the allocator this topology stresses.
    stress_axis: str = ""


_WORKLOADS: Dict[str, WorkloadEntry] = {}


def register_workload(
    name: str,
    factory,
    *,
    description: str = "",
    stress_axis: str = "",
    overwrite: bool = False,
) -> WorkloadEntry:
    """Register a workload topology under ``name`` (matrix-spec vocabulary)."""
    if name in _WORKLOADS and not overwrite:
        raise ParameterError(
            f"workload {name!r} already registered; pass overwrite=True to replace"
        )
    entry = WorkloadEntry(
        name=name, factory=factory, description=description, stress_axis=stress_axis
    )
    _WORKLOADS[name] = entry
    return entry


def workload_names() -> Tuple[str, ...]:
    """Names of every registered workload topology, sorted."""
    return tuple(sorted(_WORKLOADS))


def get_workload_entry(name: str) -> WorkloadEntry:
    """Resolve a topology name to its registry entry."""
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise ParameterError(
            f"unknown workload {name!r}; available: {', '.join(workload_names())}"
        ) from None


def make_workload_generator(
    name: str, config: WorkloadConfig = None, **knobs
) -> EthereumWorkloadGenerator:
    """Build a registered workload generator by name.

    ``config`` defaults to :class:`WorkloadConfig`'s defaults; ``knobs``
    pass through to the topology's factory (each topology documents its
    own — see ``docs/workloads.md``).
    """
    entry = get_workload_entry(name)
    try:
        return entry.factory(config if config is not None else WorkloadConfig(), **knobs)
    except TypeError as exc:
        raise ParameterError(f"bad knobs for workload {name!r}: {exc}") from None


def _ethereum_factory(config: WorkloadConfig, **knobs) -> EthereumWorkloadGenerator:
    if knobs:
        raise ParameterError(
            f"the ethereum workload takes no extra knobs, got {sorted(knobs)}"
        )
    return EthereumWorkloadGenerator(config)


register_workload(
    "ethereum",
    _ethereum_factory,
    description="Ethereum-like baseline: Zipf accounts, planted communities, "
    "one hyper-active hub (paper Section VI-A)",
    stress_axis="none (the reference workload every figure uses)",
)
register_workload(
    "hotspot",
    HotSpotWorkloadGenerator,
    description="flash crowd: one mid-tail contract takes spike_share of "
    "traffic inside a spike window",
    stress_axis="sudden load concentration / mid-stream rebalancing",
)
register_workload(
    "exchange_hub",
    ExchangeHubWorkloadGenerator,
    description="star traffic: num_hubs exchange wallets with dedicated "
    "periphery stripes carry hub_traffic_share of volume",
    stress_axis="workload balance under hyper-hubs (Fig. 4 pathology)",
)
register_workload(
    "mint_burst",
    MintBurstWorkloadGenerator,
    description="periodic waves of never-seen accounts paying one mint "
    "contract",
    stress_axis="unseen-account fallback routing and placement latency",
)
register_workload(
    "community_drift",
    CommunityDriftWorkloadGenerator,
    description="cluster membership re-seats by churn every epoch; traffic "
    "follows the epoch's assignment",
    stress_axis="mapping staleness / value of the tau2 refresh cadence",
)
register_workload(
    "adversarial",
    AdversarialWorkloadGenerator,
    description="every transfer crosses communities: locality exists in the "
    "population but never in the edges",
    stress_axis="graceful degradation when there is nothing to exploit",
)
