"""Exception hierarchy for the ``repro`` package.

All library errors derive from :class:`ReproError` so that callers can catch
one base class.  Errors are deliberately specific: an invalid hyperparameter
raises :class:`ParameterError`, a malformed transaction raises
:class:`TransactionError`, and so on.  The library never silences an error or
returns a sentinel value where an exception is the clearer signal.

Hierarchy::

    ReproError
    ├── ParameterError      (ValueError)   invalid hyperparameter
    ├── TransactionError    (ValueError)   malformed transaction
    ├── AllocationError     (ValueError)   mapping violates Definition 1
    ├── GraphError          (ValueError)   inconsistent graph operation
    ├── LedgerError         (ValueError)   invalid ledger operation
    ├── DataError           (ValueError)   malformed external dataset
    ├── SimulationError     (RuntimeError) simulator state inconsistency
    └── AllocatorError      (RuntimeError) allocator-side runtime failure
        └── DegradedModeError              operation needs a healthy allocator

The two runtime branches are deliberately distinct so fault-injection
tests can assert on exact types: a :class:`SimulationError` means the
*chain substrate* broke an invariant, an :class:`AllocatorError` means
the *allocation service* failed while the substrate is fine — the
latter is what :class:`repro.core.resilience.ResilientAllocator`
isolates, and what :mod:`repro.chain.faults` injects.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ParameterError(ReproError, ValueError):
    """A hyperparameter is outside its valid domain (e.g. ``k < 1``)."""


class TransactionError(ReproError, ValueError):
    """A transaction violates the model of Section III-A of the paper.

    For example an empty input or output account set.
    """


class AllocationError(ReproError, ValueError):
    """An account-shard mapping violates Definition 1 of the paper.

    Raised on duplicate assignment (uniqueness) or on access to an account
    that is missing from the mapping (completeness).
    """


class GraphError(ReproError, ValueError):
    """An operation on the transaction graph is inconsistent.

    For example requesting the neighbourhood of an unknown node.
    """


class LedgerError(ReproError, ValueError):
    """A ledger operation is invalid, e.g. appending a non-contiguous block."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-time shard simulator reached an inconsistent state."""


class DataError(ReproError, ValueError):
    """An external dataset (CSV/JSONL export) is malformed."""


class AllocatorError(ReproError, RuntimeError):
    """An online allocator failed at runtime (observe/update/query).

    Base class for allocator-side failures, as opposed to
    :class:`SimulationError` (the chain substrate itself).  Injected
    allocator faults (:mod:`repro.chain.faults`) raise exactly this
    type, so tests can distinguish an isolated allocator crash from a
    broken simulator.
    """


class DegradedModeError(AllocatorError):
    """An operation requires a healthy allocator, but routing is degraded.

    Raised e.g. by :meth:`repro.core.resilience.ResilientAllocator.checkpoint_now`
    while the supervisor serves the frozen last-good mapping — a degraded
    snapshot must never overwrite the last durable *good* checkpoint.
    """
