"""G-TxAllo — the global allocation algorithm (paper Algorithm 1).

Two phases over the full transaction graph:

1. **Initialisation.**  A deterministic Louvain run yields ``l``
   communities.  When ``l > k`` the ``k`` communities with the largest
   workload ``σ`` become the shards; every node of the remaining *small*
   communities is absorbed into the shard with the largest join gain
   (Eq. 6), restricted to shards it connects to (Eq. 9) or all shards when
   it connects to none.  When ``l <= k`` the partition is padded with empty
   shards.
2. **Optimisation.**  Repeated deterministic sweeps over all nodes; each
   node moves to the candidate community with the largest total throughput
   gain (Eq. 8) if that gain is positive.  Sweeps stop when the summed gain
   of a sweep falls below ``ε``.

Complexity: ``O(N log N)`` for the initialisation plus ``O(N k)`` per sweep
(Section V-B).  Every step is deterministic given the graph content.

This module holds the dict-based *reference* implementation — the
executable specification.  The default ``backend="fast"`` dispatches to
the flat-array sweep engine (:mod:`repro.core.engine`), which runs the
same algorithm on the frozen CSR graph and is byte-identical by
construction (pinned by ``tests/test_engine_parity.py``).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence

from repro.core import backends
from repro.core.allocation import Allocation
from repro.core.graph import Node, TransactionGraph
from repro.core.louvain import louvain_partition
from repro.core.objective import GainComputer
from repro.core.params import TxAlloParams

#: Safety bound on optimisation sweeps; the paper's ε criterion converges
#: far earlier on every workload we have seen.
MAX_SWEEPS = 100


@dataclasses.dataclass
class GTxAlloResult:
    """Outcome of a G-TxAllo run, with instrumentation for Fig. 8/10."""

    allocation: Allocation
    louvain_communities: int
    small_nodes_absorbed: int
    sweeps: int
    moves: int
    init_seconds: float
    optimise_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.init_seconds + self.optimise_seconds


def g_txallo(
    graph: TransactionGraph,
    params: TxAlloParams,
    *,
    initial_partition: Optional[Dict[Node, int]] = None,
    node_order: Optional[Sequence[Node]] = None,
    backend: Optional[str] = None,
) -> GTxAlloResult:
    """Run Algorithm 1 and return the converged k-shard allocation.

    ``initial_partition`` overrides the Louvain initialisation (used by the
    initialisation ablation benchmark); it may contain any number of
    communities.  ``node_order`` fixes the sweep order; the default is the
    sorted account order, mirroring the paper's hash-derived ordering.

    ``backend`` overrides ``params.backend`` and names a tier in the
    engine-backend registry (:mod:`repro.core.backends`); unavailable
    tiers resolve to their declared fallback.  ``"fast"`` runs the
    flat-array sweep engine over the frozen CSR graph
    (:mod:`repro.core.engine`), ``"reference"`` the dict-based
    implementation in this module — byte-identical allocations, caches
    and sweep/move counts, pinned by ``tests/test_engine_parity.py``.
    ``"turbo"`` (warm-started Louvain + work-skipping sweeps) and
    ``"vector"`` (numpy batched sweeps, ``node_order`` ignored — the
    synchronous sweeps have no visit order) may land on a different
    local optimum; both are gated within
    :data:`repro.core.engine.WARM_OBJECTIVE_TOLERANCE` of the fast
    objective (see the engine module docstring for the full contract).
    """
    if backend is None:
        backend = params.backend
    spec = backends.resolve_backend(backend)
    alloc, num_louvain, num_small, sweeps, moves, t_init, t_opt = spec.gtxallo_kernel(
        graph, params, initial_partition, node_order
    )
    return GTxAlloResult(
        allocation=alloc,
        louvain_communities=num_louvain,
        small_nodes_absorbed=num_small,
        sweeps=sweeps,
        moves=moves,
        init_seconds=t_init,
        optimise_seconds=t_opt,
    )


def _g_txallo_reference(
    graph: TransactionGraph,
    params: TxAlloParams,
    initial_partition: Optional[Dict[Node, int]] = None,
    node_order: Optional[Sequence[Node]] = None,
) -> tuple:
    """The dict-based Algorithm 1 (``backend="reference"``).

    Returns the registry kernel tuple ``(allocation,
    louvain_communities, small_nodes_absorbed, sweeps, moves,
    init_seconds, optimise_seconds)``.
    """
    t0 = time.perf_counter()
    if initial_partition is None:
        partition = louvain_partition(graph, backend="reference")
    else:
        partition = dict(initial_partition)
    alloc, num_small = _initialise(graph, params, partition)
    t1 = time.perf_counter()

    order = list(node_order) if node_order is not None else graph.nodes_sorted()
    sweeps, moves = _optimise(alloc, order, params.epsilon)
    t2 = time.perf_counter()

    num_louvain = 1 + max(partition.values(), default=-1)
    return alloc, num_louvain, num_small, sweeps, moves, t1 - t0, t2 - t1


# ----------------------------------------------------------------------
# Phase 1 — initialisation (Algorithm 1, lines 1-9)
# ----------------------------------------------------------------------
def _initialise(
    graph: TransactionGraph,
    params: TxAlloParams,
    partition: Dict[Node, int],
) -> (Allocation, int):
    """Turn an ``l``-community partition into a ``k``-shard allocation."""
    k = params.k
    num_comms = 1 + max(partition.values(), default=-1)
    if num_comms <= k:
        # Uncommon case l <= k: pad with empty shards (Section V-B).
        alloc = Allocation.from_partition(graph, params, partition, num_communities=k)
        return alloc, 0

    # Rank communities by workload sigma; the top k become the shards.
    staged = Allocation.from_partition(graph, params, partition, num_communities=num_comms)
    ranked = sorted(range(num_comms), key=lambda c: (-staged.sigma[c], c))
    relabel = {c: i for i, c in enumerate(ranked)}
    relabelled = {v: relabel[c] for v, c in partition.items()}
    alloc = Allocation.from_partition(graph, params, relabelled, num_communities=num_comms)

    gains = GainComputer(alloc)
    small_nodes: List[Node] = sorted(
        v for v, c in relabelled.items() if c >= k
    )
    for v in small_nodes:
        by_shard, w_self, w_ext = alloc.neighbour_shard_weights(v)
        candidates = gains.candidate_communities(v, by_shard, exclude=None, limit=k)
        if not candidates:
            # The node connects to no large community: every shard is a
            # candidate (Algorithm 1, lines 4-6).
            candidates = range(k)
        q, _gain = gains.best_join(v, candidates, by_shard, w_self, w_ext)
        alloc.move(v, q, weights=(by_shard, w_self, w_ext))
    alloc.truncate(k)
    return alloc, len(small_nodes)


# ----------------------------------------------------------------------
# Phase 2 — optimisation (Algorithm 1, lines 10-19)
# ----------------------------------------------------------------------
def _optimise(
    alloc: Allocation,
    order: Sequence[Node],
    epsilon: float,
) -> (int, int):
    """Sweep all nodes until the per-sweep gain drops below ``epsilon``."""
    gains = GainComputer(alloc)
    sweeps = 0
    moves = 0
    while sweeps < MAX_SWEEPS:
        sweeps += 1
        sweep_gain = 0.0
        for v in order:
            by_shard, w_self, w_ext = alloc.neighbour_shard_weights(v)
            p = alloc.shard_of(v)
            candidates = gains.candidate_communities(v, by_shard, exclude=p)
            if not candidates:
                # The node connects only to its own community; it stays
                # (Algorithm 1 allows C_v = ∅ in this phase).
                continue
            q, gain = gains.best_move(v, candidates, by_shard, w_self, w_ext, p)
            if q is not None and gain > 0.0:
                alloc.move(v, q, weights=(by_shard, w_self, w_ext))
                sweep_gain += gain
                moves += 1
        if sweep_gain < epsilon:
            break
    return sweeps, moves
