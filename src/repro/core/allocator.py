"""The unified allocator protocol — one allocation interface for every method.

The paper's whole evaluation (Section VI-B) is a comparison harness:
TxAllo against hash allocation, METIS-style partitioning and the online
Shard Scheduler.  This module gives all of them a single two-level
shape, so the chain simulators, the figure runners and the CLI dispatch
through one seam instead of per-method special cases:

* :class:`StaticAllocator` — one-shot methods that read a transaction
  graph and emit a complete account→shard mapping (G-TxAllo, METIS,
  hash/prefix allocation).  ``allocate(graph, params) -> mapping``.
* :class:`OnlineAllocator` — stateful methods that watch blocks arrive
  and answer routing queries while the system runs
  (:class:`~repro.core.controller.TxAlloController`, the Shard
  Scheduler, and any static mapping frozen into a
  :class:`FixedMappingAllocator`).  ``observe_block(block)`` ingests one
  block and may update the allocation; ``shard_of(account)`` routes.

Fallback routing is part of the protocol: ``shard_of`` is **total**.  An
account the allocator has never seen is routed deterministically — by
``SHA256(address) mod k`` for static mappings
(:func:`hash_fallback_shard`), or by the allocator's own policy for
online methods (the TxAllo controller co-locates an unassigned account
with its heaviest assigned neighbourhood).  Routing unknown accounts to
a hard-coded shard 0 — the old ``LiveShardedNetwork`` behaviour — is
exactly the silent load skew this protocol removes.

Static methods ride in the online world through
:meth:`StaticAllocator.as_online`, which allocates once over a seed
graph and freezes the result; online methods ride in the analytic world
through :meth:`OnlineAllocator.run_stream`, which replays a
chronological stream with processing-time workload accounting (the
Shard Scheduler's native accounting, generalised).

The string-keyed registry over these protocols lives in
:mod:`repro.allocators` (``get("metis")``, ``register(...)``,
``available()``); adding a new allocation method is one registration,
not a four-layer surgery.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.core.allocation import capped_throughput
from repro.core.graph import Node, TransactionGraph
from repro.core.params import TxAlloParams
from repro.errors import AllocationError


def hash_fallback_shard(account: Node, k: int) -> int:
    """The protocol's default fallback: ``SHA256(address) mod k``.

    Deterministic, stateless and uniform — the same rule deployed
    protocols use for *all* routing (Section II-C), demoted here to a
    fallback for accounts the allocator has not placed yet.
    """
    # Imported lazily: core must stay importable before repro.baselines
    # (whose hash module is the single source of the digest rule).
    from repro.baselines.hash_allocation import hash_shard

    return hash_shard(account, k)


# ----------------------------------------------------------------------
# Protocol results
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class AllocationUpdate:
    """A visible allocation change reported by ``observe_block``.

    ``kind`` names the mechanism (``"global"``, ``"adaptive"``,
    ``"migration"``, ...); ``moves`` counts accounts that changed shard.
    :class:`~repro.core.controller.UpdateEvent` is a richer drop-in with
    the same ``kind`` attribute.
    """

    kind: str
    moves: int = 0


@dataclasses.dataclass
class OnlineRunResult:
    """Processing-time accounting of one chronological stream replay.

    Loads are charged when each transaction is processed, against the
    mapping *at that moment* — so a migrating account's traffic is
    smeared over the shards it visited, which is the Shard Scheduler's
    native accounting (paper Section VI-B1) generalised to any
    :class:`OnlineAllocator`.
    """

    mapping: Dict[Node, int]
    shard_loads: Tuple[float, ...]
    shard_lam_hat: Tuple[float, ...]
    num_transactions: int
    num_cross_shard: int

    @property
    def cross_shard_ratio(self) -> float:
        if self.num_transactions == 0:
            return 0.0
        return self.num_cross_shard / self.num_transactions

    def throughput(self, lam: float) -> float:
        """Capacity-capped system throughput over the accumulated loads."""
        return sum(
            capped_throughput(s, lh, lam)
            for s, lh in zip(self.shard_loads, self.shard_lam_hat)
        )


# ----------------------------------------------------------------------
# The two protocol levels
# ----------------------------------------------------------------------
class AllocatorBase:
    """Common surface of every allocator: a name plus metadata."""

    #: Registry-style identifier (``"metis"``, ``"txallo_online"``, ...).
    name: str = "allocator"
    #: ``"static"`` or ``"online"``.
    kind: str = "?"

    @property
    def metadata(self) -> Dict[str, str]:
        doc = (self.__doc__ or "").strip()
        return {
            "name": self.name,
            "kind": self.kind,
            "description": doc.splitlines()[0] if doc else "",
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r}, kind={self.kind!r})"


class StaticAllocator(AllocatorBase):
    """A one-shot allocator: graph in, complete account→shard mapping out."""

    kind = "static"

    def allocate(
        self, graph: TransactionGraph, params: TxAlloParams
    ) -> Dict[Node, int]:
        """Compute a mapping covering every node of ``graph``."""
        raise NotImplementedError

    def default_shard(self, account: Node, k: int) -> int:
        """Fallback shard for accounts outside the computed mapping."""
        return hash_fallback_shard(account, k)

    def as_online(
        self,
        params: TxAlloParams,
        *,
        graph: Optional[TransactionGraph] = None,
        seed_transactions: Optional[Iterable[Sequence[Node]]] = None,
    ) -> "FixedMappingAllocator":
        """Freeze one allocation over seed history into the online protocol.

        Allocates once — over ``graph`` if given, else over a graph built
        from ``seed_transactions`` — and wraps the mapping so a live
        network can drive this method tick by tick.  Accounts that later
        appear outside the seed history route via :meth:`default_shard`.
        """
        if graph is None:
            graph = TransactionGraph()
            if seed_transactions is not None:
                for accounts in seed_transactions:
                    graph.add_transaction(accounts)
        mapping = self.allocate(graph, params)
        return FixedMappingAllocator(
            mapping, params, name=self.name, fallback=self.default_shard
        )


class FunctionAllocator(StaticAllocator):
    """Adapter: any ``(graph, params) -> mapping`` callable as an allocator."""

    def __init__(
        self,
        name: str,
        fn: Callable[[TransactionGraph, TxAlloParams], Dict[Node, int]],
        *,
        fallback: Optional[Callable[[Node, int], int]] = None,
        description: str = "",
    ) -> None:
        self.name = name
        self._fn = fn
        self._fallback = fallback
        self._description = description

    @property
    def metadata(self) -> Dict[str, str]:
        meta = super().metadata
        if self._description:
            meta["description"] = self._description
        return meta

    def allocate(
        self, graph: TransactionGraph, params: TxAlloParams
    ) -> Dict[Node, int]:
        return self._fn(graph, params)

    def default_shard(self, account: Node, k: int) -> int:
        if self._fallback is not None:
            return self._fallback(account, k)
        return hash_fallback_shard(account, k)


class OnlineAllocator(AllocatorBase):
    """A stateful allocator driven block by block while the system runs.

    Implementations must set :attr:`params` and provide
    :meth:`observe_block`, :meth:`shard_of` and :meth:`mapping`.
    ``shard_of`` must be *total*: every account gets a deterministic
    shard, placed or not (see the module docstring on fallbacks).
    """

    kind = "online"
    #: The hyperparameters the allocator was built for (k, eta, ...).
    params: TxAlloParams

    def observe_block(
        self, transactions: Iterable[Sequence[Node]]
    ) -> Optional[AllocationUpdate]:
        """Ingest one block of account-sets; may update the allocation.

        Returns an object with a ``kind`` attribute when the allocation
        visibly changed (``AllocationUpdate`` or richer), else ``None``.
        """
        raise NotImplementedError

    def shard_of(self, account: Node) -> int:
        """Current shard of ``account`` — total, never raises."""
        raise NotImplementedError

    def mapping(self) -> Dict[Node, int]:
        """Snapshot of the accounts the allocator has explicitly placed."""
        raise NotImplementedError

    @property
    def freeze_stats(self) -> Optional[Dict[str, int]]:
        """Graph-snapshot counters for allocators that freeze a graph."""
        return None

    @property
    def degraded(self) -> bool:
        """True while the allocator serves a frozen last-good mapping.

        Part of the degradation-reporting surface of the protocol: the
        live network stamps this onto every :class:`TickStats`.  Only
        supervised wrappers (:class:`repro.core.resilience.ResilientAllocator`)
        ever degrade; plain allocators are always healthy.
        """
        return False

    @property
    def resilience_stats(self) -> Optional[Dict[str, int]]:
        """Supervision counters (failures/retries/trips/...), or ``None``.

        ``None`` for unsupervised allocators, mirroring how
        :attr:`freeze_stats` is ``None`` for allocators that never
        freeze a graph.
        """
        return None

    def run_stream(
        self, transactions: Iterable[Sequence[Node]]
    ) -> OnlineRunResult:
        """Replay a chronological stream with processing-time accounting.

        Each transaction is observed as its own one-transaction block
        (placement/migration happens first), then charged against the
        mapping of that moment: cost 1 intra, ``η`` per involved shard
        cross; throughput credit 1 intra, ``1/m`` per shard cross — the
        workload model of Section III-A at processing time.
        """
        k, eta = self.params.k, self.params.eta
        loads = [0.0] * k
        lam_hat = [0.0] * k
        total = 0
        cross = 0
        for accounts in transactions:
            unique = sorted(set(accounts))
            self.observe_block([unique])
            shards = {self.shard_of(a) for a in unique}
            total += 1
            m = len(shards)
            if m == 1:
                (i,) = shards
                loads[i] += 1.0
                lam_hat[i] += 1.0
            else:
                cross += 1
                share = 1.0 / m
                for i in shards:
                    loads[i] += eta
                    lam_hat[i] += share
        return OnlineRunResult(
            mapping=self.mapping(),
            shard_loads=tuple(loads),
            shard_lam_hat=tuple(lam_hat),
            num_transactions=total,
            num_cross_shard=cross,
        )


class FixedMappingAllocator(OnlineAllocator):
    """A static mapping frozen into the online protocol.

    ``observe_block`` is a no-op (the mapping never changes); unknown
    accounts route through the protocol's hash fallback (or the wrapped
    static method's own ``default_shard``), so a live network can run a
    static allocation without the old shard-0 skew.
    """

    def __init__(
        self,
        mapping: Mapping[Node, int],
        params: TxAlloParams,
        *,
        name: str = "static-mapping",
        fallback: Optional[Callable[[Node, int], int]] = None,
    ) -> None:
        self.params = params
        self.name = name
        self._mapping = dict(mapping)
        self._fallback = fallback or hash_fallback_shard
        for account, shard in self._mapping.items():
            if not 0 <= shard < params.k:
                raise AllocationError(
                    f"account {account!r} mapped to invalid shard {shard!r} "
                    f"(k={params.k})"
                )

    def observe_block(
        self, transactions: Iterable[Sequence[Node]]
    ) -> Optional[AllocationUpdate]:
        return None

    def shard_of(self, account: Node) -> int:
        shard = self._mapping.get(account)
        if shard is not None:
            return shard
        return self._fallback(account, self.params.k)

    def mapping(self) -> Dict[Node, int]:
        return dict(self._mapping)


def ensure_online(allocator, params: TxAlloParams) -> OnlineAllocator:
    """Coerce ``allocator`` into the online protocol.

    * an :class:`OnlineAllocator` passes through untouched;
    * a plain account→shard mapping is frozen into a
      :class:`FixedMappingAllocator` (hash fallback for unknowns);
    * a bare :class:`StaticAllocator` is rejected — it needs a graph to
      allocate from, so call :meth:`StaticAllocator.as_online` (or use
      :func:`repro.allocators.get_online`) first.
    """
    if isinstance(allocator, OnlineAllocator):
        return allocator
    if isinstance(allocator, StaticAllocator):
        raise AllocationError(
            f"static allocator {allocator.name!r} needs a graph to allocate "
            "from; call .as_online(params, graph=...) or "
            "repro.allocators.get_online(...) before handing it to the live "
            "network"
        )
    if isinstance(allocator, Mapping):
        return FixedMappingAllocator(allocator, params)
    raise AllocationError(
        f"cannot adapt {type(allocator).__name__!s} to the allocator "
        "protocol; expected an OnlineAllocator or an account->shard mapping"
    )
