"""Figure 10 — per-step running time: pure G-TxAllo vs. the hybrid policy.

Paper: A-TxAllo takes ~0.55 s per hourly step vs. ~122 s for G-TxAllo —
roughly 200x per step, making the allocation latency ~4 % of the block
interval.  At benchmark scale the absolute numbers shrink; the large
multiplicative gap must remain.
"""

import pytest

from repro.eval import experiments


@pytest.fixture(scope="module")
def fig10(workload):
    return experiments.figure10(
        workload, k=20, eta=2.0, global_gap=5, max_steps=15
    )


def test_fig10_report(fig10):
    print()
    print(fig10.render())


def test_adaptive_steps_much_faster(fig10):
    pure_mean = sum(s.runtime_seconds for s in fig10.pure.steps) / len(
        fig10.pure.steps
    )
    adaptive_mean = fig10.hybrid.mean_adaptive_runtime
    assert adaptive_mean < pure_mean / 5, (
        f"adaptive {adaptive_mean:.4f}s should be >>5x faster than "
        f"global {pure_mean:.4f}s (paper: ~200x)"
    )


def test_hybrid_global_steps_cost_like_pure(fig10):
    hybrid_globals = [
        s.runtime_seconds for s in fig10.hybrid.steps if s.kind == "global"
    ]
    pure_mean = sum(s.runtime_seconds for s in fig10.pure.steps) / len(
        fig10.pure.steps
    )
    assert hybrid_globals, "the hybrid policy must have run G-TxAllo"
    for g in hybrid_globals:
        assert g > fig10.hybrid.mean_adaptive_runtime


def test_every_step_recorded(fig10):
    assert len(fig10.pure.steps) == len(fig10.hybrid.steps) == 15


def test_bench_hybrid_replay(workload, benchmark):
    benchmark.pedantic(
        experiments.figure10,
        args=(workload,),
        kwargs={"k": 10, "eta": 2.0, "global_gap": 5, "max_steps": 5},
        rounds=1,
        iterations=1,
    )
