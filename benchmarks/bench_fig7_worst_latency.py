"""Figure 7 — worst-case latency (most overloaded shard) vs. shards.

Paper: Shard Scheduler best (no overloaded shard at all); TxAllo second;
Random and METIS suffer badly at large eta because the hub shard's
workload scales with eta (up to ~80 blocks in the paper).
"""

import pytest

from repro.eval import experiments


@pytest.fixture(scope="module")
def fig7(sweep_records):
    return experiments.figure7(sweep_records)


def test_fig7_report(fig7):
    print()
    print(fig7.render())


@pytest.mark.parametrize("eta", [2.0, 6.0, 10.0])
def test_shard_scheduler_best_worst_case(fig7, eta):
    for k in (20, 40, 60):
        sched = fig7.value(eta, "shard_scheduler", k)
        assert sched <= fig7.value(eta, "txallo", k)
        assert sched <= fig7.value(eta, "random", k)
        assert sched <= fig7.value(eta, "metis", k)


@pytest.mark.parametrize("k", [40, 60])
def test_txallo_second_best_at_high_eta(fig7, k):
    """At large k the hub's eta-priced cross traffic dominates the
    baselines' worst shard; TxAllo (hub traffic intra) stays below both.
    At small k the curves touch (the hub community concentrates), so the
    claim is asserted for the k >= 40 regime."""
    ours = fig7.value(10.0, "txallo", k)
    assert ours <= fig7.value(10.0, "random", k)
    assert ours <= fig7.value(10.0, "metis", k)


def test_random_worst_case_explodes_with_eta(fig7):
    """Paper Fig. 7e: up to ~80 blocks for the baselines at eta=10."""
    assert fig7.value(10.0, "random", 60) > 3 * fig7.value(2.0, "random", 60)


def test_bench_worst_case_metric(workload, benchmark):
    from repro.core.metrics import evaluate_allocation, worst_case_latency
    from repro.baselines.hash_allocation import hash_partition
    from repro.core.params import TxAlloParams

    params = TxAlloParams.with_capacity_for(workload.num_transactions, k=20, eta=10.0)
    mapping = hash_partition(workload.graph.nodes_sorted(), 20)

    def run():
        report = evaluate_allocation(workload.account_sets, mapping, params)
        return worst_case_latency(report.shard_workloads, params.lam)

    benchmark(run)
