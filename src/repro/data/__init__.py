"""Workload substrate: synthetic Ethereum generator, loaders, streaming."""

from repro.data.loader import (
    group_into_blocks,
    load_transactions_csv,
    load_transactions_jsonl,
)
from repro.data.stream import BlockStream
from repro.data.synthetic import (
    AdversarialWorkloadGenerator,
    CommunityDriftWorkloadGenerator,
    DatasetCard,
    EthereumWorkloadGenerator,
    ExchangeHubWorkloadGenerator,
    HotSpotWorkloadGenerator,
    MintBurstWorkloadGenerator,
    WorkloadConfig,
    WorkloadEntry,
    account_sets,
    get_workload_entry,
    make_workload_generator,
    register_workload,
    workload_names,
)

__all__ = [
    "AdversarialWorkloadGenerator",
    "BlockStream",
    "CommunityDriftWorkloadGenerator",
    "DatasetCard",
    "EthereumWorkloadGenerator",
    "ExchangeHubWorkloadGenerator",
    "HotSpotWorkloadGenerator",
    "MintBurstWorkloadGenerator",
    "WorkloadConfig",
    "WorkloadEntry",
    "account_sets",
    "get_workload_entry",
    "group_into_blocks",
    "load_transactions_csv",
    "load_transactions_jsonl",
    "make_workload_generator",
    "register_workload",
    "workload_names",
]
