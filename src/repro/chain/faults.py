"""Deterministic, seeded fault injection for the live network.

Robustness claims are only worth what can be *reproduced*: a fault plan
here is a frozen, seed-derived value object, so the same plan injects
the same faults at the same blocks on every machine — degradation
becomes measurable (TPS retention, recovery blocks) instead of
anecdotal, exactly like the replication-protocol run tables this repo
already follows for performance.

Four fault families, all driven by the tick/block clock (never wall
clock):

* **Allocator raise** (:class:`AllocatorFault`, ``kind="raise"``): the
  allocator's ``observe_block`` raises :class:`~repro.errors.AllocatorError`
  at the given call index — *instead of* reaching the wrapped allocator,
  which therefore never sees the block (the supervisor's buffered replay
  re-delivers it, so no history is lost).
* **Slow update** (``kind="slow"``): the update runs, but the proxy
  reports a simulated duration via ``last_update_seconds`` — the
  supervisor's deadline budget sees a deterministic overrun without any
  actual sleeping.
* **Shard stall** (:class:`ShardStall`): a shard processes zero
  capacity for a window of ticks, then drains its accrued backlog at
  normal capacity (the network simply skips its ``step`` during the
  window; nothing is dropped).
* **Delivery faults** (:class:`DeliveryFault`): the network receives
  duplicated transactions (re-stamped and processed as independent
  arrivals — extra load, no lost invariants) or malformed objects
  (dropped at validation with a counter, never shown to the allocator).

**Determinism contract.**  Like ``shard_of``, fault injection is
miner-reproducible: :meth:`FaultPlan.seeded` derives every fault from
``random.Random(seed)`` at plan-*construction* time; nothing random
happens while the network runs.  :meth:`FaultPlan.standard` is the
fixed plan the resilience benchmark and acceptance tests share (an
allocator raise burst at the first τ₂ refresh plus one 5-tick shard
stall).

Injection order matters: :func:`with_faults` installs the allocator
faults *inside* a :class:`~repro.core.resilience.ResilientAllocator` when
one is supplied (so the supervisor absorbs them) and around the bare
allocator otherwise (so an unsupervised run visibly crashes — the
contrast the tests pin).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.chain.types import Transaction
from repro.core.allocator import OnlineAllocator
from repro.core.graph import Node
from repro.core.resilience import ResilientAllocator
from repro.errors import AllocatorError, ParameterError


@dataclasses.dataclass(frozen=True)
class AllocatorFault:
    """One injected allocator failure at an ``observe_block`` call index.

    ``at_block`` is 1-based over the faulty proxy's lifetime (i.e. the
    live stream, drain ticks included).  ``seconds`` is the simulated
    duration reported for ``kind="slow"``.
    """

    at_block: int
    kind: str = "raise"  # "raise" | "slow"
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.at_block < 1:
            raise ParameterError(
                f"allocator fault block index must be >= 1, got {self.at_block!r}"
            )
        if self.kind not in ("raise", "slow"):
            raise ParameterError(
                f"allocator fault kind must be 'raise' or 'slow', got {self.kind!r}"
            )
        if self.seconds < 0:
            raise ParameterError(
                f"simulated duration must be >= 0, got {self.seconds!r}"
            )


@dataclasses.dataclass(frozen=True)
class ShardStall:
    """Shard ``shard`` processes nothing for ticks [start, start+ticks)."""

    shard: int
    start_tick: int
    ticks: int

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ParameterError(f"stall shard must be >= 0, got {self.shard!r}")
        if self.start_tick < 0 or self.ticks < 1:
            raise ParameterError(
                f"stall window must satisfy start >= 0, ticks >= 1; got "
                f"start={self.start_tick!r} ticks={self.ticks!r}"
            )

    def covers(self, shard: int, tick: int) -> bool:
        return (
            shard == self.shard
            and self.start_tick <= tick < self.start_tick + self.ticks
        )


@dataclasses.dataclass(frozen=True)
class DeliveryFault:
    """Duplicate or malformed deliveries appended to one tick's block."""

    tick: int
    kind: str = "duplicate"  # "duplicate" | "malformed"
    count: int = 1

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise ParameterError(f"delivery tick must be >= 0, got {self.tick!r}")
        if self.kind not in ("duplicate", "malformed"):
            raise ParameterError(
                f"delivery fault kind must be 'duplicate' or 'malformed', "
                f"got {self.kind!r}"
            )
        if self.count < 1:
            raise ParameterError(f"delivery count must be >= 1, got {self.count!r}")


class MalformedDelivery:
    """A garbage object the delivery layer hands the network.

    Deliberately *not* a :class:`~repro.chain.types.Transaction` (one
    cannot be constructed with empty account sets): the network's
    validation must drop it with a counter, never crash on it and never
    show it to the allocator.
    """

    tx_id = "malformed"
    accounts: frozenset = frozenset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "MalformedDelivery()"


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A frozen schedule of faults; value-equal plans inject identically."""

    allocator_faults: Tuple[AllocatorFault, ...] = ()
    stalls: Tuple[ShardStall, ...] = ()
    delivery_faults: Tuple[DeliveryFault, ...] = ()
    #: Provenance only (the seed :meth:`seeded` derived the plan from).
    seed: Optional[int] = None

    @property
    def empty(self) -> bool:
        return not (self.allocator_faults or self.stalls or self.delivery_faults)

    def allocator_fault_at(self, call_index: int) -> Optional[AllocatorFault]:
        for fault in self.allocator_faults:
            if fault.at_block == call_index:
                return fault
        return None

    def stalled(self, shard: int, tick: int) -> bool:
        return any(stall.covers(shard, tick) for stall in self.stalls)

    def injected_deliveries(
        self, tick: int, block: Sequence[Transaction]
    ) -> List[object]:
        """Extra deliveries for this tick: duplicates of the block's own
        transactions (cycled in order) and/or malformed objects."""
        extras: List[object] = []
        for fault in self.delivery_faults:
            if fault.tick != tick:
                continue
            if fault.kind == "malformed":
                extras.extend(MalformedDelivery() for _ in range(fault.count))
            elif block:
                extras.extend(
                    block[i % len(block)] for i in range(fault.count)
                )
        return extras

    # ------------------------------------------------------------------
    @classmethod
    def standard(
        cls,
        tau2: int,
        *,
        burst: int = 3,
        stall_shard: int = 0,
        stall_start: int = 5,
        stall_ticks: int = 5,
    ) -> "FaultPlan":
        """The fixed plan of the resilience benchmark and acceptance tests.

        An allocator raise *burst* starting at the first τ₂ refresh of
        the live stream (``burst`` consecutive raises — enough to trip a
        default-threshold circuit breaker, not just a single retry) plus
        one ``stall_ticks``-tick stall of ``stall_shard``.
        """
        if tau2 < 1:
            raise ParameterError(f"tau2 must be >= 1, got {tau2!r}")
        faults = tuple(
            AllocatorFault(at_block=tau2 + i) for i in range(burst)
        )
        return cls(
            allocator_faults=faults,
            stalls=(ShardStall(stall_shard, stall_start, stall_ticks),),
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        ticks: int,
        k: int,
        max_raise_bursts: int = 2,
        max_burst: int = 4,
        max_stalls: int = 2,
        max_stall_ticks: int = 6,
        max_delivery_faults: int = 4,
    ) -> "FaultPlan":
        """A deterministic random plan over a ``ticks``-long run.

        All randomness happens here, at construction, from
        ``random.Random(seed)`` — two miners building the plan from the
        same seed inject byte-identical fault schedules.
        """
        if ticks < 1 or k < 1:
            raise ParameterError(
                f"seeded plan needs ticks >= 1 and k >= 1, got "
                f"ticks={ticks!r} k={k!r}"
            )
        rng = random.Random(seed)
        allocator_faults: List[AllocatorFault] = []
        for _ in range(rng.randint(0, max_raise_bursts)):
            start = rng.randint(1, ticks)
            for offset in range(rng.randint(1, max_burst)):
                allocator_faults.append(AllocatorFault(at_block=start + offset))
        if rng.random() < 0.5:
            allocator_faults.append(
                AllocatorFault(
                    at_block=rng.randint(1, ticks), kind="slow", seconds=1e9
                )
            )
        # Distinct call indices: two faults on one block would shadow
        # each other in allocator_fault_at.
        unique: Dict[int, AllocatorFault] = {}
        for fault in allocator_faults:
            unique.setdefault(fault.at_block, fault)
        stalls = tuple(
            ShardStall(
                shard=rng.randrange(k),
                start_tick=rng.randint(0, ticks - 1),
                ticks=rng.randint(1, max_stall_ticks),
            )
            for _ in range(rng.randint(0, max_stalls))
        )
        deliveries = tuple(
            DeliveryFault(
                tick=rng.randint(0, ticks - 1),
                kind=rng.choice(("duplicate", "malformed")),
                count=rng.randint(1, 3),
            )
            for _ in range(rng.randint(0, max_delivery_faults))
        )
        return cls(
            allocator_faults=tuple(
                sorted(unique.values(), key=lambda f: f.at_block)
            ),
            stalls=stalls,
            delivery_faults=deliveries,
            seed=seed,
        )


class FaultyAllocator(OnlineAllocator):
    """Delegating proxy that injects a plan's allocator faults.

    A ``"raise"`` fault fires *before* the wrapped allocator is called,
    modelling a crash at update time: the inner allocator never sees the
    block, so a supervisor's buffered replay is exact (no double
    ingest).  A ``"slow"`` fault lets the update run and then reports
    the simulated duration via :attr:`last_update_seconds`.
    """

    def __init__(self, inner: OnlineAllocator, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.params = inner.params
        self.name = f"faulty({inner.name})"
        self.calls = 0
        self.last_update_seconds: Optional[float] = None
        self.injected: Dict[str, int] = {"raise": 0, "slow": 0}

    def observe_block(self, transactions: Iterable[Sequence[Node]]):
        self.calls += 1
        self.last_update_seconds = None
        fault = self.plan.allocator_fault_at(self.calls)
        if fault is not None and fault.kind == "raise":
            self.injected["raise"] += 1
            raise AllocatorError(
                f"injected allocator fault at observe call {self.calls}"
            )
        event = self.inner.observe_block(transactions)
        if fault is not None and fault.kind == "slow":
            self.injected["slow"] += 1
            self.last_update_seconds = fault.seconds
        return event

    def shard_of(self, account: Node) -> int:
        return self.inner.shard_of(account)

    def mapping(self) -> Dict[Node, int]:
        return self.inner.mapping()

    @property
    def freeze_stats(self) -> Optional[Dict[str, int]]:
        return self.inner.freeze_stats

    def __getattr__(self, name: str):
        # Transparent stand-in for the wrapped allocator (warm_stats,
        # allocation, block_height, ...).  Only reached for attributes
        # this proxy does not define itself; guard against recursion
        # before __init__ has bound ``inner``.
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)


def with_faults(allocator: OnlineAllocator, plan: FaultPlan) -> OnlineAllocator:
    """Install ``plan``'s allocator faults at the right layer.

    A supervised allocator gets the faulty proxy *inside* its wrapper
    (the supervisor absorbs the injected failures); a bare allocator is
    wrapped directly, so the faults propagate to the caller — the
    unsupervised crash the robustness tests contrast against.  Plans
    with no allocator faults install nothing.
    """
    if not plan.allocator_faults:
        return allocator
    if isinstance(allocator, ResilientAllocator):
        allocator.inner = FaultyAllocator(allocator.inner, plan)
        return allocator
    return FaultyAllocator(allocator, plan)


def resolve_fault_plan(
    name: str, *, ticks: int, k: int, tau2: int
) -> Optional[FaultPlan]:
    """Resolve a matrix-spec fault-plan name to a :class:`FaultPlan`.

    The spec vocabulary: ``"none"`` (no plan), ``"standard"``
    (:meth:`FaultPlan.standard` at the run's ``tau2``), and
    ``"seeded:<int>"`` (:meth:`FaultPlan.seeded` over the run's
    ``ticks``/``k``).  Anything else raises :class:`ParameterError`.
    """
    if name == "none":
        return None
    if name == "standard":
        return FaultPlan.standard(tau2)
    if name.startswith("seeded:"):
        try:
            seed = int(name.split(":", 1)[1])
        except ValueError:
            raise ParameterError(
                f"bad seeded fault plan {name!r}; expected 'seeded:<int>'"
            ) from None
        return FaultPlan.seeded(seed, ticks=ticks, k=k)
    raise ParameterError(
        f"unknown fault plan {name!r}; expected 'none', 'standard' or 'seeded:<int>'"
    )


__all__ = [
    "AllocatorFault",
    "DeliveryFault",
    "FaultPlan",
    "FaultyAllocator",
    "MalformedDelivery",
    "ShardStall",
    "resolve_fault_plan",
    "with_faults",
]
