"""Tests for the live tick-driven network simulator."""

import pytest

from repro.baselines.hash_allocation import hash_partition, hash_shard
from repro.chain.live import LiveShardedNetwork
from repro.chain.types import Transaction
from repro.core.controller import TxAlloController
from repro.core.params import TxAlloParams
from repro.data.synthetic import EthereumWorkloadGenerator, WorkloadConfig


def tx(a, b):
    return Transaction.transfer(a, b)


def blocks_from(generator):
    return [list(block) for block in generator.blocks()]


class TestStaticRouting:
    def test_intra_commits_same_tick(self):
        params = TxAlloParams(k=2, eta=2.0, lam=10.0)
        net = LiveShardedNetwork(params, {"a": 0, "b": 0})
        stats = net.tick([tx("a", "b")])
        assert stats.committed == 1
        report = net.report()
        assert report.mean_latency == 1.0

    def test_cross_shard_needs_all_shards(self):
        params = TxAlloParams(k=2, eta=2.0, lam=10.0)
        net = LiveShardedNetwork(params, {"a": 0, "b": 1})
        stats = net.tick([tx("a", "b")])
        # Both shards processed their slice in the same tick.
        assert stats.committed == 1
        assert net.report().cross_shard_ratio == 1.0

    def test_cross_shard_latency_is_max_over_shards(self):
        params = TxAlloParams(k=2, eta=2.0, lam=2.0)
        net = LiveShardedNetwork(params, {"a": 0, "b": 1, "c": 1, "d": 1})
        # Pre-load shard 1 with 4 workload (two ticks' worth) so its
        # slice of the later cross-shard tx has to wait.
        net.tick([tx("b", "c"), tx("c", "d"), tx("b", "d"), tx("c", "b")])
        net.tick([tx("a", "b")])  # cross: shard 0 is idle, shard 1 queued
        report = net.run([], drain=True)
        assert report.committed == 5
        # The cross tx could not commit in its arrival tick.
        assert report.p99_latency >= 2

    def test_unknown_account_routes_by_hash_fallback(self):
        """Regression: accounts missing from a static mapping must route
        by the protocol's hash fallback, not to a hard-coded shard 0
        (which silently skewed every live run toward shard 0)."""
        params = TxAlloParams(k=4, eta=2.0, lam=100.0)
        net = LiveShardedNetwork(params, {})
        accounts = [f"acct-{i}" for i in range(32)]
        for a in accounts:
            assert net.allocator.shard_of(a) == hash_shard(a, params.k)
        pairs = list(zip(accounts[::2], accounts[1::2]))
        net.run([[tx(a, b) for a, b in pairs]], drain=True)
        busy = {i for i, s in enumerate(net.shards) if s.processed}
        assert len(busy) > 1, "hash fallback must spread unknown accounts"

    def test_backlog_accumulates_when_overloaded(self):
        params = TxAlloParams(k=2, eta=2.0, lam=1.0)
        net = LiveShardedNetwork(params, {"a": 0, "b": 0})
        stats = net.tick([tx("a", "b"), tx("a", "b"), tx("a", "b")])
        assert stats.committed == 1
        assert stats.backlog_workload == pytest.approx(2.0)

    def test_run_drains_backlog(self):
        params = TxAlloParams(k=2, eta=2.0, lam=1.0)
        net = LiveShardedNetwork(params, {"a": 0, "b": 0})
        report = net.run([[tx("a", "b")] * 5], drain=True)
        assert report.committed == 5
        assert report.arrived == 5

    def test_report_counts(self):
        params = TxAlloParams(k=2, eta=2.0, lam=100.0)
        mapping = {"a": 0, "b": 0, "c": 1}
        net = LiveShardedNetwork(params, mapping)
        report = net.run([[tx("a", "b"), tx("a", "c")]], drain=True)
        assert report.arrived == 2
        assert report.cross_shard_ratio == pytest.approx(0.5)


class TestControllerDriven:
    def make_controller(self, sets_, k=4, tau1=2, tau2=50, lam=None):
        if lam is None:
            lam = len(sets_) / k / 4
        params = TxAlloParams(
            k=k, eta=2.0, lam=lam, epsilon=1e-5 * len(sets_),
            tau1=tau1, tau2=tau2,
        )
        return params, TxAlloController(params, seed_transactions=sets_)

    def workload(self, seed=3):
        config = WorkloadConfig(
            num_accounts=400, num_transactions=3000, block_size=50, seed=seed
        )
        return EthereumWorkloadGenerator(config)

    def test_controller_network_runs_green(self):
        gen = self.workload()
        all_blocks = blocks_from(gen)
        seed_sets = [tuple(t.accounts) for b in all_blocks[:40] for t in b]
        params, controller = self.make_controller(seed_sets)
        net = LiveShardedNetwork(params, controller)
        report = net.run(all_blocks[40:], drain=True)
        assert report.committed == report.arrived
        controller.allocation.validate()

    def test_adaptive_updates_happen_during_run(self):
        gen = self.workload()
        all_blocks = blocks_from(gen)
        seed_sets = [tuple(t.accounts) for b in all_blocks[:40] for t in b]
        params, controller = self.make_controller(seed_sets, tau1=2)
        net = LiveShardedNetwork(params, controller)
        net.run(all_blocks[40:52], drain=False)
        kinds = [t.allocation_update for t in net.ticks]
        assert "adaptive" in kinds

    def test_controller_routes_unknown_account_with_neighbours(self):
        """Regression: an account awaiting its first A-TxAllo assignment
        is co-located with its assigned neighbourhood by the controller
        (not dumped on shard 0)."""
        gen = self.workload()
        all_blocks = blocks_from(gen)
        seed_sets = [tuple(t.accounts) for b in all_blocks[:40] for t in b]
        # Huge periods: no scheduled update runs during the test window.
        params, controller = self.make_controller(
            seed_sets, tau1=10_000, tau2=20_000
        )
        known = next(iter(controller.allocation.mapping()))
        net = LiveShardedNetwork(params, controller)
        net.tick([tx(known, "brand-new-account")])
        assert controller.allocation.shard_of_or_none("brand-new-account") is None
        assert (
            controller.shard_of("brand-new-account")
            == controller.allocation.shard_of(known)
        )

    def test_controller_unknown_isolated_account_uses_hash_fallback(self):
        params = TxAlloParams(k=4, eta=2.0, lam=10.0, tau1=100, tau2=200)
        controller = TxAlloController(params, seed_transactions=[("a", "b")])
        assert controller.shard_of("never-seen") == hash_shard("never-seen", 4)

    def test_txallo_beats_hash_on_committed_tps(self):
        """The paper's end-to-end claim, on the live system: with the
        same shards and capacity, TxAllo-steered routing commits more
        per tick than hash routing (less eta-priced cross traffic)."""
        gen = self.workload(seed=8)
        all_blocks = blocks_from(gen)
        seed_blocks, live_blocks = all_blocks[:40], all_blocks[40:]
        seed_sets = [tuple(t.accounts) for b in seed_blocks for t in b]
        # Tight capacity: ~30 workload units per shard per tick against
        # 50 arriving transactions — hash routing (eta on ~90% of
        # traffic) overloads, TxAllo routing does not.
        params, controller = self.make_controller(seed_sets, lam=30.0)

        txallo_net = LiveShardedNetwork(params, controller)
        txallo_report = txallo_net.run(live_blocks, drain=True)

        accounts = {a for b in all_blocks for t in b for a in t.accounts}
        hash_net = LiveShardedNetwork(params, hash_partition(accounts, params.k))
        hash_report = hash_net.run(live_blocks, drain=True)

        assert txallo_report.cross_shard_ratio < hash_report.cross_shard_ratio
        assert len(txallo_report.ticks) < len(hash_report.ticks), (
            "TxAllo should drain the same traffic in fewer block intervals"
        )
        assert txallo_report.mean_latency < hash_report.mean_latency
