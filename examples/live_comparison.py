#!/usr/bin/env python3
"""Every allocation method, one live network, one registry lookup.

The allocator registry (:mod:`repro.allocators`) is the single seam all
harnesses dispatch through — this example shows the whole loop in a few
lines:

1. list what is registered (``available()``), with each entry's kind;
2. build the live form of every method with ``get_online`` — the
   dynamic TxAllo controller, the online Shard Scheduler, and the static
   methods frozen over the same seed history;
3. drive each one through the tick-driven
   :class:`~repro.chain.live.LiveShardedNetwork` on identical traffic
   and print the committed-TPS / cross-shard / latency table (the
   deployed-setting counterpart of the paper's Figs. 5-7);
4. register a tiny custom allocator and show it runs through the exact
   same harness — adding a method is one registration, not a
   four-layer surgery.

Run with::

    python examples/live_comparison.py --k 4 --scale 0.1
"""

import argparse

from repro import allocators
from repro.core.allocator import FunctionAllocator
from repro.eval import experiments


def register_round_robin() -> str:
    """A deliberately naive custom allocator: index-order round robin."""
    name = "round_robin"
    if name not in allocators.available():
        allocators.register(
            name,
            lambda: FunctionAllocator(
                name,
                lambda graph, params: {
                    a: i % params.k
                    for i, a in enumerate(graph.nodes_sorted())
                },
            ),
            kind="static",
            description="index-order round robin (example)",
        )
    return name


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--eta", type=float, default=2.0)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument(
        "--methods", default=None,
        help="comma-separated registered allocator names "
             "(default: the paper's four plus the example's round robin)",
    )
    args = parser.parse_args()

    print("registered allocators:")
    for name in allocators.available():
        entry = allocators.get_entry(name)
        print(f"  {name:<16} [{entry.kind}] {entry.description}")

    custom = register_round_robin()
    if args.methods:
        methods = tuple(m.strip() for m in args.methods.split(",") if m.strip())
    else:
        methods = experiments.METHODS + (custom,)

    workload = experiments.build_workload(scale=args.scale, seed=args.seed)
    print(
        f"\nworkload: {workload.num_transactions} transactions over "
        f"{len(workload.blocks)} blocks; comparing {', '.join(methods)}\n"
    )

    comparison = experiments.live_compare(
        workload, k=args.k, eta=args.eta, methods=methods
    )
    print(comparison.render())

    txallo = comparison.reports.get("txallo")
    rr = comparison.reports.get(custom)
    if txallo is not None and rr is not None:
        print(
            f"\nTxAllo vs round robin: "
            f"{txallo.committed_per_tick:.1f} vs {rr.committed_per_tick:.1f} "
            "committed/tick — a registered allocator is instantly comparable ✔"
        )


if __name__ == "__main__":
    main()
