"""Plain-text reporting: fixed-width tables and ASCII charts.

The benchmark harness prints every figure of the paper as a table plus an
ASCII chart, so the reproduction is inspectable in a terminal and in CI
logs without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width table with a header separator.

    Floats are shown with three decimals; everything else via ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def ascii_line_chart(
    series: Dict[str, List[Tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Plot multiple (x, y) series on a shared-axis ASCII canvas.

    Each series gets a distinct marker; a legend is appended.  Intended
    for monotone sweep curves (the paper's Figs. 2-8), not for precision.
    """
    markers = "ox*+#@%&"
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(series.items()):
        mark = markers[idx % len(markers)]
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            canvas[row][col] = mark

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(canvas):
        label = y_hi if i == 0 else (y_lo if i == height - 1 else None)
        prefix = f"{label:10.3f} |" if label is not None else " " * 10 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "-" * width)
    lines.append(" " * 11 + f"{x_lo:<10.3g}{' ' * max(0, width - 20)}{x_hi:>10.3g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def ascii_bar_chart(
    values: Sequence[float],
    *,
    labels: Sequence[str] = (),
    width: int = 50,
    title: str = "",
    reference: float = None,
) -> str:
    """Horizontal bar chart; optionally marks a ``reference`` value.

    Used for the workload-distribution figure (Fig. 4), where the
    reference line is the normalised capacity 1.0.
    """
    if not values:
        return f"{title}\n(no data)"
    top = max(max(values), reference or 0.0) or 1.0
    lines = []
    if title:
        lines.append(title)
    ref_col = None
    if reference is not None:
        ref_col = int(reference / top * width)
    for i, value in enumerate(values):
        label = labels[i] if i < len(labels) else str(i)
        filled = int(value / top * width)
        bar = list("#" * filled + " " * (width - filled))
        if ref_col is not None and 0 <= ref_col < width and bar[ref_col] == " ":
            bar[ref_col] = "|"
        lines.append(f"{label:>8} {''.join(bar)} {value:.2f}")
    if reference is not None:
        lines.append(f"{'':>8} ('|' marks the capacity line at {reference:g})")
    return "\n".join(lines)
