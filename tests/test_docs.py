"""The documentation set must exist and its links must resolve —
the same check CI's docs job runs via tools/check_links.py."""

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _load_checker():
    path = REPO / "tools" / "check_links.py"
    spec = importlib.util.spec_from_file_location("check_links", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_documentation_set_exists():
    for name in ("README.md", "docs/backends.md", "docs/workloads.md"):
        assert (REPO / name).exists(), name


def test_committed_docs_have_no_broken_links(capsys):
    checker = _load_checker()
    assert checker.main([]) == 0
    assert "all links resolve" in capsys.readouterr().out


def test_checker_flags_broken_links(tmp_path, capsys):
    doc = tmp_path / "doc.md"
    doc.write_text("# Real\n[a](missing.md)\n[b](#nope)\n[c](#real)\n")
    checker = _load_checker()
    assert checker.main([str(doc)]) == 1
    err = capsys.readouterr().err
    assert "missing.md" in err
    assert "#nope" in err
    assert "#real" not in err


def test_checker_ignores_code_fences_and_external(tmp_path, capsys):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "[ext](https://example.com/x)\n"
        "```\n[fake](never.md)\n```\n"
    )
    checker = _load_checker()
    assert checker.main([str(doc)]) == 0


def test_readme_quickstart_commands_are_current():
    """The quickstart must reference real entry points: the pytest
    invocation, the CLI module, and the matrix subcommand."""
    text = (REPO / "README.md").read_text()
    assert "python -m pytest -x -q" in text
    assert "python -m repro matrix" in text
    assert "pip install -e .[dev]" in text
