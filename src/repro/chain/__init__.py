"""Sharded-blockchain substrate: chain primitives, shards and the simulator."""

from repro.chain.consensus import (
    ConsensusCost,
    consensus_cost,
    hotstuff_cost,
    max_faulty,
    pbft_cost,
    quorum_size,
)
from repro.chain.crossshard import CommitOutcome, CrossShardCoordinator, estimate_eta
from repro.chain.faults import (
    AllocatorFault,
    DeliveryFault,
    FaultPlan,
    FaultyAllocator,
    MalformedDelivery,
    ShardStall,
    with_faults,
)
from repro.chain.ledger import Ledger
from repro.chain.live import LiveReport, LiveShardedNetwork, TickStats
from repro.chain.mempool import Mempool
from repro.chain.migration import (
    DEFAULT_ACCOUNT_STATE_BYTES,
    AccountMove,
    MigrationPlan,
    migration_plan,
)
from repro.chain.network import NetworkModel
from repro.chain.reshuffle import MinerPool
from repro.chain.shard import ProcessedItem, ShardState, WorkItem
from repro.chain.simulator import (
    ShardedChainSimulator,
    SimulationReport,
    simulate_allocation,
)
from repro.chain.types import Address, Block, Transaction, address_from_int, is_address

__all__ = [
    "AccountMove",
    "Address",
    "AllocatorFault",
    "DEFAULT_ACCOUNT_STATE_BYTES",
    "DeliveryFault",
    "FaultPlan",
    "FaultyAllocator",
    "MalformedDelivery",
    "MigrationPlan",
    "ShardStall",
    "migration_plan",
    "with_faults",
    "Block",
    "CommitOutcome",
    "ConsensusCost",
    "CrossShardCoordinator",
    "Ledger",
    "LiveReport",
    "LiveShardedNetwork",
    "Mempool",
    "TickStats",
    "MinerPool",
    "NetworkModel",
    "ProcessedItem",
    "ShardState",
    "ShardedChainSimulator",
    "SimulationReport",
    "Transaction",
    "WorkItem",
    "address_from_int",
    "consensus_cost",
    "estimate_eta",
    "hotstuff_cost",
    "is_address",
    "max_faulty",
    "pbft_cost",
    "quorum_size",
    "simulate_allocation",
]
