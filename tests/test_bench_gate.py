"""CI gates on the committed benchmark run tables (ROADMAP's standing bars).

``benchmarks/BENCH_engine.json`` records the Fig. 8 evaluation-grid
speedup of the flat-array CSR engine over the reference implementation
(standing gate >= 3x); ``benchmarks/BENCH_louvain.json`` records the
turbo warm-started τ₂ refresh against the cold fast-backend refresh
(standing gates: >= 2x, objective within the pinned tolerance);
``benchmarks/BENCH_adaptive.json`` records the adaptive-workspace
Fig. 9 block-loop against the snapshot-per-run fast path (standing
gates: >= 1.3x end-to-end, byte-identical, workspace actually extends
across windows); ``benchmarks/BENCH_resilience.json`` records the
supervised TxAllo controller under the standard fault plan against the
fault-free baseline (standing gates: committed TPS retention >= 0.7,
circuit tripped and re-closed, no transaction lost);
``benchmarks/BENCH_parallel.json`` records the multi-core execution
layer — the process-parallel evaluation grid and the shard-parallel
A-TxAllo window sweeps (structural gates always: records byte-identical
across worker counts, mapping workers-independent, objective within the
registry tolerance, the batched path actually taken; the *speedup*
gates >= 2.5x grid / >= 1.5x windows apply only to a scale-2 row
recorded on a host with >= 4 cores — a 1-core recording keeps honest
~1x columns without failing).  These tests load
whichever run table is on disk — in
CI's perf job that is the file *regenerated on this very commit* — and
fail the suite on a regression.  Each skips cleanly when its file is
absent (fresh checkout without bench artifacts); regenerate with the
matching ``benchmarks/bench_*.py`` script.
"""

import json
import pathlib

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_PATH = BENCH_DIR / "BENCH_engine.json"
SCALE2_PATH = BENCH_DIR / "BENCH_engine.scale2.json"
LOUVAIN_PATH = BENCH_DIR / "BENCH_louvain.json"
ADAPTIVE_PATH = BENCH_DIR / "BENCH_adaptive.json"
RESILIENCE_PATH = BENCH_DIR / "BENCH_resilience.json"
PARALLEL_PATH = BENCH_DIR / "BENCH_parallel.json"
PARALLEL_SCALE2_PATH = BENCH_DIR / "BENCH_parallel.scale2.json"
MATRIX_PATH = BENCH_DIR / "BENCH_matrix.json"

GRID_SPEEDUP_GATE = 3.0
VECTOR_GRID_GATE = 3.0
VECTOR_COLD_GATE = 1.0
VECTOR_OBJECTIVE_TOLERANCE = 0.02
WARM_REFRESH_GATE = 2.0
ADAPTIVE_LOOP_GATE = 1.3
TPS_RETENTION_GATE = 0.7
PARALLEL_GRID_OVERHEAD_FLOOR = 0.8
PARALLEL_GRID_GATE = 2.5
PARALLEL_WINDOW_GATE = 1.5
PARALLEL_OBJECTIVE_TOLERANCE = 0.02
#: Speedup gates only bind when the recording host could express them.
PARALLEL_MIN_CPUS = 4


def _load_payload():
    if not BENCH_PATH.exists():
        pytest.skip(
            "benchmarks/BENCH_engine.json absent; run "
            "benchmarks/bench_engine_speedup.py to regenerate"
        )
    return json.loads(BENCH_PATH.read_text())


def _load_louvain():
    if not LOUVAIN_PATH.exists():
        pytest.skip(
            "benchmarks/BENCH_louvain.json absent; run "
            "benchmarks/bench_louvain_warm.py to regenerate"
        )
    return json.loads(LOUVAIN_PATH.read_text())


def test_engine_grid_speedup_gate():
    payload = _load_payload()
    assert payload["speedup"] >= GRID_SPEEDUP_GATE, (
        f"Fig. 8 grid speedup {payload['speedup']:.2f}x fell below the "
        f"{GRID_SPEEDUP_GATE}x ROADMAP gate; rerun "
        "benchmarks/bench_engine_speedup.py and investigate the regression"
    )


def test_engine_run_table_schema():
    payload = _load_payload()
    for key in (
        "scale",
        "grid_ks",
        "grid_etas",
        "ref_seconds",
        "fast_seconds",
        "vector_seconds",
        "vector_speedup",
        "vector_objective_ratio_min",
        "single_vector_cold_seconds",
    ):
        assert key in payload, key
    assert payload["fast_seconds"] > 0.0


def _load_scale2():
    if not SCALE2_PATH.exists():
        pytest.skip(
            "benchmarks/BENCH_engine.scale2.json absent; run "
            "benchmarks/bench_engine_speedup.py --scale 2 "
            "--out benchmarks/BENCH_engine.scale2.json to regenerate"
        )
    return json.loads(SCALE2_PATH.read_text())


def test_vector_scale2_grid_speedup_gate():
    """The numpy tier's reason to exist: >= 3x on the large-N grid."""
    payload = _load_scale2()
    if payload.get("vector_seconds") is None:
        pytest.skip("scale-2 run table was produced without numpy")
    assert payload["vector_speedup"] >= VECTOR_GRID_GATE, (
        f"vector grid speedup {payload['vector_speedup']:.2f}x at scale 2 fell "
        f"below the {VECTOR_GRID_GATE}x gate; rerun "
        "benchmarks/bench_engine_speedup.py --scale 2 and investigate"
    )


def test_vector_scale2_cold_single_gate():
    payload = _load_scale2()
    if payload.get("single_vector_cold_seconds") is None:
        pytest.skip("scale-2 run table was produced without numpy")
    assert payload["single_vector_cold_speedup"] >= VECTOR_COLD_GATE, (
        f"cold single vector g_txallo {payload['single_vector_cold_speedup']:.2f}x "
        f"vs reference fell below {VECTOR_COLD_GATE}x at scale 2"
    )


def test_vector_scale2_objective_within_tolerance():
    payload = _load_scale2()
    if payload.get("vector_objective_ratio_min") is None:
        pytest.skip("scale-2 run table was produced without numpy")
    assert payload["vector_objective_ratio_min"] >= 1.0 - VECTOR_OBJECTIVE_TOLERANCE, (
        f"vector objective ratio {payload['vector_objective_ratio_min']:.4f} "
        f"drifted more than {VECTOR_OBJECTIVE_TOLERANCE} below the fast backend"
    )


def test_warm_refresh_speedup_gate():
    payload = _load_louvain()
    assert payload["refresh_speedup"] >= WARM_REFRESH_GATE, (
        f"warm-started refresh speedup {payload['refresh_speedup']:.2f}x fell "
        f"below the {WARM_REFRESH_GATE}x gate; rerun "
        "benchmarks/bench_louvain_warm.py and investigate the regression"
    )


def test_warm_objective_within_tolerance():
    payload = _load_louvain()
    tolerance = payload["objective_tolerance"]
    assert payload["objective_ratio"] >= 1.0 - tolerance, (
        f"turbo objective ratio {payload['objective_ratio']:.4f} drifted more "
        f"than {tolerance} below the cold fast-backend objective"
    )
    assert payload["warm_stats"]["warm"] > 0, "run table recorded no warm refresh"


def _load_adaptive():
    if not ADAPTIVE_PATH.exists():
        pytest.skip(
            "benchmarks/BENCH_adaptive.json absent; run "
            "benchmarks/bench_adaptive.py to regenerate"
        )
    return json.loads(ADAPTIVE_PATH.read_text())


def test_adaptive_loop_speedup_gate():
    payload = _load_adaptive()
    assert payload["speedup"] >= ADAPTIVE_LOOP_GATE, (
        f"adaptive-workspace block-loop speedup {payload['speedup']:.2f}x fell "
        f"below the {ADAPTIVE_LOOP_GATE}x gate; rerun "
        "benchmarks/bench_adaptive.py and investigate the regression"
    )


def test_adaptive_loop_byte_identical_and_batched():
    payload = _load_adaptive()
    assert payload["byte_identical"] is True
    assert payload["workspace_stats"]["extends"] > 0, (
        "run table recorded no cross-window workspace extend"
    )


def test_adaptive_run_table_schema():
    payload = _load_adaptive()
    for key in (
        "scale",
        "base_loop_seconds",
        "workspace_loop_seconds",
        "speedup",
        "adaptive_base_ms",
        "adaptive_workspace_ms",
        "adaptive_speedup",
        "workspace_stats",
        "byte_identical",
    ):
        assert key in payload, key
    assert payload["workspace_loop_seconds"] > 0.0


def _load_resilience():
    if not RESILIENCE_PATH.exists():
        pytest.skip(
            "benchmarks/BENCH_resilience.json absent; run "
            "benchmarks/bench_resilience.py to regenerate"
        )
    return json.loads(RESILIENCE_PATH.read_text())


def test_resilience_tps_retention_gate():
    payload = _load_resilience()
    assert payload["tps_retention"] >= TPS_RETENTION_GATE, (
        f"committed TPS retention {payload['tps_retention']:.3f} under the "
        f"standard fault plan fell below the {TPS_RETENTION_GATE} gate; rerun "
        "benchmarks/bench_resilience.py and investigate the regression"
    )


def test_resilience_recovered():
    payload = _load_resilience()
    stats = payload["resilience_stats"]
    assert stats["trips"] >= 1, "run table recorded no circuit-breaker trip"
    assert stats["recoveries"] >= 1, "run table recorded no recovery"
    assert payload["circuit_state"] == "closed", (
        f"circuit ended the run {payload['circuit_state']!r}, not re-closed"
    )
    assert payload["faulted_committed"] == payload["baseline_committed"], (
        "faulted run lost transactions relative to the fault-free baseline"
    )


def test_resilience_run_table_schema():
    payload = _load_resilience()
    for key in (
        "scale",
        "baseline_committed",
        "baseline_tps",
        "faulted_committed",
        "faulted_tps",
        "tps_retention",
        "recovery_blocks",
        "degraded_ticks",
        "failovers",
        "circuit_state",
        "resilience_stats",
    ):
        assert key in payload, key
    assert payload["baseline_tps"] > 0.0


def _load_parallel(path=PARALLEL_PATH):
    if not path.exists():
        pytest.skip(
            f"benchmarks/{path.name} absent; run "
            "benchmarks/bench_parallel.py to regenerate"
        )
    return json.loads(path.read_text())


def test_parallel_grid_records_identical():
    """workers=N must change wall-clock only — never the records."""
    payload = _load_parallel()
    assert payload["grid_records_identical"] is True, (
        "parallel evaluation grid produced different records across worker "
        "counts; the process-pool fan-out broke determinism"
    )


def test_parallel_grid_overhead_floor():
    """Fan-out may not *lose* the grid, even on a single core."""
    payload = _load_parallel()
    w4 = payload.get("grid_speedup_w4")
    if w4 is None:
        pytest.skip("run table recorded no 4-worker grid timing")
    assert w4 >= PARALLEL_GRID_OVERHEAD_FLOOR, (
        f"parallel grid at 4 workers ran {w4:.2f}x vs workers=1 — pool "
        f"overhead exceeded the {PARALLEL_GRID_OVERHEAD_FLOOR}x floor"
    )


def test_parallel_window_objective_and_independence():
    payload = _load_parallel()
    ratio = payload.get("window_objective_ratio_min")
    if ratio is None:
        pytest.skip("run table was produced without numpy")
    assert ratio >= 1.0 - PARALLEL_OBJECTIVE_TOLERANCE, (
        f"shard-parallel objective ratio {ratio:.4f} drifted more than "
        f"{PARALLEL_OBJECTIVE_TOLERANCE} below the vector baseline"
    )
    assert payload["window_workers_independent"] is True, (
        "shard-parallel final mapping depends on the worker count"
    )
    assert payload["window_batched_runs"], (
        "no window ever took the batched shard-parallel path; the bench "
        "scenario no longer exercises the kernel it exists to gate"
    )


def test_parallel_run_table_schema():
    payload = _load_parallel()
    for key in (
        "scale",
        "cpu_count",
        "fork_available",
        "blas_pinned",
        "grid_seconds",
        "grid_speedup_w4",
        "grid_records_identical",
        "window_speedup_w4",
        "window_objective_ratio_min",
        "window_workers_independent",
        "window_batched_runs",
    ):
        assert key in payload, key
    assert payload["blas_pinned"] is True
    assert payload["grid_seconds"]["1"] > 0.0


def test_parallel_scale2_structural_gates():
    """The committed large-N row holds the same structural contract."""
    payload = _load_parallel(PARALLEL_SCALE2_PATH)
    assert payload["scale"] >= 2.0
    assert payload["grid_records_identical"] is True
    ratio = payload.get("window_objective_ratio_min")
    if ratio is not None:
        assert ratio >= 1.0 - PARALLEL_OBJECTIVE_TOLERANCE, (
            f"scale-2 shard-parallel objective ratio {ratio:.4f} out of tolerance"
        )
        assert payload["window_workers_independent"] is True
        assert payload["window_batched_runs"]


def test_parallel_scale2_speedup_gates():
    """Multi-core speedups, enforced only where cores existed to use.

    A 1-core recording host cannot exhibit a multi-core speedup; the row
    still documents honest ~1x columns and the structural gates above.
    """
    payload = _load_parallel(PARALLEL_SCALE2_PATH)
    cpus = payload.get("cpu_count") or 1
    if cpus < PARALLEL_MIN_CPUS:
        pytest.skip(
            f"scale-2 row recorded on a {cpus}-core host; the multi-core "
            f"speedup gates need >= {PARALLEL_MIN_CPUS} cores"
        )
    w4 = payload["grid_speedup_w4"]
    assert w4 >= PARALLEL_GRID_GATE, (
        f"parallel grid speedup {w4:.2f}x at scale 2 fell below the "
        f"{PARALLEL_GRID_GATE}x gate"
    )
    ws = payload.get("window_speedup_w4")
    if ws is not None:
        assert ws >= PARALLEL_WINDOW_GATE, (
            f"shard-parallel window speedup {ws:.2f}x at scale 2 fell below "
            f"the {PARALLEL_WINDOW_GATE}x gate"
        )


def _load_matrix():
    if not MATRIX_PATH.exists():
        pytest.skip(
            "benchmarks/BENCH_matrix.json absent; run "
            "benchmarks/bench_matrix.py to regenerate"
        )
    return json.loads(MATRIX_PATH.read_text())


def test_matrix_all_cells_complete():
    payload = _load_matrix()
    assert payload["all_cells_complete"] is True, (
        f"scenario matrix completed {payload['cells']}/"
        f"{payload['expected_cells']} cells (or a cell failed to drain); "
        "rerun benchmarks/bench_matrix.py and investigate"
    )
    assert payload["cells"] == payload["expected_cells"]


def test_matrix_deterministic():
    """Same spec, same rows — modulo the runtime columns — and the
    fork-pool fan-out may never change a result, only wall-clock."""
    payload = _load_matrix()
    assert payload["deterministic"] is True, (
        "re-running the matrix spec changed non-runtime run-table columns"
    )
    assert payload["workers_identical"] is True, (
        "pool-run matrix rows differ from the sequential rows"
    )


def test_matrix_txallo_beats_hash():
    payload = _load_matrix()
    assert payload["txallo_beats_hash"] is True, (
        f"txallo committed TPS {payload['txallo_tps_ethereum']:.2f} fell "
        f"below hash {payload['hash_tps_ethereum']:.2f} on the "
        "planted-community workload; rerun benchmarks/bench_matrix.py"
    )


def test_matrix_run_table_schema():
    payload = _load_matrix()
    for key in (
        "scale",
        "grid_scale",
        "spec",
        "cells",
        "expected_cells",
        "all_cells_complete",
        "deterministic",
        "workers_identical",
        "txallo_tps_ethereum",
        "hash_tps_ethereum",
        "txallo_beats_hash",
        "matrix_seconds",
        "rows",
    ):
        assert key in payload, key
    assert payload["matrix_seconds"] > 0.0
    assert len(payload["rows"]) == payload["cells"]


def test_louvain_run_table_schema():
    payload = _load_louvain()
    for key in (
        "scale",
        "cold_refresh_seconds",
        "warm_refresh_seconds",
        "refresh_speedup",
        "objective_ratio",
        "objective_tolerance",
        "warm_stats",
        "cross_shard_fast",
        "cross_shard_turbo",
    ):
        assert key in payload, key
    assert payload["warm_refresh_seconds"] > 0.0
