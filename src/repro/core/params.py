"""Hyperparameters of the TxAllo allocation scheme (paper Section V-A).

The paper exposes six hyperparameters:

* ``k``      — number of shards.
* ``eta``    — workload of processing a cross-shard transaction, relative to
  the unit workload of an intra-shard transaction (``eta > 1`` normally).
* ``lam``    — per-shard processing capacity ``λ``.  The paper's evaluation
  sets ``λ = |T| / k`` so the ideal all-intra allocation saturates the
  system exactly; :func:`TxAlloParams.with_capacity_for` applies that rule.
* ``epsilon``— convergence threshold ``ε`` for the optimisation sweeps.  The
  evaluation uses ``ε = 1e-5 * |T|``.
* ``tau1``   — adaptive (A-TxAllo) update period, in blocks.
* ``tau2``   — global (G-TxAllo) update period, in blocks (``tau1 < tau2``).

Two implementation knobs ride along:

* ``workers`` — how many cores the workers-aware execution paths may
  use (the ``"parallel"`` backend's shard-parallel A-TxAllo sweeps; the
  evaluation grid takes its own ``workers`` argument since it is a
  harness concern, not an allocation parameter).  Semantically inert:
  every backend produces the identical allocation for any ``workers``
  value — the knob trades wall-clock only, and tiers that are not
  ``workers_aware`` ignore it outright.
* ``backend`` — any tier registered in the engine-backend registry
  (:mod:`repro.core.backends`).  ``"fast"`` (default) runs the
  allocators on the flat-array sweep engine over the frozen CSR graph
  (:mod:`repro.core.engine`); ``"reference"`` runs the dict-based
  executable specification — the two produce byte-identical allocations
  (pinned by the engine parity tests), so the switch only trades speed
  for readability/debuggability.  ``"turbo"`` (warm-started Louvain +
  work-skipping sweeps) and ``"vector"`` (numpy segment-op kernels,
  falls back to ``"fast"`` when numpy is not installed) may produce a
  *different* (still deterministic) allocation, whose TxAllo objective
  is gated within :data:`repro.core.engine.WARM_OBJECTIVE_TOLERANCE`
  of the fast/reference result — see :mod:`repro.core.engine` for the
  exact contract.
"""

from __future__ import annotations

import dataclasses
import math

from repro.core import backends as _backends
from repro.errors import ParameterError

#: Relative convergence threshold used by the paper: ``ε = 1e-5 * |T|``.
EPSILON_RATIO = 1e-5


def __getattr__(name: str):
    # BACKENDS is derived from the engine-backend registry so a
    # register_backend() call (a fourth tier, a test dummy) is
    # immediately a valid ``TxAlloParams.backend`` value.  Computed on
    # attribute access rather than frozen at import time; note that
    # ``from repro.core.params import BACKENDS`` still snapshots —
    # prefer ``repro.core.backends.names()`` in new code.
    if name == "BACKENDS":
        return _backends.names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclasses.dataclass(frozen=True)
class TxAlloParams:
    """Immutable bundle of TxAllo hyperparameters.

    Instances validate themselves on construction, so any
    :class:`TxAlloParams` that exists is internally consistent.

    >>> TxAlloParams(k=4, eta=2.0, lam=100.0).k
    4
    """

    k: int
    eta: float = 2.0
    lam: float = math.inf
    epsilon: float = 1e-9
    tau1: int = 300
    tau2: int = 6000
    backend: str = "fast"
    workers: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.k, int) or self.k < 1:
            raise ParameterError(f"number of shards k must be a positive int, got {self.k!r}")
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ParameterError(
                f"worker count workers must be a positive int, got {self.workers!r}"
            )
        if not self.eta >= 1.0:
            raise ParameterError(f"cross-shard workload eta must be >= 1, got {self.eta!r}")
        if not self.lam > 0:
            raise ParameterError(f"shard capacity lam must be positive, got {self.lam!r}")
        if not self.epsilon >= 0:
            raise ParameterError(
                f"convergence threshold epsilon must be >= 0, got {self.epsilon!r}"
            )
        if self.tau1 < 1 or self.tau2 < 1:
            raise ParameterError(
                f"update periods must be positive, got tau1={self.tau1!r} tau2={self.tau2!r}"
            )
        if self.tau1 > self.tau2:
            raise ParameterError(
                f"adaptive period tau1 ({self.tau1}) must not exceed "
                f"global period tau2 ({self.tau2})"
            )
        # Registry lookup raises the canonical "unknown backend ...,
        # available: [...]" ParameterError; availability is *not*
        # checked here — a params object naming an optional tier stays
        # valid, and dispatch resolves the fallback.
        _backends.get_backend(self.backend)

    @classmethod
    def with_capacity_for(
        cls,
        num_transactions: int,
        k: int,
        eta: float = 2.0,
        tau1: int = 300,
        tau2: int = 6000,
        backend: str = "fast",
        workers: int = 1,
    ) -> "TxAlloParams":
        """Build parameters using the paper's evaluation conventions.

        Sets ``λ = |T| / k`` and ``ε = 1e-5 * |T|`` (Section VI-B1).
        """
        if num_transactions < 1:
            raise ParameterError(
                f"num_transactions must be positive, got {num_transactions!r}"
            )
        return cls(
            k=k,
            eta=eta,
            lam=num_transactions / k,
            epsilon=EPSILON_RATIO * num_transactions,
            tau1=tau1,
            tau2=tau2,
            backend=backend,
            workers=workers,
        )

    def replace(self, **changes) -> "TxAlloParams":
        """Return a copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes)

    @property
    def shard_ids(self) -> range:
        """The valid shard identifiers ``0 .. k-1``."""
        return range(self.k)
