"""Engine speedup run-table: reference vs flat-array vs numpy ``g_txallo``.

Times the *paper's evaluation pattern* — the Fig. 8 running-time grid,
i.e. ``g_txallo`` end-to-end for every ``(k, eta)`` cell over one shared
workload — on the reference, fast and (when numpy is importable) vector
backends, asserts byte-identical outputs between reference and fast cell
by cell, checks the vector objective against the registry tolerance, and
writes ``BENCH_engine.json`` next to this file so subsequent PRs have a
perf trajectory to gate against:

``{"scale", "n_nodes", "n_edges", "ref_seconds", "fast_seconds",
"speedup", "vector_seconds", "vector_speedup",
"vector_objective_ratio_min", ...}``

``ref_seconds`` / ``fast_seconds`` / ``vector_seconds`` are the grid
totals (the non-reference backends legitimately amortise one freeze +
one memoised Louvain partition across the grid, exactly as
``experiments.sweep`` does); ``single_*`` fields record one cold/warm
``k=20`` call for the pessimistic view.  The ``vector_*`` columns are
``None`` when numpy is absent so the schema stays stable across both CI
legs.

Scale knob: ``--scale`` / the ``BENCH_SCALE`` env crank the workload
(CI pins 0.5 for runner budget; ``benchmarks/run_table.py
--local-scale 2`` regenerates a non-toy row locally, and
``--scale 2 --out BENCH_engine.scale2.json`` produces the committed
large-N row that ``tests/test_bench_gate.py`` holds to the >= 3x
vector-grid gate).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

try:  # script mode from a clean checkout: resolve the src layout
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.parallel import pin_blas_threads

# Explicit thread ownership for honest timings: pin the BLAS/OpenMP
# knobs before any repro import can pull numpy in (the multi-core
# layer owns its parallelism -- see repro.core.parallel).
pin_blas_threads()

from repro.core import backends
from repro.core.gtxallo import g_txallo
from repro.core.params import TxAlloParams
from repro.eval import experiments

BENCH_SCALE = float(os.environ.get("BENCH_SCALE", "0.5"))

#: The Fig. 8 grid as the rest of the benchmark suite runs it
#: (``conftest.BENCH_KS`` x ``conftest.BENCH_ETAS``).
GRID_KS = (2, 10, 20, 40, 60)
GRID_ETAS = (2.0, 6.0, 10.0)

OUT_PATH = Path(__file__).resolve().parent / "BENCH_engine.json"


def _run_grid(workload, backend):
    total = 0.0
    results = {}
    for eta in GRID_ETAS:
        for k in GRID_KS:
            params = TxAlloParams.with_capacity_for(
                workload.num_transactions, k=k, eta=eta, backend=backend
            )
            t0 = time.perf_counter()
            result = g_txallo(workload.graph, params)
            total += time.perf_counter() - t0
            results[(k, eta)] = result
    return total, results


def run_bench(scale: float = BENCH_SCALE, out_path: Path = OUT_PATH) -> dict:
    # Fresh workloads per backend so neither run can warm the other's
    # graph-level caches.
    wl_ref = experiments.build_workload(scale=scale, seed=2022)
    wl_fast = experiments.build_workload(scale=scale, seed=2022)

    ref_seconds, ref_results = _run_grid(wl_ref, "reference")
    fast_seconds, fast_results = _run_grid(wl_fast, "fast")

    # Parity across the whole grid — same mapping, caches and counters.
    for cell, ref in ref_results.items():
        fast = fast_results[cell]
        assert ref.allocation.mapping() == fast.allocation.mapping(), cell
        assert ref.allocation.sigma == fast.allocation.sigma, cell
        assert ref.allocation.lam_hat == fast.allocation.lam_hat, cell
        assert (ref.sweeps, ref.moves, ref.small_nodes_absorbed) == (
            fast.sweeps,
            fast.moves,
            fast.small_nodes_absorbed,
        ), cell

    # The numpy tier runs the same grid on its own fresh workload and is
    # held to the registry's objective tolerance cell by cell instead of
    # byte parity (the synchronous batched sweeps land on a different
    # local optimum).  When numpy is absent the columns stay None so the
    # payload schema is identical on the no-numpy CI leg.
    vector_seconds = None
    vector_ratio_min = None
    single_vec_cold = None
    vector_available = backends.get_backend("vector").available()
    if vector_available:
        wl_vec = experiments.build_workload(scale=scale, seed=2022)
        vector_seconds, vec_results = _run_grid(wl_vec, "vector")
        vector_ratio_min = min(
            vec_results[cell].allocation.total_throughput()
            / fast.allocation.total_throughput()
            for cell, fast in fast_results.items()
            if fast.allocation.total_throughput() > 0
        )
        tolerance = backends.get_backend("vector").tolerance
        assert vector_ratio_min >= 1.0 - tolerance, (
            f"vector objective ratio {vector_ratio_min:.4f} outside tolerance"
        )

    # One extra cold + warm single call at the paper's headline setting.
    wl_single = experiments.build_workload(scale=scale, seed=2022)
    params = TxAlloParams.with_capacity_for(
        wl_single.num_transactions, k=20, eta=2.0, backend="fast"
    )
    t0 = time.perf_counter()
    g_txallo(wl_single.graph, params)
    single_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    g_txallo(wl_single.graph, params)
    single_warm = time.perf_counter() - t0
    t0 = time.perf_counter()
    g_txallo(wl_ref.graph, params, backend="reference")
    single_ref = time.perf_counter() - t0
    if vector_available:
        wl_single_vec = experiments.build_workload(scale=scale, seed=2022)
        t0 = time.perf_counter()
        g_txallo(wl_single_vec.graph, params, backend="vector")
        single_vec_cold = time.perf_counter() - t0

    speedup = ref_seconds / fast_seconds if fast_seconds > 0 else float("inf")
    payload = {
        "scale": scale,
        "n_nodes": wl_ref.graph.num_nodes,
        "n_edges": wl_ref.graph.num_edges,
        "n_transactions": wl_ref.num_transactions,
        "grid_ks": list(GRID_KS),
        "grid_etas": list(GRID_ETAS),
        "ref_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "speedup": speedup,
        "vector_seconds": vector_seconds,
        "vector_speedup": (
            ref_seconds / vector_seconds if vector_seconds else None
        ),
        "vector_objective_ratio_min": vector_ratio_min,
        "single_ref_seconds": single_ref,
        "single_cold_seconds": single_cold,
        "single_warm_seconds": single_warm,
        "single_cold_speedup": single_ref / single_cold if single_cold > 0 else None,
        "single_warm_speedup": single_ref / single_warm if single_warm > 0 else None,
        "single_vector_cold_seconds": single_vec_cold,
        "single_vector_cold_speedup": (
            single_ref / single_vec_cold if single_vec_cold else None
        ),
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"== engine speedup (scale={scale}) ==")
    for key, value in payload.items():
        print(f"  {key}: {value}")
    return payload


def check_gates(payload: dict) -> list:
    """Return the list of failed gate descriptions (empty = all green)."""
    failures = []
    # The standing ROADMAP gate: >= 3x end-to-end on the evaluation grid
    # at the default BENCH_SCALE=0.5 (small margin for timer noise).
    speedup = payload["speedup"]
    if speedup < 3.0:
        failures.append(f"engine speedup regressed: {speedup:.2f}x < 3x")
    # The numpy tier's contract, enforced only when it actually ran: the
    # grid beats the reference backend (>= 3x at scale >= 1 where the
    # batched numpy path runs; >= 2.5x at the small CI scale, where the
    # tier delegates to the flat engine below MIN_VECTOR_NODES and the
    # fast gate above already polices the real work — the slack only
    # absorbs runner timing noise on the delegation dispatch), a cold
    # single call never loses to reference, and every cell's objective
    # stays within the registry tolerance of the fast backend.
    if payload.get("vector_seconds") is not None:
        vector_gate = 3.0 if payload["scale"] >= 1.0 else 2.5
        vec_speedup = payload["vector_speedup"]
        if vec_speedup < vector_gate:
            failures.append(
                f"vector grid speedup regressed: {vec_speedup:.2f}x < {vector_gate}x"
            )
        vec_cold = payload["single_vector_cold_speedup"]
        if vec_cold is not None and vec_cold < 1.0:
            failures.append(f"vector cold single slower than reference: {vec_cold:.2f}x")
        ratio = payload["vector_objective_ratio_min"]
        if ratio < 1.0 - backends.OBJECTIVE_TOLERANCE:
            failures.append(f"vector objective ratio out of tolerance: {ratio:.4f}")
    return failures


def test_engine_speedup_run_table(bench_scale):
    payload = run_bench(scale=bench_scale)
    failures = check_gates(payload)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=BENCH_SCALE,
        help="workload scale factor (default: BENCH_SCALE env or 0.5)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUT_PATH,
        help=f"output run-table path (default {OUT_PATH.name} next to this file)",
    )
    args = parser.parse_args()
    result = run_bench(scale=args.scale, out_path=args.out)
    problems = check_gates(result)
    for problem in problems:
        print(f"GATE FAILED: {problem}", file=sys.stderr)
    sys.exit(1 if problems else 0)
