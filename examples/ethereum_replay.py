#!/usr/bin/env python3
"""Replay an Ethereum-like workload and compare all four allocators.

This is the paper's core experiment (Figs. 2-5) as a script: build the
transaction graph from a (synthetic or real) Ethereum history, allocate
with TxAllo / hash / METIS-style / Shard Scheduler, and print the
Section III-B metrics side by side.

To run on real data, export transactions with ethereum-etl and pass the
CSV path::

    python examples/ethereum_replay.py --csv transactions.csv --k 20
    python examples/ethereum_replay.py --scale 0.5 --k 60 --eta 4
"""

import argparse

from repro import TransactionGraph, TxAlloParams, evaluate_allocation, g_txallo
from repro.baselines import hash_partition, metis_partition, shard_scheduler_partition
from repro.core.metrics import average_latency, workload_balance, worst_case_latency
from repro.data import (
    EthereumWorkloadGenerator,
    WorkloadConfig,
    account_sets,
    load_transactions_csv,
)
from repro.eval.reporting import format_table
from repro.eval.timing import time_call


def load_workload(args):
    if args.csv:
        rows = load_transactions_csv(args.csv)
        transactions = [tx for _, tx in rows]
        print(f"loaded {len(transactions)} transactions from {args.csv}")
        return account_sets(transactions)
    config = WorkloadConfig(
        num_accounts=int(10_000 * args.scale),
        num_transactions=int(60_000 * args.scale),
        seed=args.seed,
    )
    generator = EthereumWorkloadGenerator(config)
    sets_ = account_sets(generator.generate())
    card = generator.dataset_card()
    print(
        f"synthetic workload: {card.num_transactions} txs, "
        f"{card.num_accounts} accounts, hub share {card.top_account_share:.1%}"
    )
    return sets_


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--csv", help="ethereum-etl transactions CSV (optional)")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--k", type=int, default=20)
    parser.add_argument("--eta", type=float, default=2.0)
    args = parser.parse_args()

    sets_ = load_workload(args)
    graph = TransactionGraph()
    for s in sets_:
        graph.add_transaction(s)
    params = TxAlloParams.with_capacity_for(len(sets_), k=args.k, eta=args.eta)

    rows = []

    result, seconds = time_call(g_txallo, graph, params)
    report = evaluate_allocation(sets_, result.allocation, params)
    rows.append(("TxAllo (ours)", report.cross_shard_ratio, report.workload_balance,
                 report.normalized_throughput, report.average_latency,
                 report.worst_case_latency, seconds))

    mapping, seconds = time_call(hash_partition, graph.nodes_sorted(), args.k)
    report = evaluate_allocation(sets_, mapping, params)
    rows.append(("hash/random", report.cross_shard_ratio, report.workload_balance,
                 report.normalized_throughput, report.average_latency,
                 report.worst_case_latency, seconds))

    metis, seconds = time_call(metis_partition, graph, args.k)
    report = evaluate_allocation(sets_, metis.mapping, params)
    rows.append(("METIS-style", report.cross_shard_ratio, report.workload_balance,
                 report.normalized_throughput, report.average_latency,
                 report.worst_case_latency, seconds))

    sched, seconds = time_call(shard_scheduler_partition, sets_, params)
    rows.append((
        "Shard Scheduler",
        sched.cross_shard_ratio,
        workload_balance(sched.shard_loads, params.lam),
        sched.throughput(params.lam) / params.lam,
        average_latency(sched.shard_loads, params.lam),
        worst_case_latency(sched.shard_loads, params.lam),
        seconds,
    ))

    print()
    print(format_table(
        ["method", "gamma", "rho", "thpt (x)", "latency", "worst", "seconds"],
        rows,
    ))
    print("\nExpected shape (paper Figs. 2-7): TxAllo has the lowest gamma,")
    print("the highest throughput and the lowest average latency; Shard")
    print("Scheduler has the flattest workloads and best worst-case latency.")


if __name__ == "__main__":
    main()
