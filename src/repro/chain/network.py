"""A deterministic message-latency model for the shard simulator.

Intra-shard links are fast (miners gossip within their committee);
cross-shard messages traverse the wider peer-to-peer network and are
slower.  Jitter is derived from a seeded hash of the endpoints so that two
simulator runs see identical delays — determinism end to end.
"""

from __future__ import annotations

import hashlib

from repro.errors import ParameterError


class NetworkModel:
    """Pairwise shard-to-shard latency with deterministic jitter."""

    def __init__(
        self,
        intra_shard_delay: float = 0.02,
        cross_shard_delay: float = 0.10,
        jitter_fraction: float = 0.2,
        seed: int = 0,
    ) -> None:
        if intra_shard_delay < 0 or cross_shard_delay < 0:
            raise ParameterError("delays must be non-negative")
        if not 0.0 <= jitter_fraction < 1.0:
            raise ParameterError(
                f"jitter_fraction must be in [0, 1), got {jitter_fraction!r}"
            )
        self.intra_shard_delay = intra_shard_delay
        self.cross_shard_delay = cross_shard_delay
        self.jitter_fraction = jitter_fraction
        self.seed = seed

    def _jitter(self, src: int, dst: int) -> float:
        """Deterministic multiplier in [1 - j, 1 + j] for the (src,dst) pair."""
        data = f"{self.seed}:{src}:{dst}".encode()
        raw = int.from_bytes(hashlib.sha256(data).digest()[:8], "big")
        unit = raw / float(1 << 64)  # [0, 1)
        return 1.0 + self.jitter_fraction * (2.0 * unit - 1.0)

    def delay(self, src_shard: int, dst_shard: int) -> float:
        """One-way message delay between two shards, in seconds."""
        base = self.intra_shard_delay if src_shard == dst_shard else self.cross_shard_delay
        return base * self._jitter(src_shard, dst_shard)

    def broadcast_delay(self, src_shard: int, dst_shards) -> float:
        """Time until the slowest destination has the message."""
        dsts = list(dst_shards)
        if not dsts:
            return 0.0
        return max(self.delay(src_shard, d) for d in dsts)
