"""Cross-cutting property-based tests (hypothesis).

These encode the model-level invariants that must hold for *any* input,
tying together graph, allocation, metrics and algorithms:

* conservation — total throughput never exceeds total workload demand or
  total capacity; γ ∈ [0, 1]; latencies ≥ 1;
* optimisation safety — G-TxAllo never returns an allocation worse than
  its initialisation, for arbitrary workloads and hyperparameters;
* model consistency — the graph-level σ of an all-pairwise workload
  equals the transaction-level σ;
* determinism — any deterministic allocator is a pure function of its
  input.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.hash_allocation import hash_partition
from repro.core.allocation import Allocation
from repro.core.graph import TransactionGraph
from repro.core.gtxallo import g_txallo
from repro.core.metrics import evaluate_allocation
from repro.core.params import TxAlloParams

# Strategy: a small random workload of 1-4 account transactions.
accounts_strategy = st.integers(0, 24).map(lambda i: f"a{i:02d}")
tx_strategy = st.lists(accounts_strategy, min_size=1, max_size=4).map(
    lambda accs: tuple(sorted(set(accs)))
)
workload_strategy = st.lists(tx_strategy, min_size=3, max_size=80)


def graph_of(workload):
    graph = TransactionGraph()
    for accounts in workload:
        graph.add_transaction(accounts)
    return graph


class TestConservationLaws:
    @given(workload=workload_strategy, k=st.integers(1, 6),
           eta=st.floats(1.0, 8.0))
    @settings(max_examples=60, deadline=None)
    def test_throughput_bounded_by_demand_and_capacity(self, workload, k, eta):
        params = TxAlloParams.with_capacity_for(len(workload), k=k, eta=eta)
        mapping = hash_partition({a for tx in workload for a in tx}, k)
        report = evaluate_allocation(workload, mapping, params)
        assert report.throughput <= len(workload) + 1e-9          # demand
        assert report.throughput <= params.lam * k + 1e-9         # capacity
        assert 0.0 <= report.cross_shard_ratio <= 1.0
        assert report.average_latency >= 1.0
        assert report.worst_case_latency >= 1.0

    @given(workload=workload_strategy, k=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_uncapped_throughput_equals_demand_when_all_intra(self, workload, k):
        """Putting everything in one shard with infinite capacity
        processes every transaction fully."""
        params = TxAlloParams(k=k, eta=2.0)  # lam = inf
        mapping = {a: 0 for tx in workload for a in tx}
        report = evaluate_allocation(workload, mapping, params)
        assert report.throughput == pytest.approx(len(workload))
        assert report.cross_shard_ratio == 0.0

    @given(workload=workload_strategy, eta=st.floats(1.0, 8.0))
    @settings(max_examples=40, deadline=None)
    def test_workload_grows_with_eta(self, workload, eta):
        """Raising eta can only increase every shard's workload."""
        k = 3
        mapping = hash_partition({a for tx in workload for a in tx}, k)
        low = evaluate_allocation(
            workload, mapping, TxAlloParams(k=k, eta=1.0, lam=1e9)
        )
        high = evaluate_allocation(
            workload, mapping, TxAlloParams(k=k, eta=eta, lam=1e9)
        )
        for s_low, s_high in zip(low.shard_workloads, high.shard_workloads):
            assert s_high >= s_low - 1e-9


class TestOptimisationSafety:
    @given(
        workload=workload_strategy,
        k=st.integers(1, 5),
        eta=st.floats(1.0, 6.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_gtxallo_never_worse_than_hash_init(self, workload, k, eta):
        graph = graph_of(workload)
        params = TxAlloParams.with_capacity_for(len(workload), k=k, eta=eta)
        init = hash_partition(graph.nodes_sorted(), k)
        baseline = Allocation.from_partition(graph, params, init)
        result = g_txallo(graph, params, initial_partition=init)
        result.allocation.validate()
        assert (
            result.allocation.total_throughput()
            >= baseline.total_throughput() - 1e-9
        )

    @given(workload=workload_strategy, k=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_gtxallo_output_always_well_formed(self, workload, k):
        graph = graph_of(workload)
        params = TxAlloParams.with_capacity_for(len(workload), k=k, eta=2.0)
        mapping = g_txallo(graph, params).allocation.mapping()
        assert set(mapping) == set(graph.nodes())          # completeness
        assert set(mapping.values()) <= set(range(k))      # range


class TestModelConsistency:
    @given(
        workload=st.lists(
            st.tuples(accounts_strategy, accounts_strategy), min_size=1, max_size=60
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_graph_and_tx_sigma_agree_for_pairwise_workloads(self, workload):
        """For 1-in-1-out transactions, Eq. 5 equals the tx-level sigma."""
        from repro.core.metrics import graph_shard_workloads

        sets_ = [tuple(sorted(set(pair))) for pair in workload]
        graph = graph_of(sets_)
        params = TxAlloParams(k=3, eta=2.0, lam=1e9)
        mapping = hash_partition(graph.nodes_sorted(), 3)
        graph_sigma = graph_shard_workloads(graph, mapping, params)
        tx_sigma = evaluate_allocation(sets_, mapping, params).shard_workloads
        assert graph_sigma == pytest.approx(list(tx_sigma))

    @given(workload=workload_strategy)
    @settings(max_examples=30, deadline=None)
    def test_simulator_gamma_matches_analytic(self, workload):
        from repro.chain.simulator import simulate_allocation
        from repro.chain.types import Transaction

        params = TxAlloParams(k=3, eta=2.0, lam=1e9)
        mapping = hash_partition({a for tx in workload for a in tx}, 3)
        txs = [
            Transaction(inputs=(accs[0],), outputs=tuple(accs))
            for accs in workload
        ]
        analytic = evaluate_allocation(workload, mapping, params)
        simulated = simulate_allocation(txs, mapping, params)
        assert simulated.cross_shard_ratio == pytest.approx(
            analytic.cross_shard_ratio
        )


class TestDeterminismProperty:
    @given(workload=workload_strategy, k=st.integers(1, 5),
           eta=st.floats(1.0, 6.0))
    @settings(max_examples=20, deadline=None)
    def test_gtxallo_is_a_pure_function(self, workload, k, eta):
        params = TxAlloParams.with_capacity_for(len(workload), k=k, eta=eta)
        m1 = g_txallo(graph_of(workload), params).allocation.mapping()
        m2 = g_txallo(graph_of(workload), params).allocation.mapping()
        assert m1 == m2

    @given(workload=workload_strategy)
    @settings(max_examples=20, deadline=None)
    def test_digest_is_input_determined(self, workload):
        from repro.core.persistence import allocation_digest

        params = TxAlloParams.with_capacity_for(len(workload), k=3, eta=2.0)
        d1 = allocation_digest(g_txallo(graph_of(workload), params).allocation.mapping())
        d2 = allocation_digest(g_txallo(graph_of(workload), params).allocation.mapping())
        assert d1 == d2
