"""Command-line interface: regenerate any paper figure from a terminal.

Examples::

    txallo fig2 --scale 0.5 --ks 2,10,20 --etas 2,6
    txallo fig4 --methods txallo,metis,prefix
    txallo fig9 --k 20 --gaps 20,100
    txallo live-compare --k 8 --scale 0.25
    txallo matrix --spec spec.json --out results/
    txallo all --scale 0.25

``--methods`` accepts any allocator name registered in
:mod:`repro.allocators` (``txallo``, ``random``/``hash``, ``prefix``,
``metis``, ``shard_scheduler``, ``txallo_online``, plus anything you
register yourself); ``live-compare`` runs the selected methods through
the tick-driven :class:`~repro.chain.live.LiveShardedNetwork` and prints
a per-method committed-TPS / cross-shard / latency table.

Every command prints a table plus an ASCII chart; no plotting stack is
required.  ``python -m repro`` is an alias for the ``txallo`` script.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro import allocators
from repro.core import backends
from repro.errors import ParameterError
from repro.eval import experiments

_SWEEP_FIGURES = {
    "fig2": experiments.figure2,
    "fig3": experiments.figure3,
    "fig5": experiments.figure5,
    "fig6": experiments.figure6,
    "fig7": experiments.figure7,
    "fig8": experiments.figure8,
}


def _parse_int_list(text: str) -> List[int]:
    return [int(chunk) for chunk in text.split(",") if chunk.strip()]


def _parse_float_list(text: str) -> List[float]:
    return [float(chunk) for chunk in text.split(",") if chunk.strip()]


def _parse_str_list(text: str) -> List[str]:
    return [chunk.strip() for chunk in text.split(",") if chunk.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="txallo",
        description="Reproduce the TxAllo (ICDE 2023) evaluation figures.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(_SWEEP_FIGURES)
        + ["fig1", "fig4", "fig9", "fig10", "live-compare", "matrix", "all"],
        help="which figure to regenerate ('all' runs every figure; "
        "'live-compare' runs the method set through the live network; "
        "'matrix' expands a declared-factors scenario spec)",
    )
    parser.add_argument(
        "--spec", default=None,
        help="matrix only: JSON experiment spec (factors over workload "
             "topology, scale, allocator, backend, tau cadence, fault "
             "plan, plus reps/base_seed/k/eta; default: the built-in "
             "smoke spec)",
    )
    parser.add_argument(
        "--out", default=None,
        help="matrix only: artifact directory (spec.json, per-run "
             "folders, aggregated run_table.csv); default: print the "
             "table without writing artifacts",
    )
    parser.add_argument(
        "--scale", type=float, default=0.5,
        help="workload scale factor (1.0 = ~60k transactions; default 0.5)",
    )
    parser.add_argument(
        "--seed", type=int, default=2022, help="workload seed (default 2022)"
    )
    parser.add_argument(
        "--ks", type=_parse_int_list, default=None,
        help="comma-separated shard counts (default 2,10,20,40,60)",
    )
    parser.add_argument(
        "--etas", type=_parse_float_list, default=None,
        help="comma-separated eta values (default 2,4,6,8,10)",
    )
    parser.add_argument(
        "--k", type=int, default=20, help="shard count for fig4/fig9/fig10"
    )
    parser.add_argument(
        "--eta", type=float, default=2.0, help="eta for fig4/fig9/fig10"
    )
    parser.add_argument(
        "--gaps", type=_parse_int_list, default=[20, 40, 100, 200],
        help="global updating gaps for fig9 (default 20,40,100,200)",
    )
    parser.add_argument(
        "--steps", type=int, default=0,
        help="max adaptive steps for fig9/fig10 (0 = all windows)",
    )
    parser.add_argument(
        "--methods", type=_parse_str_list, default=None,
        help="comma-separated allocator names from the registry "
             f"(default {','.join(experiments.METHODS)}; "
             "see repro.allocators.available())",
    )
    parser.add_argument(
        "--lam", type=float, default=None,
        help="per-shard capacity per tick for live-compare "
             "(default: auto from the live block size)",
    )
    parser.add_argument(
        "--faults", action="store_true",
        help="live-compare only: inject the deterministic standard fault "
             "plan (allocator-raise burst at the first tau2 refresh plus a "
             "shard stall window), supervising every allocator with "
             "ResilientAllocator",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="with --faults: derive a seeded FaultPlan instead of the "
             "standard one",
    )
    parser.add_argument(
        "--backend", choices=list(backends.names()), default="fast",
        help="TxAllo engine backend, resolved through the strategy "
             "registry (repro.core.backends): 'fast' (flat-array CSR "
             "sweep engine) and 'reference' (dict-based executable "
             "spec) are byte-identical; 'turbo' (warm-started Louvain, "
             "work-skipping sweeps) and 'vector' (numpy batched "
             "sweeps, falls back to fast when numpy is absent) are "
             "deterministic and objective-gated within the registry "
             "tolerance; 'parallel' adds shard-parallel A-TxAllo sweeps "
             "on top of vector (default fast)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker count for the multi-core execution layer: >1 fans "
             "the sweep/fig4 evaluation grid out to a process pool "
             "(records identical to --workers 1; requires fork, "
             "otherwise runs sequentially) and sets "
             "TxAlloParams.workers so workers-aware backends like "
             "'parallel' thread their A-TxAllo sweeps (default 1)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.figure == "matrix":
        # The matrix builds its own workloads per cell; none of the
        # figure plumbing below applies.
        from repro.eval import matrix

        try:
            spec = matrix.load_spec(args.spec) if args.spec else matrix.smoke_spec()
            result = matrix.run_matrix(spec, out_dir=args.out, workers=args.workers)
        except ParameterError as exc:
            print(f"txallo: {exc}", file=sys.stderr)
            return 2
        print(result.render())
        return 0
    methods = tuple(args.methods) if args.methods else experiments.METHODS
    try:
        for method in methods:
            allocators.get_entry(method)  # fail fast with the known names
    except ParameterError as exc:
        print(f"txallo: {exc}", file=sys.stderr)
        return 2
    workload = experiments.build_workload(scale=args.scale, seed=args.seed)
    ks = args.ks or list(experiments.DEFAULT_KS)
    etas = args.etas or list(experiments.DEFAULT_ETAS)

    wanted = sorted(_SWEEP_FIGURES) + ["fig1", "fig4", "fig9", "fig10"] \
        if args.figure == "all" else [args.figure]

    records = None
    for figure in wanted:
        if figure == "live-compare":
            print(
                experiments.live_compare(
                    workload, k=args.k, eta=args.eta,
                    methods=methods, lam=args.lam,
                    faults=args.faults, fault_seed=args.fault_seed,
                ).render()
            )
        elif figure == "fig1":
            print(experiments.figure1(workload).render())
        elif figure == "fig4":
            print(
                experiments.figure4(
                    workload, k=args.k, eta=args.eta, methods=methods,
                    backend=args.backend, workers=args.workers,
                ).render()
            )
        elif figure == "fig9":
            print(
                experiments.figure9(
                    workload, k=args.k, eta=args.eta,
                    gaps=args.gaps, max_steps=args.steps,
                    backend=args.backend, workers=args.workers,
                ).render()
            )
        elif figure == "fig10":
            print(
                experiments.figure10(
                    workload, k=args.k, eta=args.eta, max_steps=args.steps,
                    backend=args.backend, workers=args.workers,
                ).render()
            )
        else:
            if records is None:
                records = experiments.sweep(
                    workload, ks=ks, etas=etas, methods=methods,
                    backend=args.backend, workers=args.workers,
                )
            print(_SWEEP_FIGURES[figure](records).render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
