"""Chain primitives of the blockchain model (paper Section III-A).

The paper models a totally ordered account-based permissionless blockchain
``L = {B_1, ..., B_n}`` where each block is a sequence of transactions and
a transaction is the pair of its input and output account sets
``Tx = (A_in, A_out)``.  These dataclasses make that model concrete enough
for the simulator, the workload generator and the loaders, while staying
lean: value, gas and scripts are irrelevant to allocation (Section III-A
drops them explicitly), so we carry only what ``μ(Tx)`` needs plus minimal
provenance (identifiers, heights, hashes).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import FrozenSet, Iterator, Tuple

from repro.errors import TransactionError

#: Account addresses are lowercase hex strings (Ethereum style).
Address = str


def address_from_int(value: int) -> Address:
    """Deterministic synthetic address: 20 bytes of the integer's digest.

    Used by the workload generator so synthetic accounts look and hash
    like real Ethereum addresses.
    """
    digest = hashlib.sha256(value.to_bytes(8, "big", signed=False)).digest()
    return "0x" + digest[:20].hex()


def is_address(value: object) -> bool:
    """Loose structural check for an Ethereum-style address string."""
    if not isinstance(value, str) or not value.startswith("0x"):
        return False
    body = value[2:]
    if len(body) != 40:
        return False
    try:
        int(body, 16)
    except ValueError:
        return False
    return True


@dataclasses.dataclass(frozen=True)
class Transaction:
    """``Tx = (A_in, A_out)`` with both sets non-empty (Section III-A)."""

    inputs: Tuple[Address, ...]
    outputs: Tuple[Address, ...]
    tx_id: str = ""

    def __post_init__(self) -> None:
        if not self.inputs:
            raise TransactionError("a transaction needs at least one input account")
        if not self.outputs:
            raise TransactionError("a transaction needs at least one output account")
        if not self.tx_id:
            digest = hashlib.sha256(
                ("|".join(self.inputs) + "->" + "|".join(self.outputs)).encode()
            ).hexdigest()
            object.__setattr__(self, "tx_id", digest[:16])

    @property
    def accounts(self) -> FrozenSet[Address]:
        """``A_Tx = A_in ∪ A_out`` — what allocation cares about."""
        return frozenset(self.inputs) | frozenset(self.outputs)

    @property
    def is_self_loop(self) -> bool:
        """True when all inputs and outputs collapse to one account.

        E.g. an Ethereum self-send used to replace a pending transaction
        (Section V-B's motivating example for self-loops).
        """
        return len(self.accounts) == 1

    @classmethod
    def transfer(cls, sender: Address, receiver: Address) -> "Transaction":
        """The common case: one input, one output."""
        return cls(inputs=(sender,), outputs=(receiver,))


@dataclasses.dataclass(frozen=True)
class Block:
    """A block: height, parent link and an ordered transaction tuple."""

    height: int
    transactions: Tuple[Transaction, ...]
    parent_hash: str = ""

    def __post_init__(self) -> None:
        if self.height < 0:
            raise TransactionError(f"block height must be non-negative, got {self.height}")

    @property
    def block_hash(self) -> str:
        """Deterministic content hash (header + tx ids)."""
        hasher = hashlib.sha256()
        hasher.update(str(self.height).encode())
        hasher.update(self.parent_hash.encode())
        for tx in self.transactions:
            hasher.update(tx.tx_id.encode())
        return hasher.hexdigest()

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    def account_set(self) -> FrozenSet[Address]:
        """All accounts appearing in this block (the block's slice of V̂)."""
        accounts: set = set()
        for tx in self.transactions:
            accounts |= tx.accounts
        return frozenset(accounts)
