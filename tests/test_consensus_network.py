"""Tests for the consensus cost models, network model and reshuffling."""

import pytest

from repro.chain.consensus import (
    consensus_cost,
    hotstuff_cost,
    max_faulty,
    pbft_cost,
    quorum_size,
)
from repro.chain.network import NetworkModel
from repro.chain.reshuffle import MinerPool
from repro.errors import ParameterError


class TestQuorums:
    def test_quorum_for_3f_plus_1(self):
        assert quorum_size(4) == 3
        assert quorum_size(7) == 5
        assert quorum_size(10) == 7

    def test_max_faulty(self):
        assert max_faulty(4) == 1
        assert max_faulty(10) == 3
        assert max_faulty(1) == 0

    def test_invalid_sizes(self):
        with pytest.raises(ParameterError):
            quorum_size(0)
        with pytest.raises(ParameterError):
            max_faulty(-1)


class TestCostModels:
    def test_pbft_three_steps_quadratic_messages(self):
        cost = pbft_cost(10, message_delay=0.1)
        assert cost.steps == 3
        assert cost.messages == 10 + 2 * 100
        assert cost.latency_seconds == pytest.approx(0.3)

    def test_hotstuff_six_steps_linear_messages(self):
        cost = hotstuff_cost(10, message_delay=0.1)
        assert cost.steps == 6
        assert cost.messages == 60
        assert cost.latency_seconds == pytest.approx(0.6)

    def test_pbft_vs_hotstuff_tradeoff(self):
        """Section IV-A: streamlined = more steps, fewer messages."""
        n = 50
        pbft = pbft_cost(n)
        hotstuff = hotstuff_cost(n)
        assert hotstuff.steps > pbft.steps
        assert hotstuff.messages < pbft.messages

    def test_dispatch(self):
        assert consensus_cost("pbft", 4) == pbft_cost(4)
        assert consensus_cost("HotStuff", 4) == hotstuff_cost(4)
        with pytest.raises(ParameterError):
            consensus_cost("raft", 4)

    def test_negative_delay_rejected(self):
        with pytest.raises(ParameterError):
            pbft_cost(4, message_delay=-0.1)


class TestNetwork:
    def test_cross_slower_than_intra(self):
        net = NetworkModel(intra_shard_delay=0.01, cross_shard_delay=0.2, jitter_fraction=0.0)
        assert net.delay(0, 0) == pytest.approx(0.01)
        assert net.delay(0, 1) == pytest.approx(0.2)

    def test_jitter_bounded(self):
        net = NetworkModel(cross_shard_delay=0.1, jitter_fraction=0.3)
        for dst in range(50):
            d = net.delay(0, dst if dst != 0 else 51)
            assert 0.07 - 1e-9 <= d <= 0.13 + 1e-9

    def test_deterministic(self):
        n1 = NetworkModel(seed=5)
        n2 = NetworkModel(seed=5)
        assert n1.delay(1, 2) == n2.delay(1, 2)

    def test_seed_changes_jitter(self):
        n1 = NetworkModel(seed=1, jitter_fraction=0.5)
        n2 = NetworkModel(seed=2, jitter_fraction=0.5)
        assert n1.delay(1, 2) != n2.delay(1, 2)

    def test_broadcast_is_max(self):
        net = NetworkModel(jitter_fraction=0.0)
        assert net.broadcast_delay(0, [0, 1, 2]) == pytest.approx(
            max(net.delay(0, d) for d in (0, 1, 2))
        )

    def test_broadcast_empty(self):
        assert NetworkModel().broadcast_delay(0, []) == 0.0

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            NetworkModel(intra_shard_delay=-1)
        with pytest.raises(ParameterError):
            NetworkModel(jitter_fraction=1.5)


class TestReshuffle:
    def test_near_uniform_sizes(self):
        pool = MinerPool(num_miners=100, k=8, seed=0)
        assert pool.max_size_gap() <= 1

    def test_deterministic(self):
        p1 = MinerPool(50, 5, seed=3)
        p2 = MinerPool(50, 5, seed=3)
        assert p1.assignment == p2.assignment

    def test_reshuffle_changes_assignment(self):
        pool = MinerPool(60, 6, seed=1)
        before = dict(pool.assignment)
        pool.reshuffle(epoch=1)
        assert pool.assignment != before
        assert pool.max_size_gap() <= 1

    def test_members_partition_miners(self):
        pool = MinerPool(30, 3, seed=2)
        seen = set()
        for shard in range(3):
            members = pool.members(shard)
            assert not (seen & set(members))
            seen |= set(members)
        assert seen == set(range(30))

    def test_shard_of(self):
        pool = MinerPool(10, 2)
        assert pool.shard_of(0) in (0, 1)
        with pytest.raises(ParameterError):
            pool.shard_of(999)

    def test_invalid_configuration(self):
        with pytest.raises(ParameterError):
            MinerPool(num_miners=3, k=5)
        with pytest.raises(ParameterError):
            MinerPool(num_miners=5, k=0)

    def test_members_invalid_shard(self):
        pool = MinerPool(10, 2)
        with pytest.raises(ParameterError):
            pool.members(7)
