"""Figure 6 — average confirmation latency vs. number of shards.

Paper: TxAllo achieves the best average latency at every (k, eta); in most
settings it stays under two blocks; Random degrades sharply with eta.
"""

import pytest

from repro.eval import experiments


@pytest.fixture(scope="module")
def fig6(sweep_records):
    return experiments.figure6(sweep_records)


def test_fig6_report(fig6):
    print()
    print(fig6.render())


@pytest.mark.parametrize("eta", [2.0, 6.0, 10.0])
def test_txallo_best_average_latency(fig6, eta):
    for k in (10, 20, 40, 60):
        ours = fig6.value(eta, "txallo", k)
        assert ours <= fig6.value(eta, "random", k) + 1e-9
        assert ours <= fig6.value(eta, "metis", k) + 0.25
        assert ours <= fig6.value(eta, "shard_scheduler", k) + 0.25


def test_txallo_under_two_blocks_at_low_eta(fig6):
    for k in (10, 20, 40, 60):
        assert fig6.value(2.0, "txallo", k) < 2.0


def test_random_latency_grows_with_eta(fig6):
    assert fig6.value(10.0, "random", 60) > fig6.value(2.0, "random", 60)


def test_latency_floor_is_one_block(fig6):
    for eta, panel in fig6.panels.items():
        for pts in panel.values():
            for _, latency in pts:
                assert latency >= 1.0


def test_bench_latency_formula(benchmark):
    from repro.core.metrics import average_latency

    sigmas = [float(i % 37) * 13.7 for i in range(600)]
    benchmark(average_latency, sigmas, 100.0)
