"""Tests for the supervised allocator wrapper (repro.core.resilience).

Unit level: the failure state machine against a scripted inner allocator
(exception isolation, block-clocked capped-exponential backoff, circuit
breaker with degraded routing, deadline budget, exact buffered replay,
checkpoint discipline).  Acceptance level: the ISSUE's standard fault
plan — a supervised TxAllo controller survives it at >= 70% of the
fault-free committed TPS and the circuit re-closes before the final
tick, while the bare controller under the same plan raises.
"""

import pytest

from repro.chain.faults import FaultPlan
from repro.chain.live import LiveShardedNetwork
from repro.core.allocator import OnlineAllocator, hash_fallback_shard
from repro.core.controller import TxAlloController
from repro.core.params import TxAlloParams
from repro.core.persistence import allocation_digest
from repro.core.resilience import CLOSED, HALF_OPEN, OPEN, ResilientAllocator
from repro.data.synthetic import EthereumWorkloadGenerator, WorkloadConfig
from repro.errors import AllocatorError, DegradedModeError, ParameterError


class ScriptedInner(OnlineAllocator):
    """Inner allocator that fails on scripted call indices (1-based)."""

    name = "scripted"

    def __init__(self, params, fail_calls=(), fail_always=False):
        self.params = params
        self.fail_calls = set(fail_calls)
        self.fail_always = fail_always
        self.calls = 0
        self.observed = []  # blocks the inner actually ingested, in order
        self.last_update_seconds = None
        self._mapping = {"a": 0, "b": 1}

    def observe_block(self, transactions):
        self.calls += 1
        block = tuple(tuple(accounts) for accounts in transactions)
        if self.fail_always or self.calls in self.fail_calls:
            raise RuntimeError(f"scripted failure at call {self.calls}")
        self.observed.append(block)
        return None

    def shard_of(self, account):
        return self._mapping.get(account, 0)

    def mapping(self):
        return dict(self._mapping)


def make_params(**overrides):
    defaults = dict(k=4, eta=2.0, lam=10.0, epsilon=0.01, tau1=2, tau2=10)
    defaults.update(overrides)
    return TxAlloParams(**defaults)


def block(i):
    return [(f"a{i}", f"b{i}")]


class TestSupervisionStateMachine:
    def test_exception_isolated_and_block_replayed(self):
        inner = ScriptedInner(make_params(), fail_calls={1})
        sup = ResilientAllocator(inner)
        assert sup.observe_block(block(0)) is None  # failure absorbed
        assert sup.degraded
        assert sup.pending_blocks == 1
        sup.observe_block(block(1))  # retry: replays block 0 then block 1
        assert not sup.degraded
        assert inner.observed == [(("a0", "b0"),), (("a1", "b1"),)]
        stats = sup.resilience_stats
        assert stats["failures"] == 1
        assert stats["retries"] == 1
        assert stats["failovers"] == 1
        assert stats["recoveries"] == 1

    def test_backoff_schedule_is_capped_exponential_in_blocks(self):
        """base=1, cap=4: attempts land at blocks 1, 2, 4, 8, 12, 16..."""
        inner = ScriptedInner(make_params(), fail_always=True)
        sup = ResilientAllocator(
            inner,
            failure_threshold=100,  # never trip; isolate the backoff path
            backoff_base_blocks=1,
            backoff_cap_blocks=4,
        )
        attempts = []
        for i in range(16):
            before = inner.calls
            sup.observe_block(block(i))
            if inner.calls > before:
                attempts.append(i + 1)  # 1-based wrapper block index
        assert attempts == [1, 2, 4, 8, 12, 16]

    def test_circuit_opens_at_threshold_and_probe_recloses(self):
        inner = ScriptedInner(make_params(), fail_calls={1, 2, 3})
        sup = ResilientAllocator(
            inner, failure_threshold=3, backoff_base_blocks=1,
            backoff_cap_blocks=8, cooldown_blocks=5,
        )
        # Blocks 1, 2 fail (attempts at 1, 2); block 3 backs off;
        # block 4 retries, third consecutive failure trips the circuit.
        for i in range(4):
            sup.observe_block(block(i))
        assert sup.circuit_state == OPEN
        assert sup.resilience_stats["trips"] == 1
        calls_when_open = inner.calls
        # Cooldown: blocks 5..8 never touch the inner allocator.
        for i in range(4, 8):
            sup.observe_block(block(i))
            assert inner.calls == calls_when_open
        assert sup.circuit_state == OPEN
        # Block 9 is the half-open probe; it succeeds and replays the
        # whole buffered backlog in order, exactly once each.
        sup.observe_block(block(8))
        assert sup.circuit_state == CLOSED
        assert not sup.degraded
        assert sup.pending_blocks == 0
        assert inner.observed == [tuple(tuple(t) for t in block(i)) for i in range(9)]
        stats = sup.resilience_stats
        assert stats["recoveries"] == 1
        assert stats["degraded_blocks"] > 0

    def test_failed_probe_reopens_the_circuit(self):
        inner = ScriptedInner(make_params(), fail_always=True)
        sup = ResilientAllocator(
            inner, failure_threshold=2, cooldown_blocks=3,
        )
        for i in range(3):  # two failures trip; block 3 is in cooldown
            sup.observe_block(block(i))
        assert sup.circuit_state == OPEN
        for i in range(3, 5):
            sup.observe_block(block(i))
        # The cooldown expired, the probe ran (and failed): straight
        # back to OPEN with a fresh cooldown, counted as a second trip.
        assert sup.circuit_state == OPEN
        assert sup.resilience_stats["trips"] == 2

    def test_degraded_routing_is_frozen_plus_hash_fallback(self):
        params = make_params()
        inner = ScriptedInner(params, fail_always=True)
        sup = ResilientAllocator(inner, failure_threshold=1)
        sup.observe_block(block(0))
        assert sup.degraded and sup.circuit_state == OPEN
        # Frozen mapping answers for placed accounts...
        assert sup.shard_of("a") == 0
        assert sup.shard_of("b") == 1
        # ...and the protocol's hash rule for everything else —
        # deterministic, not the inner allocator's (possibly broken) view.
        assert sup.shard_of("never-seen") == hash_fallback_shard(
            "never-seen", params.k
        )
        assert sup.mapping() == {"a": 0, "b": 1}

    def test_deadline_overrun_counts_as_failure_without_replay(self):
        inner = ScriptedInner(make_params())
        sup = ResilientAllocator(inner, deadline_seconds=0.5)
        inner.last_update_seconds = 2.0  # simulated duration, no sleeping
        assert sup.observe_block(block(0)) is None
        stats = sup.resilience_stats
        assert stats["deadline_overruns"] == 1
        assert stats["failures"] == 1
        assert sup.degraded
        # The slow update *did* ingest the block: it must not be
        # replayed (double ingest), only the backoff applies.
        assert sup.pending_blocks == 0
        inner.last_update_seconds = 0.001
        sup.observe_block(block(1))
        assert not sup.degraded
        assert [b for b in inner.observed] == [
            (("a0", "b0"),), (("a1", "b1"),)
        ]

    def test_half_open_state_is_reported_mid_probe(self):
        # White-box: the HALF_OPEN constant is part of the public
        # circuit_state surface even though it only exists inside a call.
        assert {CLOSED, OPEN, HALF_OPEN} == {"closed", "open", "half_open"}

    def test_parameter_validation(self):
        inner = ScriptedInner(make_params())
        with pytest.raises(ParameterError):
            ResilientAllocator(inner, failure_threshold=0)
        with pytest.raises(ParameterError):
            ResilientAllocator(inner, deadline_seconds=0.0)
        with pytest.raises(AllocatorError):
            ResilientAllocator({"a": 0})  # not an OnlineAllocator


class TestCheckpointRecovery:
    def test_checkpoint_refused_while_degraded(self):
        inner = ScriptedInner(make_params(), fail_always=True)
        sup = ResilientAllocator(inner, failure_threshold=1)
        sup.observe_block(block(0))
        assert sup.degraded
        with pytest.raises(DegradedModeError):
            sup.checkpoint_now()

    def test_restore_round_trip_preserves_digest(self, tmp_path):
        config = WorkloadConfig(
            num_accounts=200, num_transactions=1500, block_size=50, seed=11
        )
        blocks = [
            [tuple(tx.accounts) for tx in blk]
            for blk in EthereumWorkloadGenerator(config).blocks()
        ]
        params = make_params(lam=100.0)
        path = tmp_path / "alloc.ckpt.json"
        sup = ResilientAllocator(
            TxAlloController(params, seed_transactions=blocks[0]),
            checkpoint_path=path,
        )
        for blk in blocks[1:20]:
            sup.observe_block(blk)
        checkpoint = sup.checkpoint_now()
        assert path.exists()

        restored = ResilientAllocator.restore(path)
        # The resumed controller serves byte-for-byte the checkpointed
        # allocation: same digest, same per-account routing.
        assert allocation_digest(restored.mapping()) == checkpoint.digest
        for account in list(checkpoint.mapping)[:32]:
            assert restored.shard_of(account) == checkpoint.mapping[account]
        # And it is live again: observing and routing new traffic works.
        restored.observe_block([("fresh-x", "fresh-y")])
        assert 0 <= restored.shard_of("fresh-x") < params.k
        assert not restored.degraded


def _live_setup(seed=5):
    config = WorkloadConfig(
        num_accounts=400, num_transactions=3000, block_size=50, seed=seed
    )
    blocks = [
        list(blk) for blk in EthereumWorkloadGenerator(config).blocks()
    ]
    split = len(blocks) // 3
    seed_sets = [tuple(tx.accounts) for blk in blocks[:split] for tx in blk]
    live = blocks[split:]
    mean_block = sum(len(b) for b in live) / len(live)
    params = make_params(lam=max(1.0, 1.5 * mean_block / 4))
    return params, seed_sets, live


class TestAcceptanceStandardPlan:
    """The ISSUE's acceptance criteria, end to end."""

    def test_bare_controller_crashes_under_the_plan(self):
        params, seed_sets, live = _live_setup()
        plan = FaultPlan.standard(params.tau2)
        net = LiveShardedNetwork(
            params,
            TxAlloController(params, seed_transactions=seed_sets),
            fault_plan=plan,
        )
        with pytest.raises(AllocatorError):
            net.run(live, drain=True)

    def test_supervised_controller_survives_with_tps_retention(self):
        params, seed_sets, live = _live_setup()
        plan = FaultPlan.standard(params.tau2)

        baseline_net = LiveShardedNetwork(
            params, TxAlloController(params, seed_transactions=seed_sets)
        )
        baseline = baseline_net.run(live, drain=True)
        assert baseline.committed == baseline.arrived

        supervised = ResilientAllocator(
            TxAlloController(params, seed_transactions=seed_sets)
        )
        net = LiveShardedNetwork(params, supervised, fault_plan=plan)
        report = net.run(live, drain=True)

        assert report.committed == report.arrived, "faults lost transactions"
        retention = report.committed_per_tick / baseline.committed_per_tick
        assert retention >= 0.7, f"TPS retention {retention:.3f} < 0.7"

        stats = supervised.resilience_stats
        assert stats["trips"] >= 1, "plan never tripped the circuit"
        assert stats["recoveries"] >= 1, "circuit never recovered"
        assert supervised.circuit_state == CLOSED
        # The circuit re-closed *before* the final tick: the run ends on
        # healthy routing, not mid-outage.
        assert report.ticks[-1].degraded is False
        assert any(t.degraded for t in report.ticks)
        assert report.failovers >= 1
        assert report.degraded_ticks >= 1
        assert report.resilience_stats == stats
