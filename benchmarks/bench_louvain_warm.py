"""Warm-start run-table: turbo vs fast τ₂ global refreshes.

After PR 2's delta-freeze the cost of a G-TxAllo global refresh in the
dynamic controller loop is dominated by re-partitioning N nodes from
scratch (Louvain) plus full O(N k) optimisation sweeps.  The turbo
backend (PR 4) warm-starts Louvain from the previous snapshot's
partition carried on the extended CSR and work-skips converged sweep
nodes; it is *allowed* to land on a different deterministic allocation,
gated on the TxAllo objective instead of byte-parity
(:data:`repro.core.engine.WARM_OBJECTIVE_TOLERANCE`).

This benchmark replays the Fig. 9-style controller block-loop once per
backend over the same stream, then writes ``BENCH_louvain.json`` next to
this file:

``{"scale", "cold_refresh_seconds", "warm_refresh_seconds",
"refresh_speedup", "objective_ratio", "cross_shard_fast",
"cross_shard_turbo", "warm_stats", ...}``

Gates (enforced by :func:`check_gates`, by ``test_louvain_warm_gates``
and by CI):

* warm-started refreshes ≥ 2x faster than cold ones;
* turbo objective within ``WARM_OBJECTIVE_TOLERANCE`` of fast;
* turbo committed throughput / cross-shard ratio not regressed beyond
  the same tolerance;
* the warm path actually ran (every scheduled refresh warm-started).

Run directly (``python benchmarks/bench_louvain_warm.py [--scale S]
[--out PATH]``) it exits non-zero when a gate fails, so the CI perf job
can call it without a pytest wrapper.  ``--scale`` / ``BENCH_SCALE``
crank the workload (CI pins 0.5; ``benchmarks/run_table.py
--local-scale 2`` regenerates a non-toy row locally).

Both loops run with ``adaptive_workspace=False`` so the refresh timings
stay comparable across PRs: the adaptive workspace (PR 5) batches the
τ₁ runs and defers freezing to the τ₂ refresh, which would shift freeze
cost into the very refresh this table isolates.  The workspace path is
benchmarked by ``benchmarks/bench_adaptive.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

try:  # script mode from a clean checkout: resolve the src layout
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.parallel import pin_blas_threads

# Explicit thread ownership for honest timings: pin the BLAS/OpenMP
# knobs before any repro import can pull numpy in (the multi-core
# layer owns its parallelism -- see repro.core.parallel).
pin_blas_threads()

from repro.core.controller import TxAlloController
from repro.core.engine import WARM_OBJECTIVE_TOLERANCE
from repro.core.metrics import evaluate_allocation
from repro.core.params import TxAlloParams
from repro.data.synthetic import EthereumWorkloadGenerator, WorkloadConfig

BENCH_SCALE = float(os.environ.get("BENCH_SCALE", "0.5"))

#: Fig. 9 cadence: adaptive every block, global refresh every 50 blocks.
TAU1 = 1
TAU2 = 50
BLOCK_SIZE = 100
#: Loop timings are best-of-N to shave scheduler noise off the gate.
TIMING_REPEATS = 2

OUT_PATH = Path(__file__).resolve().parent / "BENCH_louvain.json"


def _block_stream(scale: float, seed: int = 2022):
    config = WorkloadConfig(
        num_accounts=max(100, int(10_000 * scale)),
        num_transactions=max(1_000, int(60_000 * scale)),
        block_size=BLOCK_SIZE,
        seed=seed,
    )
    gen = EthereumWorkloadGenerator(config)
    return [[tuple(tx.accounts) for tx in block.transactions] for block in gen.blocks()]


def _run_loop(backend, blocks, seed_blocks, num_transactions):
    """One controller over the stream; returns (loop_seconds, controller)."""
    params = TxAlloParams.with_capacity_for(
        num_transactions, k=16, eta=2.0, tau1=TAU1, tau2=TAU2, backend=backend
    )
    controller = TxAlloController(
        params,
        seed_transactions=[tx for block in seed_blocks for tx in block],
        # Workspace off: keeps per-refresh freeze cost where PR 4 measured
        # it (see the module docstring); bench_adaptive.py owns the
        # workspace gate.
        adaptive_workspace=False,
    )
    t0 = time.perf_counter()
    for block in blocks:
        controller.observe_block(block)
    return time.perf_counter() - t0, controller


def run_bench(scale: float = BENCH_SCALE, out_path: Path = OUT_PATH) -> dict:
    blocks = _block_stream(scale)
    # First half seeds the initial global allocation (history), second
    # half is the live stream the controller loop is timed over.
    split = len(blocks) // 2
    seed_blocks, stream = blocks[:split], blocks[split:]
    num_transactions = sum(len(b) for b in blocks)

    fast_seconds = turbo_seconds = float("inf")
    cold_refresh = warm_refresh = float("inf")
    for _ in range(TIMING_REPEATS):
        seconds, fast_ctrl = _run_loop("fast", stream, seed_blocks, num_transactions)
        fast_seconds = min(fast_seconds, seconds)
        seconds, turbo_ctrl = _run_loop("turbo", stream, seed_blocks, num_transactions)
        turbo_seconds = min(turbo_seconds, seconds)

        # Scheduled refreshes only — events[0] is the seed run, which is
        # cold on both backends (a fresh graph has no prior partition).
        # Per-repeat means, best-of across repeats like the loop totals.
        cold_refreshes = [e.seconds for e in fast_ctrl.global_events[1:]]
        warm_refreshes = [e.seconds for e in turbo_ctrl.global_events[1:]]
        assert warm_refreshes, "stream too short: no scheduled global refresh ran"
        cold_refresh = min(cold_refresh, sum(cold_refreshes) / len(cold_refreshes))
        warm_refresh = min(warm_refresh, sum(warm_refreshes) / len(warm_refreshes))

    warm_stats = turbo_ctrl.warm_stats
    assert warm_stats["warm"] > 0, "warm-start path never ran"

    # Quality: both controllers ingested the identical stream, so the
    # final graphs are identical and the objectives comparable 1:1.
    obj_fast = fast_ctrl.allocation.total_throughput()
    obj_turbo = turbo_ctrl.allocation.total_throughput()

    # Live metrics over the streamed transactions (committed throughput
    # and cross-shard ratio of the final mapping, the Fig. 2/5 view).
    stream_sets = [tx for block in stream for tx in block]
    eval_params = fast_ctrl.params.replace(
        lam=max(1.0, len(stream_sets) / fast_ctrl.params.k)
    )
    report_fast = evaluate_allocation(stream_sets, fast_ctrl.allocation, eval_params)
    report_turbo = evaluate_allocation(stream_sets, turbo_ctrl.allocation, eval_params)

    payload = {
        "scale": scale,
        "n_nodes": turbo_ctrl.graph.num_nodes,
        "n_edges": turbo_ctrl.graph.num_edges,
        "seed_blocks": split,
        "stream_blocks": len(stream),
        "tau1": TAU1,
        "tau2": TAU2,
        "fast_loop_seconds": fast_seconds,
        "turbo_loop_seconds": turbo_seconds,
        "loop_speedup": fast_seconds / turbo_seconds if turbo_seconds > 0 else float("inf"),
        "cold_refresh_seconds": cold_refresh,
        "warm_refresh_seconds": warm_refresh,
        "refresh_speedup": cold_refresh / warm_refresh if warm_refresh > 0 else float("inf"),
        "cold_refreshes": cold_refreshes,
        "warm_refreshes": warm_refreshes,
        "warm_stats": warm_stats,
        "objective_fast": obj_fast,
        "objective_turbo": obj_turbo,
        "objective_ratio": obj_turbo / obj_fast if obj_fast > 0 else float("inf"),
        "objective_tolerance": WARM_OBJECTIVE_TOLERANCE,
        "throughput_fast": report_fast.throughput,
        "throughput_turbo": report_turbo.throughput,
        "cross_shard_fast": report_fast.cross_shard_ratio,
        "cross_shard_turbo": report_turbo.cross_shard_ratio,
        "freeze_stats": turbo_ctrl.freeze_stats,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"== louvain warm-start refresh (scale={scale}) ==")
    for key, value in payload.items():
        print(f"  {key}: {value}")
    return payload


def check_gates(payload: dict) -> list:
    """Return the list of failed gate descriptions (empty = all green)."""
    tol = payload["objective_tolerance"]
    failures = []
    if payload["refresh_speedup"] < 2.0:
        failures.append(
            f"warm refresh speedup {payload['refresh_speedup']:.2f}x < 2x"
        )
    if payload["objective_ratio"] < 1.0 - tol:
        failures.append(
            f"turbo objective ratio {payload['objective_ratio']:.4f} below 1-{tol}"
        )
    if payload["throughput_turbo"] < (1.0 - tol) * payload["throughput_fast"]:
        failures.append("turbo committed throughput regressed beyond tolerance")
    if payload["cross_shard_turbo"] > payload["cross_shard_fast"] + tol:
        failures.append(
            f"turbo cross-shard ratio {payload['cross_shard_turbo']:.4f} regressed "
            f"past fast {payload['cross_shard_fast']:.4f} + {tol}"
        )
    if payload["warm_stats"]["warm"] < len(payload["warm_refreshes"]):
        failures.append("some scheduled refreshes fell back to a cold partition")
    return failures


def test_louvain_warm_run_table(bench_scale):
    payload = run_bench(scale=bench_scale)
    failures = check_gates(payload)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=BENCH_SCALE,
        help="workload scale factor (default: BENCH_SCALE env or 0.5)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUT_PATH,
        help=f"output run-table path (default {OUT_PATH.name} next to this file)",
    )
    args = parser.parse_args()
    result = run_bench(scale=args.scale, out_path=args.out)
    problems = check_gates(result)
    for problem in problems:
        print(f"GATE FAILED: {problem}", file=sys.stderr)
    sys.exit(1 if problems else 0)
