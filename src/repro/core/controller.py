"""The dynamic TxAllo controller — periodic A-TxAllo with G-TxAllo refreshes.

The paper runs A-TxAllo every ``τ₁`` blocks and G-TxAllo every ``τ₂`` blocks
(``τ₁ < τ₂``, Section V-A); the adaptive runs are cheap and keep the
allocation fresh, while the periodic global runs bound the approximation
loss (evaluated in Figs. 9-10).

:class:`TxAlloController` implements exactly that loop over any source of
blocks, where a *block* is simply an iterable of transactions and a
transaction an iterable of account identifiers.  It owns the transaction
graph, the current :class:`~repro.core.allocation.Allocation` and an update
log with per-update wall-clock timings.

On the fast backend the graph's frozen CSR snapshot is maintained
*incrementally* across updates (delta-freeze, see
:meth:`repro.core.graph.TransactionGraph.freeze`): each block perturbs a
small frontier, so the periodic A-TxAllo snapshots and G-TxAllo refreshes
extend the previous snapshot instead of re-lowering the whole graph.
:attr:`TxAlloController.freeze_stats` exposes the counters.

Since the adaptive workspace
(:class:`repro.core.engine.AdaptiveWorkspace`, owned by the controller
and on by default for the flat backends) consecutive A-TxAllo runs go
further: they share one persistent flat neighbourhood view kept current
from the graph's mutation journal, so between global refreshes the τ₁
loop does not freeze the graph at all.  Results are byte-identical with
the workspace on or off; :attr:`TxAlloController.workspace_stats`
exposes its rebuild/extend counters.

``params.workers`` needs no controller plumbing: the adaptive kernel is
resolved through the backend registry and workers-aware tiers (the
``"parallel"`` backend's shard-parallel A-TxAllo) read the thread count
straight off ``allocation.params``.  The knob is semantically inert —
any ``workers`` value yields the identical allocation; only wall-clock
changes (see :mod:`repro.core.parallel`).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterable, List, Optional, Sequence, Set

from repro.core import backends
from repro.core.allocation import Allocation
from repro.core.allocator import OnlineAllocator, hash_fallback_shard
from repro.core.atxallo import a_txallo
from repro.core.engine import AdaptiveWorkspace
from repro.core.graph import Node, TransactionGraph
from repro.core.gtxallo import g_txallo
from repro.core.params import TxAlloParams


@dataclasses.dataclass(frozen=True)
class UpdateEvent:
    """One allocation update: which algorithm ran, when, and how long."""

    kind: str  # "global" or "adaptive"
    block_height: int
    seconds: float
    moves: int
    touched: int
    #: False when an adaptive run hit the A-TxAllo sweep cap before the
    #: ε criterion — Fig. 10 replays can now tell a truncated sweep from
    #: real convergence.  Global runs (and events persisted before this
    #: field existed) default to True.
    converged: bool = True


class TxAlloController(OnlineAllocator):
    """Drives TxAllo over a stream of blocks (the online allocator).

    Typical use::

        controller = TxAlloController(params, seed_transactions=history)
        for block in chain:
            controller.observe_block(block)
        mapping = controller.allocation.mapping()

    ``observe_block`` ingests the block's transactions, and — at the
    configured periods — triggers the adaptive or global algorithm.  The
    global algorithm takes precedence when both are due, and resets the
    adaptive touched-set, exactly as a fresh global allocation subsumes any
    pending adaptive work.

    ``graph`` adopts a pre-built transaction graph (the controller owns
    and mutates it from then on); ``initial_mapping`` starts from a given
    partition instead of running a seed G-TxAllo — together they let
    replay/evaluation harnesses (Figs. 9-10) resume the exact state a
    previous global run produced, through the same code path the live
    network exercises.

    As an :class:`~repro.core.allocator.OnlineAllocator`,
    :meth:`shard_of` is total: an account awaiting its first A-TxAllo
    assignment is co-located with its heaviest assigned neighbourhood
    (ties toward the smaller shard), falling back to the protocol's hash
    rule for accounts with no placed neighbours.
    """

    name = "txallo_online"

    def __init__(
        self,
        params: TxAlloParams,
        seed_transactions: Optional[Iterable[Sequence[Node]]] = None,
        *,
        graph: Optional[TransactionGraph] = None,
        initial_mapping: Optional[dict] = None,
        adaptive_enabled: bool = True,
        global_enabled: bool = True,
        adaptive_workspace: bool = True,
    ) -> None:
        self.params = params
        self.graph = graph if graph is not None else TransactionGraph()
        self.block_height = 0
        self.events: List[UpdateEvent] = []
        self._touched: Set[Node] = set()
        self._adaptive_enabled = adaptive_enabled
        self._global_enabled = global_enabled
        self._warm_counts: dict = {"warm": 0, "cold": 0}
        # The adaptive workspace batches consecutive A-TxAllo runs over
        # one persistent neighbourhood view (byte-identical results; see
        # repro.core.engine).  The backend's registry spec declares
        # whether its A-TxAllo kernel consumes one — the reference path
        # scans the live dicts every sweep anyway.
        self._workspace: Optional[AdaptiveWorkspace] = (
            AdaptiveWorkspace()
            if adaptive_workspace and backends.get_backend(params.backend).uses_workspace
            else None
        )
        if seed_transactions is not None:
            for accounts in seed_transactions:
                self.graph.add_transaction(accounts)
        # Same timing semantics as _run_global: wall-clock around the
        # whole call, so the seed event is comparable to scheduled ones.
        t0 = time.perf_counter()
        if initial_mapping is not None:
            self.allocation: Allocation = Allocation.from_partition(
                self.graph, params, initial_mapping
            )
            moves = 0
        else:
            result = g_txallo(self.graph, params)
            self.allocation = result.allocation
            moves = result.moves
            self._count_warm()
        self.events.append(
            UpdateEvent(
                kind="global",
                block_height=0,
                seconds=time.perf_counter() - t0,
                moves=moves,
                touched=self.graph.num_nodes,
            )
        )

    # ------------------------------------------------------------------
    def observe_block(self, transactions: Iterable[Sequence[Node]]) -> Optional[UpdateEvent]:
        """Ingest one block; run an update if one is due.

        Returns the update event when an algorithm ran, else ``None``.
        """
        for accounts in transactions:
            # Sorted, deduplicated ingest order: iterating a raw ``set``
            # here would feed the allocation caches' float accumulations
            # in PYTHONHASHSEED-dependent order, breaking the
            # "canonical order every miner can reproduce" contract.
            unique = sorted(set(accounts))
            self.graph.add_transaction(unique)
            self.allocation.ingest_transaction(unique)
            self._touched.update(unique)
        self.block_height += 1

        if self._global_enabled and self.block_height % self.params.tau2 == 0:
            return self._run_global()
        if self._adaptive_enabled and self.block_height % self.params.tau1 == 0:
            return self._run_adaptive()
        return None

    # ------------------------------------------------------------------
    def shard_of(self, account: Node) -> int:
        """Current shard of ``account`` — total (protocol contract).

        Accounts A-TxAllo has not assigned yet are routed by the
        controller itself: to the shard holding the largest share of the
        account's already-assigned neighbourhood (ties toward the
        smaller shard id), or by the hash fallback when the account has
        no placed neighbours.  Deterministic either way, so every miner
        routes identically between scheduled updates.
        """
        shard = self.allocation.shard_of_or_none(account)
        if shard is not None:
            return shard
        if account in self.graph:
            by_shard, _, _ = self.allocation.neighbour_shard_weights(account)
            if by_shard:
                return min(by_shard.items(), key=lambda kv: (-kv[1], kv[0]))[0]
        return hash_fallback_shard(account, self.params.k)

    def mapping(self) -> dict:
        """Snapshot of the accounts the allocation has explicitly placed."""
        return self.allocation.mapping()

    def force_global(self) -> UpdateEvent:
        """Run G-TxAllo immediately, regardless of the schedule."""
        return self._run_global()

    def force_adaptive(self) -> UpdateEvent:
        """Run A-TxAllo immediately on the accumulated touched set."""
        return self._run_adaptive()

    # ------------------------------------------------------------------
    def _count_warm(self) -> None:
        """Record whether the global run's Louvain went warm or cold.

        Only meaningful on warm-Louvain backends (the registry spec's
        ``warm_louvain`` flag — turbo today); ``louvain_warm_hit`` is
        stamped on the (cached, so free to re-fetch) frozen snapshot by
        :func:`repro.core.engine.louvain_flat_warm`.
        """
        if not backends.get_backend(self.params.backend).warm_louvain:
            return
        hit = self.graph.freeze().louvain_warm_hit
        self._warm_counts["warm" if hit else "cold"] += 1

    def _run_global(self) -> UpdateEvent:
        t0 = time.perf_counter()
        result = g_txallo(self.graph, self.params)
        self.allocation = result.allocation
        self._count_warm()
        if self._workspace is not None:
            # The refresh replaced the allocation wholesale; the cached
            # id→shard view has nothing left to say.
            self._workspace.invalidate()
        self._touched.clear()
        event = UpdateEvent(
            kind="global",
            block_height=self.block_height,
            seconds=time.perf_counter() - t0,
            moves=result.moves,
            touched=self.graph.num_nodes,
        )
        self.events.append(event)
        return event

    def _run_adaptive(self) -> UpdateEvent:
        # The touched-set is replaced only after the run succeeds:
        # clearing it up front silently dropped the accumulated accounts
        # whenever a_txallo raised, so the next adaptive run swept
        # nothing (regression-tested in tests/test_controller.py).
        touched = self._touched
        result = a_txallo(self.allocation, touched, workspace=self._workspace)
        self._touched = set()
        event = UpdateEvent(
            kind="adaptive",
            block_height=self.block_height,
            seconds=result.seconds,
            moves=result.moves,
            touched=result.swept_nodes,
            converged=result.converged,
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    @property
    def adaptive_events(self) -> List[UpdateEvent]:
        return [e for e in self.events if e.kind == "adaptive"]

    @property
    def global_events(self) -> List[UpdateEvent]:
        return [e for e in self.events if e.kind == "global"]

    @property
    def freeze_stats(self) -> dict:
        """The graph's snapshot counters (full/delta/cached freezes).

        On the fast backend both the global refreshes and the adaptive
        neighbourhood snapshots run on the frozen CSR form, so this shows
        whether the controller is paying from-scratch lowerings or the
        incremental delta-freeze path.
        """
        return self.graph.freeze_stats

    @property
    def workspace_stats(self) -> dict:
        """Adaptive-workspace counters: ``{"rebuilds", "extends", "runs"}``.

        ``rebuilds`` counts full re-lowerings (controller start, global
        refreshes, decay), ``extends`` journal replays that carried the
        cached views across a τ₁ window, ``runs`` adaptive runs served
        through the workspace.  All zero when the workspace is disabled
        (``adaptive_workspace=False`` or the reference backend).
        """
        if self._workspace is None:
            return {"rebuilds": 0, "extends": 0, "runs": 0}
        return self._workspace.stats

    @property
    def warm_stats(self) -> dict:
        """Per-refresh Louvain warm-start counters: ``{"warm", "cold"}``.

        ``warm`` counts global runs whose Louvain was seeded from the
        previous snapshot's partition, ``cold`` from-scratch partitions
        (including every run on non-turbo backends' behalf: both stay 0
        unless ``params.backend == "turbo"``).  Benchmarks and tests use
        this to prove the warm path actually carried across refreshes.
        """
        return dict(self._warm_counts)
