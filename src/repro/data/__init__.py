"""Workload substrate: synthetic Ethereum generator, loaders, streaming."""

from repro.data.loader import (
    group_into_blocks,
    load_transactions_csv,
    load_transactions_jsonl,
)
from repro.data.stream import BlockStream
from repro.data.synthetic import (
    DatasetCard,
    EthereumWorkloadGenerator,
    WorkloadConfig,
    account_sets,
)

__all__ = [
    "BlockStream",
    "DatasetCard",
    "EthereumWorkloadGenerator",
    "WorkloadConfig",
    "account_sets",
    "group_into_blocks",
    "load_transactions_csv",
    "load_transactions_jsonl",
]
