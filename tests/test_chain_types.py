"""Tests for chain primitives: addresses, transactions, blocks."""

import pytest

from repro.chain.types import Block, Transaction, address_from_int, is_address
from repro.errors import TransactionError


class TestAddress:
    def test_address_shape(self):
        addr = address_from_int(7)
        assert is_address(addr)

    def test_deterministic(self):
        assert address_from_int(42) == address_from_int(42)

    def test_distinct(self):
        assert address_from_int(1) != address_from_int(2)

    def test_is_address_rejects_garbage(self):
        assert not is_address("hello")
        assert not is_address("0x123")           # too short
        assert not is_address("0x" + "zz" * 20)  # not hex
        assert not is_address(1234)


class TestTransaction:
    def test_accounts_union(self):
        tx = Transaction(inputs=("a",), outputs=("b", "c"))
        assert tx.accounts == frozenset({"a", "b", "c"})

    def test_self_loop_detection(self):
        assert Transaction(inputs=("a",), outputs=("a",)).is_self_loop
        assert not Transaction(inputs=("a",), outputs=("b",)).is_self_loop

    def test_empty_inputs_rejected(self):
        with pytest.raises(TransactionError):
            Transaction(inputs=(), outputs=("b",))

    def test_empty_outputs_rejected(self):
        with pytest.raises(TransactionError):
            Transaction(inputs=("a",), outputs=())

    def test_auto_tx_id(self):
        tx = Transaction(inputs=("a",), outputs=("b",))
        assert tx.tx_id and len(tx.tx_id) == 16

    def test_auto_tx_id_deterministic(self):
        t1 = Transaction(inputs=("a",), outputs=("b",))
        t2 = Transaction(inputs=("a",), outputs=("b",))
        assert t1.tx_id == t2.tx_id

    def test_explicit_tx_id_kept(self):
        tx = Transaction(inputs=("a",), outputs=("b",), tx_id="custom")
        assert tx.tx_id == "custom"

    def test_transfer_helper(self):
        tx = Transaction.transfer("a", "b")
        assert tx.inputs == ("a",) and tx.outputs == ("b",)

    def test_frozen(self):
        tx = Transaction.transfer("a", "b")
        with pytest.raises(Exception):
            tx.inputs = ("x",)  # type: ignore[misc]


class TestBlock:
    def txs(self, n=3):
        return tuple(Transaction.transfer(f"s{i}", f"r{i}") for i in range(n))

    def test_len_and_iter(self):
        block = Block(height=0, transactions=self.txs(3))
        assert len(block) == 3
        assert [tx.inputs[0] for tx in block] == ["s0", "s1", "s2"]

    def test_negative_height_rejected(self):
        with pytest.raises(TransactionError):
            Block(height=-1, transactions=())

    def test_hash_depends_on_content(self):
        b1 = Block(height=0, transactions=self.txs(2))
        b2 = Block(height=0, transactions=self.txs(3))
        assert b1.block_hash != b2.block_hash

    def test_hash_depends_on_parent(self):
        b1 = Block(height=1, transactions=self.txs(1), parent_hash="x")
        b2 = Block(height=1, transactions=self.txs(1), parent_hash="y")
        assert b1.block_hash != b2.block_hash

    def test_hash_deterministic(self):
        b1 = Block(height=2, transactions=self.txs(2), parent_hash="p")
        b2 = Block(height=2, transactions=self.txs(2), parent_hash="p")
        assert b1.block_hash == b2.block_hash

    def test_account_set(self):
        block = Block(height=0, transactions=self.txs(2))
        assert block.account_set() == frozenset({"s0", "r0", "s1", "r1"})
