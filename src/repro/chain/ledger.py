"""An append-only ledger of blocks (``L`` in the paper's notation).

The ledger enforces the chain invariants — contiguous heights, matching
parent hashes — and provides the iteration windows the allocation pipeline
needs: *all* transactions for G-TxAllo, and height ranges for A-TxAllo's
``τ``-block updates.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set

from repro.chain.types import Address, Block, Transaction
from repro.errors import LedgerError


class Ledger:
    """Totally ordered sequence of blocks with integrity checks."""

    def __init__(self, genesis_height: int = 0) -> None:
        self._blocks: List[Block] = []
        self._genesis_height = genesis_height
        self._accounts: Set[Address] = set()
        self._num_transactions = 0

    # ------------------------------------------------------------------
    def append(self, block: Block) -> None:
        """Append a block; verifies height continuity and parent linkage."""
        expected = self.next_height
        if block.height != expected:
            raise LedgerError(
                f"non-contiguous block: expected height {expected}, got {block.height}"
            )
        if self._blocks:
            expected_parent = self._blocks[-1].block_hash
            if block.parent_hash and block.parent_hash != expected_parent:
                raise LedgerError(
                    f"parent hash mismatch at height {block.height}: "
                    f"{block.parent_hash[:12]}... != {expected_parent[:12]}..."
                )
        self._blocks.append(block)
        self._num_transactions += len(block)
        for tx in block:
            self._accounts |= tx.accounts

    def extend(self, blocks) -> None:
        for block in blocks:
            self.append(block)

    # ------------------------------------------------------------------
    @property
    def genesis_height(self) -> int:
        return self._genesis_height

    @property
    def next_height(self) -> int:
        return self._genesis_height + len(self._blocks)

    @property
    def tip(self) -> Optional[Block]:
        return self._blocks[-1] if self._blocks else None

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def num_transactions(self) -> int:
        return self._num_transactions

    @property
    def num_accounts(self) -> int:
        return len(self._accounts)

    def accounts(self) -> Set[Address]:
        """A snapshot of every account seen so far (the set ``A``)."""
        return set(self._accounts)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def block_at(self, height: int) -> Block:
        index = height - self._genesis_height
        if not 0 <= index < len(self._blocks):
            raise LedgerError(
                f"height {height} outside ledger range "
                f"[{self._genesis_height}, {self.next_height})"
            )
        return self._blocks[index]

    def blocks_in(self, start_height: int, end_height: int) -> Iterator[Block]:
        """Blocks with ``start_height <= height < end_height``."""
        if start_height > end_height:
            raise LedgerError(
                f"invalid window [{start_height}, {end_height})"
            )
        lo = max(start_height, self._genesis_height)
        hi = min(end_height, self.next_height)
        for h in range(lo, hi):
            yield self.block_at(h)

    def transactions(self) -> Iterator[Transaction]:
        """Every transaction, in chain order."""
        for block in self._blocks:
            yield from block

    def transactions_in(self, start_height: int, end_height: int) -> Iterator[Transaction]:
        """Transactions of the block window, in chain order."""
        for block in self.blocks_in(start_height, end_height):
            yield from block
