"""Tests for the throughput-gain machinery (Eqs. 6-9).

The central property: every predicted gain must equal the actually
realised change in ``Allocation.total_throughput()`` after performing the
move — the closed forms are exact, not approximations.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import Allocation
from repro.core.objective import GainComputer
from repro.core.params import TxAlloParams
from tests.conftest import make_random_graph


def make_alloc(k=4, eta=2.0, lam=40.0, seed=8):
    graph = make_random_graph(num_accounts=48, num_transactions=300, seed=seed)
    partition = {v: i % k for i, v in enumerate(graph.nodes())}
    params = TxAlloParams(k=k, eta=eta, lam=lam)
    return graph, Allocation.from_partition(graph, params, partition)


class TestMoveGainExactness:
    @pytest.mark.parametrize("eta", [1.0, 2.0, 5.0, 10.0])
    def test_move_gain_matches_realised_change(self, eta):
        graph, alloc = make_alloc(eta=eta)
        gains = GainComputer(alloc)
        rng = random.Random(4)
        nodes = list(graph.nodes())
        for _ in range(120):
            v = rng.choice(nodes)
            p = alloc.shard_of(v)
            q = rng.randrange(4)
            if q == p:
                continue
            by_shard, w_self, w_ext = alloc.neighbour_shard_weights(v)
            predicted = gains.move_gain(
                p, q, by_shard.get(p, 0.0), by_shard.get(q, 0.0), w_self, w_ext
            )
            before = alloc.total_throughput()
            alloc.move(v, q, weights=(by_shard, w_self, w_ext))
            realised = alloc.total_throughput() - before
            assert predicted == pytest.approx(realised, abs=1e-9)

    def test_gain_with_tight_capacity(self):
        """Exactness must hold across the sigma <= lam boundary too."""
        graph, alloc = make_alloc(lam=5.0)  # most shards overloaded
        gains = GainComputer(alloc)
        rng = random.Random(5)
        nodes = list(graph.nodes())
        for _ in range(120):
            v = rng.choice(nodes)
            p = alloc.shard_of(v)
            q = rng.randrange(4)
            if q == p:
                continue
            by_shard, w_self, w_ext = alloc.neighbour_shard_weights(v)
            predicted = gains.move_gain(
                p, q, by_shard.get(p, 0.0), by_shard.get(q, 0.0), w_self, w_ext
            )
            before = alloc.total_throughput()
            alloc.move(v, q, weights=(by_shard, w_self, w_ext))
            assert predicted == pytest.approx(
                alloc.total_throughput() - before, abs=1e-9
            )

    def test_join_gain_for_unassigned_node_matches_assign(self):
        from repro.core.graph import TransactionGraph

        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        g.add_transaction(("b", "c"))
        params = TxAlloParams(k=2, eta=3.0, lam=10.0)
        alloc = Allocation.from_partition(g, params, {"a": 0, "b": 0, "c": 1})
        g.add_transaction(("c", "d"))
        g.add_transaction(("d", "d"))
        alloc.ingest_transaction(("c", "d"))
        alloc.ingest_transaction(("d", "d"))
        gains = GainComputer(alloc)
        by_shard, w_self, w_ext = alloc.neighbour_shard_weights("d")
        for q in (0, 1):
            predicted = gains.join_gain(q, by_shard.get(q, 0.0), w_self, w_ext)
            trial = alloc.copy()
            before = trial.total_throughput()
            trial.assign("d", q, weights=(by_shard, w_self, w_ext))
            assert predicted == pytest.approx(
                trial.total_throughput() - before, abs=1e-9
            )


class TestLemma1:
    def test_untouched_communities_unchanged(self):
        """Lemma 1: ΔΛ_j = 0 for all j ∉ {p, q}."""
        graph, alloc = make_alloc(k=4, lam=20.0)
        v = next(iter(graph.nodes()))
        p = alloc.shard_of(v)
        q = (p + 2) % 4
        before = [alloc.community_throughput(j) for j in range(4)]
        alloc.move(v, q)
        after = [alloc.community_throughput(j) for j in range(4)]
        for j in range(4):
            if j not in (p, q):
                assert after[j] == pytest.approx(before[j])


class TestCandidates:
    def test_candidates_only_connected_communities(self):
        graph, alloc = make_alloc()
        gains = GainComputer(alloc)
        v = next(iter(graph.nodes()))
        by_shard, _, _ = alloc.neighbour_shard_weights(v)
        p = alloc.shard_of(v)
        cands = gains.candidate_communities(v, by_shard, exclude=p)
        assert p not in cands
        for q in cands:
            assert by_shard[q] > 0

    def test_candidates_sorted(self):
        graph, alloc = make_alloc()
        gains = GainComputer(alloc)
        for v in list(graph.nodes())[:20]:
            by_shard, _, _ = alloc.neighbour_shard_weights(v)
            cands = gains.candidate_communities(v, by_shard, exclude=None)
            assert cands == sorted(cands)

    def test_limit_excludes_high_indices(self):
        graph, alloc = make_alloc(k=4)
        gains = GainComputer(alloc)
        v = next(iter(graph.nodes()))
        by_shard = {0: 1.0, 1: 2.0, 3: 4.0}
        cands = gains.candidate_communities(v, by_shard, exclude=None, limit=2)
        assert cands == [0, 1]

    def test_zero_weight_not_candidate(self):
        graph, alloc = make_alloc()
        gains = GainComputer(alloc)
        cands = gains.candidate_communities("x", {0: 0.0, 1: 1.0}, exclude=None)
        assert cands == [1]


class TestBestSearch:
    def test_best_join_empty_candidates(self):
        graph, alloc = make_alloc()
        gains = GainComputer(alloc)
        q, gain = gains.best_join("v", [], {}, 0.0, 0.0)
        assert q is None and gain == 0.0

    def test_best_move_skips_own_community(self):
        graph, alloc = make_alloc()
        gains = GainComputer(alloc)
        v = next(iter(graph.nodes()))
        p = alloc.shard_of(v)
        by_shard, w_self, w_ext = alloc.neighbour_shard_weights(v)
        q, _ = gains.best_move(v, [p], by_shard, w_self, w_ext, p)
        assert q is None

    def test_best_join_picks_argmax(self):
        graph, alloc = make_alloc()
        gains = GainComputer(alloc)
        v = next(iter(graph.nodes()))
        by_shard, w_self, w_ext = alloc.neighbour_shard_weights(v)
        cands = [0, 1, 2, 3]
        q, best = gains.best_join(v, cands, by_shard, w_self, w_ext)
        for c in cands:
            assert gains.join_gain(c, by_shard.get(c, 0.0), w_self, w_ext) <= best + 1e-12

    def test_ties_break_to_smallest_index(self):
        """Two empty identical shards give identical join gains."""
        from repro.core.graph import TransactionGraph

        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        params = TxAlloParams(k=3, eta=2.0, lam=10.0)
        alloc = Allocation.from_partition(g, params, {"a": 0, "b": 0})
        gains = GainComputer(alloc)
        # A node connecting to nothing: all joins tie at zero-ish gain.
        g.add_transaction(("z", "z"))
        alloc.ingest_transaction(("z", "z"))
        by_shard, w_self, w_ext = alloc.neighbour_shard_weights("z")
        q, _ = gains.best_join("z", [1, 2], by_shard, w_self, w_ext)
        assert q == 1


@given(
    seed=st.integers(0, 1000),
    eta=st.floats(min_value=1.0, max_value=8.0),
    lam=st.floats(min_value=2.0, max_value=500.0),
)
@settings(max_examples=25, deadline=None)
def test_property_gain_exactness(seed, eta, lam):
    """Gains are exact for arbitrary eta/lam and random graphs."""
    graph = make_random_graph(num_accounts=30, num_transactions=120, seed=seed % 7)
    params = TxAlloParams(k=3, eta=eta, lam=lam)
    partition = {v: i % 3 for i, v in enumerate(graph.nodes())}
    alloc = Allocation.from_partition(graph, params, partition)
    gains = GainComputer(alloc)
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    for _ in range(20):
        v = rng.choice(nodes)
        p = alloc.shard_of(v)
        q = rng.randrange(3)
        if q == p:
            continue
        by_shard, w_self, w_ext = alloc.neighbour_shard_weights(v)
        predicted = gains.move_gain(
            p, q, by_shard.get(p, 0.0), by_shard.get(q, 0.0), w_self, w_ext
        )
        before = alloc.total_throughput()
        alloc.move(v, q, weights=(by_shard, w_self, w_ext))
        assert predicted == pytest.approx(alloc.total_throughput() - before, abs=1e-8)
