"""Tests for the scenario-matrix harness (repro.eval.matrix)."""

import csv
import json

import pytest

from repro.eval.matrix import (
    RUN_TABLE_COLUMNS,
    RUNTIME_COLUMNS,
    MatrixSpec,
    load_spec,
    run_cell,
    run_matrix,
    smoke_spec,
)
from repro.errors import ParameterError

#: One tiny grid shared by most tests: 2 topologies x 2 allocators x
#: 2 reps at the smallest workload the generator supports.
TINY = MatrixSpec(
    topologies=("ethereum", "adversarial"),
    scales=(0.02,),
    allocators=("txallo", "hash"),
    reps=2,
    k=4,
)


@pytest.fixture(scope="module")
def tiny_result():
    return run_matrix(TINY)


# ----------------------------------------------------------------------
# Spec
# ----------------------------------------------------------------------
class TestSpec:
    def test_cells_cross_product_with_reps(self):
        spec = MatrixSpec(
            topologies=("ethereum", "hotspot"),
            scales=(0.05, 0.1),
            allocators=("txallo",),
            backends=("fast", "turbo"),
            cadences=((0, 0), (2, 8)),
            faults=("none", "standard"),
            reps=3,
        )
        cells = spec.cells()
        assert len(cells) == 2 * 2 * 1 * 2 * 2 * 2 * 3
        # Repetition r uses workload seed base_seed + r.
        seeds = {cell.rep: cell.seed for cell in cells}
        assert seeds == {0: 2022, 1: 2023, 2: 2024}

    def test_cell_ids_unique(self):
        cells = smoke_spec().cells()
        ids = [cell.cell_id for cell in cells]
        assert len(set(ids)) == len(ids)
        for cell_id in ids:
            assert ":" not in cell_id  # filesystem-safe

    def test_round_trip_via_dict(self):
        spec = MatrixSpec(cadences=((2, 8),), faults=("seeded:7",))
        assert MatrixSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ParameterError, match="unknown spec keys"):
            MatrixSpec.from_dict({"topologys": ["ethereum"]})

    def test_unknown_topology_rejected(self):
        with pytest.raises(ParameterError, match="unknown workload"):
            MatrixSpec(topologies=("nope",))

    def test_unknown_allocator_rejected(self):
        with pytest.raises(ParameterError):
            MatrixSpec(allocators=("nope",))

    def test_bad_cadence_rejected(self):
        with pytest.raises(ParameterError, match="tau1 must not exceed"):
            MatrixSpec(cadences=((8, 2),))

    def test_bad_fault_rejected(self):
        with pytest.raises(ParameterError, match="fault plan"):
            MatrixSpec(faults=("chaos",))
        with pytest.raises(ParameterError, match="fault plan"):
            MatrixSpec(faults=("seeded:x",))

    def test_empty_factor_rejected(self):
        with pytest.raises(ParameterError, match="at least one level"):
            MatrixSpec(topologies=())

    def test_load_spec(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"scales": [0.05], "reps": 1, "cadences": [[2, 8]]}))
        spec = load_spec(path)
        assert spec.scales == (0.05,)
        assert spec.cadences == ((2, 8),)

    def test_load_spec_rejects_non_object(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("[1, 2]")
        with pytest.raises(ParameterError, match="JSON object"):
            load_spec(path)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
class TestRunMatrix:
    def test_all_cells_complete_in_grid_order(self, tiny_result):
        cells = TINY.cells()
        assert len(tiny_result.results) == len(cells)
        for cell, res in zip(cells, tiny_result.results):
            assert res.cell_id == cell.cell_id
            assert res.ticks > 0
            assert res.committed == res.arrived  # drained fully

    def test_deterministic_rerun(self, tiny_result):
        again = run_matrix(TINY)
        assert again.comparable_rows() == tiny_result.comparable_rows()

    def test_workers_do_not_change_rows(self, tiny_result):
        pooled = run_matrix(TINY, workers=4)
        assert pooled.comparable_rows() == tiny_result.comparable_rows()

    def test_rows_have_fixed_column_order(self, tiny_result):
        for row in tiny_result.rows():
            assert tuple(row) == RUN_TABLE_COLUMNS
        for row in tiny_result.comparable_rows():
            assert tuple(row) == tuple(
                c for c in RUN_TABLE_COLUMNS if c not in RUNTIME_COLUMNS
            )

    def test_cadence_resolved_like_live_compare(self, tiny_result):
        # Auto cadence: tau1 = live_blocks // 25 floor 1, tau2 = 10*tau1.
        for res in tiny_result.results:
            assert res.tau1 >= 1
            assert res.tau2 == 10 * res.tau1

    def test_explicit_cadence_lands_in_params(self):
        spec = MatrixSpec(
            topologies=("ethereum",), scales=(0.02,), allocators=("txallo",),
            cadences=((2, 8),), reps=1,
        )
        res = run_matrix(spec).results[0]
        assert (res.tau1, res.tau2) == (2, 8)

    def test_select(self, tiny_result):
        txallo = tiny_result.select(topology="ethereum", allocator="txallo")
        assert len(txallo) == TINY.reps
        assert all(r.allocator == "txallo" for r in txallo)

    def test_txallo_reports_updates_hash_does_not(self, tiny_result):
        for res in tiny_result.select(allocator="txallo"):
            assert res.global_updates + res.adaptive_updates > 0
        for res in tiny_result.select(allocator="hash"):
            assert res.global_updates == res.adaptive_updates == 0
            assert res.moves == 0
            assert res.allocator_seconds >= 0.0

    def test_faulted_cell_reports_degradation(self):
        spec = MatrixSpec(
            topologies=("ethereum",), scales=(0.02,), allocators=("txallo",),
            cadences=((2, 8),), faults=("standard",), reps=1,
        )
        res = run_matrix(spec).results[0]
        assert res.fault == "standard"
        assert res.degraded_ticks > 0
        assert res.failovers >= 1
        assert res.committed == res.arrived  # supervision loses nothing

    def test_run_cell_single(self):
        cell = TINY.cells()[0]
        res = run_cell(cell)
        assert res.cell_id == cell.cell_id
        assert res.committed_tps > 0
        assert len(res.tick_stats) == res.ticks

    def test_render_mentions_every_cell(self, tiny_result):
        text = tiny_result.render()
        for res in tiny_result.results:
            assert res.cell_id in text


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------
class TestArtifacts:
    def test_artifact_tree(self, tmp_path):
        spec = MatrixSpec(
            topologies=("ethereum",), scales=(0.02,), allocators=("txallo", "hash"),
            reps=1,
        )
        result = run_matrix(spec, out_dir=str(tmp_path / "out"))
        out = tmp_path / "out"
        assert json.loads((out / "spec.json").read_text()) == spec.to_dict()
        with open(out / "run_table.csv", newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(RUN_TABLE_COLUMNS)
        assert len(rows) == 1 + len(result.results)
        for res in result.results:
            run_dir = out / "runs" / res.cell_id
            payload = json.loads((run_dir / "result.json").read_text())
            assert payload["committed"] == res.committed
            with open(run_dir / "ticks.csv", newline="") as handle:
                ticks = list(csv.reader(handle))
            assert len(ticks) == 1 + res.ticks

    def test_rerun_byte_identical_modulo_runtime_columns(self, tmp_path):
        spec = MatrixSpec(
            topologies=("ethereum",), scales=(0.02,), allocators=("hash",), reps=2,
        )
        run_matrix(spec, out_dir=str(tmp_path / "a"))
        run_matrix(spec, out_dir=str(tmp_path / "b"))

        def stripped(path):
            with open(path, newline="") as handle:
                rows = list(csv.reader(handle))
            drop = {rows[0].index(c) for c in RUNTIME_COLUMNS}
            return [
                [v for i, v in enumerate(row) if i not in drop] for row in rows
            ]

        assert stripped(tmp_path / "a" / "run_table.csv") == stripped(
            tmp_path / "b" / "run_table.csv"
        )
        # The per-run tick traces carry no wall-clock at all.
        for run_dir in (tmp_path / "a" / "runs").iterdir():
            mirror = tmp_path / "b" / "runs" / run_dir.name
            assert (run_dir / "ticks.csv").read_bytes() == (
                mirror / "ticks.csv"
            ).read_bytes()
