"""End-to-end integration tests: the full pipeline across modules.

These tests exercise the path a real deployment would take: generate (or
load) a ledger, build the graph, allocate with each method, evaluate
analytically, and cross-check on the event simulator.
"""

import pytest

from repro.baselines import hash_partition, metis_partition, shard_scheduler_partition
from repro.chain.simulator import simulate_allocation
from repro.core.controller import TxAlloController
from repro.core.gtxallo import g_txallo
from repro.core.metrics import evaluate_allocation
from repro.core.params import TxAlloParams
from repro.data.stream import BlockStream


@pytest.fixture(scope="module")
def pipeline(small_workload):
    params = TxAlloParams.with_capacity_for(len(small_workload["sets"]), k=8, eta=2.0)
    result = g_txallo(small_workload["graph"], params)
    return small_workload, params, result


class TestFullPipeline:
    def test_txallo_dominates_baselines_on_throughput(self, pipeline):
        workload, params, result = pipeline
        ours = evaluate_allocation(workload["sets"], result.allocation, params)
        random_rep = evaluate_allocation(
            workload["sets"],
            hash_partition(workload["graph"].nodes_sorted(), params.k),
            params,
        )
        metis_rep = evaluate_allocation(
            workload["sets"], metis_partition(workload["graph"], params.k).mapping, params
        )
        assert ours.normalized_throughput > random_rep.normalized_throughput
        assert ours.normalized_throughput >= metis_rep.normalized_throughput * 0.95

    def test_txallo_lowest_cross_shard_ratio(self, pipeline):
        workload, params, result = pipeline
        ours = evaluate_allocation(workload["sets"], result.allocation, params)
        scheduler = shard_scheduler_partition(workload["sets"], params)
        random_rep = evaluate_allocation(
            workload["sets"],
            hash_partition(workload["graph"].nodes_sorted(), params.k),
            params,
        )
        assert ours.cross_shard_ratio < scheduler.cross_shard_ratio
        assert ours.cross_shard_ratio < random_rep.cross_shard_ratio

    def test_simulator_confirms_analytic_ordering(self, pipeline):
        """The event simulator agrees with Eqs. 2-3 on who wins."""
        workload, params, result = pipeline
        ours = simulate_allocation(
            workload["transactions"], result.allocation.mapping(), params
        )
        hashed = simulate_allocation(
            workload["transactions"],
            hash_partition(workload["graph"].nodes_sorted(), params.k),
            params,
        )
        assert ours.first_unit_throughput > hashed.first_unit_throughput
        assert ours.cross_shard_ratio < hashed.cross_shard_ratio

    def test_analytic_gamma_matches_simulator_exactly(self, pipeline):
        workload, params, result = pipeline
        analytic = evaluate_allocation(workload["sets"], result.allocation, params)
        simulated = simulate_allocation(
            workload["transactions"], result.allocation.mapping(), params
        )
        assert analytic.cross_shard_ratio == pytest.approx(
            simulated.cross_shard_ratio
        )
        assert analytic.shard_workloads == pytest.approx(
            simulated.per_shard_workload
        )


class TestDynamicPipeline:
    def test_controller_over_generated_blocks(self, small_workload):
        blocks = BlockStream(list(small_workload["generator"].blocks()))
        train, evaluation = blocks.split(0.8)
        params = TxAlloParams(
            k=6, eta=2.0, lam=len(small_workload["sets"]) / 6, tau1=2, tau2=8
        )
        controller = TxAlloController(
            params,
            seed_transactions=train.account_sets(),
        )
        for block in evaluation:
            controller.observe_block([tuple(tx.accounts) for tx in block])
        controller.force_adaptive()
        controller.allocation.validate()
        report = evaluate_allocation(
            small_workload["sets"], controller.allocation, params
        )
        assert report.cross_shard_ratio < 0.6

    def test_adaptive_tracks_global_quality(self, small_workload):
        blocks = BlockStream(list(small_workload["generator"].blocks()))
        train, evaluation = blocks.split(0.8)
        params = TxAlloParams(
            k=6, eta=2.0, lam=len(small_workload["sets"]) / 6, tau1=1, tau2=10_000
        )
        controller = TxAlloController(params, seed_transactions=train.account_sets())
        for block in evaluation:
            controller.observe_block([tuple(tx.accounts) for tx in block])
        adaptive_thpt = controller.allocation.total_throughput()
        fresh = g_txallo(controller.graph, params)
        assert adaptive_thpt >= 0.9 * fresh.allocation.total_throughput()
