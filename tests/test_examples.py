"""Smoke tests: every example script runs green end to end."""

import os
import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def run_example(name, *args, timeout=300):
    # The examples are standalone scripts; make the src-layout package
    # importable for them whether or not the package is installed (the
    # test process itself gets it from pyproject's pytest pythonpath).
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert result.returncode == 0, (
        f"{name} failed:\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "recovered the two account clusters" in out


def test_ethereum_replay():
    out = run_example("ethereum_replay.py", "--scale", "0.05", "--k", "6")
    assert "TxAllo (ours)" in out
    assert "Shard Scheduler" in out


def test_adaptive_reallocation():
    out = run_example(
        "adaptive_reallocation.py", "--blocks", "30", "--block-size", "40",
        "--tau1", "3", "--tau2", "15", "--k", "4",
    )
    assert "A-TxAllo" in out


def test_protocol_integration():
    out = run_example("protocol_integration.py", "--k", "4", "--miners", "16",
                      "--scale", "0.05")
    assert "identical allocations" in out
    assert "agree with the event-level simulation" in out


def test_live_comparison():
    out = run_example("live_comparison.py", "--scale", "0.05", "--k", "4")
    assert "registered allocators" in out
    assert "Live comparison" in out
    for label in ("Our Method", "Random", "Metis", "Shard Scheduler"):
        assert label in out
    assert "round_robin" in out
    assert "instantly comparable" in out


def test_extensions_tour():
    out = run_example("extensions_tour.py")
    assert "digest matches" in out


def test_csv_replay(tmp_path):
    """The --csv path of ethereum_replay works on a real-format export."""
    csv = tmp_path / "txs.csv"
    rows = ["hash,from_address,to_address,block_number\n"]
    for i in range(400):
        a, b = i % 23, (i * 7 + 1) % 23
        rows.append(f"0xh{i},0x{a:040x},0x{b:040x},{100 + i // 50}\n")
    csv.write_text("".join(rows))
    out = run_example("ethereum_replay.py", "--csv", str(csv), "--k", "4")
    assert "loaded 400 transactions" in out
