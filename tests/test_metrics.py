"""Tests for the Section III-B metrics, including the latency closed form."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import TransactionGraph
from repro.core.metrics import (
    average_latency,
    evaluate_allocation,
    graph_cross_shard_ratio,
    graph_shard_workloads,
    graph_throughput,
    involved_shards,
    is_cross_shard,
    mu,
    shard_latency,
    workload_balance,
    worst_case_latency,
)
from repro.core.params import TxAlloParams
from repro.errors import AllocationError

MAPPING = {"a": 0, "b": 0, "c": 1, "d": 2}


class TestMu:
    def test_intra_shard(self):
        assert mu(("a", "b"), MAPPING) == 1

    def test_cross_two(self):
        assert mu(("a", "c"), MAPPING) == 2

    def test_cross_three(self):
        assert mu(("a", "c", "d"), MAPPING) == 3

    def test_self_loop_is_intra(self):
        assert mu(("a",), MAPPING) == 1

    def test_is_cross_shard(self):
        assert not is_cross_shard(("a", "b"), MAPPING)
        assert is_cross_shard(("b", "c"), MAPPING)

    def test_unallocated_account_raises(self):
        with pytest.raises(AllocationError):
            involved_shards(("a", "zzz"), MAPPING)


class TestEvaluate:
    def setup_method(self):
        self.params = TxAlloParams(k=3, eta=2.0, lam=10.0)

    def test_counts_and_ratio(self):
        txs = [("a", "b"), ("a", "c"), ("d",), ("b", "c")]
        rep = evaluate_allocation(txs, MAPPING, self.params)
        assert rep.num_transactions == 4
        assert rep.num_cross_shard == 2
        assert rep.cross_shard_ratio == pytest.approx(0.5)

    def test_workloads_follow_eta(self):
        txs = [("a", "b"), ("a", "c")]
        rep = evaluate_allocation(txs, MAPPING, self.params)
        # shard0: 1 intra + eta cross; shard1: eta cross; shard2: idle.
        assert rep.shard_workloads == pytest.approx((3.0, 2.0, 0.0))

    def test_throughput_shares(self):
        txs = [("a", "c")]  # one cross tx over two shards
        rep = evaluate_allocation(txs, MAPPING, self.params)
        assert rep.throughput == pytest.approx(1.0)  # 0.5 + 0.5

    def test_throughput_capped(self):
        params = TxAlloParams(k=3, eta=2.0, lam=2.0)
        txs = [("a", "b")] * 10  # sigma_0 = 10 > lam = 2
        rep = evaluate_allocation(txs, MAPPING, params)
        assert rep.throughput == pytest.approx(2.0)

    def test_empty_stream(self):
        rep = evaluate_allocation([], MAPPING, self.params)
        assert rep.num_transactions == 0
        assert rep.cross_shard_ratio == 0.0

    def test_accepts_plain_dict_or_allocation(self, triangle_graph):
        from repro.core.allocation import Allocation

        params = TxAlloParams(k=2, eta=2.0, lam=10.0)
        partition = {v: 0 for v in triangle_graph.nodes()}
        alloc = Allocation.from_partition(triangle_graph, params, partition)
        txs = [("a", "b")]
        r1 = evaluate_allocation(txs, alloc, params)
        r2 = evaluate_allocation(txs, partition, params)
        assert r1 == r2


class TestBalance:
    def test_uniform_workloads_are_balanced(self):
        assert workload_balance([5.0, 5.0, 5.0], lam=1.0) == 0.0

    def test_known_deviation(self):
        # population std of [0, 2] is 1
        assert workload_balance([0.0, 2.0], lam=1.0) == pytest.approx(1.0)

    def test_lam_normalisation(self):
        assert workload_balance([0.0, 2.0], lam=2.0) == pytest.approx(0.5)

    def test_empty(self):
        assert workload_balance([], lam=1.0) == 0.0

    def test_infinite_lam_returns_raw(self):
        assert workload_balance([0.0, 2.0], lam=math.inf) == pytest.approx(1.0)


class TestLatency:
    def test_underloaded_shard_latency_is_one(self):
        assert shard_latency(5.0, lam=10.0) == 1.0

    def test_exactly_full_shard(self):
        assert shard_latency(10.0, lam=10.0) == 1.0

    def test_empty_shard(self):
        assert shard_latency(0.0, lam=10.0) == 1.0

    def test_integer_normalised_workload(self):
        # sigma_hat = 2: integral 0..2 of ceil = 1 + 2 = 3; 3/2 = 1.5.
        # (The paper's printed closed form degenerates here; the exact
        # integral is what Eq. 4 defines.)
        assert shard_latency(20.0, lam=10.0) == pytest.approx(1.5)

    def test_fractional_normalised_workload_matches_paper_formula(self):
        sigma_hat = 2.5
        paper = (
            math.floor(sigma_hat) * math.ceil(sigma_hat) / (2 * sigma_hat)
            + (sigma_hat - math.floor(sigma_hat)) * math.ceil(sigma_hat) / sigma_hat
        )
        assert shard_latency(25.0, lam=10.0) == pytest.approx(paper)

    def test_latency_monotone_in_workload(self):
        values = [shard_latency(s, lam=10.0) for s in (5, 10, 15, 20, 40, 80)]
        assert values == sorted(values)

    def test_invalid_capacity(self):
        with pytest.raises(AllocationError):
            shard_latency(1.0, lam=0.0)

    def test_average_latency(self):
        assert average_latency([5.0, 25.0], lam=10.0) == pytest.approx(
            (1.0 + shard_latency(25.0, 10.0)) / 2
        )

    def test_worst_case_is_ceiling_of_max(self):
        assert worst_case_latency([5.0, 33.0], lam=10.0) == 4.0

    def test_worst_case_minimum_one(self):
        assert worst_case_latency([0.5], lam=10.0) == 1.0

    def test_worst_case_empty_system(self):
        assert worst_case_latency([0.0, 0.0], lam=10.0) == 1.0

    @given(sigma=st.floats(min_value=0.0, max_value=1e4))
    @settings(max_examples=100, deadline=None)
    def test_property_latency_equals_numeric_integral(self, sigma):
        """Closed form == numeric integral of ceil(x) on [0, sigma_hat]."""
        lam = 10.0
        sigma_hat = sigma / lam
        if sigma_hat <= 0:
            return
        whole = int(math.floor(sigma_hat))
        numeric = whole * (whole + 1) / 2.0
        if sigma_hat > whole:
            numeric += (sigma_hat - whole) * (whole + 1)
        expected = max(1.0, numeric / sigma_hat)
        assert shard_latency(sigma, lam) == pytest.approx(expected)


class TestGraphLevel:
    def build(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        g.add_transaction(("b", "c"))
        g.add_transaction(("c",))
        return g

    def test_graph_workloads_match_eq5(self):
        g = self.build()
        params = TxAlloParams(k=2, eta=3.0, lam=10.0)
        mapping = {"a": 0, "b": 0, "c": 1}
        sigma = graph_shard_workloads(g, mapping, params)
        # shard0: intra {a,b}=1 + cut {b,c}=3 -> 4 ; shard1: loop 1 + cut 3.
        assert sigma == pytest.approx([4.0, 4.0])

    def test_graph_cross_ratio(self):
        g = self.build()
        mapping = {"a": 0, "b": 0, "c": 1}
        assert graph_cross_shard_ratio(g, mapping) == pytest.approx(1.0 / 3.0)

    def test_graph_cross_ratio_all_intra(self):
        g = self.build()
        mapping = {"a": 0, "b": 0, "c": 0}
        assert graph_cross_shard_ratio(g, mapping) == 0.0

    def test_graph_throughput_all_intra_equals_weight(self):
        g = self.build()
        params = TxAlloParams(k=2, eta=3.0, lam=100.0)
        mapping = {"a": 0, "b": 0, "c": 0}
        assert graph_throughput(g, mapping, params) == pytest.approx(3.0)

    def test_graph_throughput_agrees_with_allocation_cache(self, clustered_graph):
        from repro.core.allocation import Allocation

        params = TxAlloParams(k=3, eta=2.0, lam=50.0)
        partition = {v: i % 3 for i, v in enumerate(clustered_graph.nodes())}
        alloc = Allocation.from_partition(clustered_graph, params, partition)
        assert graph_throughput(clustered_graph, partition, params) == pytest.approx(
            alloc.total_throughput()
        )

    def test_graph_and_tx_level_agree_on_pairwise_workloads(self):
        """For 1-in-1-out transactions the two sigma definitions coincide."""
        g = TransactionGraph()
        txs = [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")]
        for t in txs:
            g.add_transaction(t)
        params = TxAlloParams(k=2, eta=2.0, lam=10.0)
        mapping = {"a": 0, "b": 0, "c": 1, "d": 1}
        graph_sigma = graph_shard_workloads(g, mapping, params)
        tx_sigma = evaluate_allocation(txs, mapping, params).shard_workloads
        assert graph_sigma == pytest.approx(list(tx_sigma))
