"""Ablation — allocate on decayed (EWMA) history vs. cumulative history.

The paper's future-work direction (Section VIII): prediction of future
transaction patterns.  This ablation builds a drifting workload — the
community structure rotates halfway through the stream — and compares
two G-TxAllo inputs:

* the **cumulative** transaction graph (the paper's setting);
* a **decayed** graph (halflife = 4 windows) that forgets old patterns.

Under drift, the decayed graph is a better forecast of the next window
(lower L1 distance) and yields an allocation with a lower cross-shard
ratio on the *future* traffic.
"""

import pytest

from repro.core.forecast import DecayingTransactionGraph, forecast_error
from repro.core.graph import TransactionGraph
from repro.core.gtxallo import g_txallo
from repro.core.metrics import evaluate_allocation
from repro.core.params import TxAlloParams
from repro.data.synthetic import EthereumWorkloadGenerator, WorkloadConfig, account_sets


def drifting_windows(num_windows=8, txs_per_window=2500):
    """A workload whose community structure rotates mid-stream."""
    first = EthereumWorkloadGenerator(
        WorkloadConfig(num_accounts=1200, num_transactions=txs_per_window
                       * (num_windows // 2), seed=11)
    )
    second = EthereumWorkloadGenerator(
        WorkloadConfig(num_accounts=1200, num_transactions=txs_per_window
                       * (num_windows - num_windows // 2), seed=77)
    )
    windows = []
    for gen in (first, second):
        sets_ = account_sets(gen.generate())
        for start in range(0, len(sets_), txs_per_window):
            windows.append(sets_[start:start + txs_per_window])
    return [w for w in windows if w]


@pytest.fixture(scope="module")
def drift_setup():
    windows = drifting_windows()
    history, future = windows[:-1], windows[-1]

    cumulative = TransactionGraph()
    decayed = DecayingTransactionGraph.from_halflife(2.0)
    for window in history:
        for tx in window:
            cumulative.add_transaction(tx)
        decayed.ingest_window(window)

    actual = TransactionGraph()
    for tx in future:
        actual.add_transaction(tx)
    return cumulative, decayed, actual, future


def test_ablation_report(drift_setup):
    cumulative, decayed, actual, future = drift_setup
    from repro.eval.reporting import format_table

    k = 10
    rows = []
    for name, graph in [("cumulative", cumulative), ("decayed (EWMA)", decayed)]:
        params = TxAlloParams.with_capacity_for(len(future), k=k, eta=2.0)
        mapping = dict(g_txallo(graph, params).allocation.mapping())
        for account in {a for tx in future for a in tx}:
            mapping.setdefault(account, 0)
        report = evaluate_allocation(future, mapping, params)
        rows.append((
            name,
            forecast_error(graph, actual),
            report.cross_shard_ratio,
            report.normalized_throughput,
        ))
    print()
    print(format_table(
        ["history graph", "forecast L1 error", "future gamma", "future thpt (x)"],
        rows,
    ))


def test_decayed_graph_is_better_forecast(drift_setup):
    cumulative, decayed, actual, _ = drift_setup
    assert forecast_error(decayed, actual) < forecast_error(cumulative, actual)


def test_decayed_allocation_wins_on_future_traffic(drift_setup):
    cumulative, decayed, _, future = drift_setup
    k = 10
    params = TxAlloParams.with_capacity_for(len(future), k=k, eta=2.0)
    gammas = {}
    for name, graph in [("cumulative", cumulative), ("decayed", decayed)]:
        mapping = dict(g_txallo(graph, params).allocation.mapping())
        for account in {a for tx in future for a in tx}:
            mapping.setdefault(account, 0)
        gammas[name] = evaluate_allocation(future, mapping, params).cross_shard_ratio
    assert gammas["decayed"] <= gammas["cumulative"] + 0.02


def test_decayed_graph_is_smaller_with_pruning(drift_setup):
    """Forgetting dead patterns bounds the graph TxAllo must sweep.

    The default prune threshold (1e-4) only bites over long streams;
    here we re-fold the same history with an operational threshold (an
    edge below 5 % of a transaction's weight no longer influences the
    allocation) to show the mechanism."""
    cumulative, _, _, _ = drift_setup
    windows = drifting_windows()[:-1]
    aggressive = DecayingTransactionGraph(decay=0.5, prune_threshold=0.05)
    for window in windows:
        aggressive.ingest_window(window)
    assert aggressive.num_edges < cumulative.num_edges
    # Pruning must keep the counters exact.
    assert aggressive.num_edges == sum(1 for _ in aggressive.edges())


def test_bench_decayed_ingest(benchmark, drift_setup):
    _, _, _, future = drift_setup

    def ingest():
        g = DecayingTransactionGraph.from_halflife(2.0)
        g.ingest_window(future)
        g.advance_window()
        return g

    benchmark(ingest)
