#!/usr/bin/env python3
"""Tour of the paper's extension points implemented in this repo.

Four things the paper sketches but does not evaluate, shown end to end:

1. **Role-aware workload pricing** (§III-A "fine-tuning"): input shards
   pay more than output shards, wide transactions pay a surcharge — and
   the single η the optimiser should use is derived from the model.
2. **Forecast-driven allocation** (§VIII future work): allocate on an
   exponentially decayed transaction graph so dead traffic patterns
   stop anchoring accounts.
3. **Migration accounting** (§VII): how many accounts an allocation
   update actually moves, and what it costs under type-1 vs. type-2
   sharding.
4. **Checkpoints & digests** (§IV-A operationalised): persist the
   allocation, verify integrity, and compare miners by 32-byte digests.

Run with::

    python examples/extensions_tour.py
"""

import tempfile
from pathlib import Path

from repro import TransactionGraph, TxAlloParams, g_txallo
from repro.chain import migration_plan
from repro.core import (
    DecayingTransactionGraph,
    RoleAwareModel,
    UniformEta,
    allocation_digest,
    effective_eta,
    evaluate_with_model,
    forecast_error,
    load_allocation,
    save_allocation,
)
from repro.data import EthereumWorkloadGenerator, WorkloadConfig, account_sets


def main() -> None:
    config = WorkloadConfig(num_accounts=1200, num_transactions=8000, seed=9)
    generator = EthereumWorkloadGenerator(config)
    transactions = generator.generate()
    sets_ = account_sets(transactions)

    # ------------------------------------------------------------------
    # 1. Role-aware workload pricing.
    model = RoleAwareModel(input_eta=3.0, output_eta=1.5, fanout_surcharge=0.25)
    eta = effective_eta(model)
    print(f"1) role-aware model: input={model.input_eta} output={model.output_eta} "
          f"-> effective eta for the optimiser: {eta:.2f}")

    graph = TransactionGraph()
    for s in sets_:
        graph.add_transaction(s)
    params = TxAlloParams.with_capacity_for(len(sets_), k=8, eta=eta)
    allocation = g_txallo(graph, params).allocation
    mapping = allocation.mapping()

    uniform = evaluate_with_model(transactions, mapping, params, UniformEta(eta))
    aware = evaluate_with_model(transactions, mapping, params, model)
    print(f"   same allocation priced two ways: uniform rho={uniform.workload_balance:.3f}, "
          f"role-aware rho={aware.workload_balance:.3f} "
          f"(gamma identical: {uniform.cross_shard_ratio:.3f})")

    # ------------------------------------------------------------------
    # 2. Forecast-driven allocation under drift.
    half = len(sets_) // 2
    shifted = EthereumWorkloadGenerator(
        WorkloadConfig(num_accounts=1200, num_transactions=4000, seed=77)
    )
    future_sets = account_sets(shifted.generate())

    cumulative = TransactionGraph()
    decayed = DecayingTransactionGraph.from_halflife(2.0)
    for window in (sets_[:half], sets_[half:], future_sets[:2000]):
        for tx in window:
            cumulative.add_transaction(tx)
        decayed.ingest_window(window)

    actual = TransactionGraph()
    for tx in future_sets[2000:]:
        actual.add_transaction(tx)
    print(f"\n2) forecast error vs the next window: cumulative="
          f"{forecast_error(cumulative, actual):.3f}, "
          f"decayed={forecast_error(decayed, actual):.3f} (lower is better)")

    # ------------------------------------------------------------------
    # 3. Migration accounting between two consecutive allocations.
    new_params = params.replace(eta=eta + 2.0)
    new_mapping = g_txallo(graph, new_params).allocation.mapping()
    plan = migration_plan(mapping, new_mapping, k=params.k)
    print(f"\n3) reallocation moved {plan.moved_count} of {plan.total_accounts} "
          f"accounts (churn {plan.churn_ratio:.1%})")
    print(f"   type-1 (replicated state) storage overhead: "
          f"{plan.storage_overhead_bytes(sharded_state=False)} bytes")
    print(f"   type-2 (sharded state)    storage overhead: "
          f"{plan.storage_overhead_bytes(sharded_state=True)} bytes, "
          f"{plan.communication_overhead_messages()} extra network messages")

    # ------------------------------------------------------------------
    # 4. Checkpoint + digest agreement.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "allocation.json"
        digest = save_allocation(path, mapping, params, block_height=1234)
        loaded_mapping, loaded_params, height = load_allocation(path)
        assert loaded_mapping == mapping and loaded_params == params
        other_miner = g_txallo(graph.copy(), params).allocation.mapping()
        assert allocation_digest(other_miner) == digest
        print(f"\n4) checkpoint round-trips (height {height}); an independent "
              f"miner's digest matches: {digest[:16]}... ✔")


if __name__ == "__main__":
    main()
