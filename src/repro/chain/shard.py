"""Per-shard state for the discrete-time simulator.

A shard maintains the accounts allocated to it, a chronological queue of
transaction work items and its capacity ``λ`` per time unit (block
interval).  Cross-shard transactions appear as work items in *every*
involved shard, each costing ``η`` workload but contributing only
``1/μ(Tx)`` throughput — the paper's no-double-counting rule.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, List, Set

from repro.chain.types import Address, Transaction
from repro.errors import SimulationError


@dataclasses.dataclass(frozen=True)
class WorkItem:
    """One transaction's slice of work inside one shard."""

    tx: Transaction
    cost: float        # 1 for intra-shard, eta for cross-shard
    share: float       # throughput credit: 1/mu(tx)
    enqueued_at: int   # time unit of arrival


@dataclasses.dataclass
class ProcessedItem:
    """A completed work item, with its completion time."""

    item: WorkItem
    completed_at: int

    @property
    def latency(self) -> int:
        """Confirmation latency in time units (>= 1)."""
        return self.completed_at - self.item.enqueued_at + 1


class ShardState:
    """One shard's accounts, queue and processing loop."""

    def __init__(self, shard_id: int, capacity: float) -> None:
        if capacity <= 0:
            raise SimulationError(f"shard capacity must be positive, got {capacity!r}")
        self.shard_id = shard_id
        self.capacity = capacity
        self.accounts: Set[Address] = set()
        self._queue: Deque[WorkItem] = collections.deque()
        self._carry = 0.0  # partial progress on the queue head
        self.total_workload = 0.0
        self.processed: List[ProcessedItem] = []
        self.throughput_credit = 0.0

    # ------------------------------------------------------------------
    def assign_account(self, account: Address) -> None:
        self.accounts.add(account)

    def remove_account(self, account: Address) -> None:
        self.accounts.discard(account)

    def enqueue(self, tx: Transaction, cost: float, share: float, now: int) -> None:
        """Queue one work item, chronologically."""
        if cost <= 0 or share <= 0:
            raise SimulationError(
                f"work item needs positive cost/share, got cost={cost!r} share={share!r}"
            )
        self._queue.append(WorkItem(tx=tx, cost=cost, share=share, enqueued_at=now))
        self.total_workload += cost

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def backlog_workload(self) -> float:
        return sum(item.cost for item in self._queue) - self._carry

    # ------------------------------------------------------------------
    def step(self, now: int) -> List[ProcessedItem]:
        """Process one time unit: spend up to ``capacity`` workload.

        Strictly chronological — the head of the queue must finish before
        the next item starts, so an expensive cross-shard transaction
        cannot be skipped in favour of cheap intra-shard ones
        (Section III-B's fairness rule).  Work on the head may span
        multiple units (``_carry`` tracks partial progress).
        """
        budget = self.capacity
        done: List[ProcessedItem] = []
        while self._queue and budget > 1e-12:
            head = self._queue[0]
            remaining = head.cost - self._carry
            if remaining <= budget + 1e-12:
                self._queue.popleft()
                self._carry = 0.0
                budget -= remaining
                completed = ProcessedItem(item=head, completed_at=now)
                done.append(completed)
                self.processed.append(completed)
                self.throughput_credit += head.share
            else:
                self._carry += budget
                budget = 0.0
        return done

    def drain_fully(self, start: int, max_units: int = 10_000_000) -> int:
        """Run :meth:`step` until the queue empties; returns units used."""
        now = start
        used = 0
        while self._queue:
            self.step(now)
            now += 1
            used += 1
            if used > max_units:
                raise SimulationError(
                    f"shard {self.shard_id} failed to drain within {max_units} units"
                )
        return used
