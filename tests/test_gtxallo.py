"""Tests for Algorithm 1 (G-TxAllo)."""


from repro.core.graph import TransactionGraph
from repro.core.gtxallo import g_txallo
from repro.core.metrics import evaluate_allocation, graph_cross_shard_ratio
from repro.core.params import TxAlloParams
from repro.baselines.hash_allocation import hash_partition
from tests.conftest import make_random_graph


def planted_graph(seed=13):
    return make_random_graph(num_accounts=80, num_transactions=600, seed=seed, groups=4)


class TestBasics:
    def test_result_is_valid_allocation(self):
        graph = planted_graph()
        params = TxAlloParams.with_capacity_for(600, k=4, eta=2.0)
        result = g_txallo(graph, params)
        result.allocation.validate()
        assert result.allocation.num_communities == 4

    def test_every_account_allocated(self):
        graph = planted_graph()
        params = TxAlloParams.with_capacity_for(600, k=4, eta=2.0)
        mapping = g_txallo(graph, params).allocation.mapping()
        assert set(mapping) == set(graph.nodes())
        assert set(mapping.values()) <= set(range(4))

    def test_recovers_planted_communities(self):
        graph = planted_graph()
        params = TxAlloParams.with_capacity_for(600, k=4, eta=2.0)
        result = g_txallo(graph, params)
        assert graph_cross_shard_ratio(graph, result.allocation) < 0.30

    def test_beats_hash_allocation_on_cross_shard(self):
        graph = planted_graph()
        params = TxAlloParams.with_capacity_for(600, k=4, eta=2.0)
        ours = graph_cross_shard_ratio(graph, g_txallo(graph, params).allocation)
        hashed = graph_cross_shard_ratio(graph, hash_partition(graph.nodes_sorted(), 4))
        assert ours < hashed

    def test_throughput_never_below_initialisation(self):
        graph = planted_graph()
        params = TxAlloParams.with_capacity_for(600, k=4, eta=2.0)
        result = g_txallo(graph, params)
        from repro.core.allocation import Allocation

        hash_alloc = Allocation.from_partition(
            graph, params, hash_partition(graph.nodes_sorted(), 4)
        )
        assert result.allocation.total_throughput() >= hash_alloc.total_throughput()

    def test_more_shards_than_louvain_communities(self):
        """The uncommon l <= k path pads with empty shards."""
        g = TransactionGraph()
        for pair in [("a", "b"), ("b", "c"), ("a", "c")]:
            g.add_transaction(pair)
        params = TxAlloParams.with_capacity_for(3, k=5, eta=2.0)
        result = g_txallo(g, params)
        result.allocation.validate()
        assert result.allocation.num_communities == 5

    def test_single_shard(self):
        graph = planted_graph()
        params = TxAlloParams.with_capacity_for(600, k=1, eta=2.0)
        result = g_txallo(graph, params)
        assert set(result.allocation.mapping().values()) == {0}
        assert graph_cross_shard_ratio(graph, result.allocation) == 0.0

    def test_stats_populated(self):
        graph = planted_graph()
        params = TxAlloParams.with_capacity_for(600, k=4, eta=2.0)
        result = g_txallo(graph, params)
        assert result.sweeps >= 1
        assert result.louvain_communities >= 1
        assert result.init_seconds >= 0.0
        assert result.total_seconds >= result.optimise_seconds


class TestDeterminism:
    def test_identical_runs_identical_mappings(self):
        graph = planted_graph()
        params = TxAlloParams.with_capacity_for(600, k=4, eta=2.0)
        m1 = g_txallo(graph, params).allocation.mapping()
        m2 = g_txallo(graph, params).allocation.mapping()
        assert m1 == m2

    def test_graph_copy_identical_mapping(self):
        graph = planted_graph()
        params = TxAlloParams.with_capacity_for(600, k=4, eta=2.0)
        m1 = g_txallo(graph, params).allocation.mapping()
        m2 = g_txallo(graph.copy(), params).allocation.mapping()
        assert m1 == m2

    def test_rebuilt_workload_identical_mapping(self):
        params = TxAlloParams.with_capacity_for(600, k=4, eta=2.0)
        m1 = g_txallo(planted_graph(), params).allocation.mapping()
        m2 = g_txallo(planted_graph(), params).allocation.mapping()
        assert m1 == m2


class TestCustomInitialisation:
    def test_explicit_partition_respected(self):
        graph = planted_graph()
        params = TxAlloParams.with_capacity_for(600, k=4, eta=2.0)
        init = hash_partition(graph.nodes_sorted(), 4)
        result = g_txallo(graph, params, initial_partition=init)
        result.allocation.validate()

    def test_louvain_init_at_least_as_good_as_hash_init(self):
        graph = planted_graph()
        params = TxAlloParams.with_capacity_for(600, k=4, eta=2.0)
        louvain_run = g_txallo(graph, params)
        hash_run = g_txallo(
            graph, params, initial_partition=hash_partition(graph.nodes_sorted(), 4)
        )
        assert (
            louvain_run.allocation.total_throughput()
            >= hash_run.allocation.total_throughput() - params.epsilon * 10
        )

    def test_node_order_changes_are_deterministic_too(self):
        graph = planted_graph()
        params = TxAlloParams.with_capacity_for(600, k=4, eta=2.0)
        order = list(reversed(graph.nodes_sorted()))
        m1 = g_txallo(graph, params, node_order=order).allocation.mapping()
        m2 = g_txallo(graph, params, node_order=order).allocation.mapping()
        assert m1 == m2


class TestEtaSelfAdjustment:
    def test_larger_eta_does_not_increase_cross_ratio(self):
        """Section VI-B2: larger eta prioritises gamma."""
        graph = planted_graph()
        ratios = []
        for eta in (1.0, 4.0, 10.0):
            params = TxAlloParams.with_capacity_for(600, k=4, eta=eta)
            ratios.append(
                graph_cross_shard_ratio(graph, g_txallo(graph, params).allocation)
            )
        assert ratios[-1] <= ratios[0] + 0.05


class TestEndToEndMetrics:
    def test_transaction_level_report(self, small_workload):
        params = TxAlloParams.with_capacity_for(
            len(small_workload["sets"]), k=8, eta=2.0
        )
        result = g_txallo(small_workload["graph"], params)
        report = evaluate_allocation(small_workload["sets"], result.allocation, params)
        assert report.cross_shard_ratio < 0.5
        assert report.normalized_throughput > 1.0
        assert report.average_latency >= 1.0
