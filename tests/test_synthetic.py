"""Tests for the synthetic Ethereum workload generator."""

import pytest

from repro.data.synthetic import (
    EthereumWorkloadGenerator,
    WorkloadConfig,
    account_sets,
)
from repro.errors import ParameterError


def small_config(**overrides):
    base = dict(num_accounts=600, num_transactions=4000, seed=3)
    base.update(overrides)
    return WorkloadConfig(**base)


class TestConfigValidation:
    def test_defaults_valid(self):
        WorkloadConfig()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_accounts", 1),
            ("num_transactions", 0),
            ("block_size", 0),
            ("hub_share", 1.0),
            ("community_affinity", 1.5),
            ("self_loop_rate", -0.1),
            ("multi_io_rate", 1.0),
            ("multi_io_max", 2),
            ("hub_periphery_fraction", 0.95),
            ("hub_periphery_affinity", 2.0),
        ],
    )
    def test_invalid_field_rejected(self, field, value):
        with pytest.raises(ParameterError):
            WorkloadConfig(**{field: value})

    def test_auto_communities(self):
        assert WorkloadConfig(num_accounts=3000).resolved_communities() == 40
        assert WorkloadConfig(num_accounts=100).resolved_communities() == 8
        assert WorkloadConfig(num_communities=5).resolved_communities() == 5


class TestGeneration:
    def test_transaction_count(self):
        gen = EthereumWorkloadGenerator(small_config())
        assert len(gen.generate()) == 4000

    def test_deterministic(self):
        g1 = EthereumWorkloadGenerator(small_config()).generate()
        g2 = EthereumWorkloadGenerator(small_config()).generate()
        assert [t.tx_id for t in g1] == [t.tx_id for t in g2]

    def test_seed_changes_stream(self):
        g1 = EthereumWorkloadGenerator(small_config(seed=1)).generate()
        g2 = EthereumWorkloadGenerator(small_config(seed=2)).generate()
        assert [t.tx_id for t in g1] != [t.tx_id for t in g2]

    def test_lazy_iteration_matches_generate(self):
        gen = EthereumWorkloadGenerator(small_config())
        assert [t.tx_id for t in gen.transactions()] == [
            t.tx_id for t in gen.generate()
        ]

    def test_every_community_nonempty(self):
        gen = EthereumWorkloadGenerator(small_config())
        for community, members in gen.members.items():
            assert members, f"community {community} is empty"

    def test_blocks_linked_and_sized(self):
        gen = EthereumWorkloadGenerator(small_config(block_size=100))
        blocks = list(gen.blocks())
        assert len(blocks) == 40
        for i in range(1, len(blocks)):
            assert blocks[i].parent_hash == blocks[i - 1].block_hash
            assert blocks[i].height == i
        assert all(len(b) == 100 for b in blocks)

    def test_partial_last_block(self):
        gen = EthereumWorkloadGenerator(
            small_config(num_transactions=4050, block_size=100)
        )
        blocks = list(gen.blocks())
        assert len(blocks) == 41
        assert len(blocks[-1]) == 50


class TestStructuralFacts:
    """The generator must reproduce the paper's dataset facts (§VI-A)."""

    @pytest.fixture(scope="class")
    def card(self):
        gen = EthereumWorkloadGenerator(small_config(num_transactions=8000))
        return gen.dataset_card()

    def test_hub_share_close_to_target(self, card):
        assert 0.08 <= card.top_account_share <= 0.16

    def test_self_loops_present(self, card):
        assert 0.003 <= card.self_loop_ratio <= 0.03

    def test_multi_io_present(self, card):
        assert 0.02 <= card.multi_io_ratio <= 0.10

    def test_long_tail(self):
        gen = EthereumWorkloadGenerator(small_config(num_transactions=8000))
        txs = gen.generate()
        counts = {}
        for tx in txs:
            for a in tx.accounts:
                counts[a] = counts.get(a, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        # Median activity is tiny compared to the top account.
        median = ranked[len(ranked) // 2]
        assert ranked[0] > 20 * median

    def test_hub_is_most_active(self):
        gen = EthereumWorkloadGenerator(small_config(num_transactions=8000))
        txs = gen.generate()
        counts = {}
        for tx in txs:
            for a in tx.accounts:
                counts[a] = counts.get(a, 0) + 1
        top = max(counts, key=lambda a: counts[a])
        assert top == gen.hub

    def test_community_structure_detectable(self):
        from repro.core.graph import TransactionGraph
        from repro.core.louvain import louvain_partition, modularity

        gen = EthereumWorkloadGenerator(small_config(num_transactions=8000))
        graph = TransactionGraph()
        for s in account_sets(gen.generate()):
            graph.add_transaction(s)
        part = louvain_partition(graph)
        assert modularity(graph, part) > 0.3

    def test_dataset_card_accepts_external_stream(self):
        gen = EthereumWorkloadGenerator(small_config())
        txs = gen.generate()[:100]
        card = gen.dataset_card(txs)
        assert card.num_transactions == 100


class TestAccountSets:
    def test_sorted_tuples(self):
        gen = EthereumWorkloadGenerator(small_config(num_transactions=50))
        for accounts in account_sets(gen.generate()):
            assert list(accounts) == sorted(accounts)
            assert len(set(accounts)) == len(accounts)
