"""Discrete-time sharded-chain simulator.

The paper evaluates allocations *analytically* — Eqs. (2)-(4) model each
shard as a queue drained chronologically at rate ``λ`` per block interval.
This simulator actually runs that system: it applies an account-shard
mapping, enqueues every transaction in all of its involved shards (cost 1
intra, ``η`` cross; throughput credit ``1/μ``), and steps the shards one
block interval at a time.

Its report cross-validates the closed forms:

* throughput processed in the **first** time unit equals ``Λ`` of
  Eqs. (2)-(3) (the analytic Λ is a steady-state per-unit rate);
* the mean per-shard confirmation latency equals ``ζ`` of Eq. (4) up to
  work-item granularity (the integral treats workload as a fluid);
* the slowest shard drains in exactly ``⌈σ_max / λ⌉`` units — the
  worst-case latency of Fig. 7.

``tests/test_simulator_crossvalidation.py`` asserts all three.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence

from repro.chain.shard import ShardState
from repro.chain.types import Address, Transaction
from repro.core.params import TxAlloParams
from repro.errors import AllocationError, SimulationError


@dataclasses.dataclass(frozen=True)
class SimulationReport:
    """Empirical counterparts of the paper's analytic metrics."""

    num_transactions: int
    num_cross_shard: int
    cross_shard_ratio: float
    first_unit_throughput: float
    total_units: int
    per_shard_workload: tuple
    per_shard_mean_latency: tuple
    mean_latency: float
    worst_case_latency: int


class ShardedChainSimulator:
    """Applies a mapping, runs the shards, measures what really happens."""

    def __init__(self, params: TxAlloParams, mapping: Dict[Address, int]) -> None:
        self.params = params
        self.mapping = mapping
        self.shards: List[ShardState] = [
            ShardState(i, params.lam) for i in range(params.k)
        ]
        for account, shard in mapping.items():
            if not 0 <= shard < params.k:
                raise AllocationError(
                    f"account {account!r} mapped to invalid shard {shard!r}"
                )
            self.shards[shard].assign_account(account)
        self._num_transactions = 0
        self._num_cross = 0

    # ------------------------------------------------------------------
    def submit(self, tx: Transaction, now: int = 0) -> int:
        """Route one transaction into its involved shards; returns μ(Tx)."""
        try:
            involved = sorted({self.mapping[a] for a in tx.accounts})
        except KeyError as exc:
            raise AllocationError(
                f"account {exc.args[0]!r} of tx {tx.tx_id} is not allocated"
            ) from None
        m = len(involved)
        self._num_transactions += 1
        if m == 1:
            self.shards[involved[0]].enqueue(tx, cost=1.0, share=1.0, now=now)
        else:
            self._num_cross += 1
            share = 1.0 / m
            for i in involved:
                self.shards[i].enqueue(tx, cost=self.params.eta, share=share, now=now)
        return m

    def submit_all(self, txs: Iterable[Transaction], now: int = 0) -> None:
        for tx in txs:
            self.submit(tx, now)

    # ------------------------------------------------------------------
    def run(self, max_units: int = 1_000_000) -> SimulationReport:
        """Step all shards until every queue drains; build the report."""
        first_unit_credit = 0.0
        now = 0
        while any(s.queue_length for s in self.shards):
            if now >= max_units:
                raise SimulationError(f"simulation did not drain within {max_units} units")
            for shard in self.shards:
                before = shard.throughput_credit
                shard.step(now=now)
                if now == 0:
                    first_unit_credit += shard.throughput_credit - before
            now += 1
        units = now
        per_shard_latency = []
        for shard in self.shards:
            if shard.processed:
                per_shard_latency.append(
                    sum(p.latency for p in shard.processed) / len(shard.processed)
                )
            else:
                per_shard_latency.append(1.0)
        worst = 0
        for shard in self.shards:
            for p in shard.processed:
                worst = max(worst, p.latency)
        total = self._num_transactions
        return SimulationReport(
            num_transactions=total,
            num_cross_shard=self._num_cross,
            cross_shard_ratio=(self._num_cross / total) if total else 0.0,
            first_unit_throughput=first_unit_credit,
            total_units=units,
            per_shard_workload=tuple(s.total_workload for s in self.shards),
            per_shard_mean_latency=tuple(per_shard_latency),
            mean_latency=sum(per_shard_latency) / len(per_shard_latency),
            worst_case_latency=worst,
        )


def simulate_allocation(
    transactions: Sequence[Transaction],
    mapping: Dict[Address, int],
    params: TxAlloParams,
    max_units: Optional[int] = None,
) -> SimulationReport:
    """One-shot convenience: submit everything at t=0 and drain.

    This reproduces the analytic model's setting exactly: all workload is
    present up front and the shards drain it at rate ``λ``.
    """
    sim = ShardedChainSimulator(params, mapping)
    sim.submit_all(transactions, now=0)
    return sim.run(max_units=max_units if max_units is not None else 1_000_000)
