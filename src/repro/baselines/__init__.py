"""Baseline allocators the paper compares TxAllo against (Section VI-B).

* :mod:`repro.baselines.hash_allocation` — hash-based random allocation
  (Chainspace / Monoxide style), the incumbent in deployed protocols;
* :mod:`repro.baselines.metis` — a from-scratch METIS-style multilevel
  partitioner, the backbone of the graph-based prior works
  (Fynn et al., Mizrahi & Rottenstreich, BrokerChain);
* :mod:`repro.baselines.shard_scheduler` — the transaction-level online
  allocator of Krol et al. (AFT'21).
"""

from repro.baselines.hash_allocation import (
    account_digest,
    hash_partition,
    hash_shard,
    prefix_partition,
    prefix_shard,
)
from repro.baselines.metis import MetisResult, metis_partition
from repro.baselines.shard_scheduler import (
    SchedulerResult,
    ShardScheduler,
    shard_scheduler_partition,
)

__all__ = [
    "MetisResult",
    "SchedulerResult",
    "ShardScheduler",
    "account_digest",
    "hash_partition",
    "hash_shard",
    "metis_partition",
    "prefix_partition",
    "prefix_shard",
    "shard_scheduler_partition",
]
