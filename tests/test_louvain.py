"""Tests for the deterministic Louvain implementation."""

import pytest

from repro.core.graph import TransactionGraph
from repro.core.louvain import louvain_partition, modularity
from tests.conftest import make_random_graph


def two_cliques(size=5, bridge_weight=1):
    g = TransactionGraph()
    left = [f"l{i}" for i in range(size)]
    right = [f"r{i}" for i in range(size)]
    for group in (left, right):
        for i in range(size):
            for j in range(i + 1, size):
                g.add_transaction((group[i], group[j]))
    for _ in range(bridge_weight):
        g.add_transaction((left[0], right[0]))
    return g, left, right


class TestStructureRecovery:
    def test_two_cliques_found(self):
        g, left, right = two_cliques()
        part = louvain_partition(g)
        left_labels = {part[v] for v in left}
        right_labels = {part[v] for v in right}
        assert len(left_labels) == 1
        assert len(right_labels) == 1
        assert left_labels != right_labels

    def test_labels_are_dense_from_zero(self):
        g, _, _ = two_cliques()
        labels = set(louvain_partition(g).values())
        assert labels == set(range(len(labels)))

    def test_single_clique_single_community(self):
        g = TransactionGraph()
        nodes = [f"n{i}" for i in range(6)]
        for i in range(6):
            for j in range(i + 1, 6):
                g.add_transaction((nodes[i], nodes[j]))
        assert len(set(louvain_partition(g).values())) == 1

    def test_empty_graph(self):
        assert louvain_partition(TransactionGraph()) == {}

    def test_isolated_self_loop_node(self):
        g = TransactionGraph()
        g.add_transaction(("solo",))
        g.add_transaction(("a", "b"))
        part = louvain_partition(g)
        assert part["solo"] != part["a"]

    def test_all_nodes_labelled(self, clustered_graph):
        part = louvain_partition(clustered_graph)
        assert set(part) == set(clustered_graph.nodes())

    def test_three_planted_groups_recovered(self):
        g = make_random_graph(num_accounts=60, num_transactions=500, seed=3, groups=3)
        part = louvain_partition(g)
        # Group labels should be few (close to 3) and modularity positive.
        assert len(set(part.values())) <= 8
        assert modularity(g, part) > 0.3


class TestDeterminism:
    def test_same_graph_same_partition(self, clustered_graph):
        p1 = louvain_partition(clustered_graph)
        p2 = louvain_partition(clustered_graph)
        assert p1 == p2

    def test_rebuilt_graph_same_partition(self):
        g1 = make_random_graph(seed=6)
        g2 = make_random_graph(seed=6)
        assert louvain_partition(g1) == louvain_partition(g2)

    def test_copy_same_partition(self, clustered_graph):
        assert louvain_partition(clustered_graph) == louvain_partition(
            clustered_graph.copy()
        )


class TestModularity:
    def test_single_community_modularity_zero(self):
        g, _, _ = two_cliques()
        part = {v: 0 for v in g.nodes()}
        assert modularity(g, part) == pytest.approx(0.0, abs=1e-9)

    def test_good_split_beats_trivial(self):
        g, left, right = two_cliques()
        split = {v: (0 if v.startswith("l") else 1) for v in g.nodes()}
        trivial = {v: 0 for v in g.nodes()}
        assert modularity(g, split) > modularity(g, trivial)

    def test_louvain_partition_is_near_optimal_on_cliques(self):
        g, left, right = two_cliques()
        part = louvain_partition(g)
        split = {v: (0 if v.startswith("l") else 1) for v in g.nodes()}
        assert modularity(g, part) >= modularity(g, split) - 1e-9

    def test_empty_graph_modularity(self):
        assert modularity(TransactionGraph(), {}) == 0.0

    def test_matches_networkx(self, clustered_graph):
        """Cross-check modularity values against networkx."""
        networkx = pytest.importorskip("networkx")
        G = networkx.Graph()
        for u, v, w in clustered_graph.edges():
            if G.has_edge(u, v):
                G[u][v]["weight"] += w
            else:
                G.add_edge(u, v, weight=w)
        part = louvain_partition(clustered_graph)
        groups = {}
        for v, c in part.items():
            groups.setdefault(c, set()).add(v)
        expected = networkx.community.modularity(
            G, list(groups.values()), weight="weight"
        )
        assert modularity(clustered_graph, part) == pytest.approx(expected, abs=1e-6)

    def test_quality_competitive_with_networkx(self, clustered_graph):
        networkx = pytest.importorskip("networkx")
        G = networkx.Graph()
        for u, v, w in clustered_graph.edges():
            if G.has_edge(u, v):
                G[u][v]["weight"] += w
            else:
                G.add_edge(u, v, weight=w)
        ours = modularity(clustered_graph, louvain_partition(clustered_graph))
        comms = networkx.community.louvain_communities(G, weight="weight", seed=7)
        theirs = networkx.community.modularity(G, comms, weight="weight")
        assert ours >= theirs - 0.05
